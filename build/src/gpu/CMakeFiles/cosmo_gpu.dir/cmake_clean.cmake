file(REMOVE_RECURSE
  "CMakeFiles/cosmo_gpu.dir/device_compressor.cpp.o"
  "CMakeFiles/cosmo_gpu.dir/device_compressor.cpp.o.d"
  "CMakeFiles/cosmo_gpu.dir/node.cpp.o"
  "CMakeFiles/cosmo_gpu.dir/node.cpp.o.d"
  "CMakeFiles/cosmo_gpu.dir/sim.cpp.o"
  "CMakeFiles/cosmo_gpu.dir/sim.cpp.o.d"
  "CMakeFiles/cosmo_gpu.dir/specs.cpp.o"
  "CMakeFiles/cosmo_gpu.dir/specs.cpp.o.d"
  "libcosmo_gpu.a"
  "libcosmo_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
