
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/device_compressor.cpp" "src/gpu/CMakeFiles/cosmo_gpu.dir/device_compressor.cpp.o" "gcc" "src/gpu/CMakeFiles/cosmo_gpu.dir/device_compressor.cpp.o.d"
  "/root/repo/src/gpu/node.cpp" "src/gpu/CMakeFiles/cosmo_gpu.dir/node.cpp.o" "gcc" "src/gpu/CMakeFiles/cosmo_gpu.dir/node.cpp.o.d"
  "/root/repo/src/gpu/sim.cpp" "src/gpu/CMakeFiles/cosmo_gpu.dir/sim.cpp.o" "gcc" "src/gpu/CMakeFiles/cosmo_gpu.dir/sim.cpp.o.d"
  "/root/repo/src/gpu/specs.cpp" "src/gpu/CMakeFiles/cosmo_gpu.dir/specs.cpp.o" "gcc" "src/gpu/CMakeFiles/cosmo_gpu.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/cosmo_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/zfp/CMakeFiles/cosmo_zfp.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/cosmo_random.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cosmo_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
