# Empty dependencies file for cosmo_gpu.
# This may be replaced when dependencies are built.
