file(REMOVE_RECURSE
  "libcosmo_gpu.a"
)
