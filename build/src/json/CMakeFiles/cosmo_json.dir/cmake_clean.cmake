file(REMOVE_RECURSE
  "CMakeFiles/cosmo_json.dir/json.cpp.o"
  "CMakeFiles/cosmo_json.dir/json.cpp.o.d"
  "libcosmo_json.a"
  "libcosmo_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
