# Empty compiler generated dependencies file for cosmo_json.
# This may be replaced when dependencies are built.
