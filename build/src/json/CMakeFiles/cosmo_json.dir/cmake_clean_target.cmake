file(REMOVE_RECURSE
  "libcosmo_json.a"
)
