file(REMOVE_RECURSE
  "libcosmo_sz.a"
)
