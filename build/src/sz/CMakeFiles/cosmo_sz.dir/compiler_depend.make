# Empty compiler generated dependencies file for cosmo_sz.
# This may be replaced when dependencies are built.
