
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sz/predictor.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/predictor.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/predictor.cpp.o.d"
  "/root/repo/src/sz/pwrel.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/pwrel.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/pwrel.cpp.o.d"
  "/root/repo/src/sz/quantizer.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/quantizer.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/quantizer.cpp.o.d"
  "/root/repo/src/sz/rate_estimate.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/rate_estimate.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/rate_estimate.cpp.o.d"
  "/root/repo/src/sz/sz.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/sz.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/sz.cpp.o.d"
  "/root/repo/src/sz/temporal.cpp" "src/sz/CMakeFiles/cosmo_sz.dir/temporal.cpp.o" "gcc" "src/sz/CMakeFiles/cosmo_sz.dir/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cosmo_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
