file(REMOVE_RECURSE
  "CMakeFiles/cosmo_sz.dir/predictor.cpp.o"
  "CMakeFiles/cosmo_sz.dir/predictor.cpp.o.d"
  "CMakeFiles/cosmo_sz.dir/pwrel.cpp.o"
  "CMakeFiles/cosmo_sz.dir/pwrel.cpp.o.d"
  "CMakeFiles/cosmo_sz.dir/quantizer.cpp.o"
  "CMakeFiles/cosmo_sz.dir/quantizer.cpp.o.d"
  "CMakeFiles/cosmo_sz.dir/rate_estimate.cpp.o"
  "CMakeFiles/cosmo_sz.dir/rate_estimate.cpp.o.d"
  "CMakeFiles/cosmo_sz.dir/sz.cpp.o"
  "CMakeFiles/cosmo_sz.dir/sz.cpp.o.d"
  "CMakeFiles/cosmo_sz.dir/temporal.cpp.o"
  "CMakeFiles/cosmo_sz.dir/temporal.cpp.o.d"
  "libcosmo_sz.a"
  "libcosmo_sz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_sz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
