# Empty compiler generated dependencies file for cosmo_cosmo.
# This may be replaced when dependencies are built.
