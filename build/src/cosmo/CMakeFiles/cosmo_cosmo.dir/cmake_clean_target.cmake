file(REMOVE_RECURSE
  "libcosmo_cosmo.a"
)
