file(REMOVE_RECURSE
  "CMakeFiles/cosmo_cosmo.dir/dataset_info.cpp.o"
  "CMakeFiles/cosmo_cosmo.dir/dataset_info.cpp.o.d"
  "CMakeFiles/cosmo_cosmo.dir/hacc_synth.cpp.o"
  "CMakeFiles/cosmo_cosmo.dir/hacc_synth.cpp.o.d"
  "CMakeFiles/cosmo_cosmo.dir/nyx_sequence.cpp.o"
  "CMakeFiles/cosmo_cosmo.dir/nyx_sequence.cpp.o.d"
  "CMakeFiles/cosmo_cosmo.dir/nyx_synth.cpp.o"
  "CMakeFiles/cosmo_cosmo.dir/nyx_synth.cpp.o.d"
  "libcosmo_cosmo.a"
  "libcosmo_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
