
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosmo/dataset_info.cpp" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/dataset_info.cpp.o" "gcc" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/dataset_info.cpp.o.d"
  "/root/repo/src/cosmo/hacc_synth.cpp" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/hacc_synth.cpp.o" "gcc" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/hacc_synth.cpp.o.d"
  "/root/repo/src/cosmo/nyx_sequence.cpp" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/nyx_sequence.cpp.o" "gcc" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/nyx_sequence.cpp.o.d"
  "/root/repo/src/cosmo/nyx_synth.cpp" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/nyx_synth.cpp.o" "gcc" "src/cosmo/CMakeFiles/cosmo_cosmo.dir/nyx_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/cosmo_random.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cosmo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cosmo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cosmo_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
