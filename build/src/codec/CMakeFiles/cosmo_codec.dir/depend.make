# Empty dependencies file for cosmo_codec.
# This may be replaced when dependencies are built.
