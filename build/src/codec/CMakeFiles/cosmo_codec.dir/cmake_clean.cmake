file(REMOVE_RECURSE
  "CMakeFiles/cosmo_codec.dir/bitstream.cpp.o"
  "CMakeFiles/cosmo_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/cosmo_codec.dir/fpc.cpp.o"
  "CMakeFiles/cosmo_codec.dir/fpc.cpp.o.d"
  "CMakeFiles/cosmo_codec.dir/huffman.cpp.o"
  "CMakeFiles/cosmo_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/cosmo_codec.dir/lzss.cpp.o"
  "CMakeFiles/cosmo_codec.dir/lzss.cpp.o.d"
  "CMakeFiles/cosmo_codec.dir/rle.cpp.o"
  "CMakeFiles/cosmo_codec.dir/rle.cpp.o.d"
  "libcosmo_codec.a"
  "libcosmo_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
