file(REMOVE_RECURSE
  "libcosmo_codec.a"
)
