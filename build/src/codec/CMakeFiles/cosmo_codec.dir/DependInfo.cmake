
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/cosmo_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/cosmo_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/fpc.cpp" "src/codec/CMakeFiles/cosmo_codec.dir/fpc.cpp.o" "gcc" "src/codec/CMakeFiles/cosmo_codec.dir/fpc.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/cosmo_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/cosmo_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/lzss.cpp" "src/codec/CMakeFiles/cosmo_codec.dir/lzss.cpp.o" "gcc" "src/codec/CMakeFiles/cosmo_codec.dir/lzss.cpp.o.d"
  "/root/repo/src/codec/rle.cpp" "src/codec/CMakeFiles/cosmo_codec.dir/rle.cpp.o" "gcc" "src/codec/CMakeFiles/cosmo_codec.dir/rle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
