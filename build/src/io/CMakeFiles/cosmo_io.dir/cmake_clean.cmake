file(REMOVE_RECURSE
  "CMakeFiles/cosmo_io.dir/container.cpp.o"
  "CMakeFiles/cosmo_io.dir/container.cpp.o.d"
  "CMakeFiles/cosmo_io.dir/crc32.cpp.o"
  "CMakeFiles/cosmo_io.dir/crc32.cpp.o.d"
  "CMakeFiles/cosmo_io.dir/partitioned.cpp.o"
  "CMakeFiles/cosmo_io.dir/partitioned.cpp.o.d"
  "CMakeFiles/cosmo_io.dir/ppm.cpp.o"
  "CMakeFiles/cosmo_io.dir/ppm.cpp.o.d"
  "libcosmo_io.a"
  "libcosmo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
