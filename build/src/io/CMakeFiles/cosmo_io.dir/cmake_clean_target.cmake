file(REMOVE_RECURSE
  "libcosmo_io.a"
)
