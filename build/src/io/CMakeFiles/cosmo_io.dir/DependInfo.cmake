
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/container.cpp" "src/io/CMakeFiles/cosmo_io.dir/container.cpp.o" "gcc" "src/io/CMakeFiles/cosmo_io.dir/container.cpp.o.d"
  "/root/repo/src/io/crc32.cpp" "src/io/CMakeFiles/cosmo_io.dir/crc32.cpp.o" "gcc" "src/io/CMakeFiles/cosmo_io.dir/crc32.cpp.o.d"
  "/root/repo/src/io/partitioned.cpp" "src/io/CMakeFiles/cosmo_io.dir/partitioned.cpp.o" "gcc" "src/io/CMakeFiles/cosmo_io.dir/partitioned.cpp.o.d"
  "/root/repo/src/io/ppm.cpp" "src/io/CMakeFiles/cosmo_io.dir/ppm.cpp.o" "gcc" "src/io/CMakeFiles/cosmo_io.dir/ppm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cosmo_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
