# Empty dependencies file for cosmo_io.
# This may be replaced when dependencies are built.
