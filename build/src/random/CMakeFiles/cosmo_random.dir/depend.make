# Empty dependencies file for cosmo_random.
# This may be replaced when dependencies are built.
