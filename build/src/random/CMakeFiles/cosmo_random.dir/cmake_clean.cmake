file(REMOVE_RECURSE
  "CMakeFiles/cosmo_random.dir/rng.cpp.o"
  "CMakeFiles/cosmo_random.dir/rng.cpp.o.d"
  "libcosmo_random.a"
  "libcosmo_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
