file(REMOVE_RECURSE
  "libcosmo_random.a"
)
