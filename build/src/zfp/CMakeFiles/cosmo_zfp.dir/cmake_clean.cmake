file(REMOVE_RECURSE
  "CMakeFiles/cosmo_zfp.dir/block_codec.cpp.o"
  "CMakeFiles/cosmo_zfp.dir/block_codec.cpp.o.d"
  "CMakeFiles/cosmo_zfp.dir/chunked.cpp.o"
  "CMakeFiles/cosmo_zfp.dir/chunked.cpp.o.d"
  "CMakeFiles/cosmo_zfp.dir/zfp.cpp.o"
  "CMakeFiles/cosmo_zfp.dir/zfp.cpp.o.d"
  "libcosmo_zfp.a"
  "libcosmo_zfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_zfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
