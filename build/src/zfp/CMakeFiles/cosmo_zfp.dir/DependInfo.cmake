
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zfp/block_codec.cpp" "src/zfp/CMakeFiles/cosmo_zfp.dir/block_codec.cpp.o" "gcc" "src/zfp/CMakeFiles/cosmo_zfp.dir/block_codec.cpp.o.d"
  "/root/repo/src/zfp/chunked.cpp" "src/zfp/CMakeFiles/cosmo_zfp.dir/chunked.cpp.o" "gcc" "src/zfp/CMakeFiles/cosmo_zfp.dir/chunked.cpp.o.d"
  "/root/repo/src/zfp/zfp.cpp" "src/zfp/CMakeFiles/cosmo_zfp.dir/zfp.cpp.o" "gcc" "src/zfp/CMakeFiles/cosmo_zfp.dir/zfp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cosmo_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
