file(REMOVE_RECURSE
  "libcosmo_zfp.a"
)
