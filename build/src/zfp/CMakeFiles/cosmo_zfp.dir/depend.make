# Empty dependencies file for cosmo_zfp.
# This may be replaced when dependencies are built.
