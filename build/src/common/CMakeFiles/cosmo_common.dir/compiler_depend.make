# Empty compiler generated dependencies file for cosmo_common.
# This may be replaced when dependencies are built.
