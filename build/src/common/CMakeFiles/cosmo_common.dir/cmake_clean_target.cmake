file(REMOVE_RECURSE
  "libcosmo_common.a"
)
