
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/common/CMakeFiles/cosmo_common.dir/cli.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/cli.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/cosmo_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/env.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/common/CMakeFiles/cosmo_common.dir/error.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/error.cpp.o.d"
  "/root/repo/src/common/field.cpp" "src/common/CMakeFiles/cosmo_common.dir/field.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/field.cpp.o.d"
  "/root/repo/src/common/str.cpp" "src/common/CMakeFiles/cosmo_common.dir/str.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/str.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/cosmo_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "src/common/CMakeFiles/cosmo_common.dir/timer.cpp.o" "gcc" "src/common/CMakeFiles/cosmo_common.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
