file(REMOVE_RECURSE
  "CMakeFiles/cosmo_common.dir/cli.cpp.o"
  "CMakeFiles/cosmo_common.dir/cli.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/env.cpp.o"
  "CMakeFiles/cosmo_common.dir/env.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/error.cpp.o"
  "CMakeFiles/cosmo_common.dir/error.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/field.cpp.o"
  "CMakeFiles/cosmo_common.dir/field.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/str.cpp.o"
  "CMakeFiles/cosmo_common.dir/str.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/cosmo_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/cosmo_common.dir/timer.cpp.o"
  "CMakeFiles/cosmo_common.dir/timer.cpp.o.d"
  "libcosmo_common.a"
  "libcosmo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
