file(REMOVE_RECURSE
  "libcosmo_foresight.a"
)
