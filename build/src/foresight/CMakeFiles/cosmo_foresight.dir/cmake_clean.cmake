file(REMOVE_RECURSE
  "CMakeFiles/cosmo_foresight.dir/cbench.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/cbench.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/cinema.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/cinema.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/compressor.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/compressor.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/optimizer.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/optimizer.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/pat.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/pat.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/pipeline.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/pipeline.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/report.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/report.cpp.o.d"
  "CMakeFiles/cosmo_foresight.dir/sweep.cpp.o"
  "CMakeFiles/cosmo_foresight.dir/sweep.cpp.o.d"
  "libcosmo_foresight.a"
  "libcosmo_foresight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_foresight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
