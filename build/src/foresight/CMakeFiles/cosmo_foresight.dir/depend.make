# Empty dependencies file for cosmo_foresight.
# This may be replaced when dependencies are built.
