file(REMOVE_RECURSE
  "CMakeFiles/cosmo_analysis.dir/cic.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/cic.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/decimation.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/decimation.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/error_distribution.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/error_distribution.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/fof.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/fof.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/halo_profiles.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/halo_profiles.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/halo_stats.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/halo_stats.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/power_spectrum.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/power_spectrum.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/ssim.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/ssim.cpp.o.d"
  "CMakeFiles/cosmo_analysis.dir/stats.cpp.o"
  "CMakeFiles/cosmo_analysis.dir/stats.cpp.o.d"
  "libcosmo_analysis.a"
  "libcosmo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
