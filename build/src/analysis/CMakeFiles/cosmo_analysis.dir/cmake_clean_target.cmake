file(REMOVE_RECURSE
  "libcosmo_analysis.a"
)
