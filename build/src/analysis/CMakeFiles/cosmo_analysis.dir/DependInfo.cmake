
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cic.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/cic.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/cic.cpp.o.d"
  "/root/repo/src/analysis/decimation.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/decimation.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/decimation.cpp.o.d"
  "/root/repo/src/analysis/error_distribution.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/error_distribution.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/error_distribution.cpp.o.d"
  "/root/repo/src/analysis/fof.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/fof.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/fof.cpp.o.d"
  "/root/repo/src/analysis/halo_profiles.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/halo_profiles.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/halo_profiles.cpp.o.d"
  "/root/repo/src/analysis/halo_stats.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/halo_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/halo_stats.cpp.o.d"
  "/root/repo/src/analysis/power_spectrum.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/power_spectrum.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/power_spectrum.cpp.o.d"
  "/root/repo/src/analysis/ssim.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/ssim.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/ssim.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/cosmo_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/cosmo_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cosmo_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
