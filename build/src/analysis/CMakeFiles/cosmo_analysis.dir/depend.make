# Empty dependencies file for cosmo_analysis.
# This may be replaced when dependencies are built.
