file(REMOVE_RECURSE
  "libcosmo_mpi.a"
)
