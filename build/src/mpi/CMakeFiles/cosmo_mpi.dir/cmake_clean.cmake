file(REMOVE_RECURSE
  "CMakeFiles/cosmo_mpi.dir/comm.cpp.o"
  "CMakeFiles/cosmo_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/cosmo_mpi.dir/domain.cpp.o"
  "CMakeFiles/cosmo_mpi.dir/domain.cpp.o.d"
  "libcosmo_mpi.a"
  "libcosmo_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
