# Empty dependencies file for cosmo_mpi.
# This may be replaced when dependencies are built.
