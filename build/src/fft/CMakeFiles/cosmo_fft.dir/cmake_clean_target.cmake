file(REMOVE_RECURSE
  "libcosmo_fft.a"
)
