# Empty dependencies file for cosmo_fft.
# This may be replaced when dependencies are built.
