file(REMOVE_RECURSE
  "CMakeFiles/cosmo_fft.dir/fft.cpp.o"
  "CMakeFiles/cosmo_fft.dir/fft.cpp.o.d"
  "libcosmo_fft.a"
  "libcosmo_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
