# Empty dependencies file for cosmo_tests.
# This may be replaced when dependencies are built.
