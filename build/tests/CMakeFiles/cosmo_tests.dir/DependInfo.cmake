
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitstream.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_bitstream.cpp.o.d"
  "/root/repo/tests/test_cbench.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_cbench.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_cbench.cpp.o.d"
  "/root/repo/tests/test_cic.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_cic.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_cic.cpp.o.d"
  "/root/repo/tests/test_cinema.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_cinema.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_cinema.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_cosmo_synth.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_cosmo_synth.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_cosmo_synth.cpp.o.d"
  "/root/repo/tests/test_errdist_fpc.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_errdist_fpc.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_errdist_fpc.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_fof.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_fof.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_fof.cpp.o.d"
  "/root/repo/tests/test_foresight_compressor.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_foresight_compressor.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_foresight_compressor.cpp.o.d"
  "/root/repo/tests/test_gpu.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_gpu.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_gpu.cpp.o.d"
  "/root/repo/tests/test_halo_stats.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_halo_stats.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_halo_stats.cpp.o.d"
  "/root/repo/tests/test_huffman.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_huffman.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_huffman.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_pat.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_pat.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_pat.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_power_spectrum.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_power_spectrum.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_power_spectrum.cpp.o.d"
  "/root/repo/tests/test_profiles_report.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_profiles_report.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_profiles_report.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_pwrel.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_pwrel.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_pwrel.cpp.o.d"
  "/root/repo/tests/test_rle_lzss.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_rle_lzss.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_rle_lzss.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_ssim.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_ssim.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_ssim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_sweep.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/test_sz.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_sz.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_sz.cpp.o.d"
  "/root/repo/tests/test_sz_predictor.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_sz_predictor.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_sz_predictor.cpp.o.d"
  "/root/repo/tests/test_temporal.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_temporal.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_temporal.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_zfp.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_zfp.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_zfp.cpp.o.d"
  "/root/repo/tests/test_zfp_block.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_zfp_block.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_zfp_block.cpp.o.d"
  "/root/repo/tests/test_zfp_chunked.cpp" "tests/CMakeFiles/cosmo_tests.dir/test_zfp_chunked.cpp.o" "gcc" "tests/CMakeFiles/cosmo_tests.dir/test_zfp_chunked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/foresight/CMakeFiles/cosmo_foresight.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cosmo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/cosmo_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cosmo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/cosmo_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/zfp/CMakeFiles/cosmo_zfp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/cosmo_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cosmo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cosmo_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cosmo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cosmo_json.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/cosmo_random.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
