file(REMOVE_RECURSE
  "CMakeFiles/foresight_cli.dir/foresight_cli.cpp.o"
  "CMakeFiles/foresight_cli.dir/foresight_cli.cpp.o.d"
  "foresight_cli"
  "foresight_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foresight_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
