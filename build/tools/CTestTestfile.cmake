# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_devices "/root/repo/build/tools/foresight_cli" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_info "/root/repo/build/tools/foresight_cli" "generate" "--type" "nyx" "--dim" "16" "--out" "/root/repo/build/cli_test_nyx.h5l")
set_tests_properties(cli_generate_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/foresight_cli" "info" "/root/repo/build/cli_test_nyx.h5l")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_generate_info" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compress "/root/repo/build/tools/foresight_cli" "compress" "--codec" "zfp-cpu" "--mode" "rate" "--value" "8" "--input" "/root/repo/build/cli_test_nyx.h5l")
set_tests_properties(cli_compress PROPERTIES  DEPENDS "cli_generate_info" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build/tools/foresight_cli" "estimate" "--input" "/root/repo/build/cli_test_nyx.h5l" "--field" "temperature" "--bound" "100")
set_tests_properties(cli_estimate PROPERTIES  DEPENDS "cli_generate_info" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/foresight_cli" "bogus-command")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
