file(REMOVE_RECURSE
  "CMakeFiles/multirank_io.dir/multirank_io.cpp.o"
  "CMakeFiles/multirank_io.dir/multirank_io.cpp.o.d"
  "multirank_io"
  "multirank_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirank_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
