# Empty compiler generated dependencies file for multirank_io.
# This may be replaced when dependencies are built.
