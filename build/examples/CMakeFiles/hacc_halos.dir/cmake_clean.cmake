file(REMOVE_RECURSE
  "CMakeFiles/hacc_halos.dir/hacc_halos.cpp.o"
  "CMakeFiles/hacc_halos.dir/hacc_halos.cpp.o.d"
  "hacc_halos"
  "hacc_halos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hacc_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
