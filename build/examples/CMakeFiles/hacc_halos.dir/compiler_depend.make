# Empty compiler generated dependencies file for hacc_halos.
# This may be replaced when dependencies are built.
