# Empty dependencies file for nyx_pipeline.
# This may be replaced when dependencies are built.
