file(REMOVE_RECURSE
  "CMakeFiles/nyx_pipeline.dir/nyx_pipeline.cpp.o"
  "CMakeFiles/nyx_pipeline.dir/nyx_pipeline.cpp.o.d"
  "nyx_pipeline"
  "nyx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
