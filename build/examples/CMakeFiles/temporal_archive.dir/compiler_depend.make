# Empty compiler generated dependencies file for temporal_archive.
# This may be replaced when dependencies are built.
