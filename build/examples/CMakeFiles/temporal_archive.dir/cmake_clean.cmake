file(REMOVE_RECURSE
  "CMakeFiles/temporal_archive.dir/temporal_archive.cpp.o"
  "CMakeFiles/temporal_archive.dir/temporal_archive.cpp.o.d"
  "temporal_archive"
  "temporal_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
