# Empty dependencies file for bench_fig1_visual_psd.
# This may be replaced when dependencies are built.
