file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_visual_psd.dir/bench_fig1_visual_psd.cpp.o"
  "CMakeFiles/bench_fig1_visual_psd.dir/bench_fig1_visual_psd.cpp.o.d"
  "bench_fig1_visual_psd"
  "bench_fig1_visual_psd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_visual_psd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
