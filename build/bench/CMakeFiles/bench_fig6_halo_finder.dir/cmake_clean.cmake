file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_halo_finder.dir/bench_fig6_halo_finder.cpp.o"
  "CMakeFiles/bench_fig6_halo_finder.dir/bench_fig6_halo_finder.cpp.o.d"
  "bench_fig6_halo_finder"
  "bench_fig6_halo_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_halo_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
