# Empty compiler generated dependencies file for bench_fig6_halo_finder.
# This may be replaced when dependencies are built.
