file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_halo_profiles.dir/bench_ablation_halo_profiles.cpp.o"
  "CMakeFiles/bench_ablation_halo_profiles.dir/bench_ablation_halo_profiles.cpp.o.d"
  "bench_ablation_halo_profiles"
  "bench_ablation_halo_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_halo_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
