file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_throughput_bitrate.dir/bench_fig10_throughput_bitrate.cpp.o"
  "CMakeFiles/bench_fig10_throughput_bitrate.dir/bench_fig10_throughput_bitrate.cpp.o.d"
  "bench_fig10_throughput_bitrate"
  "bench_fig10_throughput_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_throughput_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
