# Empty dependencies file for bench_fig4_rate_distortion.
# This may be replaced when dependencies are built.
