file(REMOVE_RECURSE
  "CMakeFiles/bench_node_overhead.dir/bench_node_overhead.cpp.o"
  "CMakeFiles/bench_node_overhead.dir/bench_node_overhead.cpp.o.d"
  "bench_node_overhead"
  "bench_node_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
