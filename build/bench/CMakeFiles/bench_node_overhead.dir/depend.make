# Empty dependencies file for bench_node_overhead.
# This may be replaced when dependencies are built.
