# Empty compiler generated dependencies file for bench_codec_microbench.
# This may be replaced when dependencies are built.
