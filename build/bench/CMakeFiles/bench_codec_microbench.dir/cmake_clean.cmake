file(REMOVE_RECURSE
  "CMakeFiles/bench_codec_microbench.dir/bench_codec_microbench.cpp.o"
  "CMakeFiles/bench_codec_microbench.dir/bench_codec_microbench.cpp.o.d"
  "bench_codec_microbench"
  "bench_codec_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
