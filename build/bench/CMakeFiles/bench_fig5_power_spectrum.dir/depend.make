# Empty dependencies file for bench_fig5_power_spectrum.
# This may be replaced when dependencies are built.
