
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_power_spectrum.cpp" "bench/CMakeFiles/bench_fig5_power_spectrum.dir/bench_fig5_power_spectrum.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_power_spectrum.dir/bench_fig5_power_spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/foresight/CMakeFiles/cosmo_foresight.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cosmo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/cosmo_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cosmo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/cosmo_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/zfp/CMakeFiles/cosmo_zfp.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/cosmo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cosmo_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cosmo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cosmo_json.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/cosmo_random.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
