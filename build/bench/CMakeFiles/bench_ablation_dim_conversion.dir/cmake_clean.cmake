file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dim_conversion.dir/bench_ablation_dim_conversion.cpp.o"
  "CMakeFiles/bench_ablation_dim_conversion.dir/bench_ablation_dim_conversion.cpp.o.d"
  "bench_ablation_dim_conversion"
  "bench_ablation_dim_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dim_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
