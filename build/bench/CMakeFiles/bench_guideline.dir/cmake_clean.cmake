file(REMOVE_RECURSE
  "CMakeFiles/bench_guideline.dir/bench_guideline.cpp.o"
  "CMakeFiles/bench_guideline.dir/bench_guideline.cpp.o.d"
  "bench_guideline"
  "bench_guideline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
