# Empty dependencies file for bench_guideline.
# This may be replaced when dependencies are built.
