# Empty compiler generated dependencies file for bench_ablation_error_distribution.
# This may be replaced when dependencies are built.
