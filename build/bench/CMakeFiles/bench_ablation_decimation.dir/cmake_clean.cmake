file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decimation.dir/bench_ablation_decimation.cpp.o"
  "CMakeFiles/bench_ablation_decimation.dir/bench_ablation_decimation.cpp.o.d"
  "bench_ablation_decimation"
  "bench_ablation_decimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
