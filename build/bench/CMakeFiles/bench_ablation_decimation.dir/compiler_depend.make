# Empty compiler generated dependencies file for bench_ablation_decimation.
# This may be replaced when dependencies are built.
