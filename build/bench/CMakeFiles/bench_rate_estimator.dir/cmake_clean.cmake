file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_estimator.dir/bench_rate_estimator.cpp.o"
  "CMakeFiles/bench_rate_estimator.dir/bench_rate_estimator.cpp.o.d"
  "bench_rate_estimator"
  "bench_rate_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
