# Empty compiler generated dependencies file for bench_rate_estimator.
# This may be replaced when dependencies are built.
