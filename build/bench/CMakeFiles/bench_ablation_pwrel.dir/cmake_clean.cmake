file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pwrel.dir/bench_ablation_pwrel.cpp.o"
  "CMakeFiles/bench_ablation_pwrel.dir/bench_ablation_pwrel.cpp.o.d"
  "bench_ablation_pwrel"
  "bench_ablation_pwrel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pwrel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
