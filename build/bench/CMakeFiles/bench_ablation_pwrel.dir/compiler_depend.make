# Empty compiler generated dependencies file for bench_ablation_pwrel.
# This may be replaced when dependencies are built.
