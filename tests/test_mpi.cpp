#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "cosmo/hacc_synth.hpp"
#include "mpi/comm.hpp"
#include "mpi/domain.hpp"

namespace cosmo::mpi {
namespace {

Message to_message(double v) {
  Message m(sizeof(double));
  std::memcpy(m.data(), &v, sizeof(double));
  return m;
}

double from_message(const Message& m) {
  double v;
  std::memcpy(&v, m.data(), sizeof(double));
  return v;
}

TEST(MpiComm, WorldRunsEveryRank) {
  std::atomic<int> ran{0};
  run_world(6, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 6);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 6);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 6);
}

TEST(MpiComm, PointToPointRoundTrip) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, to_message(42.5));
      const auto [src, reply] = comm.recv(1, 8);
      EXPECT_EQ(src, 1);
      EXPECT_DOUBLE_EQ(from_message(reply), 85.0);
    } else {
      const auto [src, msg] = comm.recv(0, 7);
      EXPECT_EQ(src, 0);
      comm.send(0, 8, to_message(from_message(msg) * 2.0));
    }
  });
}

TEST(MpiComm, TagMatchingHoldsBackOtherTags) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, to_message(5.0));
      comm.send(1, 3, to_message(3.0));
    } else {
      // Receive tag 3 first even though tag 5 arrived first.
      EXPECT_DOUBLE_EQ(from_message(comm.recv(0, 3).second), 3.0);
      EXPECT_DOUBLE_EQ(from_message(comm.recv(0, 5).second), 5.0);
    }
  });
}

TEST(MpiComm, AnySourceReceivesFromAll) {
  run_world(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      double sum = 0.0;
      for (int i = 0; i < 3; ++i) {
        const auto [src, msg] = comm.recv(kAnySource, 1);
        EXPECT_GE(src, 1);
        sum += from_message(msg);
      }
      EXPECT_DOUBLE_EQ(sum, 1.0 + 2.0 + 3.0);
    } else {
      comm.send(0, 1, to_message(static_cast<double>(comm.rank())));
    }
  });
}

TEST(MpiComm, BroadcastDeliversRootValue) {
  run_world(5, [](Comm& comm) {
    Message value = comm.rank() == 2 ? to_message(3.14) : Message{};
    const Message got = comm.broadcast(2, std::move(value));
    EXPECT_DOUBLE_EQ(from_message(got), 3.14);
  });
}

TEST(MpiComm, GatherCollectsInRankOrder) {
  run_world(4, [](Comm& comm) {
    const auto all = comm.gather(0, to_message(static_cast<double>(comm.rank() * 10)));
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(from_message(all[static_cast<std::size_t>(r)]), r * 10.0);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MpiComm, AllreduceSumAndMax) {
  run_world(8, [](Comm& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 36.0);  // 1+..+8
    const double max = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(max, 7.0);
  });
}

TEST(MpiComm, RepeatedMixedCollectivesDoNotCrossTalk) {
  // Regression: consecutive collectives must not steal each other's
  // messages when ranks progress at different speeds (each collective gets
  // its own internal tag via a per-rank sequence counter).
  run_world(6, [](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      const auto all =
          comm.gather(0, to_message(static_cast<double>(comm.rank() + iter)));
      if (comm.rank() == 0) {
        ASSERT_EQ(all.size(), 6u);
        for (int r = 0; r < 6; ++r) {
          ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), sizeof(double));
          EXPECT_DOUBLE_EQ(from_message(all[static_cast<std::size_t>(r)]),
                           static_cast<double>(r + iter));
        }
      }
      const double sum = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(sum, 6.0);
    }
  });
}

TEST(MpiComm, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_world(4, [&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(MpiComm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(
      run_world(3,
                [](Comm& comm) {
                  if (comm.rank() == 1) throw Error("rank 1 died");
                  // Other ranks block on a message that never comes; the
                  // abort must wake them instead of deadlocking.
                  if (comm.rank() == 0) comm.recv(2, 99);
                  if (comm.rank() == 2) comm.barrier();
                }),
      Error);
}

TEST(MpiComm, SendToInvalidRankRejected) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           if (comm.rank() == 0) comm.send(5, 0, {});
                         }),
               Error);
}

// ---------- Domain decomposition ----------

TEST(Domain, PaperDecompositionHas256Ranks) {
  DomainDecomposition domain{8, 8, 4, 256.0};
  EXPECT_EQ(domain.rank_count(), 256u);
}

TEST(Domain, CoordRoundTrip) {
  DomainDecomposition domain{8, 8, 4, 256.0};
  for (std::size_t r = 0; r < domain.rank_count(); r += 17) {
    const auto c = domain.coord_of(r);
    EXPECT_EQ(domain.rank_of_coord(c.ix, c.iy, c.iz), r);
  }
  EXPECT_THROW(domain.coord_of(256), InvalidArgument);
}

TEST(Domain, SlabsTileTheBox) {
  DomainDecomposition domain{4, 2, 2, 100.0};
  double volume = 0.0;
  for (std::size_t r = 0; r < domain.rank_count(); ++r) {
    const auto s = domain.slab_of(r);
    volume += (s.x1 - s.x0) * (s.y1 - s.y0) * (s.z1 - s.z0);
  }
  EXPECT_NEAR(volume, 100.0 * 100.0 * 100.0, 1e-6);
}

TEST(Domain, OwnerMatchesSlab) {
  DomainDecomposition domain{8, 8, 4, 256.0};
  for (const double x : {0.0, 31.9, 32.0, 255.9}) {
    for (const double z : {0.0, 100.0, 255.0}) {
      const std::size_t owner = domain.owner_of(x, 10.0, z);
      EXPECT_TRUE(domain.slab_of(owner).contains(x, 10.0, z))
          << "x=" << x << " z=" << z;
    }
  }
  // Out-of-box positions wrap periodically.
  EXPECT_EQ(domain.owner_of(256.0, 0.0, 0.0), domain.owner_of(0.0, 0.0, 0.0));
  EXPECT_EQ(domain.owner_of(-1.0, 0.0, 0.0), domain.owner_of(255.0, 0.0, 0.0));
}

TEST(Domain, PartitionCoversAllParticlesOnce) {
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 10;
  const auto data = generate_hacc(config);
  DomainDecomposition domain{8, 8, 4, 256.0};
  const auto parts = partition_particles(domain, data.find("x").field.data,
                                         data.find("y").field.data,
                                         data.find("z").field.data);
  ASSERT_EQ(parts.size(), 256u);
  std::size_t total = 0;
  std::vector<bool> seen(config.particles, false);
  for (std::size_t r = 0; r < parts.size(); ++r) {
    for (const auto p : parts[r]) {
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
      ++total;
      // Every particle must actually live in its rank's slab.
      EXPECT_TRUE(domain.slab_of(r).contains(data.find("x").field.data[p],
                                             data.find("y").field.data[p],
                                             data.find("z").field.data[p]));
    }
  }
  EXPECT_EQ(total, config.particles);
}

TEST(Domain, ClusteredDataGivesUnevenPartitions) {
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 6;
  config.clustered_fraction = 0.9;
  const auto data = generate_hacc(config);
  DomainDecomposition domain{4, 4, 4, 256.0};
  const auto parts = partition_particles(domain, data.find("x").field.data,
                                         data.find("y").field.data,
                                         data.find("z").field.data);
  std::size_t max_count = 0, min_count = config.particles;
  for (const auto& p : parts) {
    max_count = std::max(max_count, p.size());
    min_count = std::min(min_count, p.size());
  }
  // Halos concentrate mass: the busiest rank holds far more than the idlest.
  EXPECT_GT(max_count, min_count * 4);
}

TEST(MpiIntegration, DistributedAllreduceMatchesSerialSum) {
  // Each rank sums its own partition's x coordinates; allreduce must equal
  // the serial total — the pattern per-rank compression statistics use.
  HaccConfig config;
  config.particles = 5000;
  config.halo_count = 5;
  const auto data = generate_hacc(config);
  const auto& x = data.find("x").field.data;
  double serial = 0.0;
  for (const float v : x) serial += v;

  DomainDecomposition domain{2, 2, 2, 256.0};
  const auto parts = partition_particles(domain, x, data.find("y").field.data,
                                         data.find("z").field.data);
  std::vector<double> results(8, 0.0);
  run_world(8, [&](Comm& comm) {
    double local = 0.0;
    for (const auto p : parts[static_cast<std::size_t>(comm.rank())]) local += x[p];
    results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_sum(local);
  });
  for (const double r : results) EXPECT_NEAR(r, serial, 1e-3);
}

}  // namespace
}  // namespace cosmo::mpi
