#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "analysis/halo_profiles.hpp"
#include "common/error.hpp"
#include "cosmo/hacc_synth.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/report.hpp"
#include "random/rng.hpp"
#include "sz/sz.hpp"

namespace cosmo {
namespace {

// ---------- halo profiles ----------

struct ProfileFixture {
  io::Container hacc;
  analysis::FofResult halos;

  ProfileFixture() {
    HaccConfig config;
    config.particles = 40000;
    config.halo_count = 20;
    config.clustered_fraction = 0.8;
    hacc = generate_hacc(config);
    analysis::FofParams params;
    params.linking_length = 1.0;
    params.min_members = 50;
    halos = analysis::fof(hacc.find("x").field.data, hacc.find("y").field.data,
                          hacc.find("z").field.data, params);
  }
};

ProfileFixture& profile_fixture() {
  static ProfileFixture f;
  return f;
}

TEST(HaloProfiles, DensityDecreasesOutward) {
  auto& f = profile_fixture();
  ASSERT_GT(f.halos.halos.size(), 3u);
  const auto profile =
      analysis::stacked_profile(f.hacc.find("x").field.data, f.hacc.find("y").field.data,
                                f.hacc.find("z").field.data, f.halos);
  // NFW-sampled halos: the inner bins must be far denser than the outer.
  double inner = 0.0, outer = 0.0;
  for (std::size_t b = 0; b < profile.size(); ++b) {
    if (b < profile.size() / 4) inner += profile[b].density;
    if (b >= 3 * profile.size() / 4) outer += profile[b].density;
  }
  EXPECT_GT(inner, outer * 10.0);
}

TEST(HaloProfiles, ConcentrationProxyInPlausibleRange) {
  auto& f = profile_fixture();
  const auto profile =
      analysis::stacked_profile(f.hacc.find("x").field.data, f.hacc.find("y").field.data,
                                f.hacc.find("z").field.data, f.halos);
  const double c = analysis::concentration_proxy(profile);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 0.8);  // centrally concentrated: r_half well inside r_90
}

TEST(HaloProfiles, TightCompressionPreservesProfile) {
  auto& f = profile_fixture();
  const auto& x = f.hacc.find("x").field;
  const auto& y = f.hacc.find("y").field;
  const auto& z = f.hacc.find("z").field;
  const auto reference = analysis::stacked_profile(x.data, y.data, z.data, f.halos);

  sz::Params params;
  params.abs_error_bound = 0.005;
  const auto rx = sz::decompress(sz::compress(x.data, x.dims, params));
  const auto ry = sz::decompress(sz::compress(y.data, y.dims, params));
  const auto rz = sz::decompress(sz::compress(z.data, z.dims, params));
  // Same membership (halo structure preserved at this bound), perturbed
  // positions: the profile must barely move.
  const auto recon_profile = analysis::stacked_profile(rx, ry, rz, f.halos);
  EXPECT_LT(analysis::profile_deviation(reference, recon_profile, 100), 0.05);
}

TEST(HaloProfiles, CoarsePositionsDistortTheProfile) {
  auto& f = profile_fixture();
  const auto& x = f.hacc.find("x").field;
  const auto& y = f.hacc.find("y").field;
  const auto& z = f.hacc.find("z").field;
  const auto reference = analysis::stacked_profile(x.data, y.data, z.data, f.halos);

  sz::Params params;
  params.abs_error_bound = 0.5;  // comparable to the core radius
  const auto rx = sz::decompress(sz::compress(x.data, x.dims, params));
  const auto ry = sz::decompress(sz::compress(y.data, y.dims, params));
  const auto rz = sz::decompress(sz::compress(z.data, z.dims, params));
  const auto recon_profile = analysis::stacked_profile(rx, ry, rz, f.halos);
  // A bound comparable to the core radius snaps particles onto the
  // quantization grid: the radial distribution is visibly redistributed
  // even though halo membership survives (the finer-grained distortion the
  // count-based Fig. 6 metric cannot see).
  EXPECT_GT(analysis::profile_deviation(reference, recon_profile, 100), 0.05);
}

TEST(HaloProfiles, InvalidInputsRejected) {
  analysis::FofResult empty;
  const std::vector<float> p = {1.0f};
  analysis::ProfileParams params;
  params.nbins = 1;
  empty.halo_of_particle = {-1};
  EXPECT_THROW(analysis::stacked_profile(p, p, p, empty, params), InvalidArgument);
  EXPECT_THROW(analysis::concentration_proxy({}), InvalidArgument);
  EXPECT_THROW(analysis::profile_deviation({}, {analysis::ProfileBin{}}),
               InvalidArgument);
}

// ---------- markdown report ----------

foresight::CBenchResult fake_result(const std::string& field, const std::string& codec,
                                    const std::string& mode, double value, double ratio,
                                    double psnr) {
  foresight::CBenchResult r;
  r.dataset = "nyx";
  r.field = field;
  r.compressor = codec;
  r.config = {mode, value};
  r.ratio = ratio;
  r.bit_rate = 32.0 / ratio;
  r.distortion.psnr_db = psnr;
  return r;
}

TEST(Report, RendersTablesAndBestFitPicks) {
  std::vector<foresight::CBenchResult> results = {
      fake_result("rho", "gpu-sz", "abs", 0.2, 15.4, 95.0),
      fake_result("rho", "gpu-sz", "abs", 1.0, 20.0, 102.5),
      fake_result("rho", "cuzfp", "rate", 4.0, 8.0, 88.5),
  };
  std::map<std::string, double> pk = {
      {"rho|gpu-sz|abs=0.2", 0.004},   // acceptable
      {"rho|gpu-sz|abs=1", 0.02},      // higher PSNR... but rejected
      {"rho|cuzfp|rate=4", 0.008},
  };
  const std::string md = foresight::render_markdown_report(results, pk, {}, {});
  EXPECT_NE(md.find("## gpu-sz"), std::string::npos);
  EXPECT_NE(md.find("## cuzfp"), std::string::npos);
  EXPECT_NE(md.find("0.0200 reject"), std::string::npos);
  // Best fit: the acceptable 15.4x pick, not the rejected 20x one.
  EXPECT_NE(md.find("**rho** -> gpu-sz `abs=0.2` (15.40x)"), std::string::npos);
}

TEST(Report, PipelineSummaryEndToEnd) {
  // Full integration: pipeline run -> markdown report on disk.
  const std::string out_dir = ::testing::TempDir() + "/report_pipeline";
  const json::Value config = json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "nyx", "dim": 16},
    "runs": [
      {"compressor": "cuzfp", "fields": ["baryon_density"],
       "configs": [{"mode": "rate", "value": 8}]}
    ],
    "analysis": {"power_spectrum": true, "ssim": true}
  })");
  const auto summary = foresight::run_pipeline(config);
  ASSERT_TRUE(summary.workflow_ok);
  const std::string md = foresight::render_markdown_report(summary);
  EXPECT_NE(md.find("## cuzfp"), std::string::npos);
  EXPECT_NE(md.find("baryon_density"), std::string::npos);
  EXPECT_EQ(md.find("| - | - | - |"), std::string::npos);  // pk + ssim filled
  foresight::write_markdown_report(summary, out_dir + "/report.md");
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/report.md"));
  std::filesystem::remove_all(out_dir);
}

TEST(Report, EmptyResultsHandled) {
  const std::string md = foresight::render_markdown_report({}, {}, {}, {});
  EXPECT_NE(md.find("No results."), std::string::npos);
}

TEST(Report, MissingAnalysesRenderDashes) {
  const auto results = std::vector<foresight::CBenchResult>{
      fake_result("T", "zfp-cpu", "rate", 8.0, 4.0, 70.0)};
  const std::string md = foresight::render_markdown_report(results, {}, {}, {});
  EXPECT_NE(md.find("| - | - | - |"), std::string::npos);
  // With no pk data, every config counts as acceptable for the pick.
  EXPECT_NE(md.find("**T** -> zfp-cpu `rate=8`"), std::string::npos);
}

}  // namespace
}  // namespace cosmo
