#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/thread_pool.hpp"

namespace cosmo {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ParallelFor, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  parallel_for(&pool, touched.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++touched[i];
  }, 16);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, InlineWhenSmallOrNoPool) {
  std::vector<int> v(100, 0);
  parallel_for(nullptr, v.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) v[i] = 1;
  });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 100);
}

TEST(ParallelFor, ZeroElementsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(&pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 100000,
                   [](std::size_t b, std::size_t) {
                     if (b == 0) throw std::runtime_error("chunk failed");
                   },
                   16),
      std::runtime_error);
}

TEST(GlobalPool, IsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace cosmo
