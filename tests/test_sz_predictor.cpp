#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.hpp"
#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"

namespace cosmo::sz {
namespace {

BlockRange full_block(const Dims& dims) {
  return {0, dims.nx, 0, dims.ny, 0, dims.nz};
}

TEST(Lorenzo, FirstElementPredictsZero) {
  const Dims dims = Dims::d3(4, 4, 4);
  std::vector<float> data(dims.count(), 5.0f);
  EXPECT_FLOAT_EQ(lorenzo_predict(data, dims, full_block(dims), 0, 0, 0), 0.0f);
}

TEST(Lorenzo, Rank1UsesLeftNeighbor) {
  const Dims dims = Dims::d1(8);
  const std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto blk = full_block(dims);
  EXPECT_FLOAT_EQ(lorenzo_predict(data, dims, blk, 3, 0, 0), 3.0f);
}

TEST(Lorenzo, ExactForLinearField3d) {
  // The order-1 Lorenzo stencil reproduces any trilinear-free affine field
  // f = a x + b y + c z + d exactly (away from block borders).
  const Dims dims = Dims::d3(6, 6, 6);
  std::vector<float> data(dims.count());
  for (std::size_t z = 0; z < 6; ++z) {
    for (std::size_t y = 0; y < 6; ++y) {
      for (std::size_t x = 0; x < 6; ++x) {
        data[dims.index(x, y, z)] =
            2.0f * static_cast<float>(x) - 3.0f * static_cast<float>(y) +
            0.5f * static_cast<float>(z) + 7.0f;
      }
    }
  }
  const auto blk = full_block(dims);
  for (std::size_t z = 1; z < 6; ++z) {
    for (std::size_t y = 1; y < 6; ++y) {
      for (std::size_t x = 1; x < 6; ++x) {
        EXPECT_NEAR(lorenzo_predict(data, dims, blk, x, y, z),
                    data[dims.index(x, y, z)], 1e-4);
      }
    }
  }
}

TEST(Lorenzo, ExactForBilinearField2d) {
  const Dims dims = Dims::d2(8, 8);
  std::vector<float> data(dims.count());
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      data[dims.index(x, y, 0)] =
          1.5f * static_cast<float>(x) + 2.5f * static_cast<float>(y) - 3.0f;
    }
  }
  const auto blk = full_block(dims);
  for (std::size_t y = 1; y < 8; ++y) {
    for (std::size_t x = 1; x < 8; ++x) {
      EXPECT_NEAR(lorenzo_predict(data, dims, blk, x, y, 0), data[dims.index(x, y, 0)],
                  1e-4);
    }
  }
}

TEST(Lorenzo, BlockIndependence) {
  // Neighbors outside the block must be treated as zero.
  const Dims dims = Dims::d1(8);
  const std::vector<float> data = {9, 9, 9, 9, 1, 2, 3, 4};
  BlockRange blk{4, 8, 0, 1, 0, 1};
  EXPECT_FLOAT_EQ(lorenzo_predict(data, dims, blk, 4, 0, 0), 0.0f);  // not 9
  EXPECT_FLOAT_EQ(lorenzo_predict(data, dims, blk, 5, 0, 0), 1.0f);
}

TEST(Regression, RecoversExactLinearModel) {
  const Dims dims = Dims::d3(8, 8, 8);
  std::vector<float> data(dims.count());
  for (std::size_t z = 0; z < 8; ++z) {
    for (std::size_t y = 0; y < 8; ++y) {
      for (std::size_t x = 0; x < 8; ++x) {
        data[dims.index(x, y, z)] = 1.25f * static_cast<float>(x) -
                                    0.75f * static_cast<float>(y) +
                                    2.0f * static_cast<float>(z) + 10.0f;
      }
    }
  }
  const auto blk = full_block(dims);
  const RegressionCoef coef = fit_regression(data, dims, blk);
  EXPECT_NEAR(coef.a, 1.25f, 1e-4);
  EXPECT_NEAR(coef.b, -0.75f, 1e-4);
  EXPECT_NEAR(coef.c, 2.0f, 1e-4);
  EXPECT_NEAR(coef.d, 10.0f, 1e-3);
  EXPECT_NEAR(regression_error_estimate(data, dims, blk, coef), 0.0, 1e-2);
}

TEST(Regression, PartialBlockFit) {
  const Dims dims = Dims::d3(10, 10, 10);
  std::vector<float> data(dims.count());
  for (std::size_t z = 0; z < 10; ++z) {
    for (std::size_t y = 0; y < 10; ++y) {
      for (std::size_t x = 0; x < 10; ++x) {
        data[dims.index(x, y, z)] = static_cast<float>(x + y + z);
      }
    }
  }
  BlockRange blk{8, 10, 8, 10, 8, 10};  // 2x2x2 corner block
  const RegressionCoef coef = fit_regression(data, dims, blk);
  EXPECT_NEAR(coef.a, 1.0f, 1e-4);
  EXPECT_NEAR(coef.b, 1.0f, 1e-4);
  EXPECT_NEAR(coef.c, 1.0f, 1e-4);
  EXPECT_NEAR(coef.d, 24.0f, 1e-3);  // f(8,8,8)
}

TEST(Regression, ConstantFieldGivesZeroSlopes) {
  const Dims dims = Dims::d3(4, 4, 4);
  std::vector<float> data(dims.count(), 3.5f);
  const RegressionCoef coef = fit_regression(data, dims, full_block(dims));
  EXPECT_NEAR(coef.a, 0.0f, 1e-6);
  EXPECT_NEAR(coef.b, 0.0f, 1e-6);
  EXPECT_NEAR(coef.c, 0.0f, 1e-6);
  EXPECT_NEAR(coef.d, 3.5f, 1e-5);
}

TEST(Regression, ErrorEstimateRanksPredictors) {
  // A noisy ramp: regression should beat Lorenzo-from-zero on a fresh block
  // since Lorenzo's first row predicts 0.
  const Dims dims = Dims::d3(8, 8, 8);
  std::vector<float> data(dims.count());
  Rng rng(41);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1000.0f + static_cast<float>(i % 8) + 0.1f * static_cast<float>(rng.normal());
  }
  const auto blk = full_block(dims);
  const auto coef = fit_regression(data, dims, blk);
  EXPECT_LT(regression_error_estimate(data, dims, blk, coef),
            lorenzo_error_estimate(data, dims, blk));
}

// ---------- Quantizer ----------

TEST(Quantizer, ReconstructionWithinBound) {
  const double eb = 0.01;
  const Quantizer q(eb);
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float original = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float predicted = original + static_cast<float>(rng.uniform(-5.0, 5.0));
    const auto result = q.quantize(original, predicted);
    if (result.code != 0) {
      EXPECT_LE(std::fabs(result.reconstructed - original), eb + 1e-12);
      // Decoder path must agree bit-for-bit.
      EXPECT_FLOAT_EQ(q.reconstruct(result.code, predicted), result.reconstructed);
    }
  }
}

TEST(Quantizer, PerfectPredictionGivesCenterCode) {
  const Quantizer q(0.5);
  const auto result = q.quantize(10.0f, 10.0f);
  EXPECT_EQ(result.code, q.radius());
  EXPECT_FLOAT_EQ(result.reconstructed, 10.0f);
}

TEST(Quantizer, HugeErrorIsUnpredictable) {
  const Quantizer q(1e-6);
  const auto result = q.quantize(1e6f, 0.0f);
  EXPECT_EQ(result.code, 0u);
}

TEST(Quantizer, CodeSpaceEdges) {
  const Quantizer q(1.0, 8);
  // diff = 14 -> scaled 7 -> within radius 8.
  EXPECT_NE(q.quantize(14.0f, 0.0f).code, 0u);
  // diff = 16 -> scaled 8 -> outside.
  EXPECT_EQ(q.quantize(16.0f, 0.0f).code, 0u);
}

TEST(Quantizer, InvalidParamsRejected) {
  EXPECT_THROW(Quantizer(0.0), InvalidArgument);
  EXPECT_THROW(Quantizer(-1.0), InvalidArgument);
  EXPECT_THROW(Quantizer(1.0, 1), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::sz
