#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/field.hpp"
#include "common/str.hpp"
#include "common/timer.hpp"

namespace cosmo {
namespace {

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), InvalidArgument);
  EXPECT_THROW(require_format(false, "bad"), FormatError);
}

TEST(Error, HierarchyCatchableAsError) {
  try {
    throw IoError("disk on fire");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "disk on fire");
  }
}

TEST(Str, Printf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Str, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, TrimAndCase) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(999), "999 B");
  EXPECT_EQ(human_bytes(38000000000ull), "38 GB");
  EXPECT_EQ(human_bytes(6600000000ull), "6.6 GB");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ":"), "a:b:c");
  EXPECT_EQ(join({}, ":"), "");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Throughput, GbpsComputation) {
  EXPECT_DOUBLE_EQ(throughput_gbps(2000000000ull, 1.0), 2.0);
  EXPECT_EQ(throughput_gbps(100, 0.0), 0.0);
}

TEST(Cli, FlagForms) {
  // "--key value" consumes the next token, so bare flags must not precede
  // positionals; positionals go first (documented parser semantics).
  const char* argv[] = {"prog", "pos1", "--a=1", "--b", "2", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_int("b", 0), 2);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("a", 0.0), 1.0);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Env, FallbackBehaviour) {
  EXPECT_EQ(env_size("COSMO_TEST_UNSET_VAR", 17u), 17u);
  ::setenv("COSMO_TEST_SET_VAR", "64", 1);
  EXPECT_EQ(env_size("COSMO_TEST_SET_VAR", 17u), 64u);
  ::setenv("COSMO_TEST_BAD_VAR", "zzz", 1);
  EXPECT_EQ(env_size("COSMO_TEST_BAD_VAR", 17u), 17u);
  EXPECT_EQ(env_string("COSMO_TEST_UNSET_VAR", "x"), "x");
}

TEST(Dims, RankAndCount) {
  EXPECT_EQ(Dims::d1(10).rank(), 1);
  EXPECT_EQ(Dims::d2(4, 5).rank(), 2);
  EXPECT_EQ(Dims::d3(2, 3, 4).rank(), 3);
  EXPECT_EQ(Dims::d3(2, 3, 4).count(), 24u);
  EXPECT_EQ(Dims::d1(10).to_string(), "10");
  EXPECT_EQ(Dims::d3(2, 3, 4).to_string(), "2x3x4");
}

TEST(Dims, RowMajorIndexing) {
  const Dims d = Dims::d3(4, 3, 2);
  EXPECT_EQ(d.index(0, 0, 0), 0u);
  EXPECT_EQ(d.index(1, 0, 0), 1u);
  EXPECT_EQ(d.index(0, 1, 0), 4u);
  EXPECT_EQ(d.index(0, 0, 1), 12u);
  EXPECT_EQ(d.index(3, 2, 1), 23u);
}

TEST(Field, ConstructionAndReshape) {
  Field f("test", Dims::d1(6), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(f.bytes(), 24u);
  const Field g = f.reshaped(Dims::d3(2, 2, 2));
  EXPECT_EQ(g.data.size(), 8u);
  EXPECT_FLOAT_EQ(g.data[5], 6.0f);
  EXPECT_FLOAT_EQ(g.data[7], 0.0f);  // padding
  EXPECT_THROW(f.reshaped(Dims::d1(3)), InvalidArgument);
}

TEST(Field, SizeMismatchRejected) {
  EXPECT_THROW(Field("bad", Dims::d1(5), {1.0f, 2.0f}), InvalidArgument);
}

TEST(Field, ValueRange) {
  const std::vector<float> v = {3.0f, -1.0f, 7.5f};
  const auto [lo, hi] = value_range(v);
  EXPECT_FLOAT_EQ(lo, -1.0f);
  EXPECT_FLOAT_EQ(hi, 7.5f);
  EXPECT_THROW(value_range(std::span<const float>()), InvalidArgument);
}

}  // namespace
}  // namespace cosmo
