#include <gtest/gtest.h>

#include <cmath>

#include "gpu/device_compressor.hpp"
#include "gpu/sim.hpp"
#include "gpu/specs.hpp"
#include "random/rng.hpp"

namespace cosmo::gpu {
namespace {

TEST(Specs, TableIHasSevenGpus) {
  const auto& catalog = device_catalog();
  ASSERT_EQ(catalog.size(), 7u);
  EXPECT_EQ(catalog[0].name, "Nvidia RTX 2080Ti");
  EXPECT_EQ(catalog[1].name, "Nvidia Tesla V100");
  EXPECT_EQ(catalog.back().architecture, "Kepler 2.0");
}

TEST(Specs, V100MatchesPaperRow) {
  const auto& v100 = find_device("V100");
  EXPECT_EQ(v100.shaders, 5120);
  EXPECT_DOUBLE_EQ(v100.memory_gb, 16.0);
  EXPECT_DOUBLE_EQ(v100.peak_fp32_tflops, 14.0);
  EXPECT_DOUBLE_EQ(v100.memory_bw_gbps, 900.0);
  EXPECT_EQ(v100.architecture, "Volta");
}

TEST(Specs, LookupIsCaseInsensitiveSubstring) {
  EXPECT_EQ(find_device("titan v").name, "Nvidia Titan V");
  EXPECT_EQ(find_device("2080").name, "Nvidia RTX 2080Ti");
  EXPECT_THROW(find_device("A100"), InvalidArgument);
}

TEST(Specs, FormatTable1MentionsEveryGpu) {
  const std::string table = format_table1();
  for (const auto& d : device_catalog()) {
    EXPECT_NE(table.find(d.name), std::string::npos) << d.name;
  }
}

TEST(Specs, EvaluationCpuIsXeon6148) {
  const CpuSpec cpu = evaluation_cpu();
  EXPECT_EQ(cpu.cores, 20);
  EXPECT_NE(cpu.name.find("6148"), std::string::npos);
}

TEST(Sim, MemoryAccounting) {
  GpuSimulator sim(find_device("V100"));
  const BufferId a = sim.alloc(1000);
  const BufferId b = sim.alloc(2000);
  EXPECT_EQ(sim.used_bytes(), 3000u);
  sim.free(a);
  EXPECT_EQ(sim.used_bytes(), 2000u);
  sim.free(b);
  EXPECT_EQ(sim.used_bytes(), 0u);
  EXPECT_THROW(sim.free(a), InvalidArgument);  // double free
}

TEST(Sim, OversubscriptionRejected) {
  GpuSimulator sim(find_device("V100"));  // 16 GB
  EXPECT_THROW(sim.alloc(20e9), OutOfMemoryError);
  const BufferId a = sim.alloc(10e9);
  EXPECT_THROW(sim.alloc(10e9), OutOfMemoryError);
  sim.free(a);
  EXPECT_NO_THROW(sim.alloc(10e9));
}

TEST(Sim, TransferTimeScalesWithBytes) {
  GpuSimulator sim(find_device("V100"));
  const double t1 = sim.transfer_seconds(100'000'000);
  const double t10 = sim.transfer_seconds(1'000'000'000);
  EXPECT_GT(t10, t1 * 8.0);
  EXPECT_LT(t10, t1 * 12.0);
  // 1 GB over ~12.5 GB/s PCIe: ~80 ms.
  EXPECT_NEAR(t10, 0.08, 0.02);
}

TEST(Sim, KernelRateDecreasesWithBitrate) {
  GpuSimulator sim(find_device("V100"));
  double prev = 1e300;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double gbps = sim.zfp_compress_kernel_gbps(rate);
    EXPECT_LT(gbps, prev);
    prev = gbps;
  }
}

TEST(Sim, KernelRatesOrderedByDeviceCapability) {
  // Fig. 9: newer / higher-bandwidth GPUs achieve higher kernel throughput.
  GpuSimulator v100(find_device("V100"));
  GpuSimulator p100(find_device("P100"));
  GpuSimulator k80(find_device("K80"));
  const double rate = 4.0;
  EXPECT_GT(v100.zfp_compress_kernel_gbps(rate), p100.zfp_compress_kernel_gbps(rate));
  EXPECT_GT(p100.zfp_compress_kernel_gbps(rate), k80.zfp_compress_kernel_gbps(rate));
}

TEST(Sim, SzPrototypeIsMuchSlowerThanZfp) {
  GpuSimulator sim(find_device("V100"));
  EXPECT_LT(sim.sz_kernel_gbps(), sim.zfp_compress_kernel_gbps(8.0) / 2.0);
}

TEST(Sim, BreakdownComponentsArePositiveAndMemcpyDominatesKernel) {
  GpuSimulator sim(find_device("V100"));
  const std::uint64_t raw = 500'000'000;        // 500 MB field
  const std::uint64_t compressed = raw / 8;     // 8x ratio
  const TimingBreakdown t =
      sim.model_compression(raw, compressed, sim.zfp_compress_kernel_gbps(4.0));
  EXPECT_GT(t.init, 0.0);
  EXPECT_GT(t.kernel, 0.0);
  EXPECT_GT(t.memcpy, 0.0);
  EXPECT_GT(t.free, 0.0);
  EXPECT_DOUBLE_EQ(t.total(), t.init + t.kernel + t.memcpy + t.free);
  // Paper observation: "the compression kernel time on GPU is relatively
  // low compared to the data transfer time between GPU and CPU".
  EXPECT_GT(t.memcpy, t.kernel);
}

TEST(Sim, CompressionBeatsRawTransferBaseline) {
  GpuSimulator sim(find_device("V100"));
  const std::uint64_t raw = 500'000'000;
  const TimingBreakdown t =
      sim.model_compression(raw, raw / 10, sim.zfp_compress_kernel_gbps(3.2));
  EXPECT_LT(t.total(), sim.baseline_transfer_seconds(raw));
}

TEST(Sim, HigherBitrateMeansLongerTotalTime) {
  // Fig. 7: time grows with bitrate (more compressed bytes to move).
  GpuSimulator sim(find_device("V100"));
  const std::uint64_t raw = 100'000'000;
  double prev = 0.0;
  for (const double rate : {1.0, 4.0, 16.0}) {
    const std::uint64_t compressed = static_cast<std::uint64_t>(raw * rate / 32.0);
    const TimingBreakdown t =
        sim.model_compression(raw, compressed, sim.zfp_compress_kernel_gbps(rate));
    EXPECT_GT(t.total(), prev);
    prev = t.total();
  }
}

TEST(Sim, MeasureWithWarmupCollectsStats) {
  GpuSimulator sim(find_device("V100"));
  int calls = 0;
  const RunningStats stats = measure_with_warmup([&] {
    ++calls;
    return sim.transfer_seconds(10'000'000);
  });
  EXPECT_EQ(calls, 20);  // 10 warmups + 10 measured
  EXPECT_EQ(stats.count(), 10u);
  EXPECT_GT(stats.mean(), 0.0);
  // "all the standard deviation values are relatively negligible".
  EXPECT_LT(stats.stddev() / stats.mean(), 0.05);
}

TEST(DeviceCompressor, CuZfpRoundTripWithTiming) {
  GpuSimulator sim(find_device("V100"));
  CuZfpDevice device(sim);
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(151);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  const auto c = device.compress(data, dims, 8.0);
  EXPECT_GT(c.kernel_gbps, 0.0);
  EXPECT_GT(c.timing.total(), 0.0);
  const auto d = device.decompress(c.bytes);
  EXPECT_EQ(d.dims, dims);
  EXPECT_EQ(d.values.size(), data.size());
  EXPECT_TRUE(CuZfpDevice::throughput_supported());
}

TEST(DeviceCompressor, GpuSzAbsRoundTripWithinBound) {
  GpuSimulator sim(find_device("V100"));
  GpuSzDevice device(sim);
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(152);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(0.0, 100.0));
  const auto c = device.compress_abs(data, dims, 0.5);
  const auto d = device.decompress(c.bytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::fabs(d.values[i] - data[i]), 0.5 * (1 + 1e-9));
  }
  EXPECT_FALSE(GpuSzDevice::throughput_supported());
}

TEST(DeviceCompressor, GpuSzPwrelDispatchOnDecompress) {
  GpuSimulator sim(find_device("V100"));
  GpuSzDevice device(sim);
  const Dims dims = Dims::d3(8, 8, 8);
  Rng rng(153);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(1.0, 1000.0));
  const auto c = device.compress_pwrel(data, dims, 0.05);
  const auto d = device.decompress(c.bytes);  // must auto-detect PW_REL stream
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::fabs(d.values[i] - data[i]) / data[i], 0.05 * (1 + 1e-6));
  }
}

TEST(DeviceCompressor, GpuSzRejects1d) {
  GpuSimulator sim(find_device("V100"));
  GpuSzDevice device(sim);
  const std::vector<float> data(64, 1.0f);
  EXPECT_THROW(device.compress_abs(data, Dims::d1(64), 0.1), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::gpu
