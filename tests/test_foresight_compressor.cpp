#include <gtest/gtest.h>

#include <cmath>

#include "foresight/compressor.hpp"
#include "random/rng.hpp"

namespace cosmo::foresight {
namespace {

Field smooth_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Field f("field", dims);
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    f.data[i] = static_cast<float>(100.0 * std::sin(0.01 * static_cast<double>(i)) +
                                   rng.normal());
  }
  return f;
}

TEST(Registry, AllCompressorsAvailable) {
  const auto names = available_compressors();
  ASSERT_EQ(names.size(), 7u);  // the paper's five plus fz-cpu / fz-gpu
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  for (const auto& name : names) {
    const auto codec = make_compressor(name, &sim);
    EXPECT_EQ(codec->name(), name);
    EXPECT_FALSE(codec->supported_modes().empty());
  }
}

TEST(Registry, GpuCompressorsNeedSimulator) {
  EXPECT_THROW(make_compressor("gpu-sz", nullptr), InvalidArgument);
  EXPECT_THROW(make_compressor("cuzfp", nullptr), InvalidArgument);
  EXPECT_THROW(make_compressor("fz-gpu", nullptr), InvalidArgument);
  EXPECT_NO_THROW(make_compressor("sz-cpu", nullptr));
  EXPECT_NO_THROW(make_compressor("zfp-cpu", nullptr));
  EXPECT_NO_THROW(make_compressor("fz-cpu", nullptr));
  EXPECT_THROW(make_compressor("nonexistent", nullptr), InvalidArgument);
}

TEST(Config, LabelFormat) {
  EXPECT_EQ((CompressorConfig{"abs", 0.2}.label()), "abs=0.2");
  EXPECT_EQ((CompressorConfig{"rate", 4.0}.label()), "rate=4");
  EXPECT_EQ((CompressorConfig{"pw_rel", 0.01}.label()), "pw_rel=0.01");
}

TEST(Reshape, PaperDimensionConversion) {
  // (ceil(n/64), 8, 8) — the 2,097,152 x 8 x 8 layout at HACC scale.
  const Dims d = reshape_1d_to_3d(1073726359);
  EXPECT_EQ(d.ny, 8u);
  EXPECT_EQ(d.nz, 8u);
  EXPECT_GE(d.count(), 1073726359u);
  EXPECT_LT(d.count() - 1073726359u, 64u);  // padding below one row
  EXPECT_EQ(reshape_1d_to_3d(64).nx, 1u);
  EXPECT_EQ(reshape_1d_to_3d(65).nx, 2u);
}

TEST(Compressor, SzCpuAbsHonorsBound) {
  const auto codec = make_compressor("sz-cpu");
  const Field f = smooth_field(Dims::d3(16, 16, 16), 161);
  const RunOutput out = codec->run(f, {"abs", 0.05});
  ASSERT_EQ(out.reconstructed.size(), f.data.size());
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_LE(std::fabs(out.reconstructed[i] - f.data[i]), 0.05 * (1 + 1e-9));
  }
  EXPECT_FALSE(out.has_gpu_timing());
  EXPECT_GE(out.compress_seconds(), 0.0);
  EXPECT_TRUE(out.throughput_reportable);
}

TEST(Compressor, SzCpuPwrelMode) {
  const auto codec = make_compressor("sz-cpu");
  Field f = smooth_field(Dims::d3(8, 8, 8), 162);
  for (auto& v : f.data) v = std::fabs(v) + 1.0f;
  const RunOutput out = codec->run(f, {"pw_rel", 0.05});
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_LE(std::fabs(out.reconstructed[i] - f.data[i]) / f.data[i],
              0.05 * (1 + 1e-6));
  }
}

TEST(Compressor, ZfpCpuBothModes) {
  const auto codec = make_compressor("zfp-cpu");
  const Field f = smooth_field(Dims::d3(16, 16, 16), 163);
  const RunOutput rate_out = codec->run(f, {"rate", 8.0});
  EXPECT_LE(rate_out.bytes.size() * 8.0 / f.data.size(), 8.5);
  const RunOutput acc_out = codec->run(f, {"accuracy", 0.1});
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_LE(std::fabs(acc_out.reconstructed[i] - f.data[i]), 0.1);
  }
}

TEST(Compressor, UnsupportedModeRejected) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field f = smooth_field(Dims::d3(8, 8, 8), 164);
  EXPECT_THROW(make_compressor("cuzfp", &sim)->run(f, {"abs", 0.1}), InvalidArgument);
  EXPECT_THROW(make_compressor("gpu-sz", &sim)->run(f, {"rate", 4.0}), InvalidArgument);
  EXPECT_THROW(make_compressor("sz-cpu")->run(f, {"rate", 4.0}), InvalidArgument);
}

TEST(Compressor, GpuSzAuto3dConversionFor1d) {
  // The paper's procedure: 1-D HACC arrays are reshaped before GPU-SZ.
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("gpu-sz", &sim);
  const Field f = smooth_field(Dims::d1(10000), 165);
  const RunOutput out = codec->run(f, {"abs", 0.1});
  ASSERT_EQ(out.reconstructed.size(), f.data.size());  // padding dropped
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_LE(std::fabs(out.reconstructed[i] - f.data[i]), 0.1 * (1 + 1e-9));
  }
  EXPECT_TRUE(out.has_gpu_timing());
  EXPECT_FALSE(out.throughput_reportable);  // GPU-SZ prototype
}

TEST(Compressor, CuZfpProducesGpuTiming) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  const Field f = smooth_field(Dims::d3(16, 16, 16), 166);
  const RunOutput out = codec->run(f, {"rate", 4.0});
  EXPECT_TRUE(out.has_gpu_timing());
  EXPECT_TRUE(out.throughput_reportable);
  EXPECT_GT(out.gpu_compress().kernel, 0.0);
  EXPECT_GT(out.gpu_decompress().memcpy, 0.0);
  EXPECT_DOUBLE_EQ(out.compress_seconds(), out.gpu_compress().total());
}

TEST(Compressor, ZfpOmpMatchesZfpCpuQuality) {
  const auto omp = make_compressor("zfp-omp");
  const auto cpu = make_compressor("zfp-cpu");
  const Field f = smooth_field(Dims::d3(16, 16, 32), 168);
  const RunOutput omp_out = omp->run(f, {"rate", 8.0});
  const RunOutput cpu_out = cpu->run(f, {"rate", 8.0});
  ASSERT_EQ(omp_out.reconstructed.size(), f.data.size());
  double omp_rmse = 0.0, cpu_rmse = 0.0;
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    omp_rmse += std::pow(omp_out.reconstructed[i] - f.data[i], 2.0);
    cpu_rmse += std::pow(cpu_out.reconstructed[i] - f.data[i], 2.0);
  }
  EXPECT_NEAR(std::sqrt(omp_rmse), std::sqrt(cpu_rmse),
              std::sqrt(cpu_rmse) * 0.1 + 1e-6);
  // Accuracy mode holds its bound through the chunked path too.
  const RunOutput acc = omp->run(f, {"accuracy", 0.05});
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_LE(std::fabs(acc.reconstructed[i] - f.data[i]), 0.05);
  }
}

TEST(Compressor, CuZfp1dReshapeRoundTrip) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  const Field f = smooth_field(Dims::d1(5000), 167);
  const RunOutput out = codec->run(f, {"rate", 16.0});
  ASSERT_EQ(out.reconstructed.size(), f.data.size());
  double rmse = 0.0;
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    rmse += std::pow(out.reconstructed[i] - f.data[i], 2.0);
  }
  rmse = std::sqrt(rmse / static_cast<double>(f.data.size()));
  EXPECT_LT(rmse, 1.0);
}

}  // namespace
}  // namespace cosmo::foresight
