#include <gtest/gtest.h>

#include <cmath>

#include "analysis/decimation.hpp"
#include "analysis/stats.hpp"
#include "common/error.hpp"
#include "cosmo/nyx_sequence.hpp"
#include "sz/temporal.hpp"

namespace cosmo {
namespace {

NyxSequenceConfig small_sequence(std::size_t steps = 6) {
  NyxSequenceConfig config;
  config.base.dim = 16;
  config.steps = steps;
  return config;
}

double correlation(std::span<const float> a, std::span<const float> b) {
  return analysis::compare(a, b).pearson_r;
}

TEST(NyxSequence, AdjacentFramesStronglyCorrelated) {
  const auto frames = generate_nyx_delta_sequence(small_sequence(8));
  ASSERT_EQ(frames.size(), 8u);
  // Adjacent correlation ~ cos(0.08) ~ 0.997; far frames decorrelate more.
  const double adjacent = correlation(frames[0].data, frames[1].data);
  const double distant = correlation(frames[0].data, frames[7].data);
  EXPECT_GT(adjacent, 0.98);
  EXPECT_LT(distant, adjacent);
}

TEST(NyxSequence, GrowthIncreasesAmplitude) {
  auto config = small_sequence(6);
  config.growth_per_step = 0.1;
  const auto frames = generate_nyx_delta_sequence(config);
  auto rms = [](const Field& f) {
    double sum = 0.0;
    for (const float v : f.data) sum += static_cast<double>(v) * v;
    return std::sqrt(sum / static_cast<double>(f.data.size()));
  };
  EXPECT_GT(rms(frames.back()), rms(frames.front()) * 1.3);
}

TEST(NyxSequence, DensitySequenceStaysInRange) {
  const auto frames = generate_nyx_density_sequence(small_sequence(4));
  for (const auto& f : frames) {
    const auto [lo, hi] = value_range(f.view());
    EXPECT_GT(lo, 0.0f);
    EXPECT_LE(hi, 1e5f);
  }
}

// ---------- Temporal SZ ----------

TEST(SzTemporal, RoundTripHonorsBoundEveryFrame) {
  const auto frames = generate_nyx_density_sequence(small_sequence(5));
  sz::TemporalParams params;
  params.abs_error_bound = 0.5;
  const auto bytes = sz::compress_temporal(frames, params);
  const auto recon = sz::decompress_temporal(bytes);
  ASSERT_EQ(recon.size(), frames.size());
  for (std::size_t t = 0; t < frames.size(); ++t) {
    double max_err = 0.0;
    for (std::size_t i = 0; i < frames[t].data.size(); ++i) {
      max_err = std::max(max_err, std::fabs(static_cast<double>(frames[t].data[i]) -
                                            recon[t].data[i]));
    }
    EXPECT_LE(max_err, params.abs_error_bound * (1 + 1e-9)) << "frame " << t;
  }
}

TEST(SzTemporal, TemporalPredictionBeatsAllSpatialOnCoherentData) {
  auto config = small_sequence(6);
  config.rotation_per_step = 0.03;  // highly coherent cadence
  const auto frames = generate_nyx_density_sequence(config);

  sz::TemporalParams temporal;
  temporal.abs_error_bound = 0.5;
  sz::TemporalStats temporal_stats;
  sz::compress_temporal(frames, temporal, &temporal_stats);

  sz::TemporalParams all_spatial = temporal;
  all_spatial.key_interval = 1;  // every frame is a key frame
  sz::TemporalStats spatial_stats;
  sz::compress_temporal(frames, all_spatial, &spatial_stats);

  EXPECT_LT(temporal_stats.compressed_bytes, spatial_stats.compressed_bytes);
  EXPECT_EQ(temporal_stats.key_frames, 1u);
  EXPECT_EQ(spatial_stats.key_frames, frames.size());
}

TEST(SzTemporal, KeyIntervalInsertsKeyFrames) {
  const auto frames = generate_nyx_density_sequence(small_sequence(7));
  sz::TemporalParams params;
  params.abs_error_bound = 1.0;
  params.key_interval = 3;
  sz::TemporalStats stats;
  const auto bytes = sz::compress_temporal(frames, params, &stats);
  EXPECT_EQ(stats.key_frames, 3u);  // t = 0, 3, 6
  const auto recon = sz::decompress_temporal(bytes);
  EXPECT_EQ(recon.size(), frames.size());
}

TEST(SzTemporal, SingleFrameSequenceWorks) {
  const auto frames = generate_nyx_density_sequence(small_sequence(1));
  sz::TemporalParams params;
  params.abs_error_bound = 0.1;
  const auto recon = sz::decompress_temporal(sz::compress_temporal(frames, params));
  ASSERT_EQ(recon.size(), 1u);
}

TEST(SzTemporal, MismatchedFrameShapesRejected) {
  std::vector<Field> frames;
  frames.emplace_back("a", Dims::d3(4, 4, 4));
  frames.emplace_back("b", Dims::d3(8, 8, 8));
  sz::TemporalParams params;
  EXPECT_THROW(sz::compress_temporal(frames, params), InvalidArgument);
  EXPECT_THROW(sz::compress_temporal({}, params), InvalidArgument);
}

TEST(SzTemporal, CorruptStreamThrows) {
  const auto frames = generate_nyx_density_sequence(small_sequence(3));
  sz::TemporalParams params;
  params.abs_error_bound = 1.0;
  auto bytes = sz::compress_temporal(frames, params);
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW(sz::decompress_temporal(bytes), FormatError);
}

// ---------- Decimation baseline ----------

TEST(Decimation, KeepEveryOtherSnapshot) {
  const auto frames = generate_nyx_density_sequence(small_sequence(7));
  const auto result = analysis::decimate_and_reconstruct(frames, 2);
  ASSERT_EQ(result.reconstructed.size(), frames.size());
  EXPECT_EQ(result.kept_snapshots, 4u);  // 0, 2, 4, 6
  // Kept frames are exact.
  for (const std::size_t t : {0u, 2u, 4u, 6u}) {
    EXPECT_EQ(result.reconstructed[t].data, frames[t].data) << t;
  }
  // Interpolated frames are not exact but correlated.
  EXPECT_NE(result.reconstructed[1].data, frames[1].data);
  EXPECT_GT(correlation(result.reconstructed[1].data, frames[1].data), 0.9);
}

TEST(Decimation, LastFrameAlwaysKept) {
  const auto frames = generate_nyx_density_sequence(small_sequence(6));
  const auto result = analysis::decimate_and_reconstruct(frames, 4);
  // Kept: 0, 4, then 5 forced.
  EXPECT_EQ(result.kept_snapshots, 3u);
  EXPECT_EQ(result.reconstructed.back().data, frames.back().data);
}

TEST(Decimation, KeepEveryOneIsLossless) {
  const auto frames = generate_nyx_density_sequence(small_sequence(3));
  const auto result = analysis::decimate_and_reconstruct(frames, 1);
  EXPECT_EQ(result.kept_snapshots, 3u);
  EXPECT_DOUBLE_EQ(result.storage_ratio, 1.0);
  for (std::size_t t = 0; t < frames.size(); ++t) {
    EXPECT_EQ(result.reconstructed[t].data, frames[t].data);
  }
}

TEST(Decimation, CoarserDecimationDegradesPsnr) {
  auto config = small_sequence(9);
  config.rotation_per_step = 0.15;  // meaningful evolution between frames
  const auto frames = generate_nyx_density_sequence(config);
  const auto d2 = analysis::decimate_and_reconstruct(frames, 2);
  const auto d4 = analysis::decimate_and_reconstruct(frames, 4);
  const double psnr2 = analysis::sequence_mean_psnr(frames, d2.reconstructed);
  const double psnr4 = analysis::sequence_mean_psnr(frames, d4.reconstructed);
  EXPECT_GT(psnr2, psnr4);
  EXPECT_GT(d4.storage_ratio, d2.storage_ratio);
}

TEST(Decimation, InvalidArgsRejected) {
  EXPECT_THROW(analysis::decimate_and_reconstruct({}, 2), InvalidArgument);
  std::vector<Field> frames;
  frames.emplace_back("a", Dims::d3(4, 4, 4));
  EXPECT_THROW(analysis::decimate_and_reconstruct(frames, 0), InvalidArgument);
}

}  // namespace
}  // namespace cosmo
