#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "analysis/cic.hpp"
#include "random/rng.hpp"

namespace cosmo::analysis {
namespace {

TEST(Cic, MassConservation) {
  Rng rng(131);
  const std::size_t n = 5000;
  std::vector<float> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    y[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    z[i] = static_cast<float>(rng.uniform(0.0, 100.0));
  }
  const Field delta = cic_deposit(x, y, z, 100.0, 16);
  // delta has zero mean by construction (total mass conserved).
  double sum = 0.0;
  for (const float v : delta.data) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(delta.data.size()), 0.0, 1e-6);
}

TEST(Cic, UniformDistributionIsNearlyFlat) {
  Rng rng(132);
  const std::size_t n = 200000;
  std::vector<float> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 64.0));
    y[i] = static_cast<float>(rng.uniform(0.0, 64.0));
    z[i] = static_cast<float>(rng.uniform(0.0, 64.0));
  }
  const Field delta = cic_deposit(x, y, z, 64.0, 8);
  // ~390 particles per cell: relative fluctuations ~5%.
  for (const float v : delta.data) EXPECT_LT(std::fabs(v), 0.35f);
}

TEST(Cic, PointMassSpreadsOverEightCells) {
  // One particle centered in a cell corner region spreads with CIC weights.
  std::vector<float> x = {10.0f}, y = {10.0f}, z = {10.0f};
  const Field delta = cic_deposit(x, y, z, 64.0, 8);  // cell size 8
  double total = 0.0;
  std::size_t touched = 0;
  const double mean = 1.0 / static_cast<double>(delta.data.size());
  for (const float v : delta.data) {
    const double rho = (static_cast<double>(v) + 1.0) * mean;  // undo contrast
    total += rho;
    if (v > -0.999f) ++touched;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_LE(touched, 8u);
  EXPECT_GE(touched, 1u);
}

TEST(Cic, PeriodicWrappingAtBoxEdge) {
  // A particle at the box edge deposits into cells on both sides.
  std::vector<float> x = {63.9f}, y = {0.05f}, z = {32.0f};
  const Field delta = cic_deposit(x, y, z, 64.0, 8);
  double total = 0.0;
  const double mean = 1.0 / static_cast<double>(delta.data.size());
  for (const float v : delta.data) total += (static_cast<double>(v) + 1.0) * mean;
  EXPECT_NEAR(total, 1.0, 1e-6);  // nothing lost off the edge
}

TEST(Cic, ClusteredInputRaisesVariance) {
  Rng rng(133);
  const std::size_t n = 20000;
  std::vector<float> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Tight Gaussian blob at the center.
    x[i] = static_cast<float>(32.0 + rng.normal(0.0, 2.0));
    y[i] = static_cast<float>(32.0 + rng.normal(0.0, 2.0));
    z[i] = static_cast<float>(32.0 + rng.normal(0.0, 2.0));
  }
  const Field delta = cic_deposit(x, y, z, 64.0, 8);
  float max_delta = -1e30f;
  for (const float v : delta.data) max_delta = std::max(max_delta, v);
  EXPECT_GT(max_delta, 10.0f);  // strong over-density at the blob
}

TEST(Cic, InvalidInputsRejected) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(cic_deposit(a, b, a, 10.0, 4), InvalidArgument);
  EXPECT_THROW(cic_deposit(a, a, a, 0.0, 4), InvalidArgument);
  EXPECT_THROW(cic_deposit(a, a, a, 10.0, 1), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::analysis
