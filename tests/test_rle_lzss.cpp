#include <gtest/gtest.h>

#include "codec/lzss.hpp"
#include "codec/rle.hpp"
#include "common/error.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n, std::size_t alphabet) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_index(alphabet));
  return out;
}

// ---------- RLE ----------

TEST(Rle, RoundTripBasic) {
  const std::vector<std::uint8_t> input = {1, 1, 1, 1, 1, 2, 3, 3, 3, 3, 3, 3, 4};
  EXPECT_EQ(rle_decode(rle_encode(input)), input);
}

TEST(Rle, EmptyInput) {
  const std::vector<std::uint8_t> input;
  EXPECT_EQ(rle_decode(rle_encode(input)), input);
}

TEST(Rle, LongRunsCompress) {
  const std::vector<std::uint8_t> input(10000, 0);
  const auto encoded = rle_encode(input);
  EXPECT_LT(encoded.size(), 200u);
  EXPECT_EQ(rle_decode(encoded), input);
}

TEST(Rle, EscapeByteLiteralHandled) {
  const std::vector<std::uint8_t> input = {0xFF, 1, 0xFF, 0xFF, 2};
  EXPECT_EQ(rle_decode(rle_encode(input)), input);
}

TEST(Rle, RandomizedProperty) {
  Rng rng(21);
  for (int round = 0; round < 30; ++round) {
    const auto input = random_bytes(rng, rng.uniform_index(5000), 4);
    EXPECT_EQ(rle_decode(rle_encode(input)), input) << "round " << round;
  }
}

TEST(Rle, TruncatedEscapeThrows) {
  std::vector<std::uint8_t> bad = {0xFF, 5};
  EXPECT_THROW(rle_decode(bad), FormatError);
}

// ---------- LZSS ----------

TEST(Lzss, RoundTripText) {
  const std::string text =
      "abcabcabcabc the quick brown fox jumps over the lazy dog "
      "the quick brown fox jumps over the lazy dog";
  const std::vector<std::uint8_t> input(text.begin(), text.end());
  const auto encoded = lzss_encode(input);
  EXPECT_EQ(lzss_decode(encoded), input);
  EXPECT_LT(encoded.size(), input.size());
}

TEST(Lzss, EmptyInput) {
  const std::vector<std::uint8_t> input;
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, TinyInputsBelowMinMatch) {
  for (std::size_t n = 1; n <= 5; ++n) {
    const std::vector<std::uint8_t> input(n, 0xAB);
    EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
  }
}

TEST(Lzss, HighlyRepetitiveCompressesWell) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 4000; ++i) input.push_back(static_cast<std::uint8_t>(i % 16));
  const auto encoded = lzss_encode(input);
  EXPECT_EQ(lzss_decode(encoded), input);
  EXPECT_LT(encoded.size(), input.size() / 4);
}

TEST(Lzss, IncompressibleDataSurvives) {
  Rng rng(22);
  const auto input = random_bytes(rng, 20000, 256);
  const auto encoded = lzss_encode(input);
  EXPECT_EQ(lzss_decode(encoded), input);
  // Random bytes cost ~9 bits per literal; bounded expansion.
  EXPECT_LT(encoded.size(), input.size() * 9 / 8 + 64);
}

TEST(Lzss, OverlappingMatchesDecodeCorrectly) {
  // "aaaa..." forces matches that overlap their own output.
  const std::vector<std::uint8_t> input(1000, 'a');
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, LongRangeMatchWithinWindow) {
  Rng rng(23);
  auto block = random_bytes(rng, 800, 256);
  std::vector<std::uint8_t> input = block;
  input.insert(input.end(), 30000, 7);  // filler
  input.insert(input.end(), block.begin(), block.end());  // repeat within 64K window
  const auto encoded = lzss_encode(input);
  EXPECT_EQ(lzss_decode(encoded), input);
}

TEST(Lzss, RandomizedProperty) {
  Rng rng(24);
  for (int round = 0; round < 20; ++round) {
    const std::size_t alphabet = 1 + rng.uniform_index(255);
    const auto input = random_bytes(rng, rng.uniform_index(30000), alphabet);
    EXPECT_EQ(lzss_decode(lzss_encode(input)), input) << "round " << round;
  }
}

TEST(Lzss, BadMagicThrows) {
  std::vector<std::uint8_t> bad = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW(lzss_decode(bad), FormatError);
}

TEST(Lzss, TruncatedStreamThrows) {
  const std::vector<std::uint8_t> input(1000, 'x');
  auto encoded = lzss_encode(input);
  encoded.resize(13);  // magic + size survive, payload gone
  EXPECT_THROW(lzss_decode(encoded), FormatError);
}

}  // namespace
}  // namespace cosmo
