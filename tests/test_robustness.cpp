/// Failure-injection and cross-format property tests: every decoder must
/// reject foreign or damaged streams with a typed exception — never crash,
/// hang, or silently return garbage of the wrong shape.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/error.hpp"
#include "random/rng.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace cosmo {
namespace {

std::vector<float> test_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(dims.count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(30.0 * std::sin(0.1 * static_cast<double>(i)) +
                                rng.normal());
  }
  return out;
}

const Dims kDims = Dims::d3(12, 12, 12);

std::vector<std::uint8_t> sz_stream() {
  sz::Params params;
  params.abs_error_bound = 0.1;
  return sz::compress(test_field(kDims, 1), kDims, params);
}

std::vector<std::uint8_t> zfp_stream() {
  zfp::Params params;
  params.rate = 8.0;
  return zfp::compress(test_field(kDims, 2), kDims, params);
}

TEST(Robustness, CrossCodecStreamsRejected) {
  const auto sz_bytes = sz_stream();
  const auto zfp_bytes = zfp_stream();
  // Feeding one codec's stream to the other must throw, not misparse.
  EXPECT_THROW(zfp::decompress(sz_bytes), FormatError);
  EXPECT_THROW(sz::decompress_pwrel(sz_bytes), FormatError);   // ABS into PW_REL
  EXPECT_THROW(sz::decompress_pwrel(zfp_bytes), FormatError);
  // ZFP streams start with a magic SZ's one-byte flag check rejects.
  EXPECT_THROW(sz::decompress(zfp_bytes), Error);
}

TEST(Robustness, TruncationSweepSz) {
  const auto bytes = sz_stream();
  Rng rng(3);
  for (int round = 0; round < 40; ++round) {
    const std::size_t cut = 1 + rng.uniform_index(bytes.size() - 1);
    std::vector<std::uint8_t> damaged(bytes.begin(),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      const auto out = sz::decompress(damaged);
      // Decoding a truncated prefix may accidentally succeed only if it
      // still yields the correct element count.
      EXPECT_EQ(out.size(), kDims.count());
    } catch (const Error&) {
      // typed rejection is the expected path
    }
  }
}

TEST(Robustness, TruncationSweepZfp) {
  const auto bytes = zfp_stream();
  Rng rng(4);
  for (int round = 0; round < 40; ++round) {
    const std::size_t cut = 1 + rng.uniform_index(bytes.size() - 1);
    std::vector<std::uint8_t> damaged(bytes.begin(),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      const auto out = zfp::decompress(damaged);
      EXPECT_EQ(out.size(), kDims.count());
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, BitFlipSweepSz) {
  const auto bytes = sz_stream();
  Rng rng(5);
  for (int round = 0; round < 40; ++round) {
    auto damaged = bytes;
    damaged[rng.uniform_index(damaged.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    try {
      const auto out = sz::decompress(damaged);
      EXPECT_EQ(out.size(), kDims.count());  // payload damage only
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, BitFlipSweepHuffman) {
  std::vector<std::uint32_t> symbols;
  Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(64)));
  }
  const auto bytes = huffman_encode(symbols);
  for (int round = 0; round < 40; ++round) {
    auto damaged = bytes;
    damaged[rng.uniform_index(damaged.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    try {
      const auto out = huffman_decode(damaged);
      EXPECT_EQ(out.size(), symbols.size());  // count survives payload damage
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, BitFlipSweepLzss) {
  Rng rng(7);
  std::vector<std::uint8_t> input(20000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 5) % 31);
  }
  const auto bytes = lzss_encode(input);
  for (int round = 0; round < 40; ++round) {
    auto damaged = bytes;
    damaged[rng.uniform_index(damaged.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    try {
      const auto out = lzss_decode(damaged);
      EXPECT_EQ(out.size(), input.size());
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, GarbageBuffersRejectedEverywhere) {
  Rng rng(8);
  for (const std::size_t len : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_THROW(sz::decompress(garbage), Error) << len;
    EXPECT_THROW(zfp::decompress(garbage), Error) << len;
    EXPECT_THROW(sz::decompress_pwrel(garbage), Error) << len;
    EXPECT_THROW(huffman_decode(garbage), Error) << len;
    EXPECT_THROW(lzss_decode(garbage), Error) << len;
  }
}

TEST(Robustness, PwRelBoundSurvivesRoundTripAfterReencode) {
  // Compress, decompress, re-compress the reconstruction: the bound must
  // still hold against the *first* reconstruction (idempotency-style check
  // used when pipelines re-compress archived data).
  const auto data = test_field(kDims, 9);
  std::vector<float> positive(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    positive[i] = std::fabs(data[i]) + 1.0f;
  }
  sz::PwRelParams params;
  params.pw_rel_bound = 0.05;
  const auto first = sz::decompress_pwrel(sz::compress_pwrel(positive, kDims, params));
  const auto second = sz::decompress_pwrel(sz::compress_pwrel(first, kDims, params));
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_LE(std::fabs(second[i] - first[i]) / first[i], 0.05 * (1 + 1e-6));
  }
}

}  // namespace
}  // namespace cosmo
