#include <gtest/gtest.h>

#include "codec/bitstream.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter bw;
  const std::vector<bool> bits = {true, false, true, true, false, false, true};
  for (const bool b : bits) bw.put_bit(b);
  EXPECT_EQ(bw.bit_count(), bits.size());
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const bool b : bits) EXPECT_EQ(br.get_bit(), b);
}

TEST(BitStream, MultiBitFieldsRoundTrip) {
  BitWriter bw;
  bw.put(0x5, 3);
  bw.put(0xABCD, 16);
  bw.put(0xFFFFFFFFFFFFFFFFull, 64);
  bw.put(0, 0);  // zero-width write is a no-op
  bw.put(0x12345678, 31);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(3), 0x5u);
  EXPECT_EQ(br.get(16), 0xABCDu);
  EXPECT_EQ(br.get(64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(br.get(0), 0u);
  EXPECT_EQ(br.get(31), 0x12345678u);
}

TEST(BitStream, ValueMaskedToWidth) {
  BitWriter bw;
  bw.put(0xFF, 4);  // only low 4 bits kept
  bw.put(0x0, 4);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(4), 0xFu);
  EXPECT_EQ(br.get(4), 0x0u);
}

TEST(BitStream, WordBoundaryCrossing) {
  BitWriter bw;
  bw.put(1, 1);
  bw.put(0xDEADBEEFCAFEBABEull, 64);  // crosses the 64-bit word boundary
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(64), 0xDEADBEEFCAFEBABEull);
}

TEST(BitStream, RandomizedRoundTrip) {
  Rng rng(5);
  BitWriter bw;
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 2000; ++i) {
    const unsigned nbits = static_cast<unsigned>(rng.uniform_index(65));
    std::uint64_t value = rng.next_u64();
    if (nbits < 64) value &= (1ull << nbits) - 1;
    writes.emplace_back(value, nbits);
    bw.put(value, nbits);
  }
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const auto& [value, nbits] : writes) {
    EXPECT_EQ(br.get(nbits), value);
  }
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter bw;
  bw.put(0x7, 3);
  const auto bytes = bw.finish();  // padded to 1 byte
  BitReader br(bytes);
  EXPECT_EQ(br.get(8), 0x7u);
  EXPECT_THROW(br.get(1), FormatError);
}

TEST(BitStream, SeekRepositionsCursor) {
  BitWriter bw;
  bw.put(0xAA, 8);
  bw.put(0xBB, 8);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  br.seek(8);
  EXPECT_EQ(br.get(8), 0xBBu);
  br.seek(0);
  EXPECT_EQ(br.get(8), 0xAAu);
  EXPECT_THROW(br.seek(100), FormatError);
}

TEST(BitStream, PositionAndRemaining) {
  BitWriter bw;
  bw.put(0, 10);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.remaining(), 16u);  // padded to 2 bytes
  br.get(5);
  EXPECT_EQ(br.position(), 5u);
  EXPECT_EQ(br.remaining(), 11u);
}

TEST(BitStream, ClearResetsWriter) {
  BitWriter bw;
  bw.put(0xFFFF, 16);
  bw.clear();
  EXPECT_EQ(bw.bit_count(), 0u);
  EXPECT_TRUE(bw.finish().empty());
}

TEST(BitStream, WidthOver64Rejected) {
  BitWriter bw;
  EXPECT_THROW(bw.put(0, 65), InvalidArgument);
  const std::vector<std::uint8_t> bytes(16, 0);
  BitReader br(bytes);
  EXPECT_THROW(br.get(65), InvalidArgument);
}

}  // namespace
}  // namespace cosmo
