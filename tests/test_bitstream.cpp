#include <gtest/gtest.h>

#include "codec/bitstream.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter bw;
  const std::vector<bool> bits = {true, false, true, true, false, false, true};
  for (const bool b : bits) bw.put_bit(b);
  EXPECT_EQ(bw.bit_count(), bits.size());
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const bool b : bits) EXPECT_EQ(br.get_bit(), b);
}

TEST(BitStream, MultiBitFieldsRoundTrip) {
  BitWriter bw;
  bw.put(0x5, 3);
  bw.put(0xABCD, 16);
  bw.put(0xFFFFFFFFFFFFFFFFull, 64);
  bw.put(0, 0);  // zero-width write is a no-op
  bw.put(0x12345678, 31);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(3), 0x5u);
  EXPECT_EQ(br.get(16), 0xABCDu);
  EXPECT_EQ(br.get(64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(br.get(0), 0u);
  EXPECT_EQ(br.get(31), 0x12345678u);
}

TEST(BitStream, ValueMaskedToWidth) {
  BitWriter bw;
  bw.put(0xFF, 4);  // only low 4 bits kept
  bw.put(0x0, 4);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(4), 0xFu);
  EXPECT_EQ(br.get(4), 0x0u);
}

TEST(BitStream, WordBoundaryCrossing) {
  BitWriter bw;
  bw.put(1, 1);
  bw.put(0xDEADBEEFCAFEBABEull, 64);  // crosses the 64-bit word boundary
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(64), 0xDEADBEEFCAFEBABEull);
}

TEST(BitStream, RandomizedRoundTrip) {
  Rng rng(5);
  BitWriter bw;
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 2000; ++i) {
    const unsigned nbits = static_cast<unsigned>(rng.uniform_index(65));
    std::uint64_t value = rng.next_u64();
    if (nbits < 64) value &= (1ull << nbits) - 1;
    writes.emplace_back(value, nbits);
    bw.put(value, nbits);
  }
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const auto& [value, nbits] : writes) {
    EXPECT_EQ(br.get(nbits), value);
  }
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter bw;
  bw.put(0x7, 3);
  const auto bytes = bw.finish();  // padded to 1 byte
  BitReader br(bytes);
  EXPECT_EQ(br.get(8), 0x7u);
  EXPECT_THROW(br.get(1), FormatError);
}

TEST(BitStream, SeekRepositionsCursor) {
  BitWriter bw;
  bw.put(0xAA, 8);
  bw.put(0xBB, 8);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  br.seek(8);
  EXPECT_EQ(br.get(8), 0xBBu);
  br.seek(0);
  EXPECT_EQ(br.get(8), 0xAAu);
  EXPECT_THROW(br.seek(100), FormatError);
}

TEST(BitStream, PositionAndRemaining) {
  BitWriter bw;
  bw.put(0, 10);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.remaining(), 16u);  // padded to 2 bytes
  br.get(5);
  EXPECT_EQ(br.position(), 5u);
  EXPECT_EQ(br.remaining(), 11u);
}

TEST(BitStream, ClearResetsWriter) {
  BitWriter bw;
  bw.put(0xFFFF, 16);
  bw.clear();
  EXPECT_EQ(bw.bit_count(), 0u);
  EXPECT_TRUE(bw.finish().empty());
}

TEST(BitStream, WidthOver64Rejected) {
  BitWriter bw;
  EXPECT_THROW(bw.put(0, 65), InvalidArgument);
  const std::vector<std::uint8_t> bytes(16, 0);
  BitReader br(bytes);
  EXPECT_THROW(br.get(65), InvalidArgument);
}

TEST(BitStream, PeekDoesNotAdvance) {
  BitWriter bw;
  bw.put(0xABCDEF12u, 32);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.peek(16), br.peek(16));
  const std::uint64_t window = br.peek(16);
  EXPECT_EQ(br.position(), 0u);
  EXPECT_EQ(br.get(16), window);
  EXPECT_EQ(br.position(), 16u);
}

TEST(BitStream, PeekZeroPadsPastEnd) {
  BitWriter bw;
  bw.put(0x1F, 5);  // finish() pads to one byte: bits 5..7 are zero
  const auto bytes = bw.finish();
  BitReader br(bytes);
  br.get(3);
  // Only 5 bits remain in the stream; a wider peek must present the
  // missing bits as zero without reading out of bounds.
  EXPECT_EQ(br.peek(56), 0x3u);
  EXPECT_EQ(br.get(5), 0x3u);
  EXPECT_EQ(br.peek(40), 0u);  // fully exhausted: all-zero window
}

TEST(BitStream, SkipPastEndThrows) {
  BitWriter bw;
  bw.put(0xFFu, 8);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  br.skip(6);
  EXPECT_THROW(br.skip(3), FormatError);
  // The failed skip must not consume the two remaining bits.
  EXPECT_EQ(br.get(2), 0x3u);
}

TEST(BitStream, PeekSkipWidthLimits) {
  const std::vector<std::uint8_t> bytes(16, 0xA5);
  BitReader br(bytes);
  EXPECT_THROW(br.peek(0), InvalidArgument);
  EXPECT_THROW(br.peek(57), InvalidArgument);
  EXPECT_THROW(br.skip(57), InvalidArgument);
  br.skip(0);  // no-op, allowed
  EXPECT_EQ(br.position(), 0u);
  EXPECT_EQ(br.peek(56), br.get(56));
}

TEST(BitStream, WideReadPastEndLeavesCursorIntact) {
  BitWriter bw;
  bw.put(0xDEADBEEFu, 32);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  // 57..64-bit reads go through the slow path; a failed one must not
  // advance the cursor past bits it cannot deliver.
  EXPECT_THROW(br.get(64), FormatError);
  EXPECT_EQ(br.position(), 0u);
  EXPECT_EQ(br.get(32), 0xDEADBEEFu);
}

TEST(BitStream, PeekSkipMatchesGetRandomized) {
  Rng rng(77);
  BitWriter bw;
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 3000; ++i) {
    const unsigned nbits = 1 + static_cast<unsigned>(rng.uniform_index(64));
    const std::uint64_t value =
        rng.next_u64() & (nbits == 64 ? ~0ull : ((1ull << nbits) - 1));
    writes.emplace_back(value, nbits);
    bw.put(value, nbits);
  }
  const auto bytes = bw.finish();
  // Reader A uses get(); reader B re-reads every value via peek+skip,
  // splitting wide reads at 56 bits. Both must agree everywhere.
  BitReader a(bytes);
  BitReader b(bytes);
  for (const auto& [value, nbits] : writes) {
    EXPECT_EQ(a.get(nbits), value);
    std::uint64_t got = 0;
    unsigned done = 0;
    while (done < nbits) {
      const unsigned step = std::min(nbits - done, BitReader::kMaxPeekBits);
      got |= b.peek(step) << done;
      b.skip(step);
      done += step;
    }
    EXPECT_EQ(got, value);
    EXPECT_EQ(a.position(), b.position());
  }
}

}  // namespace
}  // namespace cosmo
