/// \file test_codec_fastpaths.cpp
/// \brief Safety and equivalence coverage for the single-core decode fast
/// paths: the table-driven Huffman decoder vs the canonical reference, the
/// batched ZFP group-test scan, slice-by-8 CRC32 vs the byte loop, and
/// malformed-stream behavior (truncation/corruption must throw FormatError,
/// never read out of bounds — run under check.sh --asan).
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "codec/bitstream.hpp"
#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/thread_pool.hpp"
#include "fz/fz.hpp"
#include "io/crc32.hpp"
#include "random/rng.hpp"
#include "zfp/block_codec.hpp"
#include "zfp/zfp.hpp"

namespace cosmo {
namespace {

/// Symbol streams covering the fast-table sweet spot (short codes), the
/// fallback (long codes from wide alphabets), and the degenerate cases.
std::vector<std::vector<std::uint32_t>> fastpath_symbol_cases() {
  std::vector<std::vector<std::uint32_t>> cases;
  Rng rng(42);
  // Near-radius quantization-code cluster (the SZ production shape).
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 20000; ++i) {
      s.push_back(32768 + static_cast<std::uint32_t>(rng.uniform_index(9)) - 4);
    }
    cases.push_back(std::move(s));
  }
  // Uniform over 8192 symbols: code lengths ~13 > kFastBits, so nearly
  // every symbol takes the canonical fallback.
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 30000; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.uniform_index(8192)));
    }
    cases.push_back(std::move(s));
  }
  // Skewed mix: a dominant 1-bit symbol plus a long tail, so table hits and
  // fallback interleave within one stream.
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 30000; ++i) {
      s.push_back(rng.uniform() < 0.6
                      ? 7u
                      : static_cast<std::uint32_t>(rng.uniform_index(5000)));
    }
    cases.push_back(std::move(s));
  }
  cases.push_back({});      // empty
  cases.push_back({1234});  // single occurrence
  return cases;
}

TEST(CodecFastPaths, HuffmanTableMatchesReferenceDecoder) {
  for (const auto& symbols : fastpath_symbol_cases()) {
    const auto single = huffman_encode(symbols);
    EXPECT_EQ(huffman_decode(single), symbols);
    EXPECT_EQ(huffman_decode_reference(single), symbols);

    const auto chunked = huffman_encode_chunked(symbols, nullptr, 4096);
    EXPECT_EQ(huffman_decode(chunked), symbols);
    EXPECT_EQ(huffman_decode_reference(chunked), symbols);
  }
}

TEST(CodecFastPaths, HuffmanLongCodesExerciseFallback) {
  // Fibonacci-like frequencies force a deep Huffman tree: max code length
  // well past the 12-bit table, so decode must mix table hits and fallback.
  std::vector<std::uint32_t> symbols;
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  for (std::uint32_t sym = 0; sym < 24; ++sym) {
    for (std::uint64_t i = 0; i < a && symbols.size() < 60000; ++i) {
      symbols.push_back(sym * 31u);
    }
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  std::vector<std::uint64_t> freqs(24 * 31, 0);
  for (const auto s : symbols) ++freqs[s];
  unsigned max_len = 0;
  for (const unsigned len : huffman_code_lengths(freqs)) max_len = std::max(max_len, len);
  ASSERT_GT(max_len, 12u) << "distribution no longer exercises the fallback";

  const auto encoded = huffman_encode(symbols);
  EXPECT_EQ(huffman_decode(encoded), symbols);
  EXPECT_EQ(huffman_decode_reference(encoded), symbols);
}

TEST(CodecFastPaths, HuffmanDecodeWrapperUsesPool) {
  std::vector<std::uint32_t> symbols;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(300)));
  }
  const auto chunked = huffman_encode_chunked(symbols, nullptr, 4096);
  ASSERT_TRUE(is_chunked_huffman(chunked));
  ThreadPool pool(3);
  EXPECT_EQ(huffman_decode(chunked, &pool), symbols);
  EXPECT_EQ(huffman_decode(chunked, &pool), huffman_decode(chunked, nullptr));
}

TEST(CodecFastPaths, TruncatedHuffmanThrowsEverywhere) {
  std::vector<std::uint32_t> symbols;
  Rng rng(10);
  for (int i = 0; i < 8000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(500)));
  }
  for (const bool chunked : {false, true}) {
    const auto encoded =
        chunked ? huffman_encode_chunked(symbols, nullptr, 1024) : huffman_encode(symbols);
    // Cut in the header, in the chunk table, and at several payload depths.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{10}, encoded.size() / 4, encoded.size() / 2,
          encoded.size() - 3}) {
      auto cut = encoded;
      cut.resize(keep);
      EXPECT_THROW(huffman_decode(cut), FormatError) << "chunked=" << chunked << " keep=" << keep;
      EXPECT_THROW(huffman_decode_reference(cut), FormatError)
          << "chunked=" << chunked << " keep=" << keep;
    }
  }
}

TEST(CodecFastPaths, OverfullHuffmanHeaderRejected) {
  // Hand-built single-stream container whose header claims three 1-bit
  // codes — an overfull (Kraft > 1) length set no encoder can emit. The
  // canonical rebuild must reject it instead of decoding garbage.
  BitWriter bw;
  bw.put(0x48554646u, 32);  // "HUFF"
  bw.put(10, 64);           // symbol count
  bw.put(3, 32);            // alphabet size
  for (std::uint32_t sym = 0; sym < 3; ++sym) {
    bw.put(sym, 32);
    bw.put(1, 6);  // all length 1
  }
  bw.put(0, 64);  // payload filler (content irrelevant; the header must throw)
  const auto bytes = bw.finish();
  EXPECT_THROW(huffman_decode(bytes), FormatError);
  EXPECT_THROW(huffman_decode_reference(bytes), FormatError);
}

TEST(CodecFastPaths, TruncatedLzssThrows) {
  std::vector<std::uint8_t> input(50000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i * 7) % 37);
  }
  for (const bool chunked : {false, true}) {
    const auto encoded =
        chunked ? lzss_encode_chunked(input, nullptr, 8192) : lzss_encode(input);
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{11}, encoded.size() / 3, encoded.size() - 2}) {
      auto cut = encoded;
      cut.resize(keep);
      EXPECT_THROW(lzss_decode(cut), FormatError) << "chunked=" << chunked << " keep=" << keep;
    }
  }
}

TEST(CodecFastPaths, TruncatedZfpThrows) {
  const Dims dims = Dims::d3(16, 16, 16);
  std::vector<float> data(dims.count());
  Rng rng(11);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  zfp::Params params;
  params.rate = 8.0;
  const auto encoded = zfp::compress(data, dims, params);
  for (const std::size_t keep :
       {std::size_t{4}, encoded.size() / 4, encoded.size() / 2, encoded.size() - 1}) {
    auto cut = encoded;
    cut.resize(keep);
    EXPECT_THROW(zfp::decompress(cut), FormatError) << "keep=" << keep;
  }
}

TEST(CodecFastPaths, ZfpDecodeIntsMirrorsEncodeBudget) {
  // The batched group-test scan must consume exactly the bits the per-bit
  // coder wrote, for any budget — including budgets that cut a block off
  // mid-plane. Equal return values pin the consumed-bit accounting.
  Rng rng(12);
  for (int round = 0; round < 60; ++round) {
    std::array<zfp::UInt, 64> block{};
    const unsigned magnitude = 1 + static_cast<unsigned>(rng.uniform_index(30));
    for (auto& v : block) {
      v = static_cast<zfp::UInt>(rng.next_u64() & ((1ull << magnitude) - 1));
    }
    const unsigned maxprec = 1 + static_cast<unsigned>(rng.uniform_index(zfp::kIntPrec));
    const unsigned maxbits = 1 + static_cast<unsigned>(rng.uniform_index(900));

    BitWriter bw;
    const unsigned wrote = zfp::encode_ints(bw, maxbits, maxprec,
                                            std::span<const zfp::UInt>(block.data(), 64));
    const auto bytes = bw.finish();
    BitReader br(bytes);
    std::array<zfp::UInt, 64> decoded{};
    const unsigned read = zfp::decode_ints(br, maxbits, maxprec,
                                           std::span<zfp::UInt>(decoded.data(), 64));
    EXPECT_EQ(wrote, read) << "round " << round;
    EXPECT_EQ(br.position(), wrote) << "round " << round;
  }
}

TEST(CodecFastPaths, BitshuffleMatchesScalarReference) {
  // Reference: the naive per-bit transpose the plane kernel implements in
  // byte-oriented form. Any divergence is a stream format break.
  auto reference_shuffle = [](std::span<const std::uint16_t> codes) {
    const std::size_t plane_bytes = (codes.size() + 7) / 8;
    std::vector<std::uint8_t> planes(16 * plane_bytes, 0);
    for (std::size_t bit = 0; bit < 16; ++bit) {
      for (std::size_t k = 0; k < codes.size(); ++k) {
        if ((codes[k] >> bit) & 1u) {
          planes[bit * plane_bytes + (k >> 3)] |=
              static_cast<std::uint8_t>(1u << (k & 7));
        }
      }
    }
    return planes;
  };

  Rng rng(14);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u, 4099u}) {
    std::vector<std::uint16_t> codes(n);
    for (auto& c : codes) c = static_cast<std::uint16_t>(rng.next_u64());
    const auto planes = fz::bitshuffle(codes);
    EXPECT_EQ(planes, reference_shuffle(codes)) << "n=" << n;
    EXPECT_EQ(fz::bitunshuffle(planes, n), codes) << "n=" << n;
  }
}

TEST(CodecFastPaths, ZeroRunExtremes) {
  // All-zero input: bitmap only, no payload groups.
  const std::vector<std::uint8_t> zeros(1024, 0);
  const auto zenc = fz::zero_run_encode(zeros);
  EXPECT_LT(zenc.size(), zeros.size() / 4);
  EXPECT_EQ(fz::zero_run_decode(zenc), zeros);

  // All-nonzero input: every group stored, bounded overhead.
  std::vector<std::uint8_t> dense(1024);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<std::uint8_t>(i | 1u);
  }
  const auto denc = fz::zero_run_encode(dense);
  EXPECT_GE(denc.size(), dense.size());
  EXPECT_LT(denc.size(), dense.size() + dense.size() / 8 + 64);
  EXPECT_EQ(fz::zero_run_decode(denc), dense);

  // Lengths that don't fill the last 16-byte group round-trip too.
  for (const std::size_t n : {0u, 1u, 15u, 16u, 17u, 100u}) {
    std::vector<std::uint8_t> buf(n, 0xAB);
    EXPECT_EQ(fz::zero_run_decode(fz::zero_run_encode(buf)), buf) << "n=" << n;
  }
}

TEST(CodecFastPaths, TruncatedFzThrows) {
  const Dims dims = Dims::d3(16, 16, 16);
  std::vector<float> data(dims.count());
  Rng rng(15);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  fz::Params params;
  params.abs_error_bound = 0.05;
  const auto encoded = fz::compress(data, dims, params);
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{20}, encoded.size() / 4, encoded.size() / 2,
        encoded.size() - 1}) {
    auto cut = encoded;
    cut.resize(keep);
    EXPECT_THROW(fz::decompress(cut), FormatError) << "keep=" << keep;
  }
  // Wrong magic must be rejected before any size fields are trusted.
  auto bad = encoded;
  bad[0] ^= 0xFFu;
  EXPECT_THROW(fz::decompress(bad), FormatError);
}

TEST(CodecFastPaths, Crc32MatchesByteAtATimeReference) {
  // Reference: the classic one-table byte loop the slice-by-8 kernel
  // replaced. Any divergence is a checksum format break.
  auto reference_crc = [](const std::uint8_t* p, std::size_t n, std::uint32_t seed) {
    std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
  };

  Rng rng(13);
  std::vector<std::uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());

  // Sizes straddling the 8-byte kernel boundary, plus unaligned starts.
  for (const std::size_t size : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 1000u, 4096u}) {
    for (const std::size_t offset : {0u, 1u, 5u}) {
      if (offset + size > buf.size()) continue;
      EXPECT_EQ(crc32(buf.data() + offset, size), reference_crc(buf.data() + offset, size, 0))
          << "size=" << size << " offset=" << offset;
    }
  }

  // Incremental (seeded) computation splits anywhere in the buffer.
  const std::uint32_t whole = crc32(buf.data(), buf.size());
  for (const std::size_t split : {1u, 7u, 8u, 100u, 4000u}) {
    const std::uint32_t part = crc32(buf.data() + split, buf.size() - split,
                                     crc32(buf.data(), split));
    EXPECT_EQ(part, whole) << "split=" << split;
  }
  EXPECT_EQ(whole, reference_crc(buf.data(), buf.size(), 0));
}

}  // namespace
}  // namespace cosmo
