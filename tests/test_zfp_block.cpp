#include <gtest/gtest.h>

#include <array>
#include <climits>
#include <cmath>

#include "codec/bitstream.hpp"
#include "random/rng.hpp"
#include "zfp/block_codec.hpp"

namespace cosmo::zfp {
namespace {

TEST(ZfpLift, InverseUndoesForwardWithinRoundoff) {
  // The ZFP lifting steps use arithmetic right shifts, so each step can
  // drop one low-order bit when a sum is odd: the pair is inverse only up
  // to a few units in the last place — negligible against 30-bit
  // significands, and exactly the behavior of the reference transform.
  Rng rng(81);
  for (int round = 0; round < 200; ++round) {
    std::array<Int, 4> values{};
    for (auto& v : values) {
      // Stay within the headroom the transform assumes (|x| < 2^30).
      v = static_cast<Int>(rng.uniform(-5e8, 5e8));
    }
    auto work = values;
    fwd_lift(work.data(), 1);
    inv_lift(work.data(), 1);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(std::abs(work[i] - values[i]), 8) << "round " << round << " i " << i;
    }
  }
}

TEST(ZfpLift, ExactWhenLowBitsClear) {
  // With the low 4 bits clear no shift drops information: exact inverse.
  Rng rng(811);
  for (int round = 0; round < 200; ++round) {
    std::array<Int, 4> values{};
    for (auto& v : values) v = static_cast<Int>(rng.uniform(-5e7, 5e7)) << 4;
    auto work = values;
    fwd_lift(work.data(), 1);
    inv_lift(work.data(), 1);
    EXPECT_EQ(work, values) << "round " << round;
  }
}

TEST(ZfpLift, StridedAccess) {
  std::array<Int, 16> values{};
  Rng rng(82);
  for (auto& v : values) v = static_cast<Int>(rng.uniform(-1e6, 1e6)) << 4;
  auto work = values;
  fwd_lift(work.data() + 2, 4);  // column 2 of a 4x4 block
  inv_lift(work.data() + 2, 4);
  EXPECT_EQ(work, values);
  // Untouched lanes must be untouched.
  EXPECT_EQ(work[0], values[0]);
  EXPECT_EQ(work[3], values[3]);
}

TEST(ZfpLift, ConstantBlockConcentratesInDc) {
  std::array<Int, 4> values = {1024, 1024, 1024, 1024};
  fwd_lift(values.data(), 1);
  EXPECT_EQ(values[0], 1024);  // DC term keeps the average
  EXPECT_EQ(values[1], 0);
  EXPECT_EQ(values[2], 0);
  EXPECT_EQ(values[3], 0);
}

TEST(ZfpNegabinary, RoundTrip) {
  Rng rng(83);
  for (int round = 0; round < 1000; ++round) {
    const Int x = static_cast<Int>(rng.next_u64());
    EXPECT_EQ(uint2int(int2uint(x)), x);
  }
  EXPECT_EQ(uint2int(int2uint(0)), 0);
  EXPECT_EQ(uint2int(int2uint(INT32_MIN)), INT32_MIN);
  EXPECT_EQ(uint2int(int2uint(INT32_MAX)), INT32_MAX);
}

TEST(ZfpNegabinary, SmallMagnitudeHasSmallCode) {
  // Negabinary maps small |x| to small codes, which the bit-plane coder
  // relies on: high planes stay zero.
  EXPECT_LT(int2uint(1), 16u);
  EXPECT_LT(int2uint(-1), 16u);
  EXPECT_LT(int2uint(5), 64u);
  EXPECT_GT(int2uint(1 << 20), 1u << 19);
}

TEST(ZfpPermutation, IsAPermutation) {
  for (const int rank : {1, 2, 3}) {
    const auto perm = sequency_permutation(rank);
    const std::size_t n = rank == 1 ? 4u : rank == 2 ? 16u : 64u;
    ASSERT_EQ(perm.size(), n);
    std::vector<bool> seen(n, false);
    for (const auto p : perm) {
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(ZfpPermutation, OrderedByTotalSequency) {
  const auto perm = sequency_permutation(3);
  auto degree = [](std::uint16_t idx) {
    return (idx & 3u) + ((idx >> 2) & 3u) + ((idx >> 4) & 3u);
  };
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(degree(perm[i - 1]), degree(perm[i]));
  }
  EXPECT_EQ(perm[0], 0);  // DC first
}

TEST(ZfpInts, RoundTripUnbounded) {
  Rng rng(84);
  std::array<UInt, 64> data{};
  for (auto& v : data) v = static_cast<UInt>(rng.next_u64());
  BitWriter bw;
  const unsigned maxbits = 64 * 32 + 64;
  const unsigned written = encode_ints(bw, maxbits, kIntPrec, data);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  std::array<UInt, 64> out{};
  const unsigned read = decode_ints(br, maxbits, kIntPrec, out);
  EXPECT_EQ(written, read);
  EXPECT_EQ(out, data);
}

TEST(ZfpInts, TruncatedBudgetIsPrefixDecodable) {
  Rng rng(85);
  std::array<UInt, 64> data{};
  for (auto& v : data) v = static_cast<UInt>(rng.next_u64() >> 8);
  double prev_err = -1.0;
  for (const unsigned budget : {64u, 256u, 1024u, 4096u}) {
    BitWriter bw;
    const unsigned written = encode_ints(bw, budget, kIntPrec, data);
    EXPECT_LE(written, budget);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    std::array<UInt, 64> out{};
    const unsigned read = decode_ints(br, budget, kIntPrec, out);
    // The decoder mirrors the encoder's control flow exactly.
    EXPECT_EQ(read, written) << "budget " << budget;
    // Error (in two's complement after negabinary unmapping) shrinks as the
    // embedded stream is extended. Plane truncation in negabinary is not
    // strictly monotone point-wise, so allow a factor-2 slack between
    // adjacent budgets; the trend must still be strongly downward.
    double max_err = 0.0;
    for (std::size_t i = 0; i < 64; ++i) {
      max_err = std::max(max_err, std::fabs(static_cast<double>(uint2int(out[i])) -
                                            static_cast<double>(uint2int(data[i]))));
    }
    if (prev_err >= 0.0) EXPECT_LE(max_err, prev_err * 2.0) << "budget " << budget;
    prev_err = max_err;
  }
  // With a full budget the reconstruction is exact.
  EXPECT_EQ(prev_err, 0.0);
}

TEST(ZfpInts, ZeroDataCostsAlmostNothing) {
  std::array<UInt, 64> data{};
  BitWriter bw;
  const unsigned written = encode_ints(bw, 4096, kIntPrec, data);
  // One group-test bit per plane.
  EXPECT_LE(written, kIntPrec);
}

TEST(ZfpBlockFloat, RoundTripHighRate) {
  Rng rng(86);
  for (const int rank : {1, 2, 3}) {
    const std::size_t n = rank == 1 ? 4u : rank == 2 ? 16u : 64u;
    std::vector<float> block(n);
    for (auto& v : block) v = static_cast<float>(rng.uniform(-100.0, 100.0));
    BitWriter bw;
    const unsigned maxbits = static_cast<unsigned>(n) * 32 + 16;
    encode_block_float(bw, block, rank, maxbits, kIntPrec, INT_MIN, false);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    std::vector<float> out(n);
    decode_block_float(br, out, rank, maxbits, kIntPrec, INT_MIN, false);
    for (std::size_t i = 0; i < n; ++i) {
      // 30-bit fixed point over a ~2^7 exponent: tiny relative error.
      EXPECT_NEAR(out[i], block[i], 1e-4) << "rank " << rank << " i " << i;
    }
  }
}

TEST(ZfpBlockFloat, AllZeroBlockIsOneBit) {
  std::vector<float> block(64, 0.0f);
  BitWriter bw;
  const unsigned used = encode_block_float(bw, block, 3, 4096, kIntPrec, INT_MIN, false);
  EXPECT_EQ(used, 1u);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  std::vector<float> out(64, 1.0f);
  decode_block_float(br, out, 3, 4096, kIntPrec, INT_MIN, false);
  for (const float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(ZfpBlockFloat, FixedRatePadsExactly) {
  Rng rng(87);
  std::vector<float> block(64);
  for (auto& v : block) v = static_cast<float>(rng.normal());
  for (const unsigned maxbits : {64u, 256u, 512u}) {
    BitWriter bw;
    const unsigned used =
        encode_block_float(bw, block, 3, maxbits, kIntPrec, INT_MIN, true);
    EXPECT_EQ(used, maxbits);
    EXPECT_EQ(bw.bit_count(), maxbits);
  }
}

TEST(ZfpBlockFloat, PrecisionForBehaviour) {
  EXPECT_EQ(precision_for(INT_MIN, 32, 0, 3), 0u);
  EXPECT_EQ(precision_for(10, 32, INT_MIN, 3), 32u);  // unbounded accuracy
  EXPECT_EQ(precision_for(0, 32, 0, 3), 8u);          // 2*(3+1) guard bits
  EXPECT_EQ(precision_for(0, 32, 10, 3), 0u);         // tolerance above data
}

TEST(ZfpBlockFloat, ExtremeExponentsSurvive) {
  std::vector<float> block(64, 0.0f);
  block[0] = 1e30f;
  block[1] = -1e30f;
  block[2] = 1e-30f;
  BitWriter bw;
  const unsigned maxbits = 64 * 32 + 16;
  encode_block_float(bw, block, 3, maxbits, kIntPrec, INT_MIN, false);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  std::vector<float> out(64);
  decode_block_float(br, out, 3, maxbits, kIntPrec, INT_MIN, false);
  EXPECT_NEAR(out[0] / 1e30f, 1.0f, 1e-4);
  EXPECT_NEAR(out[1] / -1e30f, 1.0f, 1e-4);
  // 1e-30 is 60 orders below the block max: lost to exponent alignment.
  EXPECT_NEAR(out[2], 0.0f, 1e24);
}

}  // namespace
}  // namespace cosmo::zfp
