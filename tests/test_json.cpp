#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "json/json.hpp"

namespace cosmo::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedStructure) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(Json, StringEscapes) {
  const Value v = parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, UnicodeEscapeMultibyte) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");   // e-acute
  EXPECT_EQ(parse(R"("€")").as_string(), "\xE2\x82\xAC");  // euro sign
}

TEST(Json, RoundTripThroughDump) {
  const std::string src = R"({"arr":[1,2.5,"s"],"flag":false,"nested":{"k":null}})";
  const Value v = parse(src);
  const Value again = parse(v.dump());
  EXPECT_EQ(v, again);
}

TEST(Json, PrettyPrintParsesBack) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":3}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(Json, NumberFormattingRoundTrips) {
  for (const double d : {0.1, 1e-20, 123456789.123456, -0.0, 3.0}) {
    const Value v(d);
    EXPECT_DOUBLE_EQ(parse(v.dump()).as_number(), d);
  }
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(parse(""), FormatError);
  EXPECT_THROW(parse("{"), FormatError);
  EXPECT_THROW(parse("[1,]"), FormatError);
  EXPECT_THROW(parse("{\"a\" 1}"), FormatError);
  EXPECT_THROW(parse("tru"), FormatError);
  EXPECT_THROW(parse("\"unterminated"), FormatError);
  EXPECT_THROW(parse("1 2"), FormatError);
  EXPECT_THROW(parse("{1: 2}"), FormatError);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), FormatError);
  EXPECT_THROW(v.as_string(), FormatError);
  EXPECT_THROW(parse("{}").at("missing"), FormatError);
}

TEST(Json, GetWithFallback) {
  const Value v = parse(R"({"x": 5, "s": "str", "b": true})");
  EXPECT_DOUBLE_EQ(v.get("x", 0.0), 5.0);
  EXPECT_DOUBLE_EQ(v.get("y", 7.0), 7.0);
  EXPECT_EQ(v.get("s", std::string("d")), "str");
  EXPECT_EQ(v.get("t", std::string("d")), "d");
  EXPECT_TRUE(v.get("b", false));
  EXPECT_TRUE(v.get("c", true));
  EXPECT_TRUE(v.contains("x"));
  EXPECT_FALSE(v.contains("zzz"));
}

TEST(Json, ParseFile) {
  const std::string path = ::testing::TempDir() + "/cosmo_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"key": [1, 2, 3]})";
  }
  const Value v = parse_file(path);
  EXPECT_EQ(v.at("key").as_array().size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(parse_file("/nonexistent/nope.json"), IoError);
}

TEST(Json, BuildProgrammatically) {
  Object obj;
  obj["name"] = Value("run");
  obj["values"] = Value(Array{Value(1.0), Value(2.0)});
  const Value v(obj);
  EXPECT_EQ(v.dump(), R"({"name":"run","values":[1,2]})");
}

}  // namespace
}  // namespace cosmo::json
