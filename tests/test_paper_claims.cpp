/// End-to-end regression tests for the paper's headline qualitative claims:
/// if any of these fail, the reproduction no longer reproduces the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fof.hpp"
#include "analysis/halo_stats.hpp"
#include "analysis/power_spectrum.hpp"
#include "common/error.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"

namespace cosmo {
namespace {

struct Fixture {
  io::Container nyx;
  gpu::GpuSimulator sim{gpu::find_device("Tesla V100")};

  Fixture() {
    NyxConfig config;
    config.dim = 32;
    nyx = generate_nyx(config);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// PSNR of GPU-SZ at (approximately) the bitrate cuZFP produces at `rate`.
double sz_psnr_at_matched_bitrate(const Field& field, double target_bitrate) {
  auto& f = fixture();
  const auto codec = foresight::make_compressor("gpu-sz", &f.sim);
  foresight::CBench bench;
  const auto [lo, hi] = value_range(field.view());
  const double range = static_cast<double>(hi) - lo;
  // Bisection on the error bound until the bitrate lands near the target.
  double frac_lo = 1e-8, frac_hi = 1e-1;
  foresight::CBenchResult best;
  for (int iter = 0; iter < 18; ++iter) {
    const double frac = std::sqrt(frac_lo * frac_hi);
    const auto r = bench.run_one(field, *codec, {"abs", range * frac});
    best = r;
    if (std::fabs(r.bit_rate - target_bitrate) < 0.15) break;
    if (r.bit_rate > target_bitrate) frac_lo = frac;
    else frac_hi = frac;
  }
  return best.distortion.psnr_db;
}

TEST(PaperClaims, SzBeatsZfpAtEqualBitrateOnSmoothNyxFields) {
  // Paper Fig. 4a: "GPU-SZ generally has higher PSNR than cuZFP with the
  // same bitrate on the Nyx dataset."
  auto& f = fixture();
  const auto cuzfp = foresight::make_compressor("cuzfp", &f.sim);
  foresight::CBench bench;
  for (const char* name : {"baryon_density", "temperature"}) {
    const Field& field = f.nyx.find(name).field;
    const auto zfp_result = bench.run_one(field, *cuzfp, {"rate", 6.0});
    const double sz_psnr = sz_psnr_at_matched_bitrate(field, zfp_result.bit_rate);
    EXPECT_GT(sz_psnr, zfp_result.distortion.psnr_db + 3.0) << name;
  }
}

TEST(PaperClaims, VelocityComponentsCompressNearlyIdentically) {
  // Paper Fig. 4: "their rate-distortion curves for velocity fields are
  // almost identical."
  auto& f = fixture();
  const auto cuzfp = foresight::make_compressor("cuzfp", &f.sim);
  foresight::CBench bench;
  std::vector<double> psnrs;
  for (const char* name : {"velocity_x", "velocity_y", "velocity_z"}) {
    psnrs.push_back(
        bench.run_one(f.nyx.find(name).field, *cuzfp, {"rate", 6.0}).distortion.psnr_db);
  }
  EXPECT_NEAR(psnrs[0], psnrs[1], 1.5);
  EXPECT_NEAR(psnrs[1], psnrs[2], 1.5);
}

TEST(PaperClaims, HigherPsnrDoesNotImplyAcceptablePowerSpectrum) {
  // Paper Section V-B: a GPU-SZ config with *higher* PSNR than an accepted
  // cuZFP config can still fail the pk test. We verify the weaker invariant
  // behind it: PSNR ordering and pk-deviation ordering can disagree across
  // codecs at some configuration pair.
  auto& f = fixture();
  const Field& field = f.nyx.find("baryon_density").field;
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &f.sim);
  const auto cuzfp = foresight::make_compressor("cuzfp", &f.sim);
  foresight::CBench bench({.keep_reconstructed = true, .dataset_name = "claims"});

  struct Point {
    double psnr, pk_dev;
  };
  std::vector<Point> points;
  for (const auto& [codec, cfg] :
       std::vector<std::pair<foresight::Compressor*, foresight::CompressorConfig>>{
           {gpu_sz.get(), {"abs", 30.0}},
           {gpu_sz.get(), {"abs", 5.0}},
           {cuzfp.get(), {"rate", 4.0}},
           {cuzfp.get(), {"rate", 8.0}}}) {
    const auto r = bench.run_one(field, *codec, cfg);
    const auto pk = analysis::pk_ratio(field.data, r.reconstructed, field.dims, 0.5);
    points.push_back({r.distortion.psnr_db, pk.max_deviation});
  }
  // At least one pair must be discordant (higher PSNR but worse pk).
  bool discordant = false;
  for (const auto& a : points) {
    for (const auto& b : points) {
      if (a.psnr > b.psnr + 0.5 && a.pk_dev > b.pk_dev * 1.05) discordant = true;
    }
  }
  EXPECT_TRUE(discordant);
}

TEST(PaperClaims, TightPositionBoundsPreserveHalosLooseOnesDoNot) {
  // Paper Fig. 6 in one assertion pair.
  HaccConfig config;
  config.particles = 25000;
  config.halo_count = 15;
  const auto hacc = generate_hacc(config);
  auto& f = fixture();
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &f.sim);
  foresight::CBench bench({.keep_reconstructed = true, .dataset_name = "claims"});

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;
  const auto& x = hacc.find("x").field;
  const auto& y = hacc.find("y").field;
  const auto& z = hacc.find("z").field;
  const auto original = analysis::fof(x.data, y.data, z.data, fof_params);
  ASSERT_GT(original.halos.size(), 5u);

  auto deviation_at = [&](double bound) {
    const foresight::CompressorConfig cfg{"abs", bound};
    const auto rx = bench.run_one(x, *gpu_sz, cfg);
    const auto ry = bench.run_one(y, *gpu_sz, cfg);
    const auto rz = bench.run_one(z, *gpu_sz, cfg);
    const auto recon =
        analysis::fof(rx.reconstructed, ry.reconstructed, rz.reconstructed, fof_params);
    if (recon.halos.empty()) return 1.0;
    return analysis::compare_halo_catalogs(original.halos, recon.halos, 1.0)
        .max_ratio_deviation;
  };
  EXPECT_LE(deviation_at(0.005), 0.05);  // paper's accepted bound
  EXPECT_GT(deviation_at(4.0), 0.2);     // bound >> linking length breaks halos
}

TEST(PaperClaims, GpuOverheadFarBelowCpuAtPaperScale) {
  // Paper Fig. 8 / Section V-C: GPU compression including PCIe transfer is
  // far cheaper than the multicore CPU path.
  auto& f = fixture();
  const std::uint64_t field_bytes = 512ull * 512 * 512 * 4;
  const double gpu_seconds =
      f.sim.model_compression(field_bytes, field_bytes / 8,
                              f.sim.zfp_compress_kernel_gbps(4.0))
          .total();
  // Modeled 20-core ZFP at an optimistic 2 GB/s.
  const double cpu_seconds = static_cast<double>(field_bytes) / 2e9;
  EXPECT_LT(gpu_seconds * 10.0, cpu_seconds);
}

TEST(PaperClaims, ThroughputFallsMonotonicallyWithBitrate) {
  // Paper Fig. 10.
  auto& f = fixture();
  double prev = 1e300;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const std::uint64_t raw = 256ull << 20;
    const auto cbytes = static_cast<std::uint64_t>(raw * rate / 32.0);
    const double seconds =
        f.sim.model_compression(raw, cbytes, f.sim.zfp_compress_kernel_gbps(rate)).total();
    const double gbps = static_cast<double>(raw) / seconds / 1e9;
    EXPECT_LT(gbps, prev) << rate;
    prev = gbps;
  }
}

}  // namespace
}  // namespace cosmo
