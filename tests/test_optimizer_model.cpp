#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "foresight/optimizer_model.hpp"

namespace cosmo::foresight {
namespace {

// ---------- mode aggressiveness ----------

TEST(OptimizerModel, ModeAggressivenessDirection) {
  EXPECT_TRUE(mode_loosens_with_larger_value("abs"));
  EXPECT_TRUE(mode_loosens_with_larger_value("pw_rel"));
  EXPECT_TRUE(mode_loosens_with_larger_value("accuracy"));
  EXPECT_FALSE(mode_loosens_with_larger_value("rate"));
  EXPECT_FALSE(mode_loosens_with_larger_value("precision"));
  EXPECT_THROW(mode_loosens_with_larger_value("bogus"), InvalidArgument);
}

TEST(OptimizerModel, AggressivenessOrderAbsAscending) {
  const std::vector<CompressorConfig> configs = {
      {"abs", 0.5}, {"abs", 0.01}, {"abs", 0.1}};
  const auto order = aggressiveness_order(configs);
  // Least aggressive (smallest bound) first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(OptimizerModel, AggressivenessOrderRateDescending) {
  const std::vector<CompressorConfig> configs = {
      {"rate", 4.0}, {"rate", 16.0}, {"rate", 8.0}};
  const auto order = aggressiveness_order(configs);
  // Least aggressive = biggest bit budget first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(OptimizerModel, AggressivenessOrderStableOnTies) {
  const std::vector<CompressorConfig> configs = {
      {"abs", 0.1}, {"abs", 0.1}, {"abs", 0.1}};
  const auto order = aggressiveness_order(configs);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(OptimizerModel, AggressivenessOrderRejectsMixedModes) {
  const std::vector<CompressorConfig> configs = {{"abs", 0.1}, {"rate", 8.0}};
  EXPECT_THROW(aggressiveness_order(configs), InvalidArgument);
}

// ---------- probe placement ----------

TEST(OptimizerModel, ProbePositionsAlwaysIncludeEndpoints) {
  for (const std::size_t n : {2u, 3u, 7u, 24u, 100u}) {
    for (const std::size_t probes : {0u, 2u, 3u, 5u, 200u}) {
      const auto pos = probe_positions(n, probes);
      ASSERT_GE(pos.size(), 2u) << n << " " << probes;
      EXPECT_EQ(pos.front(), 0u);
      EXPECT_EQ(pos.back(), n - 1);
      // Sorted, deduplicated, in range.
      for (std::size_t i = 1; i < pos.size(); ++i) {
        EXPECT_LT(pos[i - 1], pos[i]);
      }
      EXPECT_LE(pos.size(), std::min<std::size_t>(n, std::max<std::size_t>(probes, 2)));
    }
  }
}

TEST(OptimizerModel, ProbePositionsDegenerateSizes) {
  EXPECT_TRUE(probe_positions(0, 3).empty());
  EXPECT_EQ(probe_positions(1, 3), (std::vector<std::size_t>{0}));
  EXPECT_EQ(probe_positions(2, 5), (std::vector<std::size_t>{0, 1}));
}

TEST(OptimizerModel, ProbePositionsSpreadInterior) {
  const auto pos = probe_positions(28, 3);
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 0u);
  // Middle probe lands near the center of the lattice.
  EXPECT_NEAR(static_cast<double>(pos[1]), 13.5, 1.0);
  EXPECT_EQ(pos[2], 27u);
}

// ---------- rate-quality surrogate ----------

TEST(OptimizerModel, SurrogateInterpolatesPowerLawExactly) {
  // ratio = 4 * value^0.5 is a straight line in log-log space, so the
  // log-log interpolation through two points recovers interior values.
  RateQualityModel model;
  model.add_point(1.0, 4.0, 0.0);
  model.add_point(100.0, 40.0, 0.0);
  EXPECT_NEAR(model.predict_ratio(10.0), 4.0 * std::sqrt(10.0), 1e-9);
}

TEST(OptimizerModel, SurrogateClampsOutsideRange) {
  RateQualityModel model;
  model.add_point(0.1, 2.0, 0.001);
  model.add_point(1.0, 8.0, 0.02);
  EXPECT_DOUBLE_EQ(model.predict_ratio(1e-6), 2.0);
  EXPECT_DOUBLE_EQ(model.predict_ratio(1e6), 8.0);
  EXPECT_DOUBLE_EQ(model.predict_deviation(1e-6), 0.001);
  EXPECT_DOUBLE_EQ(model.predict_deviation(1e6), 0.02);
}

TEST(OptimizerModel, SurrogateDeviationInterpolatesAndFloorsAtZero) {
  RateQualityModel model;
  model.add_point(1.0, 2.0, 0.0);
  model.add_point(4.0, 4.0, 0.04);
  const double mid = model.predict_deviation(2.0);  // halfway in log(value)
  EXPECT_NEAR(mid, 0.02, 1e-9);
  EXPECT_GE(model.predict_deviation(1.0), 0.0);
}

TEST(OptimizerModel, SurrogateDuplicateValueKeepsLatest) {
  RateQualityModel model;
  model.add_point(1.0, 2.0, 0.1);
  model.add_point(1.0, 6.0, 0.3);
  EXPECT_EQ(model.points(), 1u);
  EXPECT_DOUBLE_EQ(model.predict_ratio(1.0), 6.0);
  EXPECT_DOUBLE_EQ(model.predict_deviation(1.0), 0.3);
}

TEST(OptimizerModel, SurrogateRejectsNonPositiveValue) {
  RateQualityModel model;
  EXPECT_THROW(model.add_point(0.0, 2.0, 0.0), InvalidArgument);
  EXPECT_THROW(model.add_point(-1.0, 2.0, 0.0), InvalidArgument);
}

// ---------- bisection ----------

TEST(OptimizerModel, BisectConvergesInLogSteps) {
  // Simulated frontier at position 17 of 28 (positions <= 17 acceptable).
  std::size_t lo = 0, hi = 27, steps = 0;
  for (std::size_t mid = bisect_next(lo, hi); mid != kBisectDone;
       mid = bisect_next(lo, hi)) {
    ++steps;
    ASSERT_GT(mid, lo);
    ASSERT_LT(mid, hi);
    if (mid <= 17) {
      lo = mid;
    } else {
      hi = mid;
    }
    ASSERT_LE(steps, 6u);  // ceil(log2(27)) bounds the search
  }
  EXPECT_EQ(lo, 17u);
  EXPECT_EQ(hi, 18u);
}

TEST(OptimizerModel, BisectClosedBracketIsDone) {
  EXPECT_EQ(bisect_next(3, 4), kBisectDone);
  EXPECT_EQ(bisect_next(0, 1), kBisectDone);
  EXPECT_EQ(bisect_next(2, 7), 4u);  // midpoint
}

}  // namespace
}  // namespace cosmo::foresight
