#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "random/rng.hpp"
#include "zfp/chunked.hpp"

namespace cosmo::zfp {
namespace {

std::vector<float> smooth_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(dims.count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(40.0 * std::sin(0.05 * static_cast<double>(i)) +
                                rng.normal());
  }
  return out;
}

double rmse(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double e = static_cast<double>(a[i]) - b[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

TEST(ZfpChunked, RoundTripSequential) {
  const Dims dims = Dims::d3(16, 16, 32);
  const auto data = smooth_field(dims, 11);
  Params params;
  params.rate = 12.0;
  const auto bytes = compress_chunked(data, dims, params, nullptr, 4);
  Dims out_dims;
  const auto recon = decompress_chunked(bytes, nullptr, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_LT(rmse(data, recon), 0.5);
}

TEST(ZfpChunked, ParallelMatchesSequentialBitExactly) {
  const Dims dims = Dims::d3(16, 16, 32);
  const auto data = smooth_field(dims, 12);
  Params params;
  params.rate = 8.0;
  ThreadPool pool(4);
  const auto sequential = compress_chunked(data, dims, params, nullptr, 4);
  const auto parallel = compress_chunked(data, dims, params, &pool, 4);
  EXPECT_EQ(sequential, parallel);
  EXPECT_EQ(decompress_chunked(sequential, nullptr),
            decompress_chunked(parallel, &pool));
}

TEST(ZfpChunked, MatchesUnchunkedQuality) {
  const Dims dims = Dims::d3(16, 16, 32);
  const auto data = smooth_field(dims, 13);
  Params params;
  params.rate = 8.0;
  const auto chunked = compress_chunked(data, dims, params, nullptr, 4);
  const auto whole = compress(data, dims, params);
  const double rmse_chunked = rmse(data, decompress_chunked(chunked, nullptr));
  const double rmse_whole = rmse(data, decompress(whole));
  // Chunk boundaries are 4-aligned, so quality is identical up to tiny
  // per-chunk header effects.
  EXPECT_NEAR(rmse_chunked, rmse_whole, rmse_whole * 0.1 + 1e-6);
  // Overhead: a handful of per-chunk headers only.
  EXPECT_LT(chunked.size(), whole.size() + 64 * 4 + 128);
}

TEST(ZfpChunked, WorksAcrossRanks) {
  for (const int rank : {1, 2, 3}) {
    Dims dims;
    if (rank == 1) dims = Dims::d1(4096);
    else if (rank == 2) dims = Dims::d2(64, 48);
    else dims = Dims::d3(12, 12, 20);
    const auto data = smooth_field(dims, 14 + static_cast<std::uint64_t>(rank));
    Params params;
    params.rate = 16.0;
    const auto bytes = compress_chunked(data, dims, params, nullptr, 3);
    const auto recon = decompress_chunked(bytes, nullptr);
    ASSERT_EQ(recon.size(), data.size()) << "rank " << rank;
    EXPECT_LT(rmse(data, recon), 0.2) << "rank " << rank;
  }
}

TEST(ZfpChunked, MoreChunksThanSlabsClamped) {
  const Dims dims = Dims::d3(8, 8, 8);  // only 2 slabs of 4 along z
  const auto data = smooth_field(dims, 17);
  Params params;
  params.rate = 8.0;
  Stats stats;
  const auto bytes = compress_chunked(data, dims, params, nullptr, 100, &stats);
  EXPECT_LE(stats.total_blocks, 2u);
  EXPECT_EQ(decompress_chunked(bytes, nullptr).size(), data.size());
}

TEST(ZfpChunked, FixedAccuracyModeSupported) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field(dims, 18);
  Params params;
  params.mode = Mode::kFixedAccuracy;
  params.tolerance = 0.1;
  const auto recon = decompress_chunked(compress_chunked(data, dims, params, nullptr, 4),
                                        nullptr);
  double max_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(data[i]) - recon[i]));
  }
  EXPECT_LE(max_err, 0.1);
}

TEST(ZfpChunked, CorruptStreamThrows) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = smooth_field(dims, 19);
  Params params;
  params.rate = 8.0;
  auto bytes = compress_chunked(data, dims, params, nullptr, 2);
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(decompress_chunked(bytes, nullptr), FormatError);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decompress_chunked(bytes, nullptr), FormatError);
}

}  // namespace
}  // namespace cosmo::zfp
