#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/fft.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

constexpr double kTol = 1e-9;

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(31);
  for (const std::size_t n : {2u, 4u, 8u, 32u, 128u}) {
    std::vector<cplx> data(n);
    for (auto& x : data) x = cplx(rng.normal(), rng.normal());
    auto fast = data;
    fft_1d(fast, /*inverse=*/false);
    const auto slow = dft_reference(data, /*inverse=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-8) << "n=" << n << " i=" << i;
      EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-8);
    }
  }
}

TEST(Fft, InverseRecoversInput1d) {
  Rng rng(32);
  std::vector<cplx> data(256);
  for (auto& x : data) x = cplx(rng.normal(), rng.normal());
  auto work = data;
  fft_1d(work, false);
  fft_1d(work, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(work[i].real(), data[i].real(), kTol);
    EXPECT_NEAR(work[i].imag(), data[i].imag(), kTol);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(tone * i) /
                         static_cast<double>(n);
    data[i] = cplx(std::cos(phase), 0.0);
  }
  fft_1d(data, false);
  // cos splits into bins +tone and -tone with amplitude n/2 each.
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(data[k]);
    if (k == tone || k == n - tone) {
      EXPECT_NEAR(mag, n / 2.0, 1e-8);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(33);
  const std::size_t n = 512;
  std::vector<cplx> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = cplx(rng.normal(), rng.normal());
    time_energy += std::norm(x);
  }
  fft_1d(data, false);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(Fft, LinearityHolds) {
  Rng rng(34);
  const std::size_t n = 64;
  std::vector<cplx> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = cplx(rng.normal(), 0.0);
    b[i] = cplx(rng.normal(), 0.0);
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  fft_1d(a, false);
  fft_1d(b, false);
  fft_1d(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx expected = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expected.real(), 1e-8);
    EXPECT_NEAR(sum[i].imag(), expected.imag(), 1e-8);
  }
}

TEST(Fft, NonPow2Rejected) {
  std::vector<cplx> data(6);
  EXPECT_THROW(fft_1d(data, false), InvalidArgument);
}

TEST(Fft3d, InverseRecoversInput) {
  Rng rng(35);
  const Dims dims = Dims::d3(8, 4, 16);
  std::vector<cplx> data(dims.count());
  for (auto& x : data) x = cplx(rng.normal(), rng.normal());
  auto work = data;
  fft_3d(work, dims, false);
  fft_3d(work, dims, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(work[i].real(), data[i].real(), kTol);
    EXPECT_NEAR(work[i].imag(), data[i].imag(), kTol);
  }
}

TEST(Fft3d, PlaneWaveLandsInOneMode) {
  const Dims dims = Dims::d3(8, 8, 8);
  std::vector<cplx> data(dims.count());
  const std::size_t kx = 2, ky = 1, kz = 3;
  for (std::size_t z = 0; z < 8; ++z) {
    for (std::size_t y = 0; y < 8; ++y) {
      for (std::size_t x = 0; x < 8; ++x) {
        const double phase = 2.0 * std::numbers::pi *
                             (static_cast<double>(kx * x + ky * y + kz * z)) / 8.0;
        data[dims.index(x, y, z)] = cplx(std::cos(phase), std::sin(phase));
      }
    }
  }
  fft_3d(data, dims, false);
  for (std::size_t z = 0; z < 8; ++z) {
    for (std::size_t y = 0; y < 8; ++y) {
      for (std::size_t x = 0; x < 8; ++x) {
        const double mag = std::abs(data[dims.index(x, y, z)]);
        if (x == kx && y == ky && z == kz) {
          EXPECT_NEAR(mag, static_cast<double>(dims.count()), 1e-6);
        } else {
          EXPECT_NEAR(mag, 0.0, 1e-6);
        }
      }
    }
  }
}

TEST(Fft3d, RealHelperMatchesComplexPath) {
  Rng rng(36);
  const Dims dims = Dims::d3(4, 4, 4);
  std::vector<float> real_data(dims.count());
  std::vector<cplx> complex_data(dims.count());
  for (std::size_t i = 0; i < real_data.size(); ++i) {
    real_data[i] = static_cast<float>(rng.normal());
    complex_data[i] = cplx(real_data[i], 0.0);
  }
  const auto from_real = fft_3d_real(real_data, dims);
  fft_3d(complex_data, dims, false);
  for (std::size_t i = 0; i < complex_data.size(); ++i) {
    EXPECT_NEAR(from_real[i].real(), complex_data[i].real(), 1e-9);
    EXPECT_NEAR(from_real[i].imag(), complex_data[i].imag(), 1e-9);
  }
}

TEST(Fft3d, SizeMismatchRejected) {
  std::vector<cplx> data(7);
  EXPECT_THROW(fft_3d(data, Dims::d3(2, 2, 2), false), InvalidArgument);
}

}  // namespace
}  // namespace cosmo
