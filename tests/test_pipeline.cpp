#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cosmo/nyx_synth.hpp"
#include "foresight/pipeline.hpp"

namespace cosmo::foresight {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

json::Value nyx_config(const std::string& out_dir) {
  return json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "nyx", "dim": 16, "seed": 42},
    "gpu": "Tesla V100",
    "runs": [
      {"compressor": "cuzfp", "fields": ["baryon_density", "velocity_x"],
       "configs": [{"mode": "rate", "value": 4}, {"mode": "rate", "value": 8}]},
      {"compressor": "gpu-sz", "fields": ["baryon_density"],
       "configs": [{"mode": "abs", "value": 1.0}]}
    ],
    "analysis": {"power_spectrum": true},
    "cinema": true
  })");
}

TEST(Pipeline, EndToEndNyxRun) {
  const std::string out_dir = temp_dir("pipeline_nyx");
  const PipelineSummary summary = run_pipeline(nyx_config(out_dir));
  EXPECT_TRUE(summary.workflow_ok);
  // 2 fields x 2 configs + 1 field x 1 config = 5 results.
  EXPECT_EQ(summary.results.size(), 5u);
  // Power spectrum deviations computed for every 3-D result.
  EXPECT_EQ(summary.pk_deviation.size(), 5u);
  for (const auto& [key, dev] : summary.pk_deviation) {
    EXPECT_GE(dev, 0.0) << key;
  }
  // Cinema artifacts on disk.
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/data.csv"));
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/rate_distortion.svg"));
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/index.html"));
  std::filesystem::remove_all(out_dir);
}

TEST(Pipeline, HaccRunWithHaloAnalysis) {
  const std::string out_dir = temp_dir("pipeline_hacc");
  const json::Value config = json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "hacc", "particles": 8000, "seed": 7, "halo_count": 8},
    "gpu": "Tesla V100",
    "runs": [
      {"compressor": "sz-cpu", "fields": ["x", "y", "z"],
       "configs": [{"mode": "abs", "value": 0.005}]}
    ],
    "analysis": {"halo_finder": true, "linking_length": 1.2, "min_members": 15},
    "cinema": false
  })");
  const PipelineSummary summary = run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok);
  EXPECT_EQ(summary.results.size(), 3u);
  ASSERT_EQ(summary.halo_deviation.size(), 1u);
  // Tiny position bound: halo structure preserved.
  EXPECT_LT(summary.halo_deviation.begin()->second, 0.05);
  std::filesystem::remove_all(out_dir);
}

TEST(Pipeline, SsimAnalysisStage) {
  const std::string out_dir = temp_dir("pipeline_ssim");
  const json::Value config = json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "nyx", "dim": 16},
    "runs": [
      {"compressor": "zfp-cpu", "fields": ["temperature"],
       "configs": [{"mode": "rate", "value": 4}, {"mode": "rate", "value": 16}]}
    ],
    "analysis": {"ssim": true}
  })");
  const PipelineSummary summary = run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok);
  ASSERT_EQ(summary.ssim.size(), 2u);
  double low = 0.0, high = 0.0;
  for (const auto& [key, value] : summary.ssim) {
    if (key.find("rate=4") != std::string::npos) low = value;
    if (key.find("rate=16") != std::string::npos) high = value;
  }
  EXPECT_GT(high, low);  // more bits -> more structural similarity
  EXPECT_GT(high, 0.99);
  std::filesystem::remove_all(out_dir);
}

TEST(Pipeline, DefaultsToAllFieldsWhenNoneListed) {
  const std::string out_dir = temp_dir("pipeline_allfields");
  const json::Value config = json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "nyx", "dim": 16},
    "runs": [
      {"compressor": "zfp-cpu", "configs": [{"mode": "rate", "value": 8}]}
    ]
  })");
  const PipelineSummary summary = run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok);
  EXPECT_EQ(summary.results.size(), 6u);  // all six Nyx fields
  std::filesystem::remove_all(out_dir);
}

TEST(Pipeline, FileDatasetRoundTrip) {
  const std::string out_dir = temp_dir("pipeline_file");
  // First run generates and saves a dataset; second consumes it from disk.
  std::filesystem::create_directories(out_dir);
  {
    NyxConfig nyx;
    nyx.dim = 16;
    io::save(generate_nyx(nyx), out_dir + "/snapshot.h5l", io::Dialect::kHdf5Lite);
  }
  const json::Value config = json::parse(R"({
    "output": ")" + out_dir + R"(",
    "dataset": {"type": "file", "path": ")" + out_dir + R"(/snapshot.h5l"},
    "runs": [
      {"compressor": "zfp-cpu", "fields": ["temperature"],
       "configs": [{"mode": "rate", "value": 8}]}
    ]
  })");
  const PipelineSummary summary = run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok);
  ASSERT_EQ(summary.results.size(), 1u);
  EXPECT_EQ(summary.results[0].field, "temperature");
  std::filesystem::remove_all(out_dir);
}

TEST(Pipeline, UnknownDatasetTypeRejected) {
  const json::Value config = json::parse(R"({
    "dataset": {"type": "mystery"},
    "runs": []
  })");
  EXPECT_THROW(run_pipeline(config), InvalidArgument);
}

TEST(Pipeline, RunPipelineFileParsesJson) {
  const std::string out_dir = temp_dir("pipeline_jsonfile");
  std::filesystem::create_directories(out_dir);
  const std::string config_path = out_dir + "/config.json";
  {
    std::ofstream out(config_path);
    out << nyx_config(out_dir).dump(2);
  }
  const PipelineSummary summary = run_pipeline_file(config_path);
  EXPECT_TRUE(summary.workflow_ok);
  EXPECT_EQ(summary.results.size(), 5u);
  std::filesystem::remove_all(out_dir);
}

}  // namespace
}  // namespace cosmo::foresight
