#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "foresight/cinema.hpp"
#include "common/error.hpp"

namespace cosmo::foresight {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Cinema, DatabaseWritesSpecCompliantCsv) {
  const std::string dir = temp_dir("cinema_db");
  CinemaDatabase db({"field", "ratio", "FILE"});
  db.add_row({"rho", "10.5", "plot.svg"});
  db.add_row({"has,comma", "1.0", "a.svg"});
  db.add_row({"has\"quote", "2.0", "b.svg"});
  db.write(dir);
  const std::string csv = slurp(dir + "/data.csv");
  EXPECT_NE(csv.find("field,ratio,FILE"), std::string::npos);
  EXPECT_NE(csv.find("rho,10.5,plot.svg"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cinema, RowColumnMismatchRejected) {
  CinemaDatabase db({"a", "b"});
  EXPECT_THROW(db.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(CinemaDatabase({}), InvalidArgument);
  EXPECT_EQ(db.rows(), 0u);
}

TEST(SvgPlotTest, RendersSeriesAxesAndLegend) {
  SvgPlot plot("Rate-distortion", "bitrate", "PSNR (dB)");
  plot.add_series({"sz", {1, 2, 4, 8}, {60, 70, 85, 100}, "", false});
  plot.add_series({"zfp", {1, 2, 4, 8}, {50, 62, 74, 90}, "", true});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Rate-distortion"), std::string::npos);
  EXPECT_NE(svg.find("PSNR (dB)"), std::string::npos);
  EXPECT_NE(svg.find("sz"), std::string::npos);
  // Two polylines, the dashed one for ZFP (paper's dashed-line convention).
  EXPECT_NE(svg.find("stroke-dasharray=\"7,4\""), std::string::npos);
  const std::size_t polylines = [&] {
    std::size_t count = 0, pos = 0;
    while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
      ++count;
      pos += 9;
    }
    return count;
  }();
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgPlotTest, HbandAndHlineRendered) {
  SvgPlot plot("pk ratio", "k", "ratio");
  plot.add_series({"field", {1, 2, 3}, {1.0, 0.995, 1.005}, "", false});
  plot.add_hband(0.99, 1.01);
  plot.add_hline(1.0, "baseline");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("opacity=\"0.35\""), std::string::npos);
  EXPECT_NE(svg.find("baseline"), std::string::npos);
}

TEST(SvgPlotTest, LogScalesHandleDecades) {
  SvgPlot plot("throughput", "size", "GB/s");
  plot.set_log_x(true);
  plot.set_log_y(true);
  plot.add_series({"s", {1e3, 1e6, 1e9}, {0.1, 10.0, 100.0}, "", false});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  // Non-positive points are dropped, not NaN-rendered.
  SvgPlot bad("t", "x", "y");
  bad.set_log_y(true);
  bad.add_series({"s", {1, 2}, {0.0, 10.0}, "", false});
  EXPECT_EQ(bad.render().find("nan"), std::string::npos);
}

TEST(SvgPlotTest, EmptyPlotStillValid) {
  SvgPlot plot("empty", "x", "y");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlotTest, MismatchedSeriesRejected) {
  SvgPlot plot("t", "x", "y");
  EXPECT_THROW(plot.add_series({"s", {1, 2}, {1}, "", false}), InvalidArgument);
}

TEST(SvgPlotTest, SaveWritesFile) {
  const std::string dir = temp_dir("cinema_svg");
  ensure_directory(dir);
  SvgPlot plot("t", "x", "y");
  plot.add_series({"s", {1, 2}, {3, 4}, "", false});
  plot.save(dir + "/plot.svg");
  EXPECT_TRUE(std::filesystem::exists(dir + "/plot.svg"));
  std::filesystem::remove_all(dir);
}

TEST(SvgBarChartTest, RendersStackedBarsWithLegend) {
  SvgBarChart chart("Breakdown", "bitrate", "time (ms)");
  chart.set_segments({"init", "kernel", "memcpy", "free"});
  chart.add_bar("1", {0.3, 2.0, 1.4, 0.1});
  chart.add_bar("4", {0.4, 2.7, 5.4, 0.2});
  chart.add_hline(43.6, "baseline");
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("kernel"), std::string::npos);
  EXPECT_NE(svg.find("memcpy"), std::string::npos);
  EXPECT_NE(svg.find("baseline"), std::string::npos);
  // 2 bars x 4 segments + legend squares (4) = at least 12 rects + frame.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_GE(rects, 13u);
}

TEST(SvgBarChartTest, ValidatesInputs) {
  SvgBarChart chart("t", "x", "y");
  EXPECT_THROW(chart.set_segments({}), InvalidArgument);
  chart.set_segments({"a", "b"});
  EXPECT_THROW(chart.add_bar("bad", {1.0}), InvalidArgument);
  EXPECT_THROW(chart.add_bar("bad", {1.0, -2.0}), InvalidArgument);
  EXPECT_NO_THROW(chart.add_bar("ok", {1.0, 2.0}));
}

TEST(SvgBarChartTest, EmptyChartStillValidSvg) {
  SvgBarChart chart("empty", "x", "y");
  chart.set_segments({"only"});
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Cinema, IndexHtmlLinksArtifacts) {
  const std::string dir = temp_dir("cinema_index");
  write_cinema_index(dir, "My results", {"data.csv", "plot.svg"});
  const std::string html = slurp(dir + "/index.html");
  EXPECT_NE(html.find("My results"), std::string::npos);
  EXPECT_NE(html.find("href=\"data.csv\""), std::string::npos);
  EXPECT_NE(html.find("href=\"plot.svg\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cinema, EnsureDirectoryCreatesNestedPaths) {
  const std::string dir = temp_dir("cinema_nested") + "/a/b/c";
  ensure_directory(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(temp_dir("cinema_nested"));
}

}  // namespace
}  // namespace cosmo::foresight
