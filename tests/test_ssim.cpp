#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ssim.hpp"
#include "common/error.hpp"
#include "random/rng.hpp"

namespace cosmo::analysis {
namespace {

std::vector<float> smooth(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(dims.count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(50.0 * std::sin(0.1 * static_cast<double>(i % 64)) +
                                rng.normal());
  }
  return out;
}

TEST(Ssim, IdenticalFieldsGiveOne) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto a = smooth(dims, 1);
  EXPECT_DOUBLE_EQ(ssim(a, a, dims), 1.0);
}

TEST(Ssim, SmallNoiseStaysNearOne) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto a = smooth(dims, 2);
  Rng rng(3);
  auto b = a;
  for (auto& v : b) v += static_cast<float>(rng.normal(0.0, 0.01));
  const double s = ssim(a, b, dims);
  EXPECT_GT(s, 0.99);
  EXPECT_LE(s, 1.0 + 1e-12);
}

TEST(Ssim, DecreasesWithNoiseLevel) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto a = smooth(dims, 4);
  auto noisy = [&](double sigma) {
    Rng rng(5);
    auto b = a;
    for (auto& v : b) v += static_cast<float>(rng.normal(0.0, sigma));
    return b;
  };
  const double s_small = ssim(a, noisy(0.5), dims);
  const double s_big = ssim(a, noisy(10.0), dims);
  EXPECT_GT(s_small, s_big);
}

TEST(Ssim, StructureLossDetectedDespiteMatchedMoments) {
  // Shuffled field has identical global mean/variance but no structure:
  // SSIM must drop far below 1 even though a global moment check passes.
  const Dims dims = Dims::d3(16, 16, 16);
  const auto a = smooth(dims, 6);
  auto b = a;
  Rng rng(7);
  for (std::size_t i = b.size() - 1; i > 0; --i) {
    std::swap(b[i], b[rng.uniform_index(i + 1)]);
  }
  EXPECT_LT(ssim(a, b, dims), 0.5);
}

TEST(Ssim, ConstantFieldsCompareCleanly) {
  const Dims dims = Dims::d3(8, 8, 8);
  const std::vector<float> a(dims.count(), 5.0f);
  EXPECT_NEAR(ssim(a, a, dims), 1.0, 1e-12);
  std::vector<float> b(dims.count(), 6.0f);
  EXPECT_LT(ssim(a, b, dims), 1.0);
}

TEST(Ssim, WorksFor2dFields) {
  const Dims dims = Dims::d2(32, 32);
  const auto a = smooth(dims, 8);
  EXPECT_DOUBLE_EQ(ssim(a, a, dims), 1.0);
}

TEST(Ssim, InvalidInputsRejected) {
  const std::vector<float> a(8, 1.0f);
  const std::vector<float> b(4, 1.0f);
  EXPECT_THROW(ssim(a, b, Dims::d1(8)), InvalidArgument);
  EXPECT_THROW(ssim(a, a, Dims::d1(4)), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::analysis
