/// \file test_fz.cpp
/// \brief FZ codec contract: the absolute error bound holds on both
/// datasets' field shapes, streams are byte-identical for any thread
/// count (fixed chunk geometry), the stage primitives round-trip, stats
/// are consistent, and dims survive the stream.
#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "fz/fz.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

void expect_bound_held(std::span<const float> original, std::span<const float> recon,
                       double bound) {
  ASSERT_EQ(original.size(), recon.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_LE(std::fabs(static_cast<double>(recon[i]) - original[i]),
              bound * (1 + 1e-9))
        << "at " << i;
  }
}

TEST(Fz, AbsBoundHoldsOnNyxFields) {
  NyxConfig config;
  config.dim = 16;
  const io::Container nyx = generate_nyx(config);
  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    // Bound scaled to the field so every field compresses meaningfully.
    float lo = field.data[0], hi = field.data[0];
    for (const float v : field.data) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    fz::Params params;
    params.abs_error_bound = 1e-3 * (static_cast<double>(hi) - lo);
    if (params.abs_error_bound <= 0.0) params.abs_error_bound = 1e-6;

    Dims out_dims;
    const auto bytes = fz::compress(field.data, field.dims, params);
    const auto recon = fz::decompress(bytes, &out_dims);
    expect_bound_held(field.data, recon, params.abs_error_bound);
    EXPECT_EQ(out_dims.nx, field.dims.nx);
    EXPECT_EQ(out_dims.ny, field.dims.ny);
    EXPECT_EQ(out_dims.nz, field.dims.nz);
  }
}

TEST(Fz, AbsBoundHoldsOnHaccArrays) {
  HaccConfig config;
  config.particles = 20000;
  const io::Container hacc = generate_hacc(config);
  for (const auto& variable : hacc.variables) {
    const Field& field = variable.field;
    const bool velocity = field.name[0] == 'v';
    fz::Params params;
    params.abs_error_bound = velocity ? 10.0 : 0.01;
    const auto bytes = fz::compress(field.data, field.dims, params);
    const auto recon = fz::decompress(bytes);
    expect_bound_held(field.data, recon, params.abs_error_bound);
    EXPECT_LT(bytes.size(), field.bytes());  // it actually compresses
  }
}

TEST(Fz, StreamsByteIdenticalAcrossThreadCounts) {
  NyxConfig config;
  config.dim = 16;
  const io::Container nyx = generate_nyx(config);
  const Field& field = nyx.find("baryon_density").field;
  fz::Params params;
  params.abs_error_bound = 0.05;

  const auto baseline = fz::compress(field.data, field.dims, params);
  for (const std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    const auto bytes = fz::compress(field.data, field.dims, params, nullptr, &pool);
    EXPECT_EQ(bytes, baseline) << threads << " threads";
    // Parallel decode reproduces the serial reconstruction exactly.
    EXPECT_EQ(fz::decompress(bytes, nullptr, &pool), fz::decompress(baseline))
        << threads << " threads";
  }
}

TEST(Fz, StatsAreConsistent) {
  Rng rng(31);
  const Dims dims = Dims::d1(10000);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(0.01 * static_cast<double>(i)) +
                                 0.01 * rng.normal());
  }
  fz::Stats stats;
  fz::Params params;
  params.abs_error_bound = 0.01;
  const auto bytes = fz::compress(data, dims, params, &stats);
  EXPECT_EQ(stats.n_values, data.size());
  EXPECT_EQ(stats.compressed_bytes, bytes.size());
  EXPECT_NEAR(stats.bit_rate, 8.0 * static_cast<double>(bytes.size()) /
                                  static_cast<double>(data.size()),
              1e-9);
  // A smooth signal is almost fully Lorenzo-predictable.
  EXPECT_LT(stats.n_unpredictable, data.size() / 100);
}

TEST(Fz, UnpredictableValuesStoredVerbatim) {
  // Values far beyond the quantizer radius fall back to verbatim storage
  // and must come back bit-exact.
  std::vector<float> data(4096, 0.0f);
  data[7] = 3.0e30f;
  data[100] = -2.5e28f;
  data[4095] = 1.0e20f;
  fz::Params params;
  params.abs_error_bound = 1e-3;
  fz::Stats stats;
  const auto bytes = fz::compress(data, Dims::d1(data.size()), params, &stats);
  const auto recon = fz::decompress(bytes);
  EXPECT_GE(stats.n_unpredictable, 3u);
  EXPECT_EQ(recon[7], 3.0e30f);
  EXPECT_EQ(recon[100], -2.5e28f);
  EXPECT_EQ(recon[4095], 1.0e20f);
  expect_bound_held(data, recon, params.abs_error_bound);
}

TEST(Fz, BitshuffleRoundTripsAwkwardLengths) {
  Rng rng(32);
  // Lengths around the byte boundary (non-multiples of 8) and empty.
  for (const std::size_t n : {0u, 1u, 5u, 8u, 13u, 4096u, 4101u}) {
    std::vector<std::uint16_t> codes(n);
    for (auto& c : codes) c = static_cast<std::uint16_t>(rng.next_u64());
    const auto planes = fz::bitshuffle(codes);
    EXPECT_EQ(planes.size(), 16 * ((n + 7) / 8));
    EXPECT_EQ(fz::bitunshuffle(planes, n), codes) << "n=" << n;
  }
  // A plane buffer of the wrong size is a format error, not a crash.
  EXPECT_THROW(fz::bitunshuffle(std::vector<std::uint8_t>(15, 0), 8), FormatError);
}

TEST(Fz, ZeroRunRoundTripsSparsePlanes) {
  Rng rng(33);
  std::vector<std::uint8_t> sparse(8192, 0);
  for (int i = 0; i < 40; ++i) {
    sparse[rng.uniform_index(sparse.size())] = static_cast<std::uint8_t>(1 + i);
  }
  const auto encoded = fz::zero_run_encode(sparse);
  EXPECT_LT(encoded.size(), sparse.size() / 4);  // sparsification pays off
  EXPECT_EQ(fz::zero_run_decode(encoded), sparse);
  EXPECT_EQ(fz::zero_run_decode(fz::zero_run_encode({})),
            std::vector<std::uint8_t>{});
}

TEST(Fz, EmptyAndTinyInputs) {
  fz::Params params;
  params.abs_error_bound = 0.1;
  for (const std::size_t n : {1u, 2u, 63u, 64u, 65u}) {
    std::vector<float> data(n, 1.5f);
    const auto bytes = fz::compress(data, Dims::d1(n), params);
    const auto recon = fz::decompress(bytes);
    expect_bound_held(data, recon, params.abs_error_bound);
  }
}

TEST(Fz, RejectsInvalidParams) {
  const std::vector<float> data(64, 0.0f);
  fz::Params bad_bound;
  bad_bound.abs_error_bound = 0.0;
  EXPECT_THROW(fz::compress(data, Dims::d1(64), bad_bound), InvalidArgument);
  fz::Params bad_radius;
  bad_radius.radius = (1u << 15) + 1;
  EXPECT_THROW(fz::compress(data, Dims::d1(64), bad_radius), InvalidArgument);
  fz::Params bad_chunk;
  bad_chunk.chunk_values = 0;
  EXPECT_THROW(fz::compress(data, Dims::d1(64), bad_chunk), InvalidArgument);
}

}  // namespace
}  // namespace cosmo
