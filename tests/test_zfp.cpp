#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::zfp {
namespace {

std::vector<float> smooth_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  const double phase = rng.uniform(0.0, 6.28);
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x) {
        data[dims.index(x, y, z)] = static_cast<float>(
            50.0 * std::sin(0.2 * static_cast<double>(x) + phase) +
            30.0 * std::cos(0.15 * static_cast<double>(y)) +
            20.0 * std::sin(0.1 * static_cast<double>(z)));
      }
    }
  }
  return data;
}

double rmse(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double e = static_cast<double>(a[i]) - b[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

TEST(Zfp, FixedRateHonorsRateBudget) {
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field(dims, 91);
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    Params params;
    params.mode = Mode::kFixedRate;
    params.rate = rate;
    Stats stats;
    const auto bytes = compress(data, dims, params, &stats);
    // Actual bitrate must not exceed the budget by more than header slack.
    const double actual_rate =
        static_cast<double>(bytes.size()) * 8.0 / static_cast<double>(data.size());
    EXPECT_LE(actual_rate, rate + 0.2) << "rate " << rate;
    EXPECT_EQ(stats.compressed_bytes, bytes.size());
  }
}

TEST(Zfp, FixedRateRoundTripQualityScalesWithRate) {
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field(dims, 92);
  double prev_rmse = 1e300;
  for (const double rate : {2.0, 4.0, 8.0, 16.0}) {
    Params params;
    params.rate = rate;
    const auto recon = decompress(compress(data, dims, params));
    const double e = rmse(data, recon);
    EXPECT_LT(e, prev_rmse) << "rate " << rate;
    prev_rmse = e;
  }
  EXPECT_LT(prev_rmse, 1e-2);  // 16 bits/value on a smooth field is tight
}

TEST(Zfp, RoundTripAllRanks) {
  for (const int rank : {1, 2, 3}) {
    Dims dims;
    if (rank == 1) dims = Dims::d1(4096);
    else if (rank == 2) dims = Dims::d2(64, 64);
    else dims = Dims::d3(16, 16, 16);
    const auto data = smooth_field(dims, 93 + static_cast<std::uint64_t>(rank));
    Params params;
    params.rate = 12.0;
    Dims out_dims;
    const auto recon = decompress(compress(data, dims, params), &out_dims);
    EXPECT_EQ(out_dims, dims);
    ASSERT_EQ(recon.size(), data.size());
    EXPECT_LT(rmse(data, recon), 0.5);
  }
}

TEST(Zfp, PartialBlocksReconstruct) {
  const Dims dims = Dims::d3(13, 9, 11);  // not multiples of 4
  const auto data = smooth_field(dims, 94);
  Params params;
  params.rate = 16.0;
  const auto recon = decompress(compress(data, dims, params));
  ASSERT_EQ(recon.size(), data.size());
  EXPECT_LT(rmse(data, recon), 0.1);
}

TEST(Zfp, FixedAccuracyBoundsError) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field(dims, 95);
  for (const double tol : {1.0, 0.1, 0.01}) {
    Params params;
    params.mode = Mode::kFixedAccuracy;
    params.tolerance = tol;
    const auto recon = decompress(compress(data, dims, params));
    double max_err = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      max_err = std::max(max_err, std::fabs(static_cast<double>(data[i]) - recon[i]));
    }
    EXPECT_LE(max_err, tol) << "tol " << tol;
  }
}

TEST(Zfp, FixedAccuracyTighterCostsMore) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field(dims, 96);
  Params loose, tight;
  loose.mode = tight.mode = Mode::kFixedAccuracy;
  loose.tolerance = 1.0;
  tight.tolerance = 1e-4;
  EXPECT_LT(compress(data, dims, loose).size(), compress(data, dims, tight).size());
}

TEST(Zfp, ConstantFieldIsCheapInAccuracyMode) {
  const Dims dims = Dims::d3(32, 32, 32);
  const std::vector<float> data(dims.count(), 7.5f);
  Params params;
  params.mode = Mode::kFixedAccuracy;
  params.tolerance = 1e-3;
  Stats stats;
  const auto bytes = compress(data, dims, params, &stats);
  EXPECT_LT(stats.bit_rate, 1.0);
  const auto recon = decompress(bytes);
  for (const float v : recon) EXPECT_NEAR(v, 7.5f, 1e-3);
}

TEST(Zfp, GaussianLikeErrorDistribution) {
  // The paper notes ZFP produces a Gaussian-like error distribution; at
  // minimum the errors should be roughly symmetric around zero.
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field(dims, 97);
  Params params;
  params.rate = 6.0;
  const auto recon = decompress(compress(data, dims, params));
  double mean_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    mean_err += static_cast<double>(recon[i]) - data[i];
  }
  mean_err /= static_cast<double>(data.size());
  const double scale = rmse(data, recon);
  EXPECT_LT(std::fabs(mean_err), 0.25 * scale + 1e-12);
}

TEST(Zfp, NegativeAndMixedSignData) {
  const Dims dims = Dims::d3(8, 8, 8);
  Rng rng(98);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1e4, 1e4));
  Params params;
  params.rate = 20.0;
  const auto recon = decompress(compress(data, dims, params));
  EXPECT_LT(rmse(data, recon), 10.0);
}

TEST(Zfp, DeterministicOutput) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = smooth_field(dims, 99);
  Params params;
  params.rate = 8.0;
  EXPECT_EQ(compress(data, dims, params), compress(data, dims, params));
}

TEST(Zfp, InvalidInputsRejected) {
  Params params;
  EXPECT_THROW(compress({}, Dims::d1(0), params), InvalidArgument);
  const std::vector<float> data(16, 1.0f);
  params.rate = 0.0;
  EXPECT_THROW(compress(data, Dims::d1(16), params), InvalidArgument);
  params.rate = 40.0;
  EXPECT_THROW(compress(data, Dims::d1(16), params), InvalidArgument);
  params = Params{};
  params.mode = Mode::kFixedAccuracy;
  params.tolerance = 0.0;
  EXPECT_THROW(compress(data, Dims::d1(16), params), InvalidArgument);
}

TEST(Zfp, CorruptStreamThrows) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = smooth_field(dims, 100);
  Params params;
  params.rate = 8.0;
  auto bytes = compress(data, dims, params);
  bytes.resize(10);
  EXPECT_THROW(decompress(bytes), FormatError);
  bytes = {1, 2, 3, 4, 5};
  EXPECT_THROW(decompress(bytes), FormatError);
}

TEST(Zfp, BlockBitsForRate) {
  EXPECT_EQ(block_bits_for_rate(4.0, 3), 256u);
  EXPECT_EQ(block_bits_for_rate(8.0, 2), 128u);
  EXPECT_EQ(block_bits_for_rate(16.0, 1), 64u);
  // Tiny rates are clamped to a workable minimum.
  EXPECT_GE(block_bits_for_rate(0.1, 1), 12u);
}

/// Rate sweep property: fixed-rate contract across ranks.
class ZfpRateSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ZfpRateSweep, RateContractHolds) {
  const auto [rate, rank] = GetParam();
  Dims dims;
  if (rank == 1) dims = Dims::d1(4096);
  else if (rank == 2) dims = Dims::d2(64, 64);
  else dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field(dims, 200 + static_cast<std::uint64_t>(rank));
  Params params;
  params.rate = rate;
  const auto bytes = compress(data, dims, params);
  const double actual =
      static_cast<double>(bytes.size()) * 8.0 / static_cast<double>(data.size());
  // Partial blocks + header allow small overshoot only.
  EXPECT_LE(actual, rate * 1.1 + 2.0);
  const auto recon = decompress(bytes);
  ASSERT_EQ(recon.size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndRanks, ZfpRateSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 8.0, 16.0),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cosmo::zfp
