#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "analysis/fof.hpp"
#include "cosmo/hacc_synth.hpp"
#include "random/rng.hpp"

namespace cosmo::analysis {
namespace {

/// Builds particle clouds: each cluster is a tight Gaussian blob.
struct Cloud {
  std::vector<float> x, y, z;

  void add_blob(Rng& rng, double cx, double cy, double cz, std::size_t n, double sigma) {
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<float>(cx + rng.normal(0.0, sigma)));
      y.push_back(static_cast<float>(cy + rng.normal(0.0, sigma)));
      z.push_back(static_cast<float>(cz + rng.normal(0.0, sigma)));
    }
  }

  void add_uniform(Rng& rng, std::size_t n, double box) {
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<float>(rng.uniform(0.0, box)));
      y.push_back(static_cast<float>(rng.uniform(0.0, box)));
      z.push_back(static_cast<float>(rng.uniform(0.0, box)));
    }
  }
};

TEST(DisjointSetTest, BasicUnionFind) {
  DisjointSet ds(10);
  EXPECT_NE(ds.find(1), ds.find(2));
  EXPECT_TRUE(ds.unite(1, 2));
  EXPECT_EQ(ds.find(1), ds.find(2));
  EXPECT_FALSE(ds.unite(1, 2));  // already merged
  ds.unite(2, 3);
  ds.unite(7, 8);
  EXPECT_EQ(ds.find(1), ds.find(3));
  EXPECT_NE(ds.find(1), ds.find(7));
  ds.unite(3, 8);
  EXPECT_EQ(ds.find(1), ds.find(7));
}

TEST(Fof, FindsTwoSeparatedBlobs) {
  Rng rng(141);
  Cloud cloud;
  cloud.add_blob(rng, 50, 50, 50, 200, 0.5);
  cloud.add_blob(rng, 150, 150, 150, 100, 0.5);
  FofParams params;
  params.linking_length = 2.0;
  params.min_members = 20;
  params.box = 256.0;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(result.halos.size(), 2u);
  // Counts (order not guaranteed): one of 200, one of 100.
  const std::size_t a = result.halos[0].members;
  const std::size_t b = result.halos[1].members;
  EXPECT_EQ(a + b, 300u);
  EXPECT_EQ(std::max(a, b), 200u);
}

TEST(Fof, CentersAreAccurate) {
  Rng rng(142);
  Cloud cloud;
  cloud.add_blob(rng, 100, 60, 200, 500, 0.8);
  FofParams params;
  params.linking_length = 3.0;
  params.min_members = 50;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(result.halos.size(), 1u);
  EXPECT_NEAR(result.halos[0].cx, 100.0, 0.5);
  EXPECT_NEAR(result.halos[0].cy, 60.0, 0.5);
  EXPECT_NEAR(result.halos[0].cz, 200.0, 0.5);
}

TEST(Fof, MinMembersFiltersSmallGroups) {
  Rng rng(143);
  Cloud cloud;
  cloud.add_blob(rng, 50, 50, 50, 100, 0.5);
  cloud.add_blob(rng, 150, 150, 150, 5, 0.2);  // below threshold
  FofParams params;
  params.linking_length = 2.0;
  params.min_members = 10;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(result.halos.size(), 1u);
  // The 5 small-group particles map to -1.
  std::size_t unassigned = 0;
  for (const auto id : result.halo_of_particle) {
    if (id < 0) ++unassigned;
  }
  EXPECT_EQ(unassigned, 5u);
}

TEST(Fof, UniformBackgroundYieldsNoHalos) {
  Rng rng(144);
  Cloud cloud;
  cloud.add_uniform(rng, 2000, 256.0);
  FofParams params;
  // Mean spacing ~ (256^3/2000)^(1/3) ~ 20; a short linking length finds
  // only tiny chance groups.
  params.linking_length = 1.5;
  params.min_members = 10;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  EXPECT_EQ(result.halos.size(), 0u);
}

TEST(Fof, PeriodicBoundaryMergesAcrossEdge) {
  Rng rng(145);
  Cloud cloud;
  // Two half-blobs hugging opposite faces of the box along x.
  cloud.add_blob(rng, 0.5, 100, 100, 100, 0.3);
  cloud.add_blob(rng, 255.5, 100, 100, 100, 0.3);
  FofParams params;
  params.linking_length = 2.0;
  params.min_members = 50;
  params.box = 256.0;
  params.periodic = true;
  const FofResult wrapped = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(wrapped.halos.size(), 1u);
  EXPECT_EQ(wrapped.halos[0].members, 200u);
  // Center must sit near the seam (x ~ 0 or ~ 256).
  const double cx = wrapped.halos[0].cx;
  EXPECT_TRUE(cx < 3.0 || cx > 253.0) << cx;

  params.periodic = false;
  const FofResult unwrapped = fof(cloud.x, cloud.y, cloud.z, params);
  EXPECT_EQ(unwrapped.halos.size(), 2u);
}

TEST(Fof, ChainOfParticlesLinksTransitively) {
  // Particles spaced 0.9 apart with b = 1.0 form one chain-halo even though
  // the endpoints are far apart ("a group of particles in one chain").
  std::vector<float> x, y, z;
  for (int i = 0; i < 50; ++i) {
    x.push_back(10.0f + 0.9f * static_cast<float>(i));
    y.push_back(10.0f);
    z.push_back(10.0f);
  }
  FofParams params;
  params.linking_length = 1.0;
  params.min_members = 10;
  const FofResult result = fof(x, y, z, params);
  ASSERT_EQ(result.halos.size(), 1u);
  EXPECT_EQ(result.halos[0].members, 50u);
}

TEST(Fof, LinkingLengthJustBelowSpacingBreaksChain) {
  std::vector<float> x, y, z;
  for (int i = 0; i < 50; ++i) {
    x.push_back(10.0f + 0.9f * static_cast<float>(i));
    y.push_back(10.0f);
    z.push_back(10.0f);
  }
  FofParams params;
  params.linking_length = 0.85;  // below the 0.9 spacing
  params.min_members = 10;
  const FofResult result = fof(x, y, z, params);
  EXPECT_EQ(result.halos.size(), 0u);
}

TEST(Fof, MostConnectedParticleIsInDenseCore) {
  Rng rng(146);
  Cloud cloud;
  cloud.add_blob(rng, 100, 100, 100, 300, 1.5);
  FofParams params;
  params.linking_length = 2.0;
  params.min_members = 50;
  params.most_connected = true;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(result.halos.size(), 1u);
  const std::size_t mcp = result.halos[0].most_connected_particle;
  // The most connected particle should sit near the blob center.
  const double d = std::sqrt(std::pow(cloud.x[mcp] - 100.0, 2) +
                             std::pow(cloud.y[mcp] - 100.0, 2) +
                             std::pow(cloud.z[mcp] - 100.0, 2));
  EXPECT_LT(d, 2.0);
}

TEST(Fof, MostBoundParticleIsInDenseCore) {
  Rng rng(147);
  Cloud cloud;
  cloud.add_blob(rng, 60, 60, 60, 300, 1.5);
  FofParams params;
  params.linking_length = 2.0;
  params.min_members = 50;
  params.most_bound = true;
  const FofResult result = fof(cloud.x, cloud.y, cloud.z, params);
  ASSERT_EQ(result.halos.size(), 1u);
  const std::size_t mbp = result.halos[0].most_bound_particle;
  const double d = std::sqrt(std::pow(cloud.x[mbp] - 60.0, 2) +
                             std::pow(cloud.y[mbp] - 60.0, 2) +
                             std::pow(cloud.z[mbp] - 60.0, 2));
  EXPECT_LT(d, 2.5);
}

TEST(Fof, RecoversGeneratorTruthApproximately) {
  HaccConfig config;
  config.particles = 30000;
  config.halo_count = 12;
  config.clustered_fraction = 0.7;
  std::vector<HaloTruth> truth;
  const auto data = generate_hacc(config, &truth);
  FofParams params;
  params.linking_length = 1.0;
  params.min_members = 15;
  const FofResult result =
      fof(data.find("x").field.data, data.find("y").field.data,
          data.find("z").field.data, params);
  // FoF should find a halo near most generated centers.
  std::size_t matched = 0;
  for (const auto& t : truth) {
    for (const auto& h : result.halos) {
      const double d = std::sqrt(std::pow(h.cx - t.cx, 2) + std::pow(h.cy - t.cy, 2) +
                                 std::pow(h.cz - t.cz, 2));
      if (d < 3.0) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched * 10, truth.size() * 7);  // >= 70% recovered
}

TEST(Fof, InvalidParamsRejected) {
  const std::vector<float> p = {1.0f, 2.0f};
  FofParams params;
  params.linking_length = 0.0;
  EXPECT_THROW(fof(p, p, p, params), InvalidArgument);
  params.linking_length = 1.0;
  params.box = -1.0;
  EXPECT_THROW(fof(p, p, p, params), InvalidArgument);
  const std::vector<float> q = {1.0f};
  params.box = 10.0;
  EXPECT_THROW(fof(p, q, p, params), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::analysis
