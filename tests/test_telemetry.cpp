/// The observability contract: StageTelemetry rollups, the span tracer, the
/// metrics registry — and, most importantly, that turning tracing on changes
/// *nothing* about what the codecs produce (streams and modeled GPU timings
/// byte-identical with tracing on or off).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/telemetry.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"
#include "foresight/compressor.hpp"
#include "gpu/specs.hpp"
#include "json/json.hpp"

namespace cosmo::foresight {
namespace {

using telemetry::MetricsRegistry;
using telemetry::SpanRecord;
using telemetry::Tracer;

io::Container small_nyx() {
  NyxConfig config;
  config.dim = 16;
  return generate_nyx(config);
}

/// Ensures the tracer is off (and stays off) around a test body, even when
/// an assertion fails mid-test.
struct TracerOffGuard {
  TracerOffGuard() { Tracer::disable(); }
  ~TracerOffGuard() {
    Tracer::disable();
    Tracer::clear();
  }
};

// ---------------------------------------------------------------------------
// StageTelemetry value semantics
// ---------------------------------------------------------------------------

TEST(StageTelemetryTest, LifecycleHelpers) {
  StageTelemetry t;
  t.seconds = 1.0;
  t.cpu_fallback = true;
  t.device_attempts = 3;
  t.reset_cpu();
  EXPECT_EQ(t.seconds, 0.0);
  EXPECT_FALSE(t.has_gpu_timing);
  EXPECT_FALSE(t.cpu_fallback);
  EXPECT_EQ(t.device_attempts, 1);

  t.reset_gpu();
  EXPECT_TRUE(t.has_gpu_timing);

  TimingBreakdown timing;
  timing.init = 0.25;
  timing.kernel = 0.5;
  t.set_device(timing, 2);
  EXPECT_TRUE(t.has_gpu_timing);
  EXPECT_EQ(t.seconds, timing.total());
  EXPECT_EQ(t.device_attempts, 2);

  t.mark_cpu_fallback();
  EXPECT_FALSE(t.has_gpu_timing);
  EXPECT_TRUE(t.cpu_fallback);
  EXPECT_EQ(t.gpu_timing.total(), 0.0);
  EXPECT_EQ(t.device_attempts, 2) << "fallback keeps the attempt count";
}

TEST(StageTelemetryTest, PairRollups) {
  StageTelemetry c, d;
  EXPECT_FALSE(any_cpu_fallback(c, d));
  EXPECT_EQ(max_device_attempts(c, d), 1);
  d.cpu_fallback = true;
  d.device_attempts = 4;
  EXPECT_TRUE(any_cpu_fallback(c, d));
  EXPECT_EQ(max_device_attempts(c, d), 4);
}

// ---------------------------------------------------------------------------
// Tracer: recording, nesting, wrap-around, export
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  TracerOffGuard guard;
  { TRACE_SPAN("test.disabled"); }
  EXPECT_TRUE(Tracer::snapshot().empty());
}

TEST(TracerTest, RecordsNamesDepthsAndOrder) {
  TracerOffGuard guard;
  Tracer::enable();
  {
    TRACE_SPAN("test.outer");
    { TRACE_SPAN("test.inner"); }
    { TRACE_SPAN("test.inner"); }
  }
  Tracer::disable();
  const auto spans = Tracer::snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // snapshot() is start-ordered: outer first, then the two inners.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "test.inner");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[2].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[2].end_ns) << "outer must contain the inners";
}

TEST(TracerTest, SpanOpenAtDisableStillRecords) {
  TracerOffGuard guard;
  Tracer::enable();
  {
    TRACE_SPAN("test.cut_short");
    Tracer::disable();
  }
  // A span that began under an enabled tracer completes its measurement:
  // the ring is still there, and dropping it would undercount the stage
  // that happened to straddle the disable.
  const auto spans = Tracer::snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.cut_short");
}

TEST(TracerTest, RingWrapCountsDrops) {
  TracerOffGuard guard;
  // The implementation may round the capacity up; whatever the ring holds,
  // recording far past it must report drops and keep only the newest spans.
  Tracer::enable(/*capacity=*/16);
  constexpr int kRecorded = 4096;
  for (int i = 0; i < kRecorded; ++i) {
    TRACE_SPAN("test.wrap");
  }
  Tracer::disable();
  const auto spans = Tracer::snapshot();
  EXPECT_LT(spans.size(), static_cast<std::size_t>(kRecorded));
  EXPECT_EQ(Tracer::dropped(), kRecorded - spans.size());
}

TEST(TracerTest, ClearDropsSpansKeepsEnabled) {
  TracerOffGuard guard;
  Tracer::enable();
  { TRACE_SPAN("test.before_clear"); }
  Tracer::clear();
  EXPECT_TRUE(Tracer::enabled());
  EXPECT_TRUE(Tracer::snapshot().empty());
  { TRACE_SPAN("test.after_clear"); }
  EXPECT_EQ(Tracer::snapshot().size(), 1u);
}

TEST(TracerTest, ThreadsGetDistinctTids) {
  TracerOffGuard guard;
  Tracer::enable();
  { TRACE_SPAN("test.main_thread"); }
  std::thread worker([] { TRACE_SPAN("test.worker_thread"); });
  worker.join();
  Tracer::disable();
  const auto spans = Tracer::snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(TracerTest, ChromeTraceJsonIsValidAndComplete) {
  TracerOffGuard guard;
  Tracer::enable();
  {
    TRACE_SPAN("test.export_outer");
    { TRACE_SPAN("test.export_inner"); }
  }
  Tracer::disable();
  // The export must parse with the repo's own (RFC 8259) parser and carry
  // one complete event per span with the fields trace-check relies on.
  const json::Value trace = json::parse(Tracer::chrome_trace_json());
  const json::Array& events = trace.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, double> depth_by_name;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("pid"));
    EXPECT_TRUE(ev.contains("tid"));
    depth_by_name[ev.at("name").as_string()] = ev.at("args").at("depth").as_number();
  }
  EXPECT_EQ(depth_by_name.at("test.export_outer"), 0.0);
  EXPECT_EQ(depth_by_name.at("test.export_inner"), 1.0);
}

// ---------------------------------------------------------------------------
// Metrics: counters, gauges, histograms, registry export
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogram) {
  telemetry::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  telemetry::Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);
  g.maximize(100);
  EXPECT_EQ(g.value(), 3) << "maximize must not touch the last value";
  EXPECT_EQ(g.max(), 100);

  telemetry::Histogram h;
  h.observe(1);     // bit_width 1
  h.observe(1000);  // bit_width 10
  h.observe_seconds(1e-6);  // 1000 ns -> bit_width 10
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 2001u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(10), 2u);
}

TEST(MetricsTest, RegistryReturnsStableObjectsAndValidJson) {
  auto& reg = MetricsRegistry::instance();
  telemetry::Counter& a = reg.counter("test.registry_counter");
  telemetry::Counter& b = reg.counter("test.registry_counter");
  EXPECT_EQ(&a, &b) << "same name must resolve to the same object";
  a.add(5);
  reg.gauge("test.registry_gauge").set(-3);
  reg.histogram("test.registry_hist").observe(8);

  const json::Value doc = json::parse(reg.to_json());
  EXPECT_EQ(doc.at("counters").at("test.registry_counter").as_number(), 5.0);
  EXPECT_EQ(doc.at("gauges").at("test.registry_gauge").at("value").as_number(), -3.0);
  EXPECT_EQ(doc.at("histograms").at("test.registry_hist").at("count").as_number(), 1.0);

  a.reset();
  EXPECT_EQ(reg.counter("test.registry_counter").value(), 0u);
}

// ---------------------------------------------------------------------------
// The no-perturbation contract: tracing on/off changes nothing observable
// ---------------------------------------------------------------------------

/// Runs `codec` over the field with tracing off, then again (on an
/// identically seeded simulator when `gpu_name` is set) with tracing on, and
/// requires byte-identical streams, reconstructions, and modeled timings.
void expect_tracing_invariant(const std::string& codec_name, const char* gpu_name,
                              const CompressorConfig& config) {
  TracerOffGuard guard;
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;

  // Two simulators with identical specs consume identical jitter streams,
  // so even the modeled timings must match exactly across the two runs.
  gpu::GpuSimulator sim_off(gpu::find_device("V100"));
  gpu::GpuSimulator sim_on(gpu::find_device("V100"));

  const auto codec_off = make_compressor(codec_name, gpu_name ? &sim_off : nullptr);
  const RunOutput off = codec_off->run(field, config);

  Tracer::enable();
  const auto codec_on = make_compressor(codec_name, gpu_name ? &sim_on : nullptr);
  const RunOutput on = codec_on->run(field, config);
  Tracer::disable();

  EXPECT_FALSE(Tracer::snapshot().empty()) << "the traced run must record spans";
  EXPECT_EQ(off.bytes, on.bytes) << codec_name << ": stream differs with tracing on";
  EXPECT_EQ(off.reconstructed, on.reconstructed);
  EXPECT_EQ(off.compress_seconds() == off.compress_seconds(), true);  // not NaN
  EXPECT_EQ(off.has_gpu_timing(), on.has_gpu_timing());
  if (off.has_gpu_timing()) {
    EXPECT_EQ(off.compress_seconds(), on.compress_seconds());
    EXPECT_EQ(off.decompress_seconds(), on.decompress_seconds());
    EXPECT_EQ(off.gpu_compress().init, on.gpu_compress().init);
    EXPECT_EQ(off.gpu_compress().kernel, on.gpu_compress().kernel);
    EXPECT_EQ(off.gpu_compress().memcpy, on.gpu_compress().memcpy);
    EXPECT_EQ(off.gpu_compress().free, on.gpu_compress().free);
    EXPECT_EQ(off.gpu_decompress().kernel, on.gpu_decompress().kernel);
  }
}

TEST(TracingInvariance, GpuSz) { expect_tracing_invariant("gpu-sz", "V100", {"abs", 0.1}); }
TEST(TracingInvariance, CuZfp) { expect_tracing_invariant("cuzfp", "V100", {"rate", 8.0}); }
TEST(TracingInvariance, SzCpu) { expect_tracing_invariant("sz-cpu", nullptr, {"abs", 0.1}); }
TEST(TracingInvariance, ZfpCpu) {
  expect_tracing_invariant("zfp-cpu", nullptr, {"rate", 8.0});
}
TEST(TracingInvariance, ZfpOmp) {
  expect_tracing_invariant("zfp-omp", nullptr, {"rate", 8.0});
}

// ---------------------------------------------------------------------------
// Span determinism across sweep thread counts
// ---------------------------------------------------------------------------

/// Name -> count census of the recorded spans, with the scheduler-level
/// spans excluded: "sweep." spans are thread-count-dependent by design
/// (sweep.worker exists only on the parallel path), and session lifetimes
/// belong to the scheduler too (the serial sweep reuses one session, the
/// parallel sweep opens one per worker). The per-job codec spans must be
/// invariant.
std::map<std::string, std::size_t> job_span_census(const std::vector<SpanRecord>& spans) {
  std::map<std::string, std::size_t> census;
  for (const SpanRecord& s : spans) {
    const std::string name = s.name;
    if (name.rfind("sweep.", 0) == 0 || name == "session.open") continue;
    ++census[name];
  }
  return census;
}

TEST(SpanDeterminism, SweepThreadCountDoesNotChangeJobSpans) {
  TracerOffGuard guard;
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  ASSERT_TRUE(codec->concurrent_sessions_safe());
  const std::vector<CompressorConfig> configs = {{"rate", 4.0}, {"rate", 8.0}};

  Tracer::enable();
  CBench serial_bench({.dataset_name = "nyx", .threads = 1});
  (void)serial_bench.sweep(data, *codec, configs);
  const auto serial_census = job_span_census(Tracer::snapshot());

  Tracer::enable();  // re-arms with a fresh ring
  CBench parallel_bench({.dataset_name = "nyx", .threads = 4});
  (void)parallel_bench.sweep(data, *codec, configs);
  const auto parallel_census = job_span_census(Tracer::snapshot());
  Tracer::disable();

  EXPECT_FALSE(serial_census.empty());
  EXPECT_EQ(serial_census, parallel_census)
      << "per-job spans must not depend on the sweep thread count";
  // The fixed stages of this sweep: one cbench.job + session spans per row.
  const std::size_t rows = 6u * configs.size();
  EXPECT_EQ(serial_census.at("cbench.job"), rows);
  EXPECT_EQ(serial_census.at("zfp-cpu.compress"), rows);
  EXPECT_EQ(serial_census.at("zfp-cpu.decompress"), rows);
  EXPECT_EQ(serial_census.at("zfp.block_scan.encode"), rows);
  EXPECT_EQ(serial_census.at("zfp.block_scan.decode"), rows);
}

// ---------------------------------------------------------------------------
// run() vs run_one(): identical fallback/retry reporting (ISSUE satellite)
// ---------------------------------------------------------------------------

TEST(RunOutputTelemetry, RunReportsFallbackIdenticallyToRunOne) {
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  fault::Config cfg;
  cfg.gpu_oom_every = 1;  // every device op OOMs -> host fallback everywhere

  gpu::GpuSimulator sim_run(gpu::find_device("V100"));
  fault::FaultPlan plan_run(cfg);
  sim_run.set_fault_plan(&plan_run);
  const auto codec_run = make_compressor("cuzfp", &sim_run);
  const RunOutput out = codec_run->run(field, {"rate", 8.0});

  gpu::GpuSimulator sim_bench(gpu::find_device("V100"));
  fault::FaultPlan plan_bench(cfg);
  sim_bench.set_fault_plan(&plan_bench);
  const auto codec_bench = make_compressor("cuzfp", &sim_bench);
  CBench bench({.dataset_name = "nyx"});
  const CBenchResult row = bench.run_one(field, *codec_bench, {"rate", 8.0});

  // Before StageTelemetry, RunOutput had no fallback fields at all; now both
  // paths must agree on every reported fact.
  EXPECT_TRUE(out.cpu_fallback());
  EXPECT_EQ(out.cpu_fallback(), row.cpu_fallback());
  EXPECT_EQ(out.device_attempts(), row.device_attempts());
  EXPECT_EQ(out.has_gpu_timing(), row.compress.has_gpu_timing);
  EXPECT_EQ(out.compress.cpu_fallback, row.compress.cpu_fallback);
  EXPECT_EQ(out.decompress.cpu_fallback, row.decompress.cpu_fallback);
  EXPECT_EQ(out.throughput_reportable, row.throughput_reportable);
  EXPECT_EQ(out.bytes.size(), row.compressed_bytes);
}

TEST(RunOutputTelemetry, CleanGpuRunReportsNoFallback) {
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  const RunOutput out = codec->run(field, {"rate", 8.0});
  EXPECT_FALSE(out.cpu_fallback());
  EXPECT_EQ(out.device_attempts(), 1);
  EXPECT_TRUE(out.has_gpu_timing());
}

// ---------------------------------------------------------------------------
// Fault injection shows up in the metrics registry
// ---------------------------------------------------------------------------

TEST(FaultMetrics, RetriesAndFallbacksAreCounted) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("gpu.transient_retries").reset();
  reg.counter("codec.cpu_fallbacks").reset();

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;

  {  // Transient on device op 2 -> exactly one retry.
    gpu::GpuSimulator sim(gpu::find_device("V100"));
    fault::Config cfg;
    cfg.gpu_transient_every = 2;
    fault::FaultPlan plan(cfg);
    sim.set_fault_plan(&plan);
    const auto codec = make_compressor("cuzfp", &sim);
    const RunOutput out = codec->run(field, {"rate", 8.0});
    EXPECT_EQ(out.device_attempts(), 2);
  }
  EXPECT_GE(reg.counter("gpu.transient_retries").value(), 1u);

  {  // OOM on every device op -> compress and decompress both fall back.
    gpu::GpuSimulator sim(gpu::find_device("V100"));
    fault::Config cfg;
    cfg.gpu_oom_every = 1;
    fault::FaultPlan plan(cfg);
    sim.set_fault_plan(&plan);
    const auto codec = make_compressor("cuzfp", &sim);
    const RunOutput out = codec->run(field, {"rate", 8.0});
    EXPECT_TRUE(out.cpu_fallback());
  }
  EXPECT_GE(reg.counter("codec.cpu_fallbacks").value(), 2u);
}

}  // namespace
}  // namespace cosmo::foresight
