#include <gtest/gtest.h>

#include "analysis/halo_stats.hpp"
#include "common/error.hpp"

namespace cosmo::analysis {
namespace {

Halo make_halo(std::size_t members, double cx = 0, double cy = 0, double cz = 0) {
  Halo h;
  h.members = members;
  h.cx = cx;
  h.cy = cy;
  h.cz = cz;
  return h;
}

TEST(MassFunction, BinsAreLogarithmic) {
  const auto bins = mass_function({}, 1.0, 3, 10.0, 10000.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_NEAR(bins[0].mass_lo, 10.0, 1e-9);
  EXPECT_NEAR(bins[0].mass_hi, 100.0, 1e-6);
  EXPECT_NEAR(bins[1].mass_hi, 1000.0, 1e-5);
  EXPECT_NEAR(bins[2].mass_hi, 10000.0, 1e-4);
}

TEST(MassFunction, CountsFallIntoCorrectBins) {
  std::vector<Halo> halos = {make_halo(15), make_halo(50), make_halo(500),
                             make_halo(5000), make_halo(5)};
  const auto bins = mass_function(halos, 1.0, 4, 10.0, 100000.0);
  // Bins: [10,100), [100,1000), [1000,10000), [10000,100000).
  EXPECT_EQ(bins[0].count, 2u);  // 15, 50
  EXPECT_EQ(bins[1].count, 1u);  // 500
  EXPECT_EQ(bins[2].count, 1u);  // 5000
  EXPECT_EQ(bins[3].count, 0u);
  // Mass 5 below range: dropped.
}

TEST(MassFunction, MassPerParticleScalesMasses) {
  std::vector<Halo> halos = {make_halo(10)};
  // With 1e10 Msun per particle, mass = 1e11.
  const auto bins = mass_function(halos, 1e10, 2, 1e10, 1e12);
  EXPECT_EQ(bins[1].count, 1u);
}

TEST(MassFunction, InvalidArgsRejected) {
  EXPECT_THROW(mass_function({}, 1.0, 0, 1.0, 10.0), InvalidArgument);
  EXPECT_THROW(mass_function({}, 1.0, 3, 10.0, 1.0), InvalidArgument);
  EXPECT_THROW(mass_function({}, 1.0, 3, 0.0, 10.0), InvalidArgument);
}

TEST(CompareCatalogs, IdenticalCatalogsGiveUnitRatios) {
  std::vector<Halo> halos;
  for (const std::size_t m : {20u, 40u, 80u, 200u, 1000u, 30u, 60u}) {
    halos.push_back(make_halo(m));
  }
  const auto cmp = compare_halo_catalogs(halos, halos, 1.0, 6);
  EXPECT_EQ(cmp.max_ratio_deviation, 0.0);
  EXPECT_DOUBLE_EQ(cmp.total_ratio, 1.0);
  EXPECT_TRUE(halos_acceptable(cmp, 0.01));
  for (const double r : cmp.ratio) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(CompareCatalogs, MissingSmallHalosDetected) {
  std::vector<Halo> original, reconstructed;
  for (int i = 0; i < 10; ++i) original.push_back(make_halo(20));   // small
  for (int i = 0; i < 10; ++i) original.push_back(make_halo(500));  // large
  // Reconstruction loses half the small halos (the paper's concern:
  // "Information such as the position of one particle can affect the halo
  // number detected, particularly for smaller halos").
  for (int i = 0; i < 5; ++i) reconstructed.push_back(make_halo(20));
  for (int i = 0; i < 10; ++i) reconstructed.push_back(make_halo(500));
  const auto cmp = compare_halo_catalogs(original, reconstructed, 1.0, 4);
  EXPECT_FALSE(halos_acceptable(cmp, 0.01));
  EXPECT_NEAR(cmp.max_ratio_deviation, 0.5, 1e-9);
  EXPECT_NEAR(cmp.total_ratio, 0.75, 1e-9);
}

TEST(CompareCatalogs, SpuriousHalosInEmptyBinFlagged) {
  std::vector<Halo> original = {make_halo(20), make_halo(25), make_halo(1000)};
  std::vector<Halo> reconstructed = {make_halo(20), make_halo(25), make_halo(1000),
                                     make_halo(100)};  // new mid-mass halo
  const auto cmp = compare_halo_catalogs(original, reconstructed, 1.0, 4);
  EXPECT_FALSE(halos_acceptable(cmp, 0.1));
}

TEST(CompareCatalogs, EmptyOriginalRejected) {
  EXPECT_THROW(compare_halo_catalogs({}, {}, 1.0), InvalidArgument);
}

TEST(MatchFraction, ExactMatchIsOne) {
  std::vector<Halo> halos = {make_halo(10, 10, 10, 10), make_halo(20, 100, 100, 100)};
  EXPECT_DOUBLE_EQ(halo_match_fraction(halos, halos, 1.0, 256.0), 1.0);
}

TEST(MatchFraction, DisplacedBeyondToleranceFails) {
  std::vector<Halo> original = {make_halo(10, 10, 10, 10)};
  std::vector<Halo> moved = {make_halo(10, 20, 10, 10)};
  EXPECT_DOUBLE_EQ(halo_match_fraction(original, moved, 1.0, 256.0), 0.0);
  EXPECT_DOUBLE_EQ(halo_match_fraction(original, moved, 15.0, 256.0), 1.0);
}

TEST(MatchFraction, PeriodicDistanceUsed) {
  std::vector<Halo> original = {make_halo(10, 1.0, 10, 10)};
  std::vector<Halo> wrapped = {make_halo(10, 255.0, 10, 10)};  // 2 units away through seam
  EXPECT_DOUBLE_EQ(halo_match_fraction(original, wrapped, 3.0, 256.0), 1.0);
}

TEST(MatchFraction, EmptyOriginalIsVacuouslyOne) {
  EXPECT_DOUBLE_EQ(halo_match_fraction({}, {}, 1.0, 256.0), 1.0);
}

}  // namespace
}  // namespace cosmo::analysis
