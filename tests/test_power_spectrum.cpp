#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "analysis/power_spectrum.hpp"
#include "cosmo/nyx_synth.hpp"
#include "random/rng.hpp"

namespace cosmo::analysis {
namespace {

TEST(PowerSpectrum, SingleModeLandsInRightBin) {
  const Dims dims = Dims::d3(32, 32, 32);
  std::vector<float> field(dims.count());
  const double k0 = 6.0;  // plane wave along x with frequency 6
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x) {
        field[dims.index(x, y, z)] = static_cast<float>(
            std::cos(2.0 * std::numbers::pi * k0 * static_cast<double>(x) / 32.0));
      }
    }
  }
  const auto pk = power_spectrum(field, dims);
  // The bin containing k = 6 should dominate every other bin.
  double peak_power = 0.0, peak_k = 0.0, other_max = 0.0;
  for (const auto& bin : pk) {
    if (bin.power > peak_power) {
      other_max = std::max(other_max, peak_power);
      peak_power = bin.power;
      peak_k = bin.k;
    } else {
      other_max = std::max(other_max, bin.power);
    }
  }
  EXPECT_NEAR(peak_k, k0, 1.0);
  EXPECT_GT(peak_power, other_max * 100.0);
}

TEST(PowerSpectrum, WhiteNoiseIsFlat) {
  const Dims dims = Dims::d3(32, 32, 32);
  Rng rng(121);
  std::vector<float> field(dims.count());
  for (auto& v : field) v = static_cast<float>(rng.normal());
  const auto pk = power_spectrum(field, dims, 8);
  ASSERT_GE(pk.size(), 4u);
  // All bins within a factor ~2 of the mean (statistical scatter only).
  double mean = 0.0;
  for (const auto& bin : pk) mean += bin.power;
  mean /= static_cast<double>(pk.size());
  for (const auto& bin : pk) {
    EXPECT_GT(bin.power, mean * 0.5);
    EXPECT_LT(bin.power, mean * 2.0);
  }
}

TEST(PowerSpectrum, MeanOffsetIgnored) {
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(122);
  std::vector<float> a(dims.count()), b(dims.count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = a[i] + 1000.0f;  // huge DC offset
  }
  const auto pk_a = power_spectrum(a, dims);
  const auto pk_b = power_spectrum(b, dims);
  ASSERT_EQ(pk_a.size(), pk_b.size());
  for (std::size_t i = 0; i < pk_a.size(); ++i) {
    EXPECT_NEAR(pk_b[i].power / pk_a[i].power, 1.0, 1e-3);
  }
}

TEST(PowerSpectrum, GeneratedNyxDeltaFollowsInputSpectrumShape) {
  NyxConfig config;
  config.dim = 64;
  config.knee = 8.0;
  const Field delta = generate_nyx_delta(config);
  const auto pk = power_spectrum(delta.data, delta.dims, 16);
  ASSERT_GE(pk.size(), 8u);
  // The input template rises to the knee then falls: the spectrum at very
  // high k must sit well below the peak.
  double peak = 0.0;
  for (const auto& bin : pk) peak = std::max(peak, bin.power);
  EXPECT_GT(peak, pk.back().power * 3.0);
  // And the first bin (largest scales) should not be the global peak of a
  // k^1 rising template.
  EXPECT_LT(pk.front().power, peak);
}

TEST(PkRatio, IdenticalFieldsGiveUnity) {
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(123);
  std::vector<float> field(dims.count());
  for (auto& v : field) v = static_cast<float>(rng.normal());
  const PkRatio r = pk_ratio(field, field, dims);
  EXPECT_EQ(r.max_deviation, 0.0);
  for (const double ratio : r.ratio) EXPECT_DOUBLE_EQ(ratio, 1.0);
  EXPECT_TRUE(pk_acceptable(r, 0.01));
}

TEST(PkRatio, SmallNoiseSmallDeviation) {
  const Dims dims = Dims::d3(32, 32, 32);
  Rng rng(124);
  std::vector<float> orig(dims.count()), recon(dims.count());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(100.0 * std::sin(0.3 * static_cast<double>(i % 32)));
    recon[i] = orig[i] + static_cast<float>(rng.normal(0.0, 1e-4));
  }
  const PkRatio r = pk_ratio(orig, recon, dims, 0.5);
  EXPECT_TRUE(pk_acceptable(r, 0.01));
}

TEST(PkRatio, AmplitudeScalingDetected) {
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(125);
  std::vector<float> orig(dims.count()), recon(dims.count());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(rng.normal());
    recon[i] = orig[i] * 1.05f;  // 5% amplitude error -> ~10% power error
  }
  const PkRatio r = pk_ratio(orig, recon, dims);
  EXPECT_FALSE(pk_acceptable(r, 0.01));
  EXPECT_NEAR(r.max_deviation, 0.1025, 0.01);
}

TEST(PkRatio, KFractionLimitsEvaluatedRange) {
  const Dims dims = Dims::d3(32, 32, 32);
  Rng rng(126);
  std::vector<float> orig(dims.count());
  for (auto& v : orig) v = static_cast<float>(rng.normal());
  const PkRatio full = pk_ratio(orig, orig, dims, 1.0);
  const PkRatio half = pk_ratio(orig, orig, dims, 0.5);
  EXPECT_LT(half.k.size(), full.k.size());
  EXPECT_LE(half.k.back(), 8.0 + 1.0);  // k_nyq/2 = 8
}

TEST(PowerSpectrum, InvalidInputsRejected) {
  const std::vector<float> small(8, 0.0f);
  EXPECT_THROW(power_spectrum(small, Dims::d1(8)), InvalidArgument);
  EXPECT_THROW(power_spectrum(small, Dims::d3(2, 2, 3)), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::analysis
