#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.hpp"
#include "sz/pwrel.hpp"

namespace cosmo::sz {
namespace {

std::vector<float> velocity_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n);
  for (auto& v : data) {
    // Wide dynamic range with both signs, like HACC velocities.
    const double mag = std::exp(rng.uniform(0.0, 9.0));
    v = static_cast<float>(rng.uniform() < 0.5 ? -mag : mag);
  }
  return data;
}

double max_rel_error(std::span<const float> orig, std::span<const float> recon,
                     double ignore_below) {
  double worst = 0.0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (std::fabs(orig[i]) <= ignore_below) continue;
    worst = std::max(worst, std::fabs(static_cast<double>(recon[i]) - orig[i]) /
                                std::fabs(static_cast<double>(orig[i])));
  }
  return worst;
}

TEST(PwRel, RelativeBoundHolds) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = velocity_like(dims.count(), 71);
  PwRelParams params;
  params.pw_rel_bound = 0.01;
  const auto bytes = compress_pwrel(data, dims, params);
  Dims out_dims;
  const auto recon = decompress_pwrel(bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_LE(max_rel_error(data, recon, 0.0), params.pw_rel_bound * (1 + 1e-6));
}

TEST(PwRel, SignsPreserved) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = velocity_like(dims.count(), 72);
  PwRelParams params;
  params.pw_rel_bound = 0.1;
  const auto recon = decompress_pwrel(compress_pwrel(data, dims, params));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] > 0.0f) EXPECT_GT(recon[i], 0.0f) << i;
    if (data[i] < 0.0f) EXPECT_LT(recon[i], 0.0f) << i;
  }
}

TEST(PwRel, ZerosReconstructExactly) {
  const Dims dims = Dims::d3(8, 8, 8);
  auto data = velocity_like(dims.count(), 73);
  for (std::size_t i = 0; i < data.size(); i += 7) data[i] = 0.0f;
  PwRelParams params;
  params.pw_rel_bound = 0.05;
  const auto recon = decompress_pwrel(compress_pwrel(data, dims, params));
  for (std::size_t i = 0; i < data.size(); i += 7) {
    EXPECT_EQ(recon[i], 0.0f) << i;
  }
}

TEST(PwRel, SubThresholdValuesFlushToZero) {
  const Dims dims = Dims::d3(8, 8, 8);
  std::vector<float> data(dims.count(), 1000.0f);
  data[5] = 1e-20f;  // far below max * 1e-10
  PwRelParams params;
  params.pw_rel_bound = 0.01;
  const auto recon = decompress_pwrel(compress_pwrel(data, dims, params));
  EXPECT_EQ(recon[5], 0.0f);
}

TEST(PwRel, LooserBoundGivesBetterRatio) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = velocity_like(dims.count(), 74);
  PwRelParams tight, loose;
  tight.pw_rel_bound = 0.001;
  loose.pw_rel_bound = 0.1;
  EXPECT_LT(compress_pwrel(data, dims, loose).size(),
            compress_pwrel(data, dims, tight).size());
}

TEST(PwRel, StatsPopulated) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = velocity_like(dims.count(), 75);
  PwRelParams params;
  params.pw_rel_bound = 0.01;
  Stats stats;
  const auto bytes = compress_pwrel(data, dims, params, &stats);
  EXPECT_EQ(stats.compressed_bytes, bytes.size());
  EXPECT_GT(stats.bit_rate, 0.0);
}

TEST(PwRel, InvalidBoundsRejected) {
  const std::vector<float> data(64, 1.0f);
  PwRelParams params;
  params.pw_rel_bound = 0.0;
  EXPECT_THROW(compress_pwrel(data, Dims::d3(4, 4, 4), params), InvalidArgument);
  params.pw_rel_bound = 1.5;
  EXPECT_THROW(compress_pwrel(data, Dims::d3(4, 4, 4), params), InvalidArgument);
}

TEST(PwRel, CorruptStreamThrows) {
  const std::vector<float> data(64, 1.0f);
  PwRelParams params;
  params.pw_rel_bound = 0.01;
  auto bytes = compress_pwrel(data, Dims::d3(4, 4, 4), params);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decompress_pwrel(bytes), FormatError);
  bytes[0] ^= 0xFF;
  bytes.resize(10);
  EXPECT_THROW(decompress_pwrel(bytes), FormatError);
}

/// Property sweep across relative bounds.
class PwRelSweep : public ::testing::TestWithParam<double> {};

TEST_P(PwRelSweep, BoundHolds) {
  const double bound = GetParam();
  const Dims dims = Dims::d3(12, 12, 12);
  const auto data = velocity_like(dims.count(), 76);
  PwRelParams params;
  params.pw_rel_bound = bound;
  const auto recon = decompress_pwrel(compress_pwrel(data, dims, params));
  EXPECT_LE(max_rel_error(data, recon, 0.0), bound * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Bounds, PwRelSweep,
                         ::testing::Values(1e-3, 1e-2, 0.05, 0.1, 0.25));

}  // namespace
}  // namespace cosmo::sz
