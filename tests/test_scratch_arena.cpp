#include <gtest/gtest.h>

#include "common/scratch_arena.hpp"

namespace cosmo {
namespace {

TEST(ScratchArena, FirstLeaseAllocatesFresh) {
  ScratchArena arena;
  auto lease = arena.floats();
  ASSERT_TRUE(lease);
  EXPECT_TRUE(lease->empty());
  const auto stats = arena.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.reuses, 0u);
}

TEST(ScratchArena, ReturnedBufferIsReusedWithCapacity) {
  ScratchArena arena;
  const float* data_ptr = nullptr;
  {
    auto lease = arena.floats();
    lease->assign(1024, 1.5f);
    data_ptr = lease->data();
  }  // lease returns the buffer to the arena
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);

  auto again = arena.floats();
  EXPECT_EQ(again->data(), data_ptr);  // same allocation came back
  EXPECT_GE(again->capacity(), 1024u);
  const auto stats = arena.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.pooled_buffers, 0u);
}

TEST(ScratchArena, ByteAndFloatPoolsAreSeparate) {
  ScratchArena arena;
  {
    auto f = arena.floats();
    f->resize(10);
  }
  auto b = arena.bytes();
  EXPECT_TRUE(b->empty());
  EXPECT_EQ(arena.stats().reuses, 0u);  // byte lease can't reuse a float buffer
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);
}

TEST(ScratchArena, HighWaterTracksPeakCapacity) {
  ScratchArena arena;
  {
    auto a = arena.floats();
    auto b = arena.floats();
    a->assign(1000, 0.0f);  // >= 4000 bytes
    b->assign(500, 0.0f);   // >= 2000 bytes
  }
  const auto stats = arena.stats();
  EXPECT_GE(stats.high_water_bytes, 6000u);
  EXPECT_EQ(stats.pooled_buffers, 2u);
  EXPECT_GE(stats.pooled_bytes, 6000u);
}

TEST(ScratchArena, TrimDropsPooledBuffers) {
  ScratchArena arena;
  {
    auto a = arena.floats();
    a->resize(100);
  }
  ASSERT_EQ(arena.stats().pooled_buffers, 1u);
  arena.trim();
  EXPECT_EQ(arena.stats().pooled_buffers, 0u);
  EXPECT_EQ(arena.stats().pooled_bytes, 0u);
  // High-water mark survives the trim (it is a peak, not a level).
  EXPECT_GT(arena.stats().high_water_bytes, 0u);
}

TEST(ScratchArena, MovedFromLeaseReleasesNothing) {
  ScratchArena arena;
  {
    auto a = arena.floats();
    a->resize(64);
    ArenaLease<float> b = std::move(a);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is bool-false
    EXPECT_TRUE(b);
    EXPECT_EQ(b->size(), 64u);
  }  // only b returns a buffer
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);
}

TEST(ScratchArena, ManualResetReturnsEarly) {
  ScratchArena arena;
  auto a = arena.floats();
  a->resize(16);
  a.reset();
  EXPECT_FALSE(a);
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);
  a.reset();  // idempotent
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);
}

}  // namespace
}  // namespace cosmo
