/// Parallel CBench sweeps must be drop-in replacements for serial ones:
/// same rows, same order, byte-identical sizes/ratios/distortion. For the
/// GPU-simulated codecs the scheduler must additionally leave the modeled
/// TimingBreakdown untouched (they fall back to the serial path, since the
/// simulator's jitter stream is call-order dependent).
#include <gtest/gtest.h>

#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"

namespace cosmo::foresight {
namespace {

io::Container small_nyx() {
  NyxConfig config;
  config.dim = 16;
  return generate_nyx(config);
}

const std::vector<CompressorConfig> kCpuConfigs = {
    {"rate", 4.0}, {"rate", 8.0}, {"accuracy", 0.5}};

void expect_identical(const std::vector<CBenchResult>& serial,
                      const std::vector<CBenchResult>& parallel,
                      bool modeled_timing) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].field + " " + serial[i].config.label());
    EXPECT_EQ(serial[i].field, parallel[i].field);
    EXPECT_EQ(serial[i].config.label(), parallel[i].config.label());
    EXPECT_EQ(serial[i].compressed_bytes, parallel[i].compressed_bytes);
    EXPECT_EQ(serial[i].ratio, parallel[i].ratio);
    EXPECT_EQ(serial[i].bit_rate, parallel[i].bit_rate);
    EXPECT_EQ(serial[i].distortion.mse, parallel[i].distortion.mse);
    EXPECT_EQ(serial[i].distortion.psnr_db, parallel[i].distortion.psnr_db);
    EXPECT_EQ(serial[i].distortion.mre, parallel[i].distortion.mre);
    EXPECT_EQ(serial[i].reconstructed, parallel[i].reconstructed);
    if (modeled_timing) {
      // Modeled GPU timings are part of the result contract, not noise.
      EXPECT_EQ(serial[i].compress_seconds(), parallel[i].compress_seconds());
      EXPECT_EQ(serial[i].decompress_seconds(), parallel[i].decompress_seconds());
      EXPECT_EQ(serial[i].gpu_compress().kernel, parallel[i].gpu_compress().kernel);
      EXPECT_EQ(serial[i].gpu_compress().memcpy, parallel[i].gpu_compress().memcpy);
      EXPECT_EQ(serial[i].gpu_decompress().kernel, parallel[i].gpu_decompress().kernel);
    }
  }
}

TEST(SweepParallel, CpuCodecMatchesSerialByteForByte) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  ASSERT_TRUE(codec->concurrent_sessions_safe());

  CBench serial_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 1});
  CBench parallel_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 4});
  const auto serial = serial_bench.sweep(data, *codec, kCpuConfigs);
  const auto parallel = parallel_bench.sweep(data, *codec, kCpuConfigs);
  ASSERT_EQ(serial.size(), 6u * kCpuConfigs.size());
  expect_identical(serial, parallel, /*modeled_timing=*/false);
}

TEST(SweepParallel, SzCpuMatchesSerialByteForByte) {
  const auto data = small_nyx();
  const auto codec = make_compressor("sz-cpu");
  ASSERT_TRUE(codec->concurrent_sessions_safe());

  const std::vector<CompressorConfig> configs = {{"abs", 0.5}, {"pw_rel", 0.01}};
  CBench serial_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 1});
  CBench parallel_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 3});
  expect_identical(serial_bench.sweep(data, *codec, configs),
                   parallel_bench.sweep(data, *codec, configs),
                   /*modeled_timing=*/false);
}

TEST(SweepParallel, GpuSimulatedCodecKeepsModeledTimings) {
  const auto data = small_nyx();
  // Two simulators with identical specs: each sweep consumes its own jitter
  // stream from the start, so even the modeled timings must line up exactly
  // if (and only if) the parallel sweep preserves the serial call order.
  gpu::GpuSimulator sim_serial(gpu::find_device("V100"));
  gpu::GpuSimulator sim_parallel(gpu::find_device("V100"));
  const auto serial_codec = make_compressor("cuzfp", &sim_serial);
  const auto parallel_codec = make_compressor("cuzfp", &sim_parallel);
  ASSERT_FALSE(serial_codec->concurrent_sessions_safe());

  const std::vector<CompressorConfig> configs = {{"rate", 4.0}, {"rate", 8.0}};
  CBench serial_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 1});
  CBench parallel_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 4});
  expect_identical(serial_bench.sweep(data, *serial_codec, configs),
                   parallel_bench.sweep(data, *parallel_codec, configs),
                   /*modeled_timing=*/true);
}

TEST(SweepParallel, GpuSzKeepsModeledTimings) {
  const auto data = small_nyx();
  gpu::GpuSimulator sim_serial(gpu::find_device("V100"));
  gpu::GpuSimulator sim_parallel(gpu::find_device("V100"));
  const auto serial_codec = make_compressor("gpu-sz", &sim_serial);
  const auto parallel_codec = make_compressor("gpu-sz", &sim_parallel);

  const std::vector<CompressorConfig> configs = {{"abs", 0.5}};
  CBench serial_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 1});
  CBench parallel_bench({.keep_reconstructed = true, .dataset_name = "nyx", .threads = 2});
  expect_identical(serial_bench.sweep(data, *serial_codec, configs),
                   parallel_bench.sweep(data, *parallel_codec, configs),
                   /*modeled_timing=*/true);
}

TEST(SweepParallel, AutoThreadsUsesGlobalPool) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench serial_bench({.keep_reconstructed = false, .dataset_name = "nyx", .threads = 1});
  CBench auto_bench({.keep_reconstructed = false, .dataset_name = "nyx", .threads = 0});
  expect_identical(serial_bench.sweep(data, *codec, kCpuConfigs),
                   auto_bench.sweep(data, *codec, kCpuConfigs),
                   /*modeled_timing=*/false);
}

TEST(SweepParallel, FieldFilterAndOrderPreserved) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench({.keep_reconstructed = false, .dataset_name = "nyx", .threads = 4});
  const auto results =
      bench.sweep(data, *codec, kCpuConfigs, [](const std::string& name) {
        return name == "temperature" || name == "velocity_x";
      });
  // Field-major, config-minor: temperature rows first (container order),
  // each field sweeping configs in the given order.
  ASSERT_EQ(results.size(), 2u * kCpuConfigs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& expect_cfg = kCpuConfigs[i % kCpuConfigs.size()];
    EXPECT_EQ(results[i].field, i < kCpuConfigs.size() ? "temperature" : "velocity_x");
    EXPECT_EQ(results[i].config.label(), expect_cfg.label());
  }
}

TEST(SweepParallel, WorkerExceptionPropagates) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench({.keep_reconstructed = false, .dataset_name = "nyx", .threads = 4});
  // "abs" is not a zfp-cpu mode; the worker's exception must reach the caller.
  EXPECT_THROW(bench.sweep(data, *codec, {{"rate", 8.0}, {"abs", 0.5}}),
               InvalidArgument);
}

}  // namespace
}  // namespace cosmo::foresight
