#include <gtest/gtest.h>

#include <cmath>

#include "codec/huffman.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

TEST(Huffman, RoundTripSimple) {
  const std::vector<std::uint32_t> symbols = {1, 1, 2, 3, 1, 2, 1, 1, 4};
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, EmptyInput) {
  const std::vector<std::uint32_t> symbols;
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> symbols(1000, 42);
  const auto encoded = huffman_encode(symbols);
  EXPECT_EQ(huffman_decode(encoded), symbols);
  // 1000 symbols at 1 bit each plus header: far below raw 4 bytes/symbol.
  EXPECT_LT(encoded.size(), 200u);
}

TEST(Huffman, SingleOccurrence) {
  const std::vector<std::uint32_t> symbols = {7};
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, LargeSparseSymbols) {
  // SZ quantization codes live near the radius (2^15); exercise large values.
  std::vector<std::uint32_t> symbols;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(32768 + static_cast<std::uint32_t>(rng.uniform_index(7)) - 3);
  }
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 95% one symbol: entropy ~0.4 bits/symbol; Huffman should get near 1 bit.
  std::vector<std::uint32_t> symbols;
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(rng.uniform() < 0.95 ? 100u
                                           : 100u + static_cast<std::uint32_t>(
                                                        1 + rng.uniform_index(10)));
  }
  const auto encoded = huffman_encode(symbols);
  EXPECT_EQ(huffman_decode(encoded), symbols);
  const double bits_per_symbol = encoded.size() * 8.0 / symbols.size();
  EXPECT_LT(bits_per_symbol, 1.6);
}

TEST(Huffman, UniformDistributionNearLog2N) {
  std::vector<std::uint32_t> symbols;
  Rng rng(5);
  for (int i = 0; i < 16000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(16)));
  }
  const auto encoded = huffman_encode(symbols);
  EXPECT_EQ(huffman_decode(encoded), symbols);
  const double bits_per_symbol = encoded.size() * 8.0 / symbols.size();
  EXPECT_NEAR(bits_per_symbol, 4.0, 0.3);  // log2(16) = 4
}

TEST(Huffman, RandomizedRoundTripProperty) {
  Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    const std::size_t alpha = 1 + rng.uniform_index(200);
    const std::size_t count = rng.uniform_index(3000);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(rng.uniform_index(alpha) * 977));
    }
    EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols) << "round " << round;
  }
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  const std::vector<std::uint64_t> freqs = {50, 20, 10, 10, 5, 5};
  const auto lengths = huffman_code_lengths(freqs);
  double kraft = 0.0;
  for (const auto len : lengths) {
    ASSERT_GT(len, 0u);
    kraft += std::pow(2.0, -static_cast<double>(len));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-12);  // Huffman codes are complete
}

TEST(Huffman, CodeLengthsOrderedByFrequency) {
  const std::vector<std::uint64_t> freqs = {100, 1, 50, 2};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
  EXPECT_LE(lengths[3], lengths[1]);
}

TEST(Huffman, ZeroFrequencySymbolsGetNoCode) {
  const std::vector<std::uint64_t> freqs = {10, 0, 5};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_GT(lengths[0], 0u);
  EXPECT_EQ(lengths[1], 0u);
  EXPECT_GT(lengths[2], 0u);
}

TEST(Huffman, AverageLengthWithinOneBitOfEntropy) {
  const std::vector<std::uint64_t> freqs = {60, 25, 10, 4, 1};
  const auto lengths = huffman_code_lengths(freqs);
  std::uint64_t total = 0;
  double avg_len = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) total += freqs[i];
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    avg_len += static_cast<double>(freqs[i]) / static_cast<double>(total) * lengths[i];
  }
  const double h = shannon_entropy_bits(freqs);
  EXPECT_GE(avg_len + 1e-12, h);
  EXPECT_LE(avg_len, h + 1.0);
}

TEST(Huffman, ShannonEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({4, 4, 4, 4}), 2.0);
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({10}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({}), 0.0);
}

TEST(Huffman, CorruptStreamThrows) {
  const std::vector<std::uint32_t> symbols = {1, 2, 3, 1, 2, 3};
  auto encoded = huffman_encode(symbols);
  encoded[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(huffman_decode(encoded), FormatError);
}

TEST(Huffman, TruncatedStreamThrows) {
  std::vector<std::uint32_t> symbols(100);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i] = static_cast<std::uint32_t>(i % 7);
  }
  auto encoded = huffman_encode(symbols);
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(huffman_decode(encoded), FormatError);
}

}  // namespace
}  // namespace cosmo
