/// \file test_codec_registry.cpp
/// \brief Registry conformance suite: every registered codec — present and
/// future — is exercised through the same contract, driven purely by its
/// CodecCapabilities: round-trip per supported mode, session reuse,
/// corruption containment, on_error=continue, capability consistency, and
/// the error messages the registry promises. Plus the FZ-specific facts
/// (device timing, OOM fallback byte-identity, trace spans, metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/telemetry.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"
#include "foresight/compressor.hpp"
#include "foresight/sweep.hpp"
#include "random/rng.hpp"

namespace cosmo::foresight {
namespace {

using telemetry::Tracer;

/// Smooth strictly-positive field: every mode — including pw_rel — is
/// well-defined on it.
Field conformance_field() {
  Rng rng(77);
  Field f("field", Dims::d3(16, 16, 16));
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    f.data[i] = static_cast<float>(
        100.0 + 50.0 * std::sin(0.01 * static_cast<double>(i)) + rng.normal());
  }
  return f;
}

/// A mode-appropriate config for conformance runs.
CompressorConfig config_for_mode(const std::string& mode) {
  if (mode == "abs") return {"abs", 0.1};
  if (mode == "pw_rel") return {"pw_rel", 0.05};
  if (mode == "rate") return {"rate", 8.0};
  if (mode == "accuracy") return {"accuracy", 0.1};
  if (mode == "precision") return {"precision", 16.0};
  ADD_FAILURE() << "no conformance config for mode '" << mode << "'";
  return {mode, 1.0};
}

/// The registered mode universe; codecs must draw modes from it so
/// config_for_mode stays exhaustive.
const std::vector<std::string> kAllModes = {"abs", "pw_rel", "rate", "accuracy",
                                            "precision"};

struct TracerOffGuard {
  TracerOffGuard() { Tracer::disable(); }
  ~TracerOffGuard() {
    Tracer::disable();
    Tracer::clear();
  }
};

// ---------------------------------------------------------------------------
// Conformance: every codec x every supported mode
// ---------------------------------------------------------------------------

TEST(RegistryConformance, EveryCodecRoundTripsEverySupportedMode) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  for (const auto& name : available_compressors()) {
    const auto& caps = CodecRegistry::instance().capabilities(name);
    const auto codec = make_compressor(name, &sim);
    EXPECT_EQ(&codec->capabilities(), &caps) << name;
    for (const auto& mode : caps.modes) {
      ASSERT_NE(std::find(kAllModes.begin(), kAllModes.end(), mode), kAllModes.end())
          << name << " registers unknown mode " << mode;
      const CompressorConfig config = config_for_mode(mode);
      const RunOutput out = codec->run(field, config);
      ASSERT_EQ(out.reconstructed.size(), field.data.size()) << name << " " << mode;
      ASSERT_FALSE(out.bytes.empty()) << name << " " << mode;
      for (std::size_t i = 0; i < field.data.size(); ++i) {
        const double err =
            std::fabs(static_cast<double>(out.reconstructed[i]) - field.data[i]);
        ASSERT_TRUE(std::isfinite(out.reconstructed[i]))
            << name << " " << mode << " at " << i;
        if (mode == "abs" || mode == "accuracy") {
          ASSERT_LE(err, config.value * (1 + 1e-9)) << name << " " << mode << " at " << i;
        } else if (mode == "pw_rel") {
          ASSERT_LE(err, config.value * std::fabs(field.data[i]) * (1 + 1e-6))
              << name << " at " << i;
        }
      }
    }
  }
}

TEST(RegistryConformance, SessionReuseProducesIdenticalStreams) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  for (const auto& name : available_compressors()) {
    const auto& caps = CodecRegistry::instance().capabilities(name);
    const auto codec = make_compressor(name, &sim);
    const CompressorConfig config = config_for_mode(caps.modes.front());

    const auto session = codec->open_session();
    const CompressResult first = session->compress(field, config);
    const CompressResult again = session->compress(field, config);
    EXPECT_EQ(first.bytes, again.bytes) << name << ": session reuse changed the stream";

    const CompressResult fresh = codec->open_session()->compress(field, config);
    EXPECT_EQ(first.bytes, fresh.bytes) << name << ": fresh session changed the stream";

    const DecompressResult d1 = session->decompress(first);
    const DecompressResult d2 = session->decompress(again);
    EXPECT_EQ(d1.values, d2.values) << name;
  }
}

TEST(RegistryConformance, CorruptionMatrixIsContained) {
  // Every codec's decode surface must either decode or throw cosmo::Error
  // on corrupted streams — nothing may crash or escape with another type.
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  for (const auto& name : available_compressors()) {
    const auto& caps = CodecRegistry::instance().capabilities(name);
    const auto codec = make_compressor(name, &sim);
    const auto session = codec->open_session();
    const CompressResult clean =
        session->compress(field, config_for_mode(caps.modes.front()));

    struct Case {
      fault::Corruption kind;
      std::size_t offset_num, offset_den;  // offset = size * num / den
      std::uint64_t arg;
    };
    const Case cases[] = {
        {fault::Corruption::kBitFlip, 0, 4, 3},      // header region
        {fault::Corruption::kBitFlip, 1, 2, 5},      // payload
        {fault::Corruption::kTruncate, 1, 3, 0},     // deep truncation
        {fault::Corruption::kTruncate, 9, 10, 0},    // tail truncation
        {fault::Corruption::kZeroRun, 1, 4, 64},     // zeroed run
    };
    for (const auto& c : cases) {
      CompressResult corrupted = clean;
      const std::size_t offset =
          std::min(corrupted.bytes.size() - 1,
                   corrupted.bytes.size() * c.offset_num / c.offset_den);
      fault::FaultPlan::apply(corrupted.bytes, c.kind, offset, c.arg);
      DecompressResult out;
      try {
        session->decompress(corrupted, out);  // decoding garbage is fine
      } catch (const Error&) {
        // the contained outcome for malformed input
      }
    }
  }
}

TEST(RegistryConformance, SweepContinuesPastFailingConfigs) {
  // Under on_error=continue, a config a codec does not support produces a
  // "failed" row and the sweep keeps going — for every codec.
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  NyxConfig nyx_config;
  nyx_config.dim = 8;
  const io::Container nyx = generate_nyx(nyx_config);
  CBench bench({.keep_reconstructed = false,
                .dataset_name = "conformance",
                .on_error = OnError::kContinue});
  for (const auto& name : available_compressors()) {
    const auto& caps = CodecRegistry::instance().capabilities(name);
    const auto codec = make_compressor(name, &sim);
    // A mode this codec does not register (every codec lacks at least one).
    std::string bad_mode;
    for (const auto& mode : kAllModes) {
      if (!caps.supports_mode(mode)) {
        bad_mode = mode;
        break;
      }
    }
    ASSERT_FALSE(bad_mode.empty()) << name << " claims every mode";
    const std::vector<CompressorConfig> configs = {config_for_mode(caps.modes.front()),
                                                   config_for_mode(bad_mode)};
    const auto results = bench.sweep(nyx, *codec, configs,
                                     [](const std::string& f) { return f == "temperature"; });
    ASSERT_EQ(results.size(), 2u) << name;
    EXPECT_EQ(results[0].status, "ok") << name;
    EXPECT_EQ(results[1].status, "failed") << name;
    EXPECT_NE(results[1].error.find(bad_mode), std::string::npos)
        << name << ": failed row should name the rejected mode";
  }
}

// ---------------------------------------------------------------------------
// Registry error messages and capability consistency
// ---------------------------------------------------------------------------

TEST(RegistryConformance, UnknownCodecErrorListsRegisteredNames) {
  try {
    (void)make_compressor("no-such-codec");
    FAIL() << "unknown codec did not throw";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    for (const auto& name : available_compressors()) {
      EXPECT_NE(message.find(name), std::string::npos)
          << "error message should list '" << name << "': " << message;
    }
  }
}

TEST(RegistryConformance, ModeMismatchErrorListsSupportedModes) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  try {
    (void)make_compressor("cuzfp", &sim)->run(field, {"abs", 0.1});
    FAIL() << "mode mismatch did not throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("rate"), std::string::npos) << e.what();
  }
  try {
    (void)make_compressor("fz-cpu")->run(field, {"rate", 8.0});
    FAIL() << "mode mismatch did not throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("abs"), std::string::npos) << e.what();
  }
}

TEST(RegistryConformance, CapabilitiesAreConsistent) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  const auto names = available_compressors();
  for (const auto& name : names) {
    EXPECT_EQ(std::count(names.begin(), names.end(), name), 1) << name;
    const auto& caps = CodecRegistry::instance().capabilities(name);
    EXPECT_EQ(caps.name, name);
    EXPECT_FALSE(caps.summary.empty()) << name;
    EXPECT_FALSE(caps.modes.empty()) << name;
    if (caps.needs_device) {
      EXPECT_THROW((void)make_compressor(name, nullptr), InvalidArgument) << name;
      // Device codecs name a kernel profile the simulator knows.
      const auto profiles = gpu::GpuSimulator::kernel_profiles();
      EXPECT_NE(std::find(profiles.begin(), profiles.end(), caps.kernel_profile),
                profiles.end())
          << name << " profile '" << caps.kernel_profile << "'";
    } else {
      EXPECT_NO_THROW((void)make_compressor(name, nullptr)) << name;
      EXPECT_TRUE(caps.kernel_profile.empty()) << name;
    }
    // The registered default sweep materializes into supported-mode configs.
    ASSERT_FALSE(caps.default_sweep.empty()) << name;
    const auto candidates = default_grid_candidates(name, field);
    ASSERT_FALSE(candidates.empty()) << name;
    for (const auto& config : candidates) {
      EXPECT_TRUE(caps.supports_mode(config.mode)) << name << " " << config.label();
      EXPECT_GT(config.value, 0.0) << name << " " << config.label();
    }
  }
  EXPECT_THROW((void)CodecRegistry::instance().capabilities("no-such"), InvalidArgument);
  EXPECT_THROW((void)default_grid_candidates("no-such", field), InvalidArgument);
}

// ---------------------------------------------------------------------------
// FZ specifics: device timing, OOM fallback, spans, metrics
// ---------------------------------------------------------------------------

TEST(FzCodec, AppearsInCBenchSweepOutput) {
  NyxConfig nyx_config;
  nyx_config.dim = 8;
  const io::Container nyx = generate_nyx(nyx_config);
  const auto codec = make_compressor("fz-cpu");
  CBench bench({.keep_reconstructed = false, .dataset_name = "fz"});
  const auto results =
      bench.sweep(nyx, *codec, default_grid_candidates("fz-cpu", nyx.find("temperature").field),
                  [](const std::string& f) { return f == "temperature"; });
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_EQ(r.compressor, "fz-cpu");
    EXPECT_EQ(r.status, "ok");
    EXPECT_GT(r.ratio, 1.0);
  }
  EXPECT_NE(format_results(results).find("fz-cpu"), std::string::npos);
}

TEST(FzCodec, GpuVariantReportsDeviceTiming) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const Field field = conformance_field();
  const auto codec = make_compressor("fz-gpu", &sim);
  const RunOutput out = codec->run(field, {"abs", 0.1});
  EXPECT_TRUE(out.has_gpu_timing());
  EXPECT_TRUE(out.throughput_reportable);
  EXPECT_GT(out.gpu_compress().kernel, 0.0);
  EXPECT_GT(out.gpu_decompress().memcpy, 0.0);
  // The device stream is the host stream: same codec, modeled transport.
  const auto host = make_compressor("fz-cpu");
  EXPECT_EQ(out.bytes, host->open_session()->compress(field, {"abs", 0.1}).bytes);
}

TEST(FzCodec, OomFallsBackToHostByteIdentically) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_oom_every = 1;
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);

  auto& fallbacks = telemetry::MetricsRegistry::instance().counter("codec.cpu_fallbacks");
  const std::uint64_t fallbacks_before = fallbacks.value();

  const Field field = conformance_field();
  const auto codec = make_compressor("fz-gpu", &sim);
  const auto session = codec->open_session();
  const CompressResult c = session->compress(field, {"abs", 0.1});
  EXPECT_TRUE(c.cpu_fallback());
  EXPECT_FALSE(c.has_gpu_timing());
  EXPECT_FALSE(c.throughput_reportable);

  const auto host = make_compressor("fz-cpu");
  EXPECT_EQ(c.bytes, host->open_session()->compress(field, {"abs", 0.1}).bytes);

  const DecompressResult d = session->decompress(c);
  EXPECT_TRUE(d.cpu_fallback());
  EXPECT_EQ(d.values.size(), field.data.size());
  EXPECT_GE(plan.counts().gpu_ooms, 2u);
  EXPECT_GE(fallbacks.value(), fallbacks_before + 2);
}

TEST(FzCodec, EmitsTraceSpans) {
  TracerOffGuard guard;
  const Field field = conformance_field();
  const auto codec = make_compressor("fz-cpu");
  Tracer::enable();
  {
    const auto session = codec->open_session();
    const CompressResult c = session->compress(field, {"abs", 0.1});
    (void)session->decompress(c);
  }
  Tracer::disable();
  std::vector<std::string> seen;
  for (const auto& span : Tracer::snapshot()) seen.emplace_back(span.name);
  for (const char* expected :
       {"fz-cpu.compress", "fz.compress", "fz-cpu.decompress", "fz.decompress"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), expected), seen.end())
        << "missing span " << expected;
  }
}

}  // namespace
}  // namespace cosmo::foresight
