/// \file test_fault_injection.cpp
/// \brief Fault-injection subsystem + end-to-end failure containment.
///
/// The contract under test: a corrupted compressed stream fed to any codec
/// either decodes (possibly to wrong values) or throws a cosmo::Error —
/// never a crash, hang, or unbounded allocation. Transient device faults
/// are retried with backoff; device-OOM degrades to the matching host
/// codec; sweeps and pipelines record failed rows and keep going.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/fault.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"
#include "foresight/pipeline.hpp"
#include "gpu/specs.hpp"

namespace cosmo {
namespace {

using foresight::CBench;
using foresight::CBenchResult;
using foresight::CompressorConfig;
using foresight::CompressResult;
using foresight::DecompressResult;
using foresight::make_compressor;

io::Container small_nyx(std::size_t dim = 16) {
  NyxConfig config;
  config.dim = dim;
  return generate_nyx(config);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// FaultPlan unit behavior
// ---------------------------------------------------------------------------

TEST(FaultPlan, ApplySemantics) {
  std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x00};
  fault::FaultPlan::apply(bytes, fault::Corruption::kBitFlip, 2, 3);
  EXPECT_EQ(bytes[2], 1u << 3);
  fault::FaultPlan::apply(bytes, fault::Corruption::kBitFlip, 2, 3);  // flips back
  EXPECT_EQ(bytes[2], 0u);

  bytes = {1, 2, 3, 4, 5};
  fault::FaultPlan::apply(bytes, fault::Corruption::kZeroRun, 1, 2);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 0, 0, 4, 5}));
  fault::FaultPlan::apply(bytes, fault::Corruption::kZeroRun, 3, 100);  // clamped
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 0, 0, 0, 0}));

  fault::FaultPlan::apply(bytes, fault::Corruption::kTruncate, 2, 0);
  EXPECT_EQ(bytes.size(), 2u);

  std::vector<std::uint8_t> empty;
  fault::FaultPlan::apply(empty, fault::Corruption::kBitFlip, 0, 0);
  fault::FaultPlan::apply(empty, fault::Corruption::kZeroRun, 0, 8);
  EXPECT_TRUE(empty.empty());
}

TEST(FaultPlan, CorruptIsSeededAndDeterministic) {
  fault::Config cfg;
  cfg.corrupt_probability = 1.0;
  fault::FaultPlan a(cfg);
  fault::FaultPlan b(cfg);
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> sa(64, 0xAB), sb(64, 0xAB);
    EXPECT_TRUE(a.corrupt(sa));
    EXPECT_TRUE(b.corrupt(sb));
    EXPECT_EQ(sa, sb) << "plans with equal seeds diverged at stream " << i;
  }
  EXPECT_EQ(a.counts().corruptions, 16u);
}

TEST(FaultPlan, DisabledPlanInjectsNothing) {
  fault::FaultPlan plan(fault::Config{});  // all knobs at their off defaults
  std::vector<std::uint8_t> bytes(32, 0x5A);
  const auto before = bytes;
  EXPECT_FALSE(plan.corrupt(bytes));
  EXPECT_EQ(bytes, before);
  EXPECT_NO_THROW(plan.maybe_throw_gpu_transient("test"));
  EXPECT_NO_THROW(plan.maybe_throw_gpu_oom("test"));
  EXPECT_NO_THROW(plan.maybe_throw_io("p", "load"));
  const auto counts = plan.counts();
  EXPECT_EQ(counts.corruptions + counts.gpu_transients + counts.gpu_ooms +
                counts.io_failures,
            0u);
}

TEST(FaultPlan, ScopeInstallsAndRestores) {
  EXPECT_EQ(fault::active(), nullptr);
  fault::FaultPlan plan(fault::Config{});
  {
    fault::Scope scope(plan);
    EXPECT_EQ(fault::active(), &plan);
  }
  EXPECT_EQ(fault::active(), nullptr);
}

// ---------------------------------------------------------------------------
// Corruption matrix: {bit-flip, truncate, zero-run} x five codecs.
// Every corrupted stream must decode or throw a cosmo::Error — no crash, no
// hang, no unbounded allocation. The session is reused across the whole
// matrix and must survive every failure (round-trip check at the end).
// ---------------------------------------------------------------------------

void run_corruption_matrix(const std::string& codec_name, const CompressorConfig& config,
                           gpu::GpuSimulator* sim) {
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto codec = make_compressor(codec_name, sim);
  const auto session = codec->open_session();

  CompressResult clean;
  session->compress(field, config, clean);
  ASSERT_FALSE(clean.bytes.empty());
  const DecompressResult reference = session->decompress(clean);

  const fault::Corruption kinds[] = {fault::Corruption::kBitFlip,
                                     fault::Corruption::kTruncate,
                                     fault::Corruption::kZeroRun};
  const std::size_t n = clean.bytes.size();
  const std::size_t offsets[] = {0, 1, n / 3, n / 2, n - 2, n - 1};
  std::size_t decoded = 0, rejected = 0;
  for (const auto kind : kinds) {
    for (const std::size_t offset : offsets) {
      for (const std::size_t arg : {std::size_t{0}, std::size_t{5}, std::size_t{64}}) {
        CompressResult corrupted;
        corrupted.bytes = clean.bytes;
        corrupted.original_values = clean.original_values;
        fault::FaultPlan::apply(corrupted.bytes, kind, offset, arg);
        DecompressResult d;
        try {
          session->decompress(corrupted, d);
          EXPECT_EQ(d.values.size(), field.data.size())
              << codec_name << ": contained decode must still match the field size";
          ++decoded;
        } catch (const Error&) {
          ++rejected;  // FormatError and friends are the contained outcome
        }
      }
    }
  }
  EXPECT_GT(decoded + rejected, 0u);

  // The session survived every corrupted decode: a clean round-trip on the
  // same session still reproduces the reference reconstruction.
  CompressResult again;
  session->compress(field, config, again);
  EXPECT_EQ(again.bytes, clean.bytes) << codec_name << ": session no longer clean";
  EXPECT_EQ(session->decompress(again).values, reference.values);
}

TEST(CorruptionMatrix, SzCpu) { run_corruption_matrix("sz-cpu", {"abs", 0.1}, nullptr); }

TEST(CorruptionMatrix, SzCpuPwRel) {
  run_corruption_matrix("sz-cpu", {"pw_rel", 0.05}, nullptr);
}

TEST(CorruptionMatrix, ZfpCpu) { run_corruption_matrix("zfp-cpu", {"rate", 8.0}, nullptr); }

TEST(CorruptionMatrix, ZfpOmp) { run_corruption_matrix("zfp-omp", {"rate", 8.0}, nullptr); }

TEST(CorruptionMatrix, GpuSz) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  run_corruption_matrix("gpu-sz", {"abs", 0.1}, &sim);
}

TEST(CorruptionMatrix, CuZfp) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  run_corruption_matrix("cuzfp", {"rate", 8.0}, &sim);
}

// Same contract for the container loader: corrupted files yield FormatError
// (or a clean load when the mutation misses anything structural) — never a
// crash or a multi-gigabyte allocation.
TEST(CorruptionMatrix, ContainerLoad) {
  const auto data = small_nyx(8);
  const std::string clean_path = temp_path("fault_clean.gio");
  io::save(data, clean_path, io::Dialect::kGenericIo);
  const std::vector<std::uint8_t> clean = read_file(clean_path);
  ASSERT_GT(clean.size(), 64u);

  const std::string path = temp_path("fault_corrupt.gio");
  const fault::Corruption kinds[] = {fault::Corruption::kBitFlip,
                                     fault::Corruption::kTruncate,
                                     fault::Corruption::kZeroRun};
  std::size_t loaded = 0, rejected = 0;
  for (const auto kind : kinds) {
    // Hit every region of the file: magic, counts, names, dims, payload, CRC.
    for (std::size_t offset = 0; offset < clean.size();
         offset += 1 + clean.size() / 40) {
      auto bytes = clean;
      fault::FaultPlan::apply(bytes, kind, offset, 7);
      write_file(path, bytes);
      try {
        const io::Container c = io::load(path);
        EXPECT_EQ(c.variables.size(), data.variables.size());
        ++loaded;
      } catch (const Error&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0u) << "corruption never rejected — checks not reached?";
  std::remove(clean_path.c_str());
  std::remove(path.c_str());
}

TEST(ContainerLoad, ErrorsNameVariableAndOffset) {
  const auto data = small_nyx(8);
  const std::string path = temp_path("fault_named.gio");
  io::save(data, path, io::Dialect::kGenericIo);
  auto bytes = read_file(path);
  bytes.resize(bytes.size() / 2);  // cut mid-payload
  write_file(path, bytes);
  try {
    (void)io::load(path);
    FAIL() << "truncated container loaded";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("container:"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Transient GPU faults: bounded retry with backoff
// ---------------------------------------------------------------------------

gpu::RetryPolicy fast_retry() {
  gpu::RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay_seconds = 1e-6;
  p.max_delay_seconds = 1e-5;
  return p;
}

TEST(Retry, TransientFaultRetriedThenSucceeds) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_transient_every = 2;  // device ops 2, 4, ... fault
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);
  gpu::CuZfpDevice dev(sim);
  dev.set_retry_policy(fast_retry());

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto first = dev.compress(field.data, field.dims, 8.0);
  EXPECT_EQ(first.attempts, 1);  // op 1 passes
  const auto second = dev.compress(field.data, field.dims, 8.0);
  EXPECT_EQ(second.attempts, 2);  // op 2 faults, retry op 3 passes
  EXPECT_EQ(plan.counts().gpu_transients, 1u);
  EXPECT_EQ(first.bytes, second.bytes) << "retries must not change the stream";
}

TEST(Retry, ExhaustedRetriesPropagateTransientError) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_transient_every = 1;  // every device op faults
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);
  gpu::CuZfpDevice dev(sim);
  dev.set_retry_policy(fast_retry());

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  EXPECT_THROW((void)dev.compress(field.data, field.dims, 8.0), TransientError);
  EXPECT_EQ(plan.counts().gpu_transients, 3u);  // one per attempt
}

// ---------------------------------------------------------------------------
// Device-OOM: fall back to the matching host codec, bit-identical stream
// ---------------------------------------------------------------------------

TEST(Fallback, CuZfpOomFallsBackToHostZfp) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_oom_every = 1;
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto cuzfp = make_compressor("cuzfp", &sim);
  const auto session = cuzfp->open_session();
  const CompressResult c = session->compress(field, {"rate", 8.0});
  EXPECT_TRUE(c.cpu_fallback());
  EXPECT_FALSE(c.has_gpu_timing());
  EXPECT_FALSE(c.throughput_reportable);
  EXPECT_GE(c.seconds(), 0.0);

  // The fallback stream is bit-identical to the host codec's.
  const auto host = make_compressor("zfp-cpu");
  EXPECT_EQ(c.bytes, host->open_session()->compress(field, {"rate", 8.0}).bytes);

  const DecompressResult d = session->decompress(c);
  EXPECT_TRUE(d.cpu_fallback());
  EXPECT_EQ(d.values.size(), field.data.size());
  EXPECT_GE(plan.counts().gpu_ooms, 2u);
}

TEST(Fallback, GpuSzOomFallsBackToHostSz) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_oom_every = 1;
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto gpu_sz = make_compressor("gpu-sz", &sim);
  const auto session = gpu_sz->open_session();
  const CompressResult c = session->compress(field, {"abs", 0.1});
  EXPECT_TRUE(c.cpu_fallback());
  EXPECT_FALSE(c.has_gpu_timing());
  EXPECT_FALSE(c.throughput_reportable);

  const auto host = make_compressor("sz-cpu");
  EXPECT_EQ(c.bytes, host->open_session()->compress(field, {"abs", 0.1}).bytes);

  const DecompressResult d = session->decompress(c);
  EXPECT_TRUE(d.cpu_fallback());
  EXPECT_EQ(d.values.size(), field.data.size());
}

TEST(Fallback, OomFreeJobsResetTheFallbackFlags) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  fault::Config cfg;
  cfg.gpu_oom_every = 3;  // only device op 3 faults
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);

  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto cuzfp = make_compressor("cuzfp", &sim);
  const auto session = cuzfp->open_session();
  CompressResult c;
  session->compress(field, {"rate", 8.0}, c);  // op 1: clean
  EXPECT_FALSE(c.cpu_fallback());
  session->compress(field, {"rate", 8.0}, c);  // op 2: clean
  session->compress(field, {"rate", 8.0}, c);  // op 3: OOM -> fallback
  EXPECT_TRUE(c.cpu_fallback());
  session->compress(field, {"rate", 8.0}, c);  // op 4 (fresh counter run): clean
  EXPECT_FALSE(c.cpu_fallback()) << "stale fallback flag survived result reuse";
  EXPECT_TRUE(c.has_gpu_timing());
  EXPECT_TRUE(c.throughput_reportable);
}

// ---------------------------------------------------------------------------
// Session reuse after a mid-job throw (regression)
// ---------------------------------------------------------------------------

TEST(SessionReuse, GpuSessionSurvivesTransientExhaustion) {
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto cuzfp = make_compressor("cuzfp", &sim);
  const auto session = cuzfp->open_session();

  fault::Config cfg;
  cfg.gpu_transient_every = 1;
  fault::FaultPlan plan(cfg);
  sim.set_fault_plan(&plan);
  CompressResult c;
  EXPECT_THROW(session->compress(field, {"rate", 8.0}, c), TransientError);

  sim.set_fault_plan(nullptr);
  session->compress(field, {"rate", 8.0}, c);
  const DecompressResult d = session->decompress(c);
  EXPECT_EQ(d.values.size(), field.data.size());

  // Bit-identical to a never-faulted session.
  EXPECT_EQ(c.bytes, cuzfp->open_session()->compress(field, {"rate", 8.0}).bytes);
}

TEST(SessionReuse, CpuSessionSurvivesDecodeThrow) {
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;
  const auto codec = make_compressor("sz-cpu");
  const auto session = codec->open_session();

  const CompressResult clean = session->compress(field, {"abs", 0.1});
  const DecompressResult reference = session->decompress(clean);

  CompressResult bad;
  bad.bytes.assign(clean.bytes.begin(), clean.bytes.begin() + 10);
  bad.original_values = clean.original_values;
  EXPECT_THROW((void)session->decompress(bad), Error);

  const DecompressResult again = session->decompress(clean);
  EXPECT_EQ(again.values, reference.values);
}

// ---------------------------------------------------------------------------
// Sweep / pipeline containment
// ---------------------------------------------------------------------------

TEST(Containment, SweepRecordsFailedRowsAndContinues) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  fault::Config cfg;
  cfg.corrupt_probability = 1.0;
  cfg.corrupt_bit_flip = false;  // truncation reliably breaks the decode
  cfg.corrupt_zero_run = false;
  fault::FaultPlan plan(cfg);
  fault::Scope scope(plan);

  CBench bench({.keep_reconstructed = false,
                .on_error = CBench::Options::OnError::kContinue});
  const auto results = bench.sweep(data, *codec, {{"rate", 8.0}});
  EXPECT_EQ(results.size(), 6u);
  EXPECT_EQ(plan.counts().corruptions, 6u);
  std::size_t failed = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.status == "ok" || r.status == "failed") << r.status;
    if (r.status == "failed") {
      EXPECT_FALSE(r.error.empty());
      EXPECT_GT(r.original_bytes, 0u);  // identity columns survive
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_NE(format_results(results).find("FAILED"), std::string::npos);
}

TEST(Containment, SweepAbortsWhenAsked) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  fault::Config cfg;
  cfg.corrupt_probability = 1.0;
  cfg.corrupt_bit_flip = false;
  cfg.corrupt_zero_run = false;
  fault::FaultPlan plan(cfg);
  fault::Scope scope(plan);

  CBench bench;  // on_error defaults to kAbort
  EXPECT_THROW((void)bench.sweep(data, *codec, {{"rate", 8.0}}), Error);
}

TEST(Containment, ParallelSweepRecordsFailedRows) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  fault::Config cfg;
  cfg.corrupt_probability = 1.0;
  cfg.corrupt_bit_flip = false;
  cfg.corrupt_zero_run = false;
  fault::FaultPlan plan(cfg);
  fault::Scope scope(plan);

  CBench bench({.keep_reconstructed = false,
                .threads = 4,
                .on_error = CBench::Options::OnError::kContinue});
  const auto results = bench.sweep(data, *codec, {{"rate", 4.0}, {"rate", 8.0}});
  EXPECT_EQ(results.size(), 12u);
  std::size_t failed = 0;
  for (const auto& r : results) {
    if (r.status == "failed") ++failed;
  }
  EXPECT_GT(failed, 0u);
}

TEST(Containment, OverallRatioSkipsFailedRows) {
  std::vector<CBenchResult> results(3);
  results[0].original_bytes = 1000;
  results[0].compressed_bytes = 100;
  results[1].original_bytes = 1000;
  results[1].compressed_bytes = 400;
  results[2].original_bytes = 1000;  // failed row: no stream
  results[2].status = "failed";
  EXPECT_DOUBLE_EQ(CBench::overall_ratio(results), 4.0);  // 2000/500, row 2 skipped

  std::vector<CBenchResult> all_failed(1);
  all_failed[0].status = "failed";
  EXPECT_THROW((void)CBench::overall_ratio(all_failed), InvalidArgument);
}

TEST(Containment, PipelineWithInjectedFaultsCompletes) {
  const std::string out = temp_path("fault_pipeline_out");
  const json::Value config = json::parse(R"({
    "output": ")" + out + R"(",
    "dataset": {"type": "nyx", "dim": 16},
    "runs": [{"compressor": "zfp-cpu",
              "fields": ["baryon_density", "temperature"],
              "configs": [{"mode": "rate", "value": 8}]}],
    "faults": {"corrupt_probability": 1.0,
               "corrupt_bit_flip": false, "corrupt_zero_run": false}
  })");
  const auto summary = foresight::run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok) << "failed jobs must be contained, not fatal";
  EXPECT_EQ(summary.results.size(), 2u);
  EXPECT_GT(summary.injected_faults, 0u);
  EXPECT_GT(summary.failed_jobs, 0u);
  for (const auto& r : summary.results) {
    EXPECT_TRUE(r.status == "ok" || r.status == "failed");
  }
}

TEST(Containment, PipelineFaultFreeRunReportsNoFailures) {
  const std::string out = temp_path("fault_pipeline_clean");
  const json::Value config = json::parse(R"({
    "output": ")" + out + R"(",
    "dataset": {"type": "nyx", "dim": 16},
    "runs": [{"compressor": "zfp-cpu",
              "fields": ["baryon_density"],
              "configs": [{"mode": "rate", "value": 8}]}]
  })");
  const auto summary = foresight::run_pipeline(config);
  EXPECT_TRUE(summary.workflow_ok);
  EXPECT_EQ(summary.failed_jobs, 0u);
  EXPECT_EQ(summary.injected_faults, 0u);
}

// ---------------------------------------------------------------------------
// I/O fault injection
// ---------------------------------------------------------------------------

TEST(IoFaults, EveryNthIoCallThrows) {
  const auto data = small_nyx(8);
  const std::string path = temp_path("fault_io.gio");
  fault::Config cfg;
  cfg.io_failure_every = 2;
  fault::FaultPlan plan(cfg);
  fault::Scope scope(plan);
  EXPECT_NO_THROW(io::save(data, path, io::Dialect::kGenericIo));  // op 1
  EXPECT_THROW((void)io::load(path), IoError);                     // op 2 faults
  EXPECT_NO_THROW((void)io::load(path));                           // op 3
  EXPECT_EQ(plan.counts().io_failures, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Byte-identical guarantee with faults disabled
// ---------------------------------------------------------------------------

TEST(Disabled, InactivePlanPreservesStreamsAndModeledTimings) {
  const auto data = small_nyx();
  const Field& field = data.find("baryon_density").field;

  gpu::GpuSimulator bare_sim(gpu::find_device("V100"));
  const auto bare = make_compressor("cuzfp", &bare_sim);
  const CompressResult without = bare->open_session()->compress(field, {"rate", 8.0});

  fault::FaultPlan plan(fault::Config{});  // installed but fully disabled
  fault::Scope scope(plan);
  gpu::GpuSimulator scoped_sim(gpu::find_device("V100"));
  const auto scoped = make_compressor("cuzfp", &scoped_sim);
  const CompressResult with = scoped->open_session()->compress(field, {"rate", 8.0});

  EXPECT_EQ(without.bytes, with.bytes);
  // The jitter stream must be untouched: modeled timings match exactly.
  EXPECT_DOUBLE_EQ(without.seconds(), with.seconds());
}

}  // namespace
}  // namespace cosmo
