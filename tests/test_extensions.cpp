#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "common/str.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "gpu/node.hpp"
#include "io/partitioned.hpp"
#include "mpi/domain.hpp"
#include "random/rng.hpp"
#include "sz/rate_estimate.hpp"
#include "zfp/zfp.hpp"

namespace cosmo {
namespace {

std::vector<float> smooth(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(dims.count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(60.0 * std::sin(0.03 * static_cast<double>(i)) +
                                rng.normal());
  }
  return out;
}

// ---------- ZFP fixed-precision mode ----------

TEST(ZfpPrecision, RoundTripAndMonotoneQuality) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth(dims, 201);
  double prev_rmse = 1e300;
  std::size_t prev_size = 0;
  for (const unsigned prec : {8u, 16u, 24u, 32u}) {
    zfp::Params params;
    params.mode = zfp::Mode::kFixedPrecision;
    params.precision = prec;
    const auto bytes = zfp::compress(data, dims, params);
    const auto recon = zfp::decompress(bytes);
    double rmse = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      rmse += std::pow(static_cast<double>(recon[i]) - data[i], 2.0);
    }
    rmse = std::sqrt(rmse / static_cast<double>(data.size()));
    EXPECT_LT(rmse, prev_rmse) << "precision " << prec;
    EXPECT_GT(bytes.size(), prev_size) << "precision " << prec;
    prev_rmse = rmse;
    prev_size = bytes.size();
  }
  EXPECT_LT(prev_rmse, 1e-3);  // 32 planes ~ near-lossless
}

TEST(ZfpPrecision, ErrorScalesWithLocalMagnitude) {
  // Fixed precision keeps planes relative to each block's exponent, so a
  // large-magnitude block gets proportionally larger absolute error than a
  // small-magnitude one — unlike fixed-accuracy mode.
  const Dims dims = Dims::d3(8, 8, 8);
  std::vector<float> data(dims.count());
  Rng rng(202);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Alternate 4-plane slabs so every 4x4x4 ZFP block is homogeneous.
    const bool big = ((i / 64) / 4) % 2 == 0;
    data[i] = static_cast<float>((big ? 1e6 : 1.0) * (1.0 + 0.1 * rng.normal()));
  }
  zfp::Params params;
  params.mode = zfp::Mode::kFixedPrecision;
  params.precision = 14;
  const auto recon = zfp::decompress(zfp::compress(data, dims, params));
  double max_err_big = 0.0, max_err_small = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double e = std::fabs(static_cast<double>(recon[i]) - data[i]);
    if (data[i] > 100.0f) max_err_big = std::max(max_err_big, e);
    else max_err_small = std::max(max_err_small, e);
  }
  EXPECT_GT(max_err_big, max_err_small * 100.0);
}

TEST(ZfpPrecision, InvalidPrecisionRejected) {
  const std::vector<float> data(64, 1.0f);
  zfp::Params params;
  params.mode = zfp::Mode::kFixedPrecision;
  params.precision = 0;
  EXPECT_THROW(zfp::compress(data, Dims::d3(4, 4, 4), params), InvalidArgument);
  params.precision = 40;
  EXPECT_THROW(zfp::compress(data, Dims::d3(4, 4, 4), params), InvalidArgument);
}

// ---------- SZ rate estimator ----------

TEST(RateEstimate, TracksActualCompressedRate) {
  const Dims dims = Dims::d3(24, 24, 24);
  const auto data = smooth(dims, 203);
  for (const double bound : {0.01, 0.1, 1.0}) {
    sz::Params params;
    params.abs_error_bound = bound;
    const auto est = sz::estimate_rate(data, dims, params);
    sz::Stats stats;
    sz::compress(data, dims, params, &stats);
    // Estimate within 35% of the real stream (entropy bound + LZSS slack).
    EXPECT_GT(est.estimated_bits_per_value, stats.bit_rate * 0.5) << bound;
    EXPECT_LT(est.estimated_bits_per_value, stats.bit_rate * 1.35 + 0.5) << bound;
  }
}

TEST(RateEstimate, MonotoneInErrorBound) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth(dims, 204);
  double prev = 1e300;
  for (const double bound : {0.001, 0.01, 0.1, 1.0}) {
    sz::Params params;
    params.abs_error_bound = bound;
    const double est = sz::estimate_rate(data, dims, params).estimated_bits_per_value;
    EXPECT_LT(est, prev) << bound;
    prev = est;
  }
}

TEST(RateEstimate, NyxDensityAccuracyAcrossBounds) {
  // The guided optimizer substitutes the estimator for full evaluations on
  // pruned abs-mode candidates, so its accuracy on a genuine Nyx field is a
  // contract, not a nicety: across the bound lattice the estimate has to
  // stay within the entropy-vs-LZSS slack band of the real stream.
  NyxConfig config;
  config.dim = 32;
  const auto nyx = generate_nyx(config);
  const Field& field = nyx.find("baryon_density").field;
  const auto [lo, hi] = value_range(field.view());
  const double range = static_cast<double>(hi) - lo;
  for (const double frac : {1e-5, 1e-4, 1e-3, 1e-2}) {
    sz::Params params;
    params.abs_error_bound = range * frac;
    const auto est = sz::estimate_rate(field.data, field.dims, params);
    sz::Stats stats;
    sz::compress(field.data, field.dims, params, &stats);
    // Entropy is a lower bound on the Huffman stage, but LZSS can squeeze
    // below it on repetitive codes; 50% covers that on the loose bounds.
    EXPECT_GT(est.estimated_bits_per_value, stats.bit_rate * 0.5) << frac;
    EXPECT_LT(est.estimated_bits_per_value, stats.bit_rate * 1.35 + 0.5) << frac;
  }
}

TEST(RateEstimate, StrideSamplingTracksFullScan) {
  NyxConfig config;
  config.dim = 32;
  const auto nyx = generate_nyx(config);
  const Field& field = nyx.find("temperature").field;
  const auto [lo, hi] = value_range(field.view());
  sz::Params params;
  params.abs_error_bound = (static_cast<double>(hi) - lo) * 1e-4;
  const auto full = sz::estimate_rate(field.data, field.dims, params);
  EXPECT_EQ(full.sampled_blocks, full.total_blocks);
  for (const std::size_t stride : {2u, 4u, 8u}) {
    const auto sampled = sz::estimate_rate(field.data, field.dims, params, stride);
    EXPECT_EQ(sampled.total_blocks, full.total_blocks);
    // Ceil division: every stride-th block starting at 0 is sampled.
    EXPECT_EQ(sampled.sampled_blocks, (full.total_blocks + stride - 1) / stride);
    // Strided sampling is for speed, not a different answer: on a smooth
    // field the sampled estimate stays within 10% of the full scan.
    EXPECT_NEAR(sampled.estimated_bits_per_value, full.estimated_bits_per_value,
                0.10 * full.estimated_bits_per_value + 0.05)
        << stride;
  }
  // stride == 1 is exactly the full scan.
  const auto one = sz::estimate_rate(field.data, field.dims, params, 1);
  EXPECT_DOUBLE_EQ(one.estimated_bits_per_value, full.estimated_bits_per_value);
  EXPECT_THROW(sz::estimate_rate(field.data, field.dims, params, 0), InvalidArgument);
}

TEST(RateEstimate, FlagsUnpredictableData) {
  const Dims dims = Dims::d3(8, 8, 8);
  Rng rng(205);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1e9, 1e9));
  sz::Params params;
  params.abs_error_bound = 1e-6;  // hopeless bound on white noise
  const auto est = sz::estimate_rate(data, dims, params);
  EXPECT_GT(est.unpredictable_fraction, 0.5);
  EXPECT_GT(est.estimated_bits_per_value, 16.0);
}

// ---------- Multi-GPU node model ----------

TEST(NodeModel, SummitNodeReducesOverheadBelowOnePercent) {
  // The paper's scenario: 2.5 TB per snapshot over 1,024 nodes ~ 2.4 GB per
  // node, six V100s, ~10 s per timestep.
  gpu::NodeConfig node;
  node.gpu = gpu::find_device("V100");
  node.gpu_count = 6;
  node.simulation_seconds = 10.0;
  const std::uint64_t snapshot = 2'500'000'000ull;
  const auto report = gpu::model_node_compression(node, snapshot, 3.2);
  EXPECT_LT(report.overhead_fraction, 0.01);  // paper: "< 0.3%"
  EXPECT_GT(report.node_throughput_gbps, 50.0);
  EXPECT_GT(report.total_seconds, 0.0);
  // CPU comparison point: ~2 GB/s per node => > 10% overhead.
  EXPECT_GT(gpu::cpu_overhead_fraction(2.0, 25'000'000'000ull, 10.0), 0.1);
}

TEST(NodeModel, MoreGpusMoreThroughput) {
  gpu::NodeConfig one;
  one.gpu = gpu::find_device("V100");
  one.gpu_count = 1;
  gpu::NodeConfig six = one;
  six.gpu_count = 6;
  const std::uint64_t snapshot = 6'000'000'000ull;
  const auto r1 = gpu::model_node_compression(one, snapshot, 4.0);
  const auto r6 = gpu::model_node_compression(six, snapshot, 4.0);
  // Kernels scale ~6x but the two shared PCIe links cap transfer scaling,
  // so the node-level speedup lands between 2x and 6x.
  EXPECT_GT(r6.node_throughput_gbps, r1.node_throughput_gbps * 2.0);
  EXPECT_LT(r6.node_throughput_gbps, r1.node_throughput_gbps * 6.0);
}

TEST(NodeModel, SharedLinksSerializeTransfers) {
  gpu::NodeConfig shared;
  shared.gpu = gpu::find_device("V100");
  shared.gpu_count = 6;
  shared.pcie_links = 1;
  gpu::NodeConfig dedicated = shared;
  dedicated.pcie_links = 6;
  const std::uint64_t snapshot = 6'000'000'000ull;
  const auto r_shared = gpu::model_node_compression(shared, snapshot, 4.0);
  const auto r_dedicated = gpu::model_node_compression(dedicated, snapshot, 4.0);
  EXPECT_GT(r_shared.transfer_seconds, r_dedicated.transfer_seconds * 4.0);
}

TEST(NodeModel, InvalidConfigRejected) {
  gpu::NodeConfig node;
  node.gpu = gpu::find_device("V100");
  node.gpu_count = 0;
  EXPECT_THROW(gpu::model_node_compression(node, 1000, 4.0), InvalidArgument);
  EXPECT_THROW(gpu::cpu_overhead_fraction(0.0, 1000, 10.0), InvalidArgument);
}

// ---------- Partitioned I/O ----------

TEST(PartitionedIo, SaveLoadRoundTripPreservesEverything) {
  HaccConfig config;
  config.particles = 8000;
  config.halo_count = 6;
  const io::Container snapshot = generate_hacc(config);
  mpi::DomainDecomposition domain{2, 2, 1, 256.0};
  const auto parts = mpi::partition_particles(domain, snapshot.find("x").field.data,
                                              snapshot.find("y").field.data,
                                              snapshot.find("z").field.data);
  const std::string stem = ::testing::TempDir() + "/part_test";
  io::save_partitioned(snapshot, stem, parts);
  EXPECT_EQ(io::partition_rank_count(stem), 4u);

  std::vector<std::uint32_t> global_index;
  const io::Container loaded = io::load_partitioned(stem, &global_index);
  ASSERT_EQ(loaded.variables.size(), 6u);
  ASSERT_EQ(global_index.size(), config.particles);

  // Every particle appears exactly once and carries its original values.
  std::vector<bool> seen(config.particles, false);
  const auto& orig_x = snapshot.find("x").field.data;
  const auto& loaded_x = loaded.find("x").field.data;
  for (std::size_t i = 0; i < global_index.size(); ++i) {
    const std::uint32_t g = global_index[i];
    ASSERT_LT(g, config.particles);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
    EXPECT_EQ(loaded_x[i], orig_x[g]);
  }
  for (std::size_t r = 0; r < 4; ++r) {
    std::filesystem::remove(strprintf("%s.rank%04zu.gio", stem.c_str(), r));
  }
  std::filesystem::remove(stem + ".manifest.json");
}

TEST(PartitionedIo, RankOrderMatchesPartitionOrder) {
  io::Container snapshot;
  {
    io::Variable v;
    v.field = Field("x", Dims::d1(6), {0, 1, 2, 3, 4, 5});
    snapshot.variables.push_back(v);
  }
  const std::vector<std::vector<std::uint32_t>> parts = {{4, 5}, {0, 1, 2, 3}};
  const std::string stem = ::testing::TempDir() + "/part_order";
  io::save_partitioned(snapshot, stem, parts);
  const io::Container loaded = io::load_partitioned(stem);
  const auto& x = loaded.find("x").field.data;
  ASSERT_EQ(x.size(), 6u);
  EXPECT_EQ(x[0], 4.0f);  // rank 0 first
  EXPECT_EQ(x[1], 5.0f);
  EXPECT_EQ(x[2], 0.0f);  // then rank 1
  std::filesystem::remove(stem + ".rank0000.gio");
  std::filesystem::remove(stem + ".rank0001.gio");
  std::filesystem::remove(stem + ".manifest.json");
}

TEST(PartitionedIo, Rejects3dVariablesAndMissingManifest) {
  io::Container snapshot;
  io::Variable v;
  v.field = Field("grid", Dims::d3(2, 2, 2));
  snapshot.variables.push_back(v);
  EXPECT_THROW(io::save_partitioned(snapshot, "/tmp/x", {{0}}), InvalidArgument);
  EXPECT_THROW(io::load_partitioned("/nonexistent/stem"), IoError);
}

}  // namespace
}  // namespace cosmo
