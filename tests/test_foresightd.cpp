/// \file test_foresightd.cpp
/// \brief foresightd service daemon: backoff, cancellation, admission,
/// wire protocol, session-cache isolation, and end-to-end daemon behavior.
///
/// Suites are all named Foresightd* so check.sh's tsan mode can select the
/// whole service surface with one gtest filter. The e2e suite starts real
/// daemons on per-test AF_UNIX sockets; every test drains its daemon before
/// returning so sockets and threads never leak across tests.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/admission_queue.hpp"
#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/session_cache.hpp"
#include "foresightd/api.hpp"
#include "foresightd/client.hpp"
#include "foresightd/daemon.hpp"
#include "foresightd/dataset_cache.hpp"
#include "foresightd/protocol.hpp"
#include "io/crc32.hpp"
#include "json/json.hpp"

namespace cosmo {
namespace {

using foresightd::base64_decode;
using foresightd::base64_encode;
using foresightd::ChunkMessage;
using foresightd::ChunkType;
using foresightd::Client;
using foresightd::CompressRequest;
using foresightd::Daemon;
using foresightd::DaemonOptions;
using foresightd::DatasetCache;
using foresightd::encode_frame;
using foresightd::FrameParser;
using foresightd::HelloReply;
using foresightd::inline_dataset;
using foresightd::JobReply;
using foresightd::JobRequest;
using foresightd::kMaxFrameBytes;
using foresightd::kProtoMajor;
using foresightd::ReplyKind;
using foresightd::RequestType;
using foresightd::TransferLimits;
using foresightd::TransferTable;

// ---------------------------------------------------------------------------
// ForesightdBackoff
// ---------------------------------------------------------------------------

TEST(ForesightdBackoff, DeterministicForSameInputs) {
  const backoff::Policy policy;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, attempt, 7),
                     backoff::delay_seconds(policy, attempt, 7));
  }
  EXPECT_DOUBLE_EQ(backoff::jitter_uniform(1, 2, 3), backoff::jitter_uniform(1, 2, 3));
}

TEST(ForesightdBackoff, DelayStaysWithinJitteredEnvelope) {
  backoff::Policy policy;
  policy.base_delay_seconds = 1e-3;
  policy.max_delay_seconds = 8e-3;
  policy.jitter_fraction = 0.5;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double exp_delay =
        std::min(policy.base_delay_seconds * static_cast<double>(1 << (attempt - 1)),
                 policy.max_delay_seconds);
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      const double d = backoff::delay_seconds(policy, attempt, salt);
      EXPECT_GE(d, exp_delay * (1.0 - policy.jitter_fraction));
      EXPECT_LE(d, exp_delay);
      EXPECT_LE(d, policy.max_delay_seconds);  // cap never exceeded
    }
  }
}

TEST(ForesightdBackoff, ZeroJitterIsPureExponential) {
  backoff::Policy policy;
  policy.base_delay_seconds = 0.5e-3;
  policy.max_delay_seconds = 50e-3;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 1, 99), 0.5e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 2, 99), 1e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 3, 99), 2e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 20, 99), 50e-3);  // capped
}

TEST(ForesightdBackoff, SaltsDecorrelateSchedules) {
  const backoff::Policy policy;  // default jitter_fraction = 0.5
  int distinct = 0;
  for (std::uint64_t salt = 1; salt <= 16; ++salt) {
    if (backoff::delay_seconds(policy, 3, salt) !=
        backoff::delay_seconds(policy, 3, salt + 16)) {
      ++distinct;
    }
  }
  // A thundering herd needs equal delays; decorrelated salts make that
  // vanishingly unlikely. Allow a couple of hash collisions.
  EXPECT_GE(distinct, 14);
}

TEST(ForesightdBackoff, JitterUniformInHalfOpenUnitInterval) {
  for (std::uint64_t i = 0; i < 256; ++i) {
    const double u = backoff::jitter_uniform(0xB0FF, i, i * 3);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---------------------------------------------------------------------------
// ForesightdCancel
// ---------------------------------------------------------------------------

TEST(ForesightdCancel, DefaultTokenNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.check("stage"));
}

TEST(ForesightdCancel, CancelVisibleAcrossCopies) {
  CancelToken token;
  CancelToken copy = token;
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("stage"), CancelledError);
}

TEST(ForesightdCancel, ExpiredDeadlineThrowsDeadlineError) {
  const CancelToken token = CancelToken::with_deadline(-1.0);
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_LT(token.remaining_seconds(), 0.0);
  EXPECT_THROW(token.check("stage"), DeadlineExceededError);
}

TEST(ForesightdCancel, CancellationWinsOverDeadline) {
  CancelToken token = CancelToken::with_deadline(-1.0);
  token.cancel();
  EXPECT_THROW(token.check("stage"), CancelledError);
}

TEST(ForesightdCancel, FutureDeadlineDoesNotFirePrematurely) {
  const CancelToken token = CancelToken::with_deadline(3600.0);
  EXPECT_FALSE(token.stop_requested());
  EXPECT_GT(token.remaining_seconds(), 3000.0);
  EXPECT_NO_THROW(token.check("stage"));
}

// ---------------------------------------------------------------------------
// ForesightdQueue
// ---------------------------------------------------------------------------

TEST(ForesightdQueue, FifoWithinOnePriority) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1, 0), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1, 0), Admission::kAccepted);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(ForesightdQueue, HigherPriorityPopsFirst) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 3});
  ASSERT_EQ(q.try_push(10, 1, 2), Admission::kAccepted);  // low
  ASSERT_EQ(q.try_push(20, 1, 0), Admission::kAccepted);  // high
  ASSERT_EQ(q.try_push(30, 1, 1), Admission::kAccepted);  // middle
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 30);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 10);
}

TEST(ForesightdQueue, CapacityRejectsWithQueueFull) {
  AdmissionQueue<int> q({.capacity = 2, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  EXPECT_EQ(q.try_push(3, 1), Admission::kQueueFull);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(q.try_push(3, 1), Admission::kAccepted);  // capacity freed by pop
}

TEST(ForesightdQueue, QuotaCountsOutstandingUntilRelease) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 1, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 7), Admission::kAccepted);
  EXPECT_EQ(q.try_push(2, 7), Admission::kQuotaExceeded);
  EXPECT_EQ(q.try_push(2, 8), Admission::kAccepted);  // other clients unaffected
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  // Popped but not released: still outstanding, still over quota.
  EXPECT_EQ(q.outstanding(7), 1u);
  EXPECT_EQ(q.try_push(3, 7), Admission::kQuotaExceeded);
  q.release(7);
  EXPECT_EQ(q.outstanding(7), 0u);
  EXPECT_EQ(q.try_push(3, 7), Admission::kAccepted);
}

TEST(ForesightdQueue, CloseDrainsAdmittedThenPopReturnsFalse) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  q.close();
  EXPECT_TRUE(q.draining());
  EXPECT_EQ(q.try_push(3, 1), Admission::kDraining);
  int out = 0;
  ASSERT_TRUE(q.pop(out));  // already-admitted items keep coming
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // drained and empty: exactly-once handout is over
}

TEST(ForesightdQueue, HighWaterTracksPeakDepth) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(3, 1), Admission::kAccepted);
  int out = 0;
  while (q.try_pop(out)) {
  }
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ForesightdQueue, AdmissionNamesAreStable) {
  EXPECT_STREQ(admission_name(Admission::kAccepted), "accepted");
  EXPECT_STREQ(admission_name(Admission::kQueueFull), "queue_full");
  EXPECT_STREQ(admission_name(Admission::kQuotaExceeded), "quota");
  EXPECT_STREQ(admission_name(Admission::kDraining), "draining");
}

// ---------------------------------------------------------------------------
// ForesightdProtocol
// ---------------------------------------------------------------------------

json::Value sample_request_json() {
  json::Object o;
  o["type"] = "roundtrip";
  o["id"] = 42;
  o["codec"] = "sz-cpu";
  o["mode"] = "abs";
  o["value"] = 0.1;
  json::Object ds;
  ds["type"] = "nyx";
  ds["dim"] = 16;
  ds["seed"] = 42;
  o["dataset"] = json::Value(std::move(ds));
  o["field"] = "baryon_density";
  return json::Value(std::move(o));
}

TEST(ForesightdProtocol, FrameRoundTrip) {
  const json::Value v = sample_request_json();
  const std::vector<std::uint8_t> wire = encode_frame(v);
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  const auto decoded = parser.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dump(), v.dump());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(ForesightdProtocol, ByteAtATimeFeed) {
  const json::Value v = sample_request_json();
  std::vector<std::uint8_t> wire = encode_frame(v);
  wire.reserve(wire.size() * 3);
  const std::size_t one = wire.size();
  // Three back-to-back frames, delivered one byte at a time.
  for (int i = 0; i < 2; ++i) wire.insert(wire.end(), wire.begin(), wire.begin() + one);
  FrameParser parser;
  int frames = 0;
  for (const std::uint8_t byte : wire) {
    parser.feed(&byte, 1);
    while (const auto decoded = parser.next()) {
      EXPECT_EQ(decoded->dump(), v.dump());
      ++frames;
    }
  }
  EXPECT_EQ(frames, 3);
}

TEST(ForesightdProtocol, TruncatedPrefixYieldsNothing) {
  const std::vector<std::uint8_t> wire = encode_frame(sample_request_json());
  FrameParser parser;
  parser.feed(wire.data(), 3);  // not even a full header
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(wire.data() + 3, wire.size() - 3 - 1);  // all but the last byte
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(parser.next().has_value());
}

TEST(ForesightdProtocol, ZeroLengthHeaderRejectedBeforeBuffering) {
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  FrameParser parser;
  EXPECT_THROW(parser.feed(zero, 4), FormatError);
}

TEST(ForesightdProtocol, HostileLengthRejectedAtHeaderTime) {
  // 4 GiB - 1 declared; must throw at feed() with nothing allocated for it.
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameParser parser;
  EXPECT_THROW(parser.feed(huge, 4), FormatError);
}

TEST(ForesightdProtocol, OverMaxLengthRejected) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::uint8_t header[4];
  std::memcpy(header, &len, 4);
  FrameParser parser;
  EXPECT_THROW(parser.feed(header, 4), FormatError);
}

TEST(ForesightdProtocol, MalformedJsonPayloadThrows) {
  const std::string payload = "{not json";
  std::vector<std::uint8_t> wire;
  const auto len = static_cast<std::uint32_t>(payload.size());
  wire.resize(4);
  std::memcpy(wire.data(), &len, 4);
  wire.insert(wire.end(), payload.begin(), payload.end());
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  EXPECT_THROW(parser.next(), FormatError);
}

TEST(ForesightdProtocol, ParseValidatesPerType) {
  json::Object o;
  o["type"] = "bogus";
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  o["type"] = "roundtrip";  // job request with no codec
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  o["codec"] = "sz-cpu";  // still no dataset/field/mode
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  json::Object decomp;
  decomp["type"] = "decompress";
  decomp["codec"] = "sz-cpu";
  EXPECT_THROW(JobRequest::parse(json::Value(decomp)), FormatError);  // no payload

  json::Object bad_deadline = sample_request_json().as_object();
  bad_deadline["deadline_seconds"] = -1.0;
  EXPECT_THROW(JobRequest::parse(json::Value(bad_deadline)), FormatError);

  json::Object control;
  control["type"] = "ping";  // control requests need nothing else
  EXPECT_NO_THROW(JobRequest::parse(json::Value(control)));
}

TEST(ForesightdProtocol, ParseToJsonRoundTrip) {
  const JobRequest parsed = JobRequest::parse(sample_request_json());
  EXPECT_EQ(parsed.type, RequestType::kRoundtrip);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.codec, "sz-cpu");
  EXPECT_EQ(parsed.mode, "abs");
  EXPECT_DOUBLE_EQ(parsed.value, 0.1);
  EXPECT_EQ(parsed.field, "baryon_density");
  const JobRequest again = JobRequest::parse(parsed.to_json());
  EXPECT_EQ(again.to_json().dump(), parsed.to_json().dump());
}

TEST(ForesightdProtocol, SweepConfigsRoundTrip) {
  JobRequest request;
  request.type = RequestType::kSweep;
  request.id = 7;
  request.codec = "zfp-cpu";
  request.dataset = sample_request_json().at("dataset");
  request.field = "baryon_density";
  request.configs = {{"rate", 4.0}, {"rate", 8.0}, {"abs", 0.1}};
  const JobRequest parsed = JobRequest::parse(request.to_json());
  ASSERT_EQ(parsed.configs.size(), 3u);
  EXPECT_EQ(parsed.configs[0].first, "rate");
  EXPECT_DOUBLE_EQ(parsed.configs[1].second, 8.0);
  EXPECT_EQ(parsed.configs[2].first, "abs");
}

// ---------------------------------------------------------------------------
// ForesightdBase64
// ---------------------------------------------------------------------------

TEST(ForesightdBase64, RoundTripsAllSmallLengths) {
  std::uint8_t raw[10];
  for (std::size_t i = 0; i < sizeof(raw); ++i) {
    raw[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  for (std::size_t n = 0; n <= 9; ++n) {
    const std::vector<std::uint8_t> data(raw, raw + n);
    const std::string text = base64_encode(data);
    EXPECT_EQ(text.size() % 4, 0u);
    EXPECT_EQ(base64_decode(text), data);
  }
}

TEST(ForesightdBase64, KnownVector) {
  const std::string text = base64_encode(
      reinterpret_cast<const std::uint8_t*>("foobar"), 6);
  EXPECT_EQ(text, "Zm9vYmFy");
  EXPECT_EQ(base64_encode(reinterpret_cast<const std::uint8_t*>("foob"), 4), "Zm9vYg==");
}

TEST(ForesightdBase64, RejectsMalformedInput) {
  EXPECT_THROW(base64_decode("AAA"), FormatError);       // not a multiple of 4
  EXPECT_THROW(base64_decode("AA!A"), FormatError);      // invalid character
  EXPECT_THROW(base64_decode("=AAA"), FormatError);      // padding up front
  EXPECT_THROW(base64_decode("AA=A"), FormatError);      // padding mid-quartet
  EXPECT_THROW(base64_decode("AB==CD=="), FormatError);  // padding not terminal
}

// ---------------------------------------------------------------------------
// ForesightdTransfer (chunk reassembly state machine)
// ---------------------------------------------------------------------------

ChunkMessage chunk_begin(const std::string& id, std::uint64_t total) {
  ChunkMessage m;
  m.type = ChunkType::kBegin;
  m.transfer = id;
  m.total_bytes = total;
  return m;
}

ChunkMessage chunk_data(const std::string& id, std::uint64_t seq,
                        std::vector<std::uint8_t> bytes) {
  ChunkMessage m;
  m.type = ChunkType::kData;
  m.transfer = id;
  m.seq = seq;
  m.crc32 = crc32(bytes.data(), bytes.size());
  m.payload = std::move(bytes);
  return m;
}

ChunkMessage chunk_end(const std::string& id, const std::vector<std::uint8_t>& whole) {
  ChunkMessage m;
  m.type = ChunkType::kEnd;
  m.transfer = id;
  m.crc32 = crc32(whole.data(), whole.size());
  m.has_crc32 = true;
  return m;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  std::size_t i = 0;
  for (std::uint8_t& byte : data) byte = static_cast<std::uint8_t>((i++ * 131) >> 3);
  return data;
}

TEST(ForesightdTransfer, BeginDataEndClaimRoundTrip) {
  TransferTable table{TransferLimits{}};
  const std::vector<std::uint8_t> data = pattern_bytes(300000);

  const auto begin = table.apply(chunk_begin("t", data.size()));
  EXPECT_TRUE(begin.ok);
  EXPECT_TRUE(begin.send);  // begin is always acked
  EXPECT_FALSE(begin.completed);
  EXPECT_EQ(table.reserved_bytes(), data.size());

  const std::vector<std::uint8_t> first(data.begin(), data.begin() + 200000);
  const std::vector<std::uint8_t> rest(data.begin() + 200000, data.end());
  const auto d0 = table.apply(chunk_data("t", 0, first));
  EXPECT_TRUE(d0.ok);
  EXPECT_FALSE(d0.send);  // accepted data chunks are silent
  EXPECT_TRUE(table.apply(chunk_data("t", 1, rest)).ok);

  const auto end = table.apply(chunk_end("t", data));
  EXPECT_TRUE(end.ok);
  EXPECT_TRUE(end.completed);
  EXPECT_EQ(end.received_bytes, data.size());
  EXPECT_EQ(end.crc32, crc32(data.data(), data.size()));
  EXPECT_TRUE(table.complete("t"));
  EXPECT_EQ(table.complete_size("t").value_or(0), data.size());

  std::vector<std::uint8_t> out;
  EXPECT_EQ(table.claim("t", out), TransferTable::ClaimStatus::kOk);
  EXPECT_EQ(out, data);
  EXPECT_EQ(table.reserved_bytes(), 0u);  // claim frees the budget
  EXPECT_EQ(table.claim("t", out), TransferTable::ClaimStatus::kMissing);
}

TEST(ForesightdTransfer, BudgetsRefuseAtBeginTimeBeforeBuffering) {
  TransferLimits limits;
  limits.max_transfer_bytes = 1000;
  limits.budget_bytes = 1500;
  limits.max_transfers = 2;
  std::atomic<std::int64_t> gauge{0};
  TransferTable table{limits, &gauge};

  const auto too_large = table.apply(chunk_begin("big", 1001));
  EXPECT_FALSE(too_large.ok);
  EXPECT_STREQ(too_large.reason, "transfer_too_large");
  EXPECT_EQ(gauge.load(), 0);

  EXPECT_TRUE(table.apply(chunk_begin("a", 900)).ok);
  EXPECT_EQ(gauge.load(), 900);

  const auto over_budget = table.apply(chunk_begin("b", 700));
  EXPECT_FALSE(over_budget.ok);
  EXPECT_STREQ(over_budget.reason, "transfer_budget_exceeded");

  EXPECT_TRUE(table.apply(chunk_begin("c", 400)).ok);
  EXPECT_EQ(gauge.load(), 1300);
  const auto too_many = table.apply(chunk_begin("d", 100));
  EXPECT_FALSE(too_many.ok);
  EXPECT_STREQ(too_many.reason, "too_many_transfers");

  table.clear();
  EXPECT_EQ(gauge.load(), 0);  // teardown returns every reservation
}

TEST(ForesightdTransfer, FailureKillsTransferAndSilencesFollowingData) {
  TransferTable table{TransferLimits{}};
  const std::vector<std::uint8_t> data = pattern_bytes(64);
  EXPECT_TRUE(table.apply(chunk_begin("t", data.size())).ok);

  ChunkMessage corrupt = chunk_data("t", 0, data);
  corrupt.crc32 ^= 1;
  const auto failed = table.apply(corrupt);
  EXPECT_FALSE(failed.ok);
  EXPECT_STREQ(failed.reason, "crc_mismatch");
  EXPECT_TRUE(failed.send);  // first failure is reported once
  EXPECT_EQ(table.reserved_bytes(), 0u);

  // Later chunks of the half-sent stream cannot generate an ack storm...
  const auto late = table.apply(chunk_data("t", 1, data));
  EXPECT_FALSE(late.ok);
  EXPECT_FALSE(late.send);
  // ...but the end is answered: the uploader blocks waiting for its verdict.
  const auto end = table.apply(chunk_end("t", data));
  EXPECT_FALSE(end.ok);
  EXPECT_TRUE(end.send);
  EXPECT_STREQ(end.reason, "unknown_transfer");

  // A fresh begin revives the id.
  EXPECT_TRUE(table.apply(chunk_begin("t", data.size())).ok);
  EXPECT_TRUE(table.apply(chunk_data("t", 0, data)).ok);
  EXPECT_TRUE(table.apply(chunk_end("t", data)).completed);
}

TEST(ForesightdTransfer, SequenceAndSizeViolationsNameTheirReason) {
  TransferTable table{TransferLimits{}};
  const std::vector<std::uint8_t> data = pattern_bytes(10);

  EXPECT_STREQ(table.apply(chunk_data("ghost", 0, data)).reason, "unknown_transfer");

  EXPECT_TRUE(table.apply(chunk_begin("s", 10)).ok);
  EXPECT_STREQ(table.apply(chunk_data("s", 1, data)).reason, "bad_sequence");

  EXPECT_TRUE(table.apply(chunk_begin("o", 10)).ok);
  EXPECT_STREQ(table.apply(chunk_data("o", 0, pattern_bytes(20))).reason,
               "size_overflow");

  EXPECT_TRUE(table.apply(chunk_begin("m", 20)).ok);
  EXPECT_TRUE(table.apply(chunk_data("m", 0, data)).ok);
  EXPECT_STREQ(table.apply(chunk_end("m", data)).reason, "size_mismatch");

  EXPECT_TRUE(table.apply(chunk_begin("w", 10)).ok);
  EXPECT_TRUE(table.apply(chunk_data("w", 0, data)).ok);
  ChunkMessage bad_end = chunk_end("w", data);
  bad_end.crc32 ^= 1;
  EXPECT_STREQ(table.apply(bad_end).reason, "crc_mismatch");

  EXPECT_TRUE(table.apply(chunk_begin("dup", 10)).ok);
  EXPECT_STREQ(table.apply(chunk_begin("dup", 10)).reason, "duplicate_begin");
}

TEST(ForesightdTransfer, ReapIdleDropsOnlyIdleTransfers) {
  std::atomic<std::int64_t> gauge{0};
  TransferTable table{TransferLimits{}, &gauge};
  EXPECT_TRUE(table.apply(chunk_begin("t", 1 << 20)).ok);
  EXPECT_EQ(table.reap_idle(3600.0), 0u);  // fresh: not idle yet
  EXPECT_EQ(table.reap_idle(0.0), 1u);
  EXPECT_EQ(table.reserved_bytes(), 0u);
  EXPECT_EQ(gauge.load(), 0);
  // The reaped id is dead: more data is silenced, the end is answered.
  EXPECT_FALSE(table.apply(chunk_data("t", 0, pattern_bytes(8))).send);
  EXPECT_STREQ(table.apply(chunk_end("t", pattern_bytes(8))).reason,
               "unknown_transfer");
}

TEST(ForesightdTransfer, ClaimIncompleteAndDepositUndo) {
  TransferTable table{TransferLimits{}};
  const std::vector<std::uint8_t> data = pattern_bytes(100);
  EXPECT_TRUE(table.apply(chunk_begin("t", data.size())).ok);
  EXPECT_TRUE(table.apply(chunk_data("t", 0, data)).ok);

  std::vector<std::uint8_t> out;
  EXPECT_EQ(table.claim("t", out), TransferTable::ClaimStatus::kIncomplete);
  EXPECT_FALSE(table.complete("t"));
  EXPECT_EQ(table.complete_size("t"), std::nullopt);

  // deposit() re-inserts claimed bytes (the undo when admission refuses the
  // job that claimed them).
  table.deposit("back", data);
  EXPECT_TRUE(table.complete("back"));
  EXPECT_EQ(table.claim("back", out), TransferTable::ClaimStatus::kOk);
  EXPECT_EQ(out, data);

  // Abort is idempotent and frees the open transfer.
  ChunkMessage abort;
  abort.type = ChunkType::kAbort;
  abort.transfer = "t";
  EXPECT_TRUE(table.apply(abort).ok);
  EXPECT_EQ(table.reserved_bytes(), 0u);
  EXPECT_TRUE(table.apply(abort).ok);
}

TEST(ForesightdTransfer, ChunkMessageJsonRoundTrip) {
  const std::vector<std::uint8_t> data = pattern_bytes(33);
  const ChunkMessage sent = chunk_data("xfer-7", 3, data);
  const json::Value wire = sent.to_json();
  ASSERT_TRUE(ChunkMessage::is_chunk(wire));
  EXPECT_FALSE(ChunkMessage::is_chunk(sample_request_json()));
  const ChunkMessage parsed = ChunkMessage::parse(wire);
  EXPECT_EQ(parsed.transfer, "xfer-7");
  EXPECT_EQ(parsed.seq, 3u);
  EXPECT_EQ(parsed.crc32, sent.crc32);
  EXPECT_EQ(parsed.payload, data);

  // A begin declaring zero bytes is malformed, not merely refused.
  EXPECT_THROW(ChunkMessage::parse(chunk_begin("t", 0).to_json()), FormatError);
  EXPECT_THROW(ChunkMessage::parse(chunk_begin(std::string(65, 'x'), 8).to_json()),
               FormatError);
}

// ---------------------------------------------------------------------------
// ForesightdProtocolV2 (version negotiation)
// ---------------------------------------------------------------------------

TEST(ForesightdProtocolV2, ParseProtoAcceptsMajorDotMinor) {
  EXPECT_EQ(foresightd::parse_proto("2"), (std::pair<int, int>{2, 0}));
  EXPECT_EQ(foresightd::parse_proto("2.0"), (std::pair<int, int>{2, 0}));
  EXPECT_EQ(foresightd::parse_proto("1.7"), (std::pair<int, int>{1, 7}));
  EXPECT_THROW(foresightd::parse_proto(""), FormatError);
  EXPECT_THROW(foresightd::parse_proto("two"), FormatError);
  EXPECT_THROW(foresightd::parse_proto("2.x"), FormatError);
  EXPECT_THROW(foresightd::parse_proto("-1"), FormatError);
}

TEST(ForesightdProtocolV2, DaemonSpeaksV2AndServesV1) {
  EXPECT_EQ(foresightd::proto_version_string(),
            std::to_string(kProtoMajor) + "." + std::to_string(foresightd::kProtoMinor));
  EXPECT_TRUE(foresightd::proto_major_supported(1));
  EXPECT_TRUE(foresightd::proto_major_supported(kProtoMajor));
  EXPECT_FALSE(foresightd::proto_major_supported(kProtoMajor + 1));
}

TEST(ForesightdProtocolV2, VersionErrorIsStructured) {
  const json::Value v = foresightd::make_version_error(7, 3, 1);
  EXPECT_EQ(v.get("type", std::string()), "error");
  EXPECT_EQ(v.get("error_code", std::string()), "unsupported_version");
  EXPECT_EQ(static_cast<std::uint64_t>(v.get("id", 0.0)), 7u);
  // Carries the daemon's own version so the client can downgrade.
  EXPECT_EQ(v.get("proto", std::string()), foresightd::proto_version_string());

  JobReply reply = JobReply::parse(v);
  EXPECT_EQ(reply.kind, ReplyKind::kError);
  EXPECT_EQ(reply.error_code, "unsupported_version");
}

TEST(ForesightdProtocolV2, TypedRequestsCarryCurrentProto) {
  CompressRequest compress;
  compress.codec = "sz-cpu";
  compress.mode = "abs";
  compress.value = 0.1;
  compress.dataset = foresightd::nyx_dataset(16);
  compress.field = "baryon_density";
  const JobRequest request = compress.to_request(42);
  EXPECT_EQ(request.proto_major, kProtoMajor);
  const JobRequest reparsed = JobRequest::parse(request.to_json());
  EXPECT_EQ(reparsed.proto_major, kProtoMajor);
  EXPECT_EQ(reparsed.id, 42u);
  // Absent proto parses as major 0: the daemon's v1-compatible path.
  EXPECT_EQ(JobRequest::parse(sample_request_json()).proto_major, 0);
}

// ---------------------------------------------------------------------------
// ForesightdDatasetCache (byte-budgeted LRU)
// ---------------------------------------------------------------------------

DatasetCache::Value build_nyx_container(std::size_t dim) {
  return std::make_shared<const io::Container>(
      foresight::build_dataset(foresightd::nyx_dataset(dim)));
}

TEST(ForesightdDatasetCache, CountsHitsAndMisses) {
  DatasetCache cache(1ull << 30);
  int builds = 0;
  const DatasetCache::Builder build = [&] {
    ++builds;
    return build_nyx_container(16);
  };
  const DatasetCache::Value first = cache.get_or_build("a", build);
  const DatasetCache::Value again = cache.get_or_build("a", build);
  EXPECT_EQ(first.get(), again.get());  // same shared container, not a rebuild
  EXPECT_EQ(builds, 1);
  const DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, first->payload_bytes());
}

TEST(ForesightdDatasetCache, EvictsByBytesOldestUseFirst) {
  const std::uint64_t one = build_nyx_container(16)->payload_bytes();
  ASSERT_GT(one, 0u);
  // Room for exactly two entries of this size.
  DatasetCache cache(2 * one);
  const DatasetCache::Builder build = [] { return build_nyx_container(16); };
  (void)cache.get_or_build("a", build);
  (void)cache.get_or_build("b", build);
  EXPECT_EQ(cache.stats().entries, 2u);

  // Touch "a" so "b" is the LRU victim when "c" arrives.
  (void)cache.get_or_build("a", build);
  (void)cache.get_or_build("c", build);
  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes, 2 * one);

  // "a" survived the eviction, "b" did not.
  (void)cache.get_or_build("a", build);
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)cache.get_or_build("b", build);
  EXPECT_EQ(cache.stats().misses, 4u);  // a, b, c, and the re-miss of b
}

TEST(ForesightdDatasetCache, OversizedEntryReturnedButNeverCached) {
  DatasetCache cache(64);  // smaller than any real container
  int builds = 0;
  const DatasetCache::Builder build = [&] {
    ++builds;
    return build_nyx_container(16);
  };
  const DatasetCache::Value v = cache.get_or_build("huge", build);
  ASSERT_NE(v, nullptr);
  EXPECT_GT(v->payload_bytes(), 64u);
  const DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_EQ(stats.evictions, 0u);  // nothing resident was displaced
  (void)cache.get_or_build("huge", build);
  EXPECT_EQ(builds, 2);  // every lookup rebuilds: it can never fit
}

// ---------------------------------------------------------------------------
// ForesightdSessionCache
// ---------------------------------------------------------------------------

const Field& test_field() {
  static const io::Container container = [] {
    json::Object spec;
    spec["type"] = "nyx";
    spec["dim"] = 16;
    spec["seed"] = 42;
    return foresight::build_dataset(json::Value(spec));
  }();
  return container.find("baryon_density").field;
}

TEST(ForesightdSessionCache, ReusesSessionsPerCodec) {
  foresight::SessionCache cache;
  auto& first = cache.session("sz-cpu");
  auto& second = cache.session("sz-cpu");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.sessions_opened(), 1u);
  (void)cache.session("zfp-cpu");
  EXPECT_EQ(cache.sessions_opened(), 2u);
}

TEST(ForesightdSessionCache, InvalidateReopensAgainstFreshArena) {
  foresight::SessionCache cache;
  auto& before = cache.session("sz-cpu");
  (void)before;
  cache.invalidate();
  EXPECT_EQ(cache.invalidations(), 1u);
  (void)cache.session("sz-cpu");
  EXPECT_EQ(cache.sessions_opened(), 2u);  // reopened after the reset
}

TEST(ForesightdSessionCache, DirtyReuseStreamsStayByteIdentical) {
  const Field& field = test_field();
  const foresight::CompressorConfig config{"abs", 0.1};

  // Clean single-shot reference.
  foresight::SessionCache reference_cache;
  const foresight::CompressResult clean =
      reference_cache.session("sz-cpu").compress(field, config);
  const std::uint32_t clean_crc = crc32(clean.bytes.data(), clean.bytes.size());

  // Fail a job in a long-lived cache: truncate the stream so decompress
  // throws, exactly like an injected corruption in the daemon.
  foresight::SessionCache cache;
  foresight::CompressResult corrupt = cache.session("sz-cpu").compress(field, config);
  EXPECT_EQ(crc32(corrupt.bytes.data(), corrupt.bytes.size()), clean_crc);
  corrupt.bytes.resize(4);
  EXPECT_THROW((void)cache.session("sz-cpu").decompress(corrupt), Error);

  // The daemon's containment step after any failure.
  cache.invalidate();

  // The next job on this worker must see pristine state: byte-identical
  // stream and a working decompress path.
  const foresight::CompressResult after = cache.session("sz-cpu").compress(field, config);
  EXPECT_EQ(after.bytes.size(), clean.bytes.size());
  EXPECT_EQ(crc32(after.bytes.data(), after.bytes.size()), clean_crc);
  const foresight::DecompressResult out = cache.session("sz-cpu").decompress(after);
  EXPECT_EQ(out.values.size(), field.data.size());
}

// ---------------------------------------------------------------------------
// ForesightdDaemon (end-to-end over real sockets)
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/fsd_gtest_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

json::Value nyx_spec(std::size_t dim) {
  json::Object spec;
  spec["type"] = "nyx";
  spec["dim"] = dim;
  spec["seed"] = 42;
  return json::Value(std::move(spec));
}

JobRequest roundtrip_request(std::uint64_t id, std::size_t dim = 16) {
  JobRequest request;
  request.type = RequestType::kRoundtrip;
  request.id = id;
  request.codec = "sz-cpu";
  request.mode = "abs";
  request.value = 0.1;
  request.dataset = nyx_spec(dim);
  request.field = "baryon_density";
  return request;
}

/// A sweep heavy enough that it cannot finish inside a small drain budget.
JobRequest slow_sweep_request(std::uint64_t id, std::size_t configs, std::size_t dim) {
  JobRequest request;
  request.type = RequestType::kSweep;
  request.id = id;
  request.codec = "sz-cpu";
  request.dataset = nyx_spec(dim);
  request.field = "baryon_density";
  for (std::size_t i = 0; i < configs; ++i) request.configs.emplace_back("abs", 0.1);
  return request;
}

TEST(ForesightdDaemon, PingReportsLivenessAndShutdownDrains) {
  DaemonOptions options;
  options.socket_path = test_socket_path("ping");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    const json::Value pong = client.ping();
    EXPECT_EQ(pong.get("type", std::string()), "pong");
    EXPECT_FALSE(pong.get("draining", true));
    const json::Value metrics = client.metrics();
    EXPECT_EQ(metrics.get("type", std::string()), "metrics");
    EXPECT_TRUE(metrics.contains("metrics"));
    (void)client.shutdown();
  }
  daemon.wait();
  EXPECT_EQ(daemon.stats().admitted, 0u);
}

TEST(ForesightdDaemon, RoundtripMatchesSingleShotReference) {
  // Reference stream computed with no daemon involved.
  const foresight::CompressResult reference =
      foresight::SessionCache().session("sz-cpu").compress(test_field(), {"abs", 0.1});
  const std::uint32_t reference_crc = crc32(reference.bytes.data(), reference.bytes.size());

  DaemonOptions options;
  options.socket_path = test_socket_path("roundtrip");
  options.workers = 2;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    const json::Value reply = client.call(roundtrip_request(1).to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusOk) << reply.dump();
    EXPECT_EQ(static_cast<std::uint32_t>(reply.at("crc32").as_number()), reference_crc);
    EXPECT_EQ(static_cast<std::size_t>(reply.get("compressed_bytes", 0.0)),
              reference.bytes.size());
    EXPECT_TRUE(reply.contains("psnr_db"));
  }
  daemon.request_shutdown();
  daemon.wait();
}

TEST(ForesightdDaemon, ExpiredDeadlineReportsDeadlineStatus) {
  DaemonOptions options;
  options.socket_path = test_socket_path("deadline");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    JobRequest request = roundtrip_request(5);
    request.deadline_seconds = 1e-9;
    const json::Value reply = client.call(request.to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusDeadline);
    EXPECT_EQ(static_cast<std::uint64_t>(reply.get("id", 0.0)), 5u);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().deadline, 1u);
}

TEST(ForesightdDaemon, QuotaRejectsSecondOutstandingJob) {
  DaemonOptions options;
  options.socket_path = test_socket_path("quota");
  options.workers = 1;
  options.per_client_quota = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    // Job 1 occupies the worker; job 2 lands while job 1 is outstanding.
    client.send(slow_sweep_request(1, 24, 16).to_json());
    client.send(roundtrip_request(2).to_json());
    const json::Value first = client.recv();  // the quota rejection, answered inline
    EXPECT_EQ(static_cast<std::uint64_t>(first.get("id", 0.0)), 2u);
    EXPECT_EQ(first.get("status", std::string()), foresightd::kStatusRejected);
    EXPECT_EQ(first.get("reason", std::string()), "quota");
    const json::Value second = client.recv();
    EXPECT_EQ(static_cast<std::uint64_t>(second.get("id", 0.0)), 1u);
    EXPECT_EQ(second.get("status", std::string()), foresightd::kStatusOk);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().rejected, 1u);
}

TEST(ForesightdDaemon, QueueFullRejectsOverCapacity) {
  DaemonOptions options;
  options.socket_path = test_socket_path("queuefull");
  options.workers = 1;
  options.queue_capacity = 1;
  Daemon daemon(options);
  daemon.start();
  std::size_t rejected = 0;
  std::size_t responses = 0;
  {
    Client client(options.socket_path);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      client.send(slow_sweep_request(id, 16, 16).to_json());
    }
    for (int i = 0; i < 3; ++i) {
      const json::Value reply = client.recv();
      ++responses;
      const std::string status = reply.get("status", std::string());
      if (status == foresightd::kStatusRejected) {
        EXPECT_EQ(reply.get("reason", std::string()), "queue_full");
        ++rejected;
      } else {
        EXPECT_EQ(status, foresightd::kStatusOk);
      }
    }
  }
  EXPECT_EQ(responses, 3u);
  // Capacity 1 with three back-to-back submissions must shed at least one.
  EXPECT_GE(rejected, 1u);
  daemon.request_shutdown();
  daemon.wait();
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.admitted, stats.ok + stats.failed + stats.cancelled + stats.deadline);
}

TEST(ForesightdDaemon, DrainRejectsNewWorkAndCancelsOnBudget) {
  DaemonOptions options;
  options.socket_path = test_socket_path("drain");
  options.workers = 1;
  options.drain_budget_seconds = 0.05;
  Daemon daemon(options);
  daemon.start();
  {
    Client loader(options.socket_path);
    Client prober(options.socket_path);  // opened pre-drain: listen closes at drain
    loader.send(slow_sweep_request(1, 256, 32).to_json());
    while (daemon.stats().admitted < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    daemon.request_shutdown();
    while (!prober.ping().get("draining", false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // New work after the drain started: rejected, never queued.
    const json::Value late = prober.call(roundtrip_request(9).to_json());
    EXPECT_EQ(late.get("status", std::string()), foresightd::kStatusRejected);
    EXPECT_EQ(late.get("reason", std::string()), "draining");
    // The in-flight sweep still gets its one answer: cancelled when the
    // 50 ms budget expires long before 256 configs can finish.
    const json::Value reply = loader.recv();
    EXPECT_EQ(static_cast<std::uint64_t>(reply.get("id", 0.0)), 1u);
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusCancelled);
  }
  daemon.wait();
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.admitted, stats.ok + stats.failed + stats.cancelled + stats.deadline);
}

TEST(ForesightdDaemon, ProtocolErrorClosesOnlyTheOffendingConnection) {
  DaemonOptions options;
  options.socket_path = test_socket_path("proto");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    // Raw socket speaking garbage: a zero-length frame header.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    ASSERT_EQ(::send(fd, zeros, 4, 0), 4);
    // The daemon answers with an error frame and hangs up on us.
    std::uint8_t buf[256];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);

    // A well-behaved client is unaffected.
    Client client(options.socket_path);
    EXPECT_EQ(client.ping().get("type", std::string()), "pong");
    const json::Value reply = client.call(roundtrip_request(3).to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusOk);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_GE(daemon.stats().protocol_errors, 1u);
}

// ---------------------------------------------------------------------------
// ForesightdStreaming (chunked transfers + TCP, end-to-end)
// ---------------------------------------------------------------------------

bool poll_until(double timeout_seconds, const std::function<bool()>& cond) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(timeout_seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// Daemon wired for streaming tests: TCP enabled on an ephemeral port and a
/// response_stream_threshold of 1 so even tiny compress results stream back
/// to v2 clients.
DaemonOptions streaming_options(const char* tag) {
  DaemonOptions options;
  options.socket_path = test_socket_path(tag);
  options.tcp_port = 0;
  options.workers = 1;
  options.response_stream_threshold = 1;
  return options;
}

CompressRequest inline_compress_request(const std::string& transfer, const Dims& dims) {
  CompressRequest request;
  request.codec = "sz-cpu";
  request.mode = "abs";
  request.value = 0.1;
  request.dataset = inline_dataset(transfer, dims);
  request.field = "baryon_density";
  request.return_bytes = true;
  return request;
}

TEST(ForesightdStreaming, HelloAdvertisesLimitsOnBothTransports) {
  const DaemonOptions options = streaming_options("hello");
  Daemon daemon(options);
  daemon.start();
  ASSERT_GT(daemon.bound_tcp_port(), 0);
  for (const std::string endpoint :
       {options.socket_path, "tcp:127.0.0.1:" + std::to_string(daemon.bound_tcp_port())}) {
    Client client(endpoint);
    const HelloReply hello = client.hello();
    EXPECT_EQ(hello.proto_major, kProtoMajor) << endpoint;
    EXPECT_EQ(hello.max_frame_bytes, kMaxFrameBytes);
    EXPECT_EQ(hello.max_transfer_bytes, options.transfer_limits.max_transfer_bytes);
    EXPECT_EQ(hello.transfer_budget_bytes, options.transfer_limits.budget_bytes);
    EXPECT_GT(hello.chunk_bytes, 0u);
    EXPECT_FALSE(hello.draining);
  }
  daemon.request_shutdown();
  daemon.wait();
}

TEST(ForesightdStreaming, TcpAndUnixStreamedResponsesByteIdentical) {
  const Field& field = test_field();
  const foresight::CompressResult reference =
      foresight::SessionCache().session("sz-cpu").compress(field, {"abs", 0.1});

  const DaemonOptions options = streaming_options("xport");
  Daemon daemon(options);
  daemon.start();
  std::vector<std::vector<std::uint8_t>> streams;
  for (const std::string endpoint :
       {options.socket_path, "tcp:127.0.0.1:" + std::to_string(daemon.bound_tcp_port())}) {
    Client client(endpoint);
    // Upload the raw field, then compress it as an inline dataset. The
    // result streams back (threshold 1) and recv_reply reassembles it.
    const Client::UploadResult up = client.upload(
        "f", reinterpret_cast<const std::uint8_t*>(field.data.data()), field.bytes());
    ASSERT_TRUE(up.ok) << endpoint << ": " << up.reason;
    EXPECT_EQ(up.received_bytes, field.bytes());
    const JobReply reply =
        client.call_reply(inline_compress_request("f", field.dims).to_request(1));
    ASSERT_TRUE(reply.ok()) << endpoint << ": " << reply.raw.dump();
    EXPECT_FALSE(reply.payload_transfer.empty()) << "expected a streamed payload";
    EXPECT_EQ(reply.payload, reference.bytes) << endpoint;
    streams.push_back(reply.payload);
  }
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], streams[1]);  // AF_UNIX and TCP: byte-identical
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().transfer_reserved_bytes, 0);
}

TEST(ForesightdStreaming, V1InlinePayloadMatchesV2Stream) {
  const DaemonOptions options = streaming_options("compat");
  Daemon daemon(options);
  daemon.start();
  {
    CompressRequest request;
    request.codec = "sz-cpu";
    request.mode = "abs";
    request.value = 0.1;
    request.dataset = foresightd::nyx_dataset(16);
    request.field = "baryon_density";
    request.return_bytes = true;

    // A v2 client gets the payload as a stream (threshold 1 forces it).
    Client v2(options.socket_path);
    const JobReply streamed = v2.call_reply(request.to_request(1));
    ASSERT_TRUE(streamed.ok()) << streamed.raw.dump();
    EXPECT_FALSE(streamed.payload_transfer.empty());
    ASSERT_FALSE(streamed.payload.empty());

    // The same request without a proto field takes the v1 path: the payload
    // is inlined in the result frame, byte-equal to the v2 stream.
    Client v1(options.socket_path);
    JobRequest old = request.to_request(2);
    old.proto_major = 0;
    old.proto_minor = 0;
    const JobReply inlined = JobReply::parse(v1.call(old.to_json()));
    ASSERT_TRUE(inlined.ok()) << inlined.raw.dump();
    EXPECT_TRUE(inlined.payload_transfer.empty());
    EXPECT_FALSE(inlined.payload_omitted);
    EXPECT_EQ(inlined.payload, streamed.payload);

    // A future major is refused with a structured error naming the
    // daemon's own version.
    Client future(options.socket_path);
    json::Value frame = request.to_request(3).to_json();
    frame.as_object()["proto"] = "3.0";
    const JobReply refused = JobReply::parse(future.call(frame));
    EXPECT_EQ(refused.kind, ReplyKind::kError);
    EXPECT_EQ(refused.error_code, "unsupported_version");
    EXPECT_EQ(refused.raw.get("proto", std::string()),
              foresightd::proto_version_string());
  }
  daemon.request_shutdown();
  daemon.wait();
}

TEST(ForesightdStreaming, JobReferencingMissingTransferIsRejected) {
  const DaemonOptions options = streaming_options("missing");
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    const JobReply reply = client.call_reply(
        inline_compress_request("ghost", Dims::d3(16, 16, 16)).to_request(4));
    EXPECT_EQ(reply.status, foresightd::kStatusRejected) << reply.raw.dump();
    EXPECT_EQ(reply.reason, "transfer_missing");
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().rejected, 1u);
}

TEST(ForesightdStreaming, MidTransferDisconnectFreesReservedBytes) {
  const DaemonOptions options = streaming_options("hangup");
  Daemon daemon(options);
  daemon.start();
  {
    Client dropper(options.socket_path);
    ChunkMessage begin;
    begin.type = ChunkType::kBegin;
    begin.transfer = "doomed";
    begin.total_bytes = 1u << 20;
    dropper.send(begin.to_json());
    const std::vector<std::uint8_t> slice = pattern_bytes(64 * 1024);
    dropper.send(chunk_data("doomed", 0, slice).to_json());
    ASSERT_TRUE(poll_until(10.0, [&] {
      return daemon.stats().transfer_reserved_bytes >= (1 << 20);
    }));
  }  // disconnect mid-transfer: the whole table goes with the connection
  EXPECT_TRUE(poll_until(10.0, [&] {
    return daemon.stats().transfer_reserved_bytes == 0;
  }));
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().transfers_completed, 0u);
}

TEST(ForesightdStreaming, AbandonedTransferReapedThenJobRejected) {
  DaemonOptions options = streaming_options("reap");
  options.transfer_idle_seconds = 0.05;
  Daemon daemon(options);
  daemon.start();
  {
    Client idler(options.socket_path);
    ChunkMessage begin;
    begin.type = ChunkType::kBegin;
    begin.transfer = "idle";
    begin.total_bytes = 1u << 20;
    idler.send(begin.to_json());
    const JobReply ack = idler.recv_reply();
    ASSERT_EQ(ack.kind, ReplyKind::kChunkAck);
    ASSERT_TRUE(ack.chunk_ok);
    // Silence: the IO-thread reaper drops the transfer and frees its budget.
    ASSERT_TRUE(poll_until(10.0, [&] {
      const Daemon::Stats stats = daemon.stats();
      return stats.transfers_reaped >= 1 && stats.transfer_reserved_bytes == 0;
    }));
    // A job naming the reaped transfer is refused, not hung.
    const JobReply reply = idler.call_reply(
        inline_compress_request("idle", Dims::d3(64, 64, 64)).to_request(5));
    EXPECT_EQ(reply.status, foresightd::kStatusRejected) << reply.raw.dump();
    EXPECT_EQ(reply.reason, "transfer_missing");
  }
  daemon.request_shutdown();
  daemon.wait();
}

}  // namespace
}  // namespace cosmo
