/// \file test_foresightd.cpp
/// \brief foresightd service daemon: backoff, cancellation, admission,
/// wire protocol, session-cache isolation, and end-to-end daemon behavior.
///
/// Suites are all named Foresightd* so check.sh's tsan mode can select the
/// whole service surface with one gtest filter. The e2e suite starts real
/// daemons on per-test AF_UNIX sockets; every test drains its daemon before
/// returning so sockets and threads never leak across tests.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/admission_queue.hpp"
#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/session_cache.hpp"
#include "foresightd/client.hpp"
#include "foresightd/daemon.hpp"
#include "foresightd/protocol.hpp"
#include "io/crc32.hpp"
#include "json/json.hpp"

namespace cosmo {
namespace {

using foresightd::base64_decode;
using foresightd::base64_encode;
using foresightd::Client;
using foresightd::Daemon;
using foresightd::DaemonOptions;
using foresightd::encode_frame;
using foresightd::FrameParser;
using foresightd::JobRequest;
using foresightd::kMaxFrameBytes;
using foresightd::RequestType;

// ---------------------------------------------------------------------------
// ForesightdBackoff
// ---------------------------------------------------------------------------

TEST(ForesightdBackoff, DeterministicForSameInputs) {
  const backoff::Policy policy;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, attempt, 7),
                     backoff::delay_seconds(policy, attempt, 7));
  }
  EXPECT_DOUBLE_EQ(backoff::jitter_uniform(1, 2, 3), backoff::jitter_uniform(1, 2, 3));
}

TEST(ForesightdBackoff, DelayStaysWithinJitteredEnvelope) {
  backoff::Policy policy;
  policy.base_delay_seconds = 1e-3;
  policy.max_delay_seconds = 8e-3;
  policy.jitter_fraction = 0.5;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double exp_delay =
        std::min(policy.base_delay_seconds * static_cast<double>(1 << (attempt - 1)),
                 policy.max_delay_seconds);
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      const double d = backoff::delay_seconds(policy, attempt, salt);
      EXPECT_GE(d, exp_delay * (1.0 - policy.jitter_fraction));
      EXPECT_LE(d, exp_delay);
      EXPECT_LE(d, policy.max_delay_seconds);  // cap never exceeded
    }
  }
}

TEST(ForesightdBackoff, ZeroJitterIsPureExponential) {
  backoff::Policy policy;
  policy.base_delay_seconds = 0.5e-3;
  policy.max_delay_seconds = 50e-3;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 1, 99), 0.5e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 2, 99), 1e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 3, 99), 2e-3);
  EXPECT_DOUBLE_EQ(backoff::delay_seconds(policy, 20, 99), 50e-3);  // capped
}

TEST(ForesightdBackoff, SaltsDecorrelateSchedules) {
  const backoff::Policy policy;  // default jitter_fraction = 0.5
  int distinct = 0;
  for (std::uint64_t salt = 1; salt <= 16; ++salt) {
    if (backoff::delay_seconds(policy, 3, salt) !=
        backoff::delay_seconds(policy, 3, salt + 16)) {
      ++distinct;
    }
  }
  // A thundering herd needs equal delays; decorrelated salts make that
  // vanishingly unlikely. Allow a couple of hash collisions.
  EXPECT_GE(distinct, 14);
}

TEST(ForesightdBackoff, JitterUniformInHalfOpenUnitInterval) {
  for (std::uint64_t i = 0; i < 256; ++i) {
    const double u = backoff::jitter_uniform(0xB0FF, i, i * 3);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---------------------------------------------------------------------------
// ForesightdCancel
// ---------------------------------------------------------------------------

TEST(ForesightdCancel, DefaultTokenNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.check("stage"));
}

TEST(ForesightdCancel, CancelVisibleAcrossCopies) {
  CancelToken token;
  CancelToken copy = token;
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("stage"), CancelledError);
}

TEST(ForesightdCancel, ExpiredDeadlineThrowsDeadlineError) {
  const CancelToken token = CancelToken::with_deadline(-1.0);
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_LT(token.remaining_seconds(), 0.0);
  EXPECT_THROW(token.check("stage"), DeadlineExceededError);
}

TEST(ForesightdCancel, CancellationWinsOverDeadline) {
  CancelToken token = CancelToken::with_deadline(-1.0);
  token.cancel();
  EXPECT_THROW(token.check("stage"), CancelledError);
}

TEST(ForesightdCancel, FutureDeadlineDoesNotFirePrematurely) {
  const CancelToken token = CancelToken::with_deadline(3600.0);
  EXPECT_FALSE(token.stop_requested());
  EXPECT_GT(token.remaining_seconds(), 3000.0);
  EXPECT_NO_THROW(token.check("stage"));
}

// ---------------------------------------------------------------------------
// ForesightdQueue
// ---------------------------------------------------------------------------

TEST(ForesightdQueue, FifoWithinOnePriority) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1, 0), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1, 0), Admission::kAccepted);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(ForesightdQueue, HigherPriorityPopsFirst) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 3});
  ASSERT_EQ(q.try_push(10, 1, 2), Admission::kAccepted);  // low
  ASSERT_EQ(q.try_push(20, 1, 0), Admission::kAccepted);  // high
  ASSERT_EQ(q.try_push(30, 1, 1), Admission::kAccepted);  // middle
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 30);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 10);
}

TEST(ForesightdQueue, CapacityRejectsWithQueueFull) {
  AdmissionQueue<int> q({.capacity = 2, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  EXPECT_EQ(q.try_push(3, 1), Admission::kQueueFull);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(q.try_push(3, 1), Admission::kAccepted);  // capacity freed by pop
}

TEST(ForesightdQueue, QuotaCountsOutstandingUntilRelease) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 1, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 7), Admission::kAccepted);
  EXPECT_EQ(q.try_push(2, 7), Admission::kQuotaExceeded);
  EXPECT_EQ(q.try_push(2, 8), Admission::kAccepted);  // other clients unaffected
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  // Popped but not released: still outstanding, still over quota.
  EXPECT_EQ(q.outstanding(7), 1u);
  EXPECT_EQ(q.try_push(3, 7), Admission::kQuotaExceeded);
  q.release(7);
  EXPECT_EQ(q.outstanding(7), 0u);
  EXPECT_EQ(q.try_push(3, 7), Admission::kAccepted);
}

TEST(ForesightdQueue, CloseDrainsAdmittedThenPopReturnsFalse) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  q.close();
  EXPECT_TRUE(q.draining());
  EXPECT_EQ(q.try_push(3, 1), Admission::kDraining);
  int out = 0;
  ASSERT_TRUE(q.pop(out));  // already-admitted items keep coming
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // drained and empty: exactly-once handout is over
}

TEST(ForesightdQueue, HighWaterTracksPeakDepth) {
  AdmissionQueue<int> q({.capacity = 8, .per_client_quota = 0, .priorities = 1});
  ASSERT_EQ(q.try_push(1, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(2, 1), Admission::kAccepted);
  ASSERT_EQ(q.try_push(3, 1), Admission::kAccepted);
  int out = 0;
  while (q.try_pop(out)) {
  }
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ForesightdQueue, AdmissionNamesAreStable) {
  EXPECT_STREQ(admission_name(Admission::kAccepted), "accepted");
  EXPECT_STREQ(admission_name(Admission::kQueueFull), "queue_full");
  EXPECT_STREQ(admission_name(Admission::kQuotaExceeded), "quota");
  EXPECT_STREQ(admission_name(Admission::kDraining), "draining");
}

// ---------------------------------------------------------------------------
// ForesightdProtocol
// ---------------------------------------------------------------------------

json::Value sample_request_json() {
  json::Object o;
  o["type"] = "roundtrip";
  o["id"] = 42;
  o["codec"] = "sz-cpu";
  o["mode"] = "abs";
  o["value"] = 0.1;
  json::Object ds;
  ds["type"] = "nyx";
  ds["dim"] = 16;
  ds["seed"] = 42;
  o["dataset"] = json::Value(std::move(ds));
  o["field"] = "baryon_density";
  return json::Value(std::move(o));
}

TEST(ForesightdProtocol, FrameRoundTrip) {
  const json::Value v = sample_request_json();
  const std::vector<std::uint8_t> wire = encode_frame(v);
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  const auto decoded = parser.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dump(), v.dump());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(ForesightdProtocol, ByteAtATimeFeed) {
  const json::Value v = sample_request_json();
  std::vector<std::uint8_t> wire = encode_frame(v);
  wire.reserve(wire.size() * 3);
  const std::size_t one = wire.size();
  // Three back-to-back frames, delivered one byte at a time.
  for (int i = 0; i < 2; ++i) wire.insert(wire.end(), wire.begin(), wire.begin() + one);
  FrameParser parser;
  int frames = 0;
  for (const std::uint8_t byte : wire) {
    parser.feed(&byte, 1);
    while (const auto decoded = parser.next()) {
      EXPECT_EQ(decoded->dump(), v.dump());
      ++frames;
    }
  }
  EXPECT_EQ(frames, 3);
}

TEST(ForesightdProtocol, TruncatedPrefixYieldsNothing) {
  const std::vector<std::uint8_t> wire = encode_frame(sample_request_json());
  FrameParser parser;
  parser.feed(wire.data(), 3);  // not even a full header
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(wire.data() + 3, wire.size() - 3 - 1);  // all but the last byte
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(parser.next().has_value());
}

TEST(ForesightdProtocol, ZeroLengthHeaderRejectedBeforeBuffering) {
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  FrameParser parser;
  EXPECT_THROW(parser.feed(zero, 4), FormatError);
}

TEST(ForesightdProtocol, HostileLengthRejectedAtHeaderTime) {
  // 4 GiB - 1 declared; must throw at feed() with nothing allocated for it.
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameParser parser;
  EXPECT_THROW(parser.feed(huge, 4), FormatError);
}

TEST(ForesightdProtocol, OverMaxLengthRejected) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::uint8_t header[4];
  std::memcpy(header, &len, 4);
  FrameParser parser;
  EXPECT_THROW(parser.feed(header, 4), FormatError);
}

TEST(ForesightdProtocol, MalformedJsonPayloadThrows) {
  const std::string payload = "{not json";
  std::vector<std::uint8_t> wire;
  const auto len = static_cast<std::uint32_t>(payload.size());
  wire.resize(4);
  std::memcpy(wire.data(), &len, 4);
  wire.insert(wire.end(), payload.begin(), payload.end());
  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  EXPECT_THROW(parser.next(), FormatError);
}

TEST(ForesightdProtocol, ParseValidatesPerType) {
  json::Object o;
  o["type"] = "bogus";
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  o["type"] = "roundtrip";  // job request with no codec
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  o["codec"] = "sz-cpu";  // still no dataset/field/mode
  EXPECT_THROW(JobRequest::parse(json::Value(o)), FormatError);

  json::Object decomp;
  decomp["type"] = "decompress";
  decomp["codec"] = "sz-cpu";
  EXPECT_THROW(JobRequest::parse(json::Value(decomp)), FormatError);  // no payload

  json::Object bad_deadline = sample_request_json().as_object();
  bad_deadline["deadline_seconds"] = -1.0;
  EXPECT_THROW(JobRequest::parse(json::Value(bad_deadline)), FormatError);

  json::Object control;
  control["type"] = "ping";  // control requests need nothing else
  EXPECT_NO_THROW(JobRequest::parse(json::Value(control)));
}

TEST(ForesightdProtocol, ParseToJsonRoundTrip) {
  const JobRequest parsed = JobRequest::parse(sample_request_json());
  EXPECT_EQ(parsed.type, RequestType::kRoundtrip);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.codec, "sz-cpu");
  EXPECT_EQ(parsed.mode, "abs");
  EXPECT_DOUBLE_EQ(parsed.value, 0.1);
  EXPECT_EQ(parsed.field, "baryon_density");
  const JobRequest again = JobRequest::parse(parsed.to_json());
  EXPECT_EQ(again.to_json().dump(), parsed.to_json().dump());
}

TEST(ForesightdProtocol, SweepConfigsRoundTrip) {
  JobRequest request;
  request.type = RequestType::kSweep;
  request.id = 7;
  request.codec = "zfp-cpu";
  request.dataset = sample_request_json().at("dataset");
  request.field = "baryon_density";
  request.configs = {{"rate", 4.0}, {"rate", 8.0}, {"abs", 0.1}};
  const JobRequest parsed = JobRequest::parse(request.to_json());
  ASSERT_EQ(parsed.configs.size(), 3u);
  EXPECT_EQ(parsed.configs[0].first, "rate");
  EXPECT_DOUBLE_EQ(parsed.configs[1].second, 8.0);
  EXPECT_EQ(parsed.configs[2].first, "abs");
}

// ---------------------------------------------------------------------------
// ForesightdBase64
// ---------------------------------------------------------------------------

TEST(ForesightdBase64, RoundTripsAllSmallLengths) {
  for (std::size_t n = 0; n <= 9; ++n) {
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i * 37 + 11);
    const std::string text = base64_encode(data);
    EXPECT_EQ(text.size() % 4, 0u);
    EXPECT_EQ(base64_decode(text), data);
  }
}

TEST(ForesightdBase64, KnownVector) {
  const std::string text = base64_encode(
      reinterpret_cast<const std::uint8_t*>("foobar"), 6);
  EXPECT_EQ(text, "Zm9vYmFy");
  EXPECT_EQ(base64_encode(reinterpret_cast<const std::uint8_t*>("foob"), 4), "Zm9vYg==");
}

TEST(ForesightdBase64, RejectsMalformedInput) {
  EXPECT_THROW(base64_decode("AAA"), FormatError);       // not a multiple of 4
  EXPECT_THROW(base64_decode("AA!A"), FormatError);      // invalid character
  EXPECT_THROW(base64_decode("=AAA"), FormatError);      // padding up front
  EXPECT_THROW(base64_decode("AA=A"), FormatError);      // padding mid-quartet
  EXPECT_THROW(base64_decode("AB==CD=="), FormatError);  // padding not terminal
}

// ---------------------------------------------------------------------------
// ForesightdSessionCache
// ---------------------------------------------------------------------------

const Field& test_field() {
  static const io::Container container = [] {
    json::Object spec;
    spec["type"] = "nyx";
    spec["dim"] = 16;
    spec["seed"] = 42;
    return foresight::build_dataset(json::Value(spec));
  }();
  return container.find("baryon_density").field;
}

TEST(ForesightdSessionCache, ReusesSessionsPerCodec) {
  foresight::SessionCache cache;
  auto& first = cache.session("sz-cpu");
  auto& second = cache.session("sz-cpu");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.sessions_opened(), 1u);
  (void)cache.session("zfp-cpu");
  EXPECT_EQ(cache.sessions_opened(), 2u);
}

TEST(ForesightdSessionCache, InvalidateReopensAgainstFreshArena) {
  foresight::SessionCache cache;
  auto& before = cache.session("sz-cpu");
  (void)before;
  cache.invalidate();
  EXPECT_EQ(cache.invalidations(), 1u);
  (void)cache.session("sz-cpu");
  EXPECT_EQ(cache.sessions_opened(), 2u);  // reopened after the reset
}

TEST(ForesightdSessionCache, DirtyReuseStreamsStayByteIdentical) {
  const Field& field = test_field();
  const foresight::CompressorConfig config{"abs", 0.1};

  // Clean single-shot reference.
  foresight::SessionCache reference_cache;
  const foresight::CompressResult clean =
      reference_cache.session("sz-cpu").compress(field, config);
  const std::uint32_t clean_crc = crc32(clean.bytes.data(), clean.bytes.size());

  // Fail a job in a long-lived cache: truncate the stream so decompress
  // throws, exactly like an injected corruption in the daemon.
  foresight::SessionCache cache;
  foresight::CompressResult corrupt = cache.session("sz-cpu").compress(field, config);
  EXPECT_EQ(crc32(corrupt.bytes.data(), corrupt.bytes.size()), clean_crc);
  corrupt.bytes.resize(4);
  EXPECT_THROW((void)cache.session("sz-cpu").decompress(corrupt), Error);

  // The daemon's containment step after any failure.
  cache.invalidate();

  // The next job on this worker must see pristine state: byte-identical
  // stream and a working decompress path.
  const foresight::CompressResult after = cache.session("sz-cpu").compress(field, config);
  EXPECT_EQ(after.bytes.size(), clean.bytes.size());
  EXPECT_EQ(crc32(after.bytes.data(), after.bytes.size()), clean_crc);
  const foresight::DecompressResult out = cache.session("sz-cpu").decompress(after);
  EXPECT_EQ(out.values.size(), field.data.size());
}

// ---------------------------------------------------------------------------
// ForesightdDaemon (end-to-end over real sockets)
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/fsd_gtest_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

json::Value nyx_spec(std::size_t dim) {
  json::Object spec;
  spec["type"] = "nyx";
  spec["dim"] = dim;
  spec["seed"] = 42;
  return json::Value(std::move(spec));
}

JobRequest roundtrip_request(std::uint64_t id, std::size_t dim = 16) {
  JobRequest request;
  request.type = RequestType::kRoundtrip;
  request.id = id;
  request.codec = "sz-cpu";
  request.mode = "abs";
  request.value = 0.1;
  request.dataset = nyx_spec(dim);
  request.field = "baryon_density";
  return request;
}

/// A sweep heavy enough that it cannot finish inside a small drain budget.
JobRequest slow_sweep_request(std::uint64_t id, std::size_t configs, std::size_t dim) {
  JobRequest request;
  request.type = RequestType::kSweep;
  request.id = id;
  request.codec = "sz-cpu";
  request.dataset = nyx_spec(dim);
  request.field = "baryon_density";
  for (std::size_t i = 0; i < configs; ++i) request.configs.emplace_back("abs", 0.1);
  return request;
}

TEST(ForesightdDaemon, PingReportsLivenessAndShutdownDrains) {
  DaemonOptions options;
  options.socket_path = test_socket_path("ping");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    const json::Value pong = client.ping();
    EXPECT_EQ(pong.get("type", std::string()), "pong");
    EXPECT_FALSE(pong.get("draining", true));
    const json::Value metrics = client.metrics();
    EXPECT_EQ(metrics.get("type", std::string()), "metrics");
    EXPECT_TRUE(metrics.contains("metrics"));
    (void)client.shutdown();
  }
  daemon.wait();
  EXPECT_EQ(daemon.stats().admitted, 0u);
}

TEST(ForesightdDaemon, RoundtripMatchesSingleShotReference) {
  // Reference stream computed with no daemon involved.
  const foresight::CompressResult reference =
      foresight::SessionCache().session("sz-cpu").compress(test_field(), {"abs", 0.1});
  const std::uint32_t reference_crc = crc32(reference.bytes.data(), reference.bytes.size());

  DaemonOptions options;
  options.socket_path = test_socket_path("roundtrip");
  options.workers = 2;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    const json::Value reply = client.call(roundtrip_request(1).to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusOk) << reply.dump();
    EXPECT_EQ(static_cast<std::uint32_t>(reply.at("crc32").as_number()), reference_crc);
    EXPECT_EQ(static_cast<std::size_t>(reply.get("compressed_bytes", 0.0)),
              reference.bytes.size());
    EXPECT_TRUE(reply.contains("psnr_db"));
  }
  daemon.request_shutdown();
  daemon.wait();
}

TEST(ForesightdDaemon, ExpiredDeadlineReportsDeadlineStatus) {
  DaemonOptions options;
  options.socket_path = test_socket_path("deadline");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    JobRequest request = roundtrip_request(5);
    request.deadline_seconds = 1e-9;
    const json::Value reply = client.call(request.to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusDeadline);
    EXPECT_EQ(static_cast<std::uint64_t>(reply.get("id", 0.0)), 5u);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().deadline, 1u);
}

TEST(ForesightdDaemon, QuotaRejectsSecondOutstandingJob) {
  DaemonOptions options;
  options.socket_path = test_socket_path("quota");
  options.workers = 1;
  options.per_client_quota = 1;
  Daemon daemon(options);
  daemon.start();
  {
    Client client(options.socket_path);
    // Job 1 occupies the worker; job 2 lands while job 1 is outstanding.
    client.send(slow_sweep_request(1, 24, 16).to_json());
    client.send(roundtrip_request(2).to_json());
    const json::Value first = client.recv();  // the quota rejection, answered inline
    EXPECT_EQ(static_cast<std::uint64_t>(first.get("id", 0.0)), 2u);
    EXPECT_EQ(first.get("status", std::string()), foresightd::kStatusRejected);
    EXPECT_EQ(first.get("reason", std::string()), "quota");
    const json::Value second = client.recv();
    EXPECT_EQ(static_cast<std::uint64_t>(second.get("id", 0.0)), 1u);
    EXPECT_EQ(second.get("status", std::string()), foresightd::kStatusOk);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_EQ(daemon.stats().rejected, 1u);
}

TEST(ForesightdDaemon, QueueFullRejectsOverCapacity) {
  DaemonOptions options;
  options.socket_path = test_socket_path("queuefull");
  options.workers = 1;
  options.queue_capacity = 1;
  Daemon daemon(options);
  daemon.start();
  std::size_t rejected = 0;
  std::size_t responses = 0;
  {
    Client client(options.socket_path);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      client.send(slow_sweep_request(id, 16, 16).to_json());
    }
    for (int i = 0; i < 3; ++i) {
      const json::Value reply = client.recv();
      ++responses;
      const std::string status = reply.get("status", std::string());
      if (status == foresightd::kStatusRejected) {
        EXPECT_EQ(reply.get("reason", std::string()), "queue_full");
        ++rejected;
      } else {
        EXPECT_EQ(status, foresightd::kStatusOk);
      }
    }
  }
  EXPECT_EQ(responses, 3u);
  // Capacity 1 with three back-to-back submissions must shed at least one.
  EXPECT_GE(rejected, 1u);
  daemon.request_shutdown();
  daemon.wait();
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.admitted, stats.ok + stats.failed + stats.cancelled + stats.deadline);
}

TEST(ForesightdDaemon, DrainRejectsNewWorkAndCancelsOnBudget) {
  DaemonOptions options;
  options.socket_path = test_socket_path("drain");
  options.workers = 1;
  options.drain_budget_seconds = 0.05;
  Daemon daemon(options);
  daemon.start();
  {
    Client loader(options.socket_path);
    Client prober(options.socket_path);  // opened pre-drain: listen closes at drain
    loader.send(slow_sweep_request(1, 256, 32).to_json());
    while (daemon.stats().admitted < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    daemon.request_shutdown();
    while (!prober.ping().get("draining", false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // New work after the drain started: rejected, never queued.
    const json::Value late = prober.call(roundtrip_request(9).to_json());
    EXPECT_EQ(late.get("status", std::string()), foresightd::kStatusRejected);
    EXPECT_EQ(late.get("reason", std::string()), "draining");
    // The in-flight sweep still gets its one answer: cancelled when the
    // 50 ms budget expires long before 256 configs can finish.
    const json::Value reply = loader.recv();
    EXPECT_EQ(static_cast<std::uint64_t>(reply.get("id", 0.0)), 1u);
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusCancelled);
  }
  daemon.wait();
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.admitted, stats.ok + stats.failed + stats.cancelled + stats.deadline);
}

TEST(ForesightdDaemon, ProtocolErrorClosesOnlyTheOffendingConnection) {
  DaemonOptions options;
  options.socket_path = test_socket_path("proto");
  options.workers = 1;
  Daemon daemon(options);
  daemon.start();
  {
    // Raw socket speaking garbage: a zero-length frame header.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    ASSERT_EQ(::send(fd, zeros, 4, 0), 4);
    // The daemon answers with an error frame and hangs up on us.
    std::uint8_t buf[256];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);

    // A well-behaved client is unaffected.
    Client client(options.socket_path);
    EXPECT_EQ(client.ping().get("type", std::string()), "pong");
    const json::Value reply = client.call(roundtrip_request(3).to_json());
    EXPECT_EQ(reply.get("status", std::string()), foresightd::kStatusOk);
  }
  daemon.request_shutdown();
  daemon.wait();
  EXPECT_GE(daemon.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace cosmo
