#include <gtest/gtest.h>

#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"

namespace cosmo::foresight {
namespace {

io::Container small_nyx() {
  NyxConfig config;
  config.dim = 16;
  return generate_nyx(config);
}

TEST(CBench, RunOnePopulatesEveryMetric) {
  const auto data = small_nyx();
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  CBench bench({.keep_reconstructed = true, .dataset_name = "nyx"});
  const CBenchResult r =
      bench.run_one(data.find("baryon_density").field, *codec, {"rate", 8.0});
  EXPECT_EQ(r.dataset, "nyx");
  EXPECT_EQ(r.field, "baryon_density");
  EXPECT_EQ(r.compressor, "cuzfp");
  EXPECT_GT(r.ratio, 3.0);
  EXPECT_NEAR(r.bit_rate, 8.0, 1.0);
  EXPECT_GT(r.distortion.psnr_db, 10.0);
  EXPECT_GT(r.compress_gbps, 0.0);
  EXPECT_GT(r.decompress_gbps, 0.0);
  EXPECT_TRUE(r.has_gpu_timing());
  EXPECT_EQ(r.reconstructed.size(), data.find("baryon_density").field.data.size());
}

TEST(CBench, DropReconstructedWhenNotRequested) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench({.keep_reconstructed = false, .dataset_name = "nyx"});
  const CBenchResult r =
      bench.run_one(data.find("temperature").field, *codec, {"rate", 8.0});
  EXPECT_TRUE(r.reconstructed.empty());
}

TEST(CBench, SweepCoversFieldsTimesConfigs) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench;
  const std::vector<CompressorConfig> configs = {{"rate", 4.0}, {"rate", 8.0}};
  const auto results = bench.sweep(data, *codec, configs);
  EXPECT_EQ(results.size(), 6u * 2u);
}

TEST(CBench, SweepFieldFilter) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench;
  const auto results =
      bench.sweep(data, *codec, {{"rate", 8.0}},
                  [](const std::string& name) { return name == "temperature"; });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].field, "temperature");
}

TEST(CBench, OverallRatioIsByteWeighted) {
  std::vector<CBenchResult> results(2);
  results[0].original_bytes = 1000;
  results[0].compressed_bytes = 100;  // 10x
  results[1].original_bytes = 1000;
  results[1].compressed_bytes = 400;  // 2.5x
  EXPECT_DOUBLE_EQ(CBench::overall_ratio(results), 4.0);  // 2000/500
  EXPECT_THROW(CBench::overall_ratio({}), InvalidArgument);
}

TEST(CBench, FormatResultsMarksGpuSzThroughputNA) {
  const auto data = small_nyx();
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto gpu_sz = make_compressor("gpu-sz", &sim);
  CBench bench;
  const auto results = bench.sweep(data, *gpu_sz, {{"abs", 1.0}},
                                   [](const std::string& name) {
                                     return name == "dark_matter_density";
                                   });
  const std::string table = format_results(results);
  // The paper excludes GPU-SZ throughput: the table prints N/A.
  EXPECT_NE(table.find("N/A"), std::string::npos);
  EXPECT_NE(table.find("gpu-sz"), std::string::npos);
}

TEST(CBench, HigherRateGivesHigherPsnrInResults) {
  const auto data = small_nyx();
  const auto codec = make_compressor("zfp-cpu");
  CBench bench;
  const Field& f = data.find("velocity_x").field;
  const auto low = bench.run_one(f, *codec, {"rate", 4.0});
  const auto high = bench.run_one(f, *codec, {"rate", 16.0});
  EXPECT_GT(high.distortion.psnr_db, low.distortion.psnr_db);
  EXPECT_LT(high.ratio, low.ratio);
}

}  // namespace
}  // namespace cosmo::foresight
