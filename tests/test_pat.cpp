#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"
#include "foresight/pat.hpp"

namespace cosmo::foresight {
namespace {

TEST(Pat, TopologicalOrderRespectsDependencies) {
  Workflow wf;
  wf.add("c", {"a", "b"}, nullptr);
  wf.add("a", {}, nullptr);
  wf.add("b", {"a"}, nullptr);
  const auto order = wf.topological_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
}

TEST(Pat, CycleDetected) {
  Workflow wf;
  wf.add("a", {"b"}, nullptr);
  wf.add("b", {"a"}, nullptr);
  EXPECT_THROW(wf.topological_order(), InvalidArgument);
  EXPECT_THROW(wf.run(), InvalidArgument);
}

TEST(Pat, MissingDependencyDetected) {
  Workflow wf;
  wf.add("a", {"ghost"}, nullptr);
  EXPECT_THROW(wf.topological_order(), InvalidArgument);
}

TEST(Pat, DuplicateJobRejected) {
  Workflow wf;
  wf.add("a", {}, nullptr);
  EXPECT_THROW(wf.add("a", {}, nullptr), InvalidArgument);
  EXPECT_THROW(wf.add("", {}, nullptr), InvalidArgument);
}

TEST(Pat, InlineRunExecutesInDependencyOrder) {
  Workflow wf;
  std::vector<std::string> executed;
  wf.add("analysis", {"cbench"}, [&] { executed.push_back("analysis"); });
  wf.add("cbench", {"generate"}, [&] { executed.push_back("cbench"); });
  wf.add("generate", {}, [&] { executed.push_back("generate"); });
  wf.add("plot", {"analysis"}, [&] { executed.push_back("plot"); });
  EXPECT_TRUE(wf.run());
  ASSERT_EQ(executed.size(), 4u);
  EXPECT_EQ(executed[0], "generate");
  EXPECT_EQ(executed[1], "cbench");
  EXPECT_EQ(executed[2], "analysis");
  EXPECT_EQ(executed[3], "plot");
  for (const auto& [name, record] : wf.records()) {
    EXPECT_EQ(record.status, JobStatus::kSucceeded) << name;
    EXPECT_GE(record.seconds, 0.0);
  }
}

TEST(Pat, FailedJobSkipsTransitiveDependents) {
  Workflow wf;
  std::atomic<bool> downstream_ran{false};
  wf.add("good", {}, [] {});
  wf.add("bad", {}, [] { throw std::runtime_error("job exploded"); });
  wf.add("child", {"bad"}, [&] { downstream_ran = true; });
  wf.add("grandchild", {"child"}, [&] { downstream_ran = true; });
  wf.add("independent", {"good"}, [] {});
  EXPECT_FALSE(wf.run());
  EXPECT_FALSE(downstream_ran.load());
  EXPECT_EQ(wf.records().at("bad").status, JobStatus::kFailed);
  EXPECT_EQ(wf.records().at("bad").error, "job exploded");
  EXPECT_EQ(wf.records().at("child").status, JobStatus::kSkipped);
  EXPECT_EQ(wf.records().at("grandchild").status, JobStatus::kSkipped);
  EXPECT_EQ(wf.records().at("independent").status, JobStatus::kSucceeded);
}

TEST(Pat, ParallelRunWithPoolCompletesAll) {
  Workflow wf;
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    wf.add("leaf" + std::to_string(i), {}, [&counter] { ++counter; });
  }
  wf.add("join", [&] {
    std::vector<std::string> deps;
    for (int i = 0; i < 20; ++i) deps.push_back("leaf" + std::to_string(i));
    return deps;
  }(), [&counter] { EXPECT_EQ(counter.load(), 20); });
  ThreadPool pool(4);
  EXPECT_TRUE(wf.run(&pool));
  EXPECT_EQ(counter.load(), 20);
}

TEST(Pat, ParallelRunPropagatesFailure) {
  Workflow wf;
  wf.add("a", {}, [] { throw std::runtime_error("nope"); });
  wf.add("b", {"a"}, [] {});
  ThreadPool pool(2);
  EXPECT_FALSE(wf.run(&pool));
  EXPECT_EQ(wf.records().at("b").status, JobStatus::kSkipped);
}

TEST(Pat, DiamondDependencyRunsOnce) {
  Workflow wf;
  std::atomic<int> d_runs{0};
  wf.add("top", {}, [] {});
  wf.add("left", {"top"}, [] {});
  wf.add("right", {"top"}, [] {});
  wf.add("bottom", {"left", "right"}, [&] { ++d_runs; });
  ThreadPool pool(4);
  EXPECT_TRUE(wf.run(&pool));
  EXPECT_EQ(d_runs.load(), 1);
}

TEST(Pat, SubmissionScriptEmitsSbatchChain) {
  Workflow wf;
  Job cbench;
  cbench.name = "cbench";
  cbench.nodes = 4;
  cbench.tasks_per_node = 16;
  cbench.partition = "gpu";
  wf.add(cbench);
  wf.add("analysis", {"cbench"}, nullptr);
  const std::string script = wf.to_submission_script();
  EXPECT_NE(script.find("#!/bin/bash"), std::string::npos);
  EXPECT_NE(script.find("sbatch"), std::string::npos);
  EXPECT_NE(script.find("-N 4"), std::string::npos);
  EXPECT_NE(script.find("-p gpu"), std::string::npos);
  EXPECT_NE(script.find("--dependency=afterok:$JOB_cbench"), std::string::npos);
}

TEST(Pat, EmptyWorkflowSucceeds) {
  Workflow wf;
  EXPECT_TRUE(wf.run());
  EXPECT_EQ(wf.size(), 0u);
}

}  // namespace
}  // namespace cosmo::foresight
