#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/container.hpp"
#include "io/crc32.hpp"
#include "io/ppm.hpp"
#include "random/rng.hpp"

namespace cosmo::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32(data.data(), data.size());
  const std::uint32_t first = crc32(data.data(), 20);
  const std::uint32_t combined = crc32(data.data() + 20, data.size() - 20, first);
  EXPECT_EQ(combined, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(100, 0x55);
  const std::uint32_t before = crc32(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(crc32(data.data(), data.size()), before);
}

TEST(Container, SaveLoadRoundTrip) {
  Container c;
  {
    Variable v;
    v.field = Field("x", Dims::d1(100));
    for (std::size_t i = 0; i < 100; ++i) v.field.data[i] = static_cast<float>(i) * 0.5f;
    v.attributes["units"] = "Mpc/h";
    c.variables.push_back(std::move(v));
  }
  {
    Variable v;
    v.field = Field("density", Dims::d3(4, 5, 6));
    Rng rng(7);
    for (auto& x : v.field.data) x = static_cast<float>(rng.normal());
    c.variables.push_back(std::move(v));
  }
  const std::string path = temp_path("container_rt.gio");
  save(c, path, Dialect::kGenericIo);
  const Container loaded = load(path);
  ASSERT_EQ(loaded.variables.size(), 2u);
  EXPECT_EQ(loaded.variables[0].field.name, "x");
  EXPECT_EQ(loaded.variables[0].attributes.at("units"), "Mpc/h");
  EXPECT_EQ(loaded.variables[1].field.dims, Dims::d3(4, 5, 6));
  EXPECT_EQ(loaded.variables[0].field.data, c.variables[0].field.data);
  EXPECT_EQ(loaded.variables[1].field.data, c.variables[1].field.data);
  std::remove(path.c_str());
}

TEST(Container, DialectProbing) {
  Container c;
  Variable v;
  v.field = Field("f", Dims::d1(4), {1, 2, 3, 4});
  c.variables.push_back(v);

  const std::string gio_path = temp_path("probe.gio");
  const std::string h5_path = temp_path("probe.h5l");
  save(c, gio_path, Dialect::kGenericIo);
  save(c, h5_path, Dialect::kHdf5Lite);
  EXPECT_EQ(probe_dialect(gio_path), Dialect::kGenericIo);
  EXPECT_EQ(probe_dialect(h5_path), Dialect::kHdf5Lite);
  // Both dialects load through the same path.
  EXPECT_EQ(load(gio_path).variables[0].field.data, load(h5_path).variables[0].field.data);
  std::remove(gio_path.c_str());
  std::remove(h5_path.c_str());
}

TEST(Container, CorruptionDetectedByCrc) {
  Container c;
  Variable v;
  v.field = Field("f", Dims::d1(64));
  for (std::size_t i = 0; i < 64; ++i) v.field.data[i] = static_cast<float>(i);
  c.variables.push_back(v);
  const std::string path = temp_path("corrupt.gio");
  save(c, path, Dialect::kGenericIo);
  {
    // Flip one payload byte near the end of the file.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    char byte;
    f.read(&byte, 1);
    f.seekp(-5, std::ios::end);
    byte = static_cast<char>(byte ^ 0xFF);
    f.write(&byte, 1);
  }
  EXPECT_THROW(load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Container, FindByName) {
  Container c;
  Variable v;
  v.field = Field("vx", Dims::d1(4), {1, 2, 3, 4});
  c.variables.push_back(v);
  EXPECT_EQ(c.find("vx").field.data.size(), 4u);
  EXPECT_THROW(c.find("vy"), InvalidArgument);
  EXPECT_EQ(c.payload_bytes(), 16u);
}

TEST(Container, MissingFileThrows) {
  EXPECT_THROW(load("/nonexistent/path.gio"), IoError);
  EXPECT_THROW(probe_dialect("/nonexistent/path.gio"), IoError);
}

TEST(Container, TruncatedFileThrows) {
  Container c;
  Variable v;
  v.field = Field("f", Dims::d1(1000));
  c.variables.push_back(v);
  const std::string path = temp_path("trunc.gio");
  save(c, path, Dialect::kGenericIo);
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Ppm, WriteAndRasterLayout) {
  Image img(4, 2);
  img.set(0, 0, 255, 0, 0);
  img.set(3, 1, 0, 255, 0);
  EXPECT_EQ(img.rgb[0], 255);
  EXPECT_EQ(img.rgb[3 * (1 * 4 + 3) + 1], 255);
  const std::string path = temp_path("img.ppm");
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

TEST(Ppm, RenderSliceProducesImage) {
  Field f("rho", Dims::d3(8, 8, 4));
  Rng rng(8);
  for (auto& v : f.data) v = static_cast<float>(std::abs(rng.normal()) * 100.0 + 1.0);
  const Image img = render_slice(f, 2);
  EXPECT_EQ(img.width, 8u);
  EXPECT_EQ(img.height, 8u);
  // Not all black.
  std::size_t nonzero = 0;
  for (const auto b : img.rgb) {
    if (b != 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 0u);
  EXPECT_THROW(render_slice(f, 10), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::io
