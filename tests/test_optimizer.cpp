#include <gtest/gtest.h>

#include "common/telemetry.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/optimizer.hpp"
#include "foresight/sweep.hpp"
#include "json/json.hpp"

namespace cosmo::foresight {
namespace {

TEST(OptimizerGrid, PicksHighestRatioAmongAcceptable) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);

  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["velocity_x"] = {{"rate", 2.0}, {"rate", 4.0}, {"rate", 8.0}, {"rate", 16.0}};

  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.01, 0.5);
  ASSERT_EQ(result.per_field.size(), 1u);
  const auto& choice = result.per_field[0];
  EXPECT_EQ(choice.field, "velocity_x");
  EXPECT_EQ(choice.candidates.size(), 4u);
  // 16 bits/value must be acceptable on a smooth field; the guideline then
  // guarantees the chosen config is the acceptable one with highest ratio.
  ASSERT_TRUE(choice.found);
  for (const auto& c : choice.candidates) {
    if (c.acceptable) {
      EXPECT_GE(choice.chosen.ratio, c.ratio);
    }
  }
  EXPECT_TRUE(choice.chosen.acceptable);
}

TEST(OptimizerGrid, RejectsWhenNothingAcceptable) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  // A fraction of a bit per value destroys the spectrum on density.
  candidates["baryon_density"] = {{"rate", 0.5}};
  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.01, 0.5);
  ASSERT_EQ(result.per_field.size(), 1u);
  EXPECT_FALSE(result.per_field[0].found);
  EXPECT_FALSE(result.all_fields_ok);
}

TEST(OptimizerGrid, TighterToleranceRejectsMore) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["temperature"] = {{"rate", 2.0}, {"rate", 4.0}, {"rate", 8.0}};
  const auto loose = optimize_grid_dataset(data, *codec, candidates, 0.10, 0.5);
  const auto tight = optimize_grid_dataset(data, *codec, candidates, 0.0001, 0.5);
  auto count_ok = [](const OptimizationResult& r) {
    std::size_t n = 0;
    for (const auto& c : r.per_field[0].candidates) {
      if (c.acceptable) ++n;
    }
    return n;
  };
  EXPECT_GE(count_ok(loose), count_ok(tight));
}

TEST(OptimizerGrid, SkipsFieldsWithoutCandidates) {
  NyxConfig config;
  config.dim = 16;
  const auto data = generate_nyx(config);
  const auto codec = make_compressor("zfp-cpu");
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["temperature"] = {{"rate", 16.0}};
  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.05, 0.5);
  EXPECT_EQ(result.per_field.size(), 1u);  // only temperature evaluated
}

TEST(OptimizerParticles, SelectsPositionAndVelocityBounds) {
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 12;
  const auto data = generate_hacc(config);
  const auto codec = make_compressor("sz-cpu");

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;

  const std::vector<CompressorConfig> pos_candidates = {
      {"abs", 0.001}, {"abs", 0.005}, {"abs", 3.0}};
  const std::vector<CompressorConfig> vel_candidates = {{"pw_rel", 0.01}, {"pw_rel", 0.25}};

  const auto result = optimize_particle_dataset(data, *codec, pos_candidates,
                                                vel_candidates, fof_params, 0.1, 0.1);
  ASSERT_EQ(result.per_field.size(), 2u);
  const auto& pos = result.per_field[0];
  EXPECT_EQ(pos.field, "position");
  ASSERT_TRUE(pos.found);
  // abs=3.0 (larger than the linking length!) must not be the acceptable
  // winner unless it really preserved halos; the tight bounds must pass.
  EXPECT_TRUE(pos.candidates[0].acceptable);
  const auto& vel = result.per_field[1];
  EXPECT_EQ(vel.field, "velocity");
  ASSERT_TRUE(vel.found);
  EXPECT_GT(result.overall_ratio, 1.0);
  EXPECT_TRUE(result.all_fields_ok);
}

TEST(OptimizerParticles, LoosePositionBoundBreaksHalos) {
  HaccConfig config;
  config.particles = 15000;
  config.halo_count = 10;
  const auto data = generate_hacc(config);
  const auto codec = make_compressor("sz-cpu");
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;
  // A position error of 5 (5x the linking length) scrambles membership.
  const auto result = optimize_particle_dataset(
      data, *codec, {{"abs", 5.0}}, {{"pw_rel", 0.1}}, fof_params, 0.05, 0.5);
  EXPECT_FALSE(result.per_field[0].found);
  EXPECT_FALSE(result.all_fields_ok);
}

TEST(Optimizer, FormatsReadableReport) {
  OptimizationResult result;
  FieldChoice choice;
  choice.field = "baryon_density";
  choice.found = true;
  choice.chosen.config = {"abs", 0.2};
  choice.chosen.ratio = 15.4;
  choice.chosen.psnr_db = 95.0;
  choice.chosen.acceptable = true;
  choice.chosen.metric_deviation = 0.004;
  CandidateOutcome rejected;
  rejected.config = {"abs", 1.0};
  rejected.ratio = 20.0;
  rejected.psnr_db = 102.45;
  rejected.acceptable = false;
  rejected.metric_deviation = 0.02;
  CandidateOutcome pruned;
  pruned.config = {"abs", 0.05};
  pruned.ratio = 8.0;
  pruned.acceptable = true;
  pruned.status = "pruned";
  pruned.predicted = true;
  choice.candidates = {choice.chosen, rejected, pruned};
  result.per_field.push_back(choice);
  result.overall_ratio = 15.4;
  result.all_fields_ok = true;
  const std::string report = format_optimization(result);
  EXPECT_NE(report.find("baryon_density"), std::string::npos);
  EXPECT_NE(report.find("abs=0.2"), std::string::npos);
  EXPECT_NE(report.find("15.4"), std::string::npos);
  EXPECT_NE(report.find("reject"), std::string::npos);
  EXPECT_NE(report.find("(pruned, predicted)"), std::string::npos);
  EXPECT_NE(report.find("full evals"), std::string::npos);
}

// ---------- guided search ----------

/// Shared fixture data: a small Nyx snapshot with a dense abs lattice on
/// two fields (dense lattices are where guided search pays off).
struct GuidedGridCase {
  io::Container data;
  std::unique_ptr<Compressor> codec;
  std::map<std::string, std::vector<CompressorConfig>> candidates;

  GuidedGridCase() {
    NyxConfig config;
    config.dim = 16;
    data = generate_nyx(config);
    codec = make_compressor("sz-cpu");
    for (const char* name : {"temperature", "velocity_x"}) {
      candidates[name] = abs_sweep_for_field(data.find(name).field, 2e-6, 2e-2, 16);
    }
  }
};

TEST(OptimizerGuided, MatchesExhaustiveChoiceOnGrid) {
  GuidedGridCase c;
  const auto exhaustive = optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5);
  for (const std::size_t threads : {1u, 4u}) {
    OptimizerOptions options;
    options.search = SearchMode::kGuided;
    options.threads = threads;
    const auto guided =
        optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5, options);
    ASSERT_EQ(guided.per_field.size(), exhaustive.per_field.size());
    for (std::size_t i = 0; i < guided.per_field.size(); ++i) {
      const auto& ge = guided.per_field[i];
      const auto& ee = exhaustive.per_field[i];
      EXPECT_EQ(ge.field, ee.field);
      ASSERT_EQ(ge.found, ee.found) << ge.field;
      if (!ee.found) continue;
      EXPECT_EQ(ge.chosen.config.mode, ee.chosen.config.mode) << ge.field;
      EXPECT_DOUBLE_EQ(ge.chosen.config.value, ee.chosen.config.value) << ge.field;
      EXPECT_DOUBLE_EQ(ge.chosen.ratio, ee.chosen.ratio) << ge.field;
      EXPECT_EQ(ge.chosen.status, "evaluated");
      EXPECT_FALSE(ge.chosen.predicted);
    }
    EXPECT_LT(guided.stats.full_evals, exhaustive.stats.full_evals);
  }
}

TEST(OptimizerGuided, DeterministicAcrossThreadCounts) {
  GuidedGridCase c;
  OptimizerOptions serial;
  serial.search = SearchMode::kGuided;
  serial.threads = 1;
  OptimizerOptions parallel = serial;
  parallel.threads = 4;
  const auto a = optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5, serial);
  const auto b =
      optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5, parallel);
  ASSERT_EQ(a.per_field.size(), b.per_field.size());
  EXPECT_EQ(a.stats.full_evals, b.stats.full_evals);
  EXPECT_EQ(a.stats.pruned, b.stats.pruned);
  for (std::size_t i = 0; i < a.per_field.size(); ++i) {
    const auto& fa = a.per_field[i];
    const auto& fb = b.per_field[i];
    ASSERT_EQ(fa.candidates.size(), fb.candidates.size());
    // Candidate rows are slotted by index: identical configs, statuses, and
    // metrics regardless of worker count.
    for (std::size_t j = 0; j < fa.candidates.size(); ++j) {
      EXPECT_EQ(fa.candidates[j].config.mode, fb.candidates[j].config.mode);
      EXPECT_DOUBLE_EQ(fa.candidates[j].config.value, fb.candidates[j].config.value);
      EXPECT_EQ(fa.candidates[j].status, fb.candidates[j].status);
      EXPECT_EQ(fa.candidates[j].acceptable, fb.candidates[j].acceptable);
      EXPECT_DOUBLE_EQ(fa.candidates[j].ratio, fb.candidates[j].ratio);
    }
  }
}

TEST(OptimizerGuided, MatchesExhaustiveChoiceOnParticles) {
  HaccConfig config;
  config.particles = 12000;
  config.halo_count = 10;
  const auto data = generate_hacc(config);
  const auto codec = make_compressor("sz-cpu");
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;
  const auto position = abs_sweep_for_field(data.find("x").field, 4e-6, 4e-3, 8);
  const auto velocity = pwrel_sweep(1e-3, 2e-1, 6);

  const auto exhaustive = optimize_particle_dataset(data, *codec, position, velocity,
                                                    fof_params, 0.1, 0.1);
  for (const std::size_t threads : {1u, 4u}) {
    OptimizerOptions options;
    options.search = SearchMode::kGuided;
    options.threads = threads;
    const auto guided = optimize_particle_dataset(data, *codec, position, velocity,
                                                  fof_params, 0.1, 0.1, options);
    ASSERT_EQ(guided.per_field.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
      ASSERT_EQ(guided.per_field[i].found, exhaustive.per_field[i].found);
      if (!exhaustive.per_field[i].found) continue;
      EXPECT_DOUBLE_EQ(guided.per_field[i].chosen.config.value,
                       exhaustive.per_field[i].chosen.config.value)
          << guided.per_field[i].field;
      EXPECT_DOUBLE_EQ(guided.per_field[i].chosen.ratio,
                       exhaustive.per_field[i].chosen.ratio);
    }
    EXPECT_LT(guided.stats.full_evals, exhaustive.stats.full_evals);
  }
}

TEST(OptimizerGuided, StatsAccountForEveryCandidate) {
  GuidedGridCase c;
  OptimizerOptions options;
  options.search = SearchMode::kGuided;
  const auto r = optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5, options);
  EXPECT_EQ(r.stats.candidates, 32u);  // 2 fields x 16 bounds
  EXPECT_GT(r.stats.full_evals, 0u);
  EXPECT_GT(r.stats.pruned, 0u);
  EXPECT_GE(r.stats.probes, 4u);  // >= 2 endpoints per field
  EXPECT_LE(r.stats.probes, r.stats.full_evals);
  // Every candidate row is exactly one of: really evaluated, surrogate
  // pruned, capability skipped, or failed.
  EXPECT_EQ(r.stats.full_evals + r.stats.pruned + r.stats.skipped + r.stats.failed,
            r.stats.candidates);
  EXPECT_GT(r.stats.wall_seconds, 0.0);
  // sz-cpu is abs-rate-estimable, so pruned rows get estimator ratios.
  EXPECT_GT(r.stats.rate_estimates, 0u);
  // P(k) baselines are computed once per field, then served from cache.
  EXPECT_GT(r.stats.baseline_cache_hits, 0u);
  for (const auto& field : r.per_field) {
    for (const auto& cand : field.candidates) {
      EXPECT_TRUE(cand.status == "evaluated" || cand.status == "pruned" ||
                  cand.status == "skipped" || cand.status == "failed")
          << cand.status;
      if (cand.status == "pruned") {
        EXPECT_TRUE(cand.predicted);
      }
    }
  }
}

TEST(Optimizer, RecordsCapabilitySkippedCandidates) {
  NyxConfig config;
  config.dim = 16;
  const auto data = generate_nyx(config);
  const auto codec = make_compressor("sz-cpu");  // abs + pw_rel only
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["temperature"] = {
      {"rate", 8.0}, {"abs", 50.0}, {"rate", 4.0}, {"abs", 500.0}};
  for (const SearchMode mode : {SearchMode::kExhaustive, SearchMode::kGuided}) {
    OptimizerOptions options;
    options.search = mode;
    const auto r = optimize_grid_dataset(data, *codec, candidates, 0.05, 0.5, options);
    ASSERT_EQ(r.per_field.size(), 1u);
    const auto& rows = r.per_field[0].candidates;
    ASSERT_EQ(rows.size(), 4u);  // skipped rows stay in place, input order
    EXPECT_EQ(rows[0].status, "skipped");
    EXPECT_EQ(rows[2].status, "skipped");
    EXPECT_NE(rows[1].status, "skipped");
    EXPECT_NE(rows[3].status, "skipped");
    EXPECT_EQ(r.stats.skipped, 2u);
    const std::string report = format_optimization(r);
    EXPECT_NE(report.find("skipped (mode unsupported)"), std::string::npos);
  }
}

TEST(Optimizer, PublishesMetricsCounters) {
  auto& registry = telemetry::MetricsRegistry::instance();
  registry.counter("optimizer.runs").reset();
  registry.counter("optimizer.full_evals").reset();
  registry.counter("optimizer.pruned_candidates").reset();

  GuidedGridCase c;
  OptimizerOptions options;
  options.search = SearchMode::kGuided;
  const auto r = optimize_grid_dataset(c.data, *c.codec, c.candidates, 0.01, 0.5, options);

  EXPECT_EQ(registry.counter("optimizer.runs").value(), 1u);
  EXPECT_EQ(registry.counter("optimizer.full_evals").value(), r.stats.full_evals);
  EXPECT_EQ(registry.counter("optimizer.pruned_candidates").value(), r.stats.pruned);
  // The counters ride along in the registry's JSON export (what the
  // pipeline's --metrics-out writes).
  const json::Value doc = json::parse(registry.to_json());
  const auto& counters = doc.at("counters");
  EXPECT_GE(counters.at("optimizer.full_evals").as_number(),
            static_cast<double>(r.stats.full_evals));
  EXPECT_TRUE(counters.contains("optimizer.probes"));
  EXPECT_TRUE(counters.contains("optimizer.baseline_cache_hits"));
}

TEST(Optimizer, GuidedContinuesPastFailedCandidates) {
  GuidedGridCase c;
  // Poison one candidate with an invalid value so its evaluation throws.
  auto candidates = c.candidates;
  candidates["temperature"][3].value = -1.0;
  OptimizerOptions options;
  options.search = SearchMode::kGuided;
  options.on_error = OnError::kContinue;
  const auto r = optimize_grid_dataset(c.data, *c.codec, candidates, 0.01, 0.5, options);
  ASSERT_EQ(r.per_field.size(), 2u);
  // The search still lands on an acceptable choice for both fields, and the
  // poisoned candidate is recorded as a failed row rather than rethrown.
  EXPECT_TRUE(r.per_field[0].found);
  EXPECT_TRUE(r.per_field[1].found);
  EXPECT_GE(r.stats.failed, 1u);
}

TEST(Optimizer, ParseSearchMode) {
  EXPECT_EQ(parse_search_mode("exhaustive"), SearchMode::kExhaustive);
  EXPECT_EQ(parse_search_mode("guided"), SearchMode::kGuided);
  EXPECT_THROW(parse_search_mode("smart"), InvalidArgument);
  EXPECT_EQ(search_mode_label(SearchMode::kGuided), "guided");
  EXPECT_EQ(search_mode_label(SearchMode::kExhaustive), "exhaustive");
}

}  // namespace
}  // namespace cosmo::foresight
