#include <gtest/gtest.h>

#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/optimizer.hpp"

namespace cosmo::foresight {
namespace {

TEST(OptimizerGrid, PicksHighestRatioAmongAcceptable) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);

  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["velocity_x"] = {{"rate", 2.0}, {"rate", 4.0}, {"rate", 8.0}, {"rate", 16.0}};

  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.01, 0.5);
  ASSERT_EQ(result.per_field.size(), 1u);
  const auto& choice = result.per_field[0];
  EXPECT_EQ(choice.field, "velocity_x");
  EXPECT_EQ(choice.candidates.size(), 4u);
  // 16 bits/value must be acceptable on a smooth field; the guideline then
  // guarantees the chosen config is the acceptable one with highest ratio.
  ASSERT_TRUE(choice.found);
  for (const auto& c : choice.candidates) {
    if (c.acceptable) {
      EXPECT_GE(choice.chosen.ratio, c.ratio);
    }
  }
  EXPECT_TRUE(choice.chosen.acceptable);
}

TEST(OptimizerGrid, RejectsWhenNothingAcceptable) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  // A fraction of a bit per value destroys the spectrum on density.
  candidates["baryon_density"] = {{"rate", 0.5}};
  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.01, 0.5);
  ASSERT_EQ(result.per_field.size(), 1u);
  EXPECT_FALSE(result.per_field[0].found);
  EXPECT_FALSE(result.all_fields_ok);
}

TEST(OptimizerGrid, TighterToleranceRejectsMore) {
  NyxConfig config;
  config.dim = 32;
  const auto data = generate_nyx(config);
  gpu::GpuSimulator sim(gpu::find_device("V100"));
  const auto codec = make_compressor("cuzfp", &sim);
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["temperature"] = {{"rate", 2.0}, {"rate", 4.0}, {"rate", 8.0}};
  const auto loose = optimize_grid_dataset(data, *codec, candidates, 0.10, 0.5);
  const auto tight = optimize_grid_dataset(data, *codec, candidates, 0.0001, 0.5);
  auto count_ok = [](const OptimizationResult& r) {
    std::size_t n = 0;
    for (const auto& c : r.per_field[0].candidates) {
      if (c.acceptable) ++n;
    }
    return n;
  };
  EXPECT_GE(count_ok(loose), count_ok(tight));
}

TEST(OptimizerGrid, SkipsFieldsWithoutCandidates) {
  NyxConfig config;
  config.dim = 16;
  const auto data = generate_nyx(config);
  const auto codec = make_compressor("zfp-cpu");
  std::map<std::string, std::vector<CompressorConfig>> candidates;
  candidates["temperature"] = {{"rate", 16.0}};
  const auto result = optimize_grid_dataset(data, *codec, candidates, 0.05, 0.5);
  EXPECT_EQ(result.per_field.size(), 1u);  // only temperature evaluated
}

TEST(OptimizerParticles, SelectsPositionAndVelocityBounds) {
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 12;
  const auto data = generate_hacc(config);
  const auto codec = make_compressor("sz-cpu");

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;

  const std::vector<CompressorConfig> pos_candidates = {
      {"abs", 0.001}, {"abs", 0.005}, {"abs", 3.0}};
  const std::vector<CompressorConfig> vel_candidates = {{"pw_rel", 0.01}, {"pw_rel", 0.25}};

  const auto result = optimize_particle_dataset(data, *codec, pos_candidates,
                                                vel_candidates, fof_params, 0.1, 0.1);
  ASSERT_EQ(result.per_field.size(), 2u);
  const auto& pos = result.per_field[0];
  EXPECT_EQ(pos.field, "position");
  ASSERT_TRUE(pos.found);
  // abs=3.0 (larger than the linking length!) must not be the acceptable
  // winner unless it really preserved halos; the tight bounds must pass.
  EXPECT_TRUE(pos.candidates[0].acceptable);
  const auto& vel = result.per_field[1];
  EXPECT_EQ(vel.field, "velocity");
  ASSERT_TRUE(vel.found);
  EXPECT_GT(result.overall_ratio, 1.0);
  EXPECT_TRUE(result.all_fields_ok);
}

TEST(OptimizerParticles, LoosePositionBoundBreaksHalos) {
  HaccConfig config;
  config.particles = 15000;
  config.halo_count = 10;
  const auto data = generate_hacc(config);
  const auto codec = make_compressor("sz-cpu");
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 15;
  // A position error of 5 (5x the linking length) scrambles membership.
  const auto result = optimize_particle_dataset(
      data, *codec, {{"abs", 5.0}}, {{"pw_rel", 0.1}}, fof_params, 0.05, 0.5);
  EXPECT_FALSE(result.per_field[0].found);
  EXPECT_FALSE(result.all_fields_ok);
}

TEST(Optimizer, FormatsReadableReport) {
  OptimizationResult result;
  FieldChoice choice;
  choice.field = "baryon_density";
  choice.found = true;
  choice.chosen = {{"abs", 0.2}, 15.4, 95.0, true, 0.004};
  choice.candidates = {choice.chosen, {{"abs", 1.0}, 20.0, 102.45, false, 0.02}};
  result.per_field.push_back(choice);
  result.overall_ratio = 15.4;
  result.all_fields_ok = true;
  const std::string report = format_optimization(result);
  EXPECT_NE(report.find("baryon_density"), std::string::npos);
  EXPECT_NE(report.find("abs=0.2"), std::string::npos);
  EXPECT_NE(report.find("15.4"), std::string::npos);
  EXPECT_NE(report.find("reject"), std::string::npos);
}

}  // namespace
}  // namespace cosmo::foresight
