#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "foresight/sweep.hpp"

namespace cosmo::foresight {
namespace {

Field ramp_field() {
  Field f("ramp", Dims::d1(100));
  for (std::size_t i = 0; i < 100; ++i) f.data[i] = static_cast<float>(i);  // range 99
  return f;
}

TEST(Sweep, AbsSweepScalesWithFieldRange) {
  const Field f = ramp_field();
  const auto configs = abs_sweep_for_field(f, 1e-4, 1e-2, 3);
  ASSERT_EQ(configs.size(), 3u);
  for (const auto& c : configs) EXPECT_EQ(c.mode, "abs");
  EXPECT_NEAR(configs.front().value, 99.0 * 1e-4, 1e-9);
  EXPECT_NEAR(configs.back().value, 99.0 * 1e-2, 1e-9);
  // Log spacing: middle point is the geometric mean.
  EXPECT_NEAR(configs[1].value, std::sqrt(configs[0].value * configs[2].value), 1e-9);
}

TEST(Sweep, PwrelSweepLogSpaced) {
  const auto configs = pwrel_sweep(0.001, 0.1, 5);
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].mode, "pw_rel");
  EXPECT_NEAR(configs[0].value, 0.001, 1e-12);
  EXPECT_NEAR(configs[4].value, 0.1, 1e-9);
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_NEAR(configs[i].value / configs[i - 1].value,
                configs[1].value / configs[0].value, 1e-6);
  }
}

TEST(Sweep, RateSweepPassesThrough) {
  const auto configs = rate_sweep({4.0, 8.0});
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].mode, "rate");
  EXPECT_EQ(configs[1].value, 8.0);
}

TEST(Sweep, DefaultCandidatesPerCodec) {
  const Field f = ramp_field();
  EXPECT_EQ(default_grid_candidates("cuzfp", f)[0].mode, "rate");
  EXPECT_EQ(default_grid_candidates("zfp-omp", f).size(), 4u);
  EXPECT_EQ(default_grid_candidates("gpu-sz", f)[0].mode, "abs");
  EXPECT_EQ(default_grid_candidates("sz-cpu", f).size(), 4u);
  EXPECT_THROW(default_grid_candidates("nope", f), InvalidArgument);
}

TEST(Sweep, InvalidRangesRejected) {
  const Field f = ramp_field();
  EXPECT_THROW(abs_sweep_for_field(f, 0.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(abs_sweep_for_field(f, 1.0, 0.5, 3), InvalidArgument);
  EXPECT_THROW(abs_sweep_for_field(f, 1e-4, 1e-2, 1), InvalidArgument);
  EXPECT_THROW(rate_sweep({}), InvalidArgument);
  Field flat("flat", Dims::d1(4), {1, 1, 1, 1});
  EXPECT_THROW(abs_sweep_for_field(flat, 1e-4, 1e-2, 3), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::foresight
