#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(13);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++histogram[idx];
  }
  for (const int count : histogram) EXPECT_NEAR(count, 10000, 500);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(77);
  Rng b = a.split();
  // The split stream must not replicate the parent stream.
  Rng a2(77);
  (void)a2.next_u64();  // advance like `a` did when splitting
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.next_u64() == a2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cosmo
