#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "common/error.hpp"
#include "random/rng.hpp"

namespace cosmo::analysis {
namespace {

TEST(Stats, IdenticalDataIsLossless) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const Distortion d = compare(a, a);
  EXPECT_EQ(d.mse, 0.0);
  EXPECT_EQ(d.max_abs_err, 0.0);
  EXPECT_EQ(d.psnr_db, 999.0);  // lossless sentinel
  EXPECT_DOUBLE_EQ(d.pearson_r, 1.0);
}

TEST(Stats, KnownMseAndPsnr) {
  const std::vector<float> orig = {0.0f, 10.0f};
  const std::vector<float> recon = {1.0f, 9.0f};
  const Distortion d = compare(orig, recon);
  EXPECT_DOUBLE_EQ(d.mse, 1.0);
  EXPECT_DOUBLE_EQ(d.rmse, 1.0);
  EXPECT_DOUBLE_EQ(d.nrmse, 0.1);
  EXPECT_NEAR(d.psnr_db, 20.0, 1e-9);  // 20 log10(10/1)
  EXPECT_DOUBLE_EQ(d.max_abs_err, 1.0);
}

TEST(Stats, MreIsRangeNormalizedMeanError) {
  const std::vector<float> orig = {0.0f, 100.0f};
  const std::vector<float> recon = {2.0f, 100.0f};
  const Distortion d = compare(orig, recon);
  EXPECT_DOUBLE_EQ(d.mre, 0.01);  // mean |err| = 1, range = 100
}

TEST(Stats, MaxRelErrSkipsZeros) {
  const std::vector<float> orig = {0.0f, 10.0f};
  const std::vector<float> recon = {5.0f, 11.0f};
  const Distortion d = compare(orig, recon);
  EXPECT_DOUBLE_EQ(d.max_rel_err, 0.1);  // only the nonzero point counts
}

TEST(Stats, PearsonDetectsAnticorrelation) {
  const std::vector<float> orig = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> recon = {4.0f, 3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(compare(orig, recon).pearson_r, -1.0, 1e-12);
}

TEST(Stats, PsnrImprovesWithSmallerNoise) {
  Rng rng(111);
  std::vector<float> orig(10000);
  for (auto& v : orig) v = static_cast<float>(rng.uniform(0.0, 100.0));
  auto noisy = [&](double sigma) {
    Rng noise_rng(222);
    std::vector<float> out = orig;
    for (auto& v : out) v += static_cast<float>(noise_rng.normal(0.0, sigma));
    return out;
  };
  const double psnr_small = psnr_db(orig, noisy(0.01));
  const double psnr_large = psnr_db(orig, noisy(1.0));
  EXPECT_GT(psnr_small, psnr_large + 30.0);  // 100x noise => ~40 dB
}

TEST(Stats, SizeMismatchAndEmptyRejected) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(compare(a, b), InvalidArgument);
  EXPECT_THROW(compare(std::span<const float>(), std::span<const float>()),
               InvalidArgument);
}

TEST(Stats, CompressionRatioAndBitRate) {
  EXPECT_DOUBLE_EQ(compression_ratio(800, 100), 8.0);
  EXPECT_DOUBLE_EQ(bit_rate_for_ratio(8.0), 4.0);   // 32 bits / 8x
  EXPECT_DOUBLE_EQ(bit_rate_for_ratio(16.0), 2.0);
  EXPECT_THROW(compression_ratio(100, 0), InvalidArgument);
  EXPECT_THROW(bit_rate_for_ratio(0.0), InvalidArgument);
}

}  // namespace
}  // namespace cosmo::analysis
