#include <gtest/gtest.h>

#include <cmath>

#include "cosmo/dataset_info.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"

namespace cosmo {
namespace {

TEST(NyxSynth, ProducesSixFieldsWithTableIIRanges) {
  NyxConfig config;
  config.dim = 32;
  const io::Container c = generate_nyx(config);
  ASSERT_EQ(c.variables.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(c.variables[static_cast<std::size_t>(i)].field.name, kNyxFieldNames[i]);
    EXPECT_EQ(c.variables[static_cast<std::size_t>(i)].field.dims, Dims::d3(32, 32, 32));
  }
  const auto [rb_lo, rb_hi] = value_range(c.find("baryon_density").field.view());
  EXPECT_GT(rb_lo, 0.0f);
  EXPECT_LE(rb_hi, 1e5f);
  const auto [dm_lo, dm_hi] = value_range(c.find("dark_matter_density").field.view());
  EXPECT_GT(dm_lo, 0.0f);
  EXPECT_LE(dm_hi, 1e4f);
  const auto [t_lo, t_hi] = value_range(c.find("temperature").field.view());
  EXPECT_GE(t_lo, 1e2f);
  EXPECT_LE(t_hi, 1e7f);
  for (const char* name : {"velocity_x", "velocity_y", "velocity_z"}) {
    const auto [v_lo, v_hi] = value_range(c.find(name).field.view());
    EXPECT_GE(v_lo, -1e8f);
    EXPECT_LE(v_hi, 1e8f);
  }
}

TEST(NyxSynth, DeterministicForSeed) {
  NyxConfig config;
  config.dim = 16;
  const auto a = generate_nyx(config);
  const auto b = generate_nyx(config);
  EXPECT_EQ(a.find("baryon_density").field.data, b.find("baryon_density").field.data);
  config.seed = 43;
  const auto c = generate_nyx(config);
  EXPECT_NE(a.find("baryon_density").field.data, c.find("baryon_density").field.data);
}

TEST(NyxSynth, DensityHasLongUpperTail) {
  NyxConfig config;
  config.dim = 32;
  const auto c = generate_nyx(config);
  const auto& rho = c.find("baryon_density").field.data;
  double mean = 0.0, max_v = 0.0;
  for (const float v : rho) {
    mean += v;
    max_v = std::max(max_v, static_cast<double>(v));
  }
  mean /= static_cast<double>(rho.size());
  // Log-normal: the maximum is many times the mean (concentrated
  // distribution with extreme values, as the paper describes).
  EXPECT_GT(max_v / mean, 10.0);
}

TEST(NyxSynth, DeltaFieldIsZeroMeanUnitVariance) {
  NyxConfig config;
  config.dim = 32;
  const Field delta = generate_nyx_delta(config);
  double mean = 0.0, var = 0.0;
  for (const float v : delta.data) mean += v;
  mean /= static_cast<double>(delta.data.size());
  for (const float v : delta.data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(delta.data.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(NyxSynth, NonPow2Rejected) {
  NyxConfig config;
  config.dim = 48;
  EXPECT_THROW(generate_nyx(config), InvalidArgument);
}

TEST(HaccSynth, ProducesSixArraysWithTableIIRanges) {
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 20;
  const io::Container c = generate_hacc(config);
  ASSERT_EQ(c.variables.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(c.variables[static_cast<std::size_t>(i)].field.name, kHaccFieldNames[i]);
    EXPECT_EQ(c.variables[static_cast<std::size_t>(i)].field.data.size(), 20000u);
    EXPECT_EQ(c.variables[static_cast<std::size_t>(i)].field.dims.rank(), 1);
  }
  for (const char* name : {"x", "y", "z"}) {
    const auto [lo, hi] = value_range(c.find(name).field.view());
    EXPECT_GE(lo, 0.0f);
    EXPECT_LT(hi, 256.0f);
  }
  for (const char* name : {"vx", "vy", "vz"}) {
    const auto [lo, hi] = value_range(c.find(name).field.view());
    EXPECT_GE(lo, -1e4f);
    EXPECT_LE(hi, 1e4f);
  }
}

TEST(HaccSynth, TruthReportsHalos) {
  HaccConfig config;
  config.particles = 30000;
  config.halo_count = 15;
  std::vector<HaloTruth> truth;
  const auto c = generate_hacc(config, &truth);
  EXPECT_GT(truth.size(), 5u);
  std::size_t clustered = 0;
  for (const auto& h : truth) {
    EXPECT_GE(h.particles, config.min_halo_particles);
    EXPECT_GE(h.cx, 0.0);
    EXPECT_LT(h.cx, config.box);
    clustered += h.particles;
  }
  EXPECT_LE(clustered, config.particles);
  // Roughly the requested clustered fraction ended up in halos.
  EXPECT_GT(static_cast<double>(clustered) / static_cast<double>(config.particles), 0.4);
}

TEST(HaccSynth, ClusteringIsPresent) {
  // Clustered positions: variance of local density must far exceed uniform.
  HaccConfig config;
  config.particles = 20000;
  config.halo_count = 10;
  const auto c = generate_hacc(config);
  const auto& x = c.find("x").field.data;
  const auto& y = c.find("y").field.data;
  const auto& z = c.find("z").field.data;
  // Count particles in coarse cells.
  constexpr std::size_t g = 16;
  std::vector<int> counts(g * g * g, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto cx = std::min<std::size_t>(static_cast<std::size_t>(x[i] / 256.0 * g), g - 1);
    const auto cy = std::min<std::size_t>(static_cast<std::size_t>(y[i] / 256.0 * g), g - 1);
    const auto cz = std::min<std::size_t>(static_cast<std::size_t>(z[i] / 256.0 * g), g - 1);
    ++counts[(cz * g + cy) * g + cx];
  }
  const double mean = static_cast<double>(x.size()) / static_cast<double>(counts.size());
  double var = 0.0;
  for (const int n : counts) var += (n - mean) * (n - mean);
  var /= static_cast<double>(counts.size());
  // Poisson (uniform) would give var ~ mean; clustering inflates it hugely.
  EXPECT_GT(var / mean, 5.0);
}

TEST(HaccSynth, DeterministicForSeed) {
  HaccConfig config;
  config.particles = 5000;
  config.halo_count = 5;
  EXPECT_EQ(generate_hacc(config).find("x").field.data,
            generate_hacc(config).find("x").field.data);
}

TEST(HaccSynth, TooFewParticlesRejected) {
  HaccConfig config;
  config.particles = 10;
  EXPECT_THROW(generate_hacc(config), InvalidArgument);
}

TEST(DatasetInfo, PaperTableIIContents) {
  const auto hacc = hacc_paper_info();
  EXPECT_EQ(hacc.name, "HACC");
  EXPECT_EQ(hacc.dimension, "1,073,726,359");
  EXPECT_EQ(hacc.size, "38 GB");
  const auto nyx = nyx_paper_info();
  EXPECT_EQ(nyx.dimension, "512x512x512");
  EXPECT_EQ(nyx.size, "6.6 GB");
  EXPECT_EQ(nyx.fields.size(), 4u);
}

TEST(DatasetInfo, DescribeGeneratedContainer) {
  NyxConfig config;
  config.dim = 16;
  const auto c = generate_nyx(config);
  const auto info = describe(c, "Nyx-synthetic");
  EXPECT_EQ(info.name, "Nyx-synthetic");
  EXPECT_EQ(info.dimension, "16x16x16");
  EXPECT_EQ(info.fields.size(), 6u);
  const std::string table = format_table({info, nyx_paper_info()});
  EXPECT_NE(table.find("Nyx-synthetic"), std::string::npos);
  EXPECT_NE(table.find("512x512x512"), std::string::npos);
}

}  // namespace
}  // namespace cosmo
