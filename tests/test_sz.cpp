#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.hpp"
#include "sz/sz.hpp"

namespace cosmo::sz {
namespace {

std::vector<float> smooth_field_3d(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  const double phase = rng.uniform(0.0, 6.28);
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x) {
        data[dims.index(x, y, z)] = static_cast<float>(
            100.0 * std::sin(0.1 * static_cast<double>(x) + phase) *
                std::cos(0.13 * static_cast<double>(y)) +
            10.0 * std::sin(0.07 * static_cast<double>(z)) +
            0.3 * rng.normal());
      }
    }
  }
  return data;
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  double max_err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return max_err;
}

TEST(Sz, RoundTripRespectsErrorBound3d) {
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field_3d(dims, 51);
  Params params;
  params.abs_error_bound = 0.05;
  Stats stats;
  const auto bytes = compress(data, dims, params, &stats);
  Dims out_dims;
  const auto recon = decompress(bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  ASSERT_EQ(recon.size(), data.size());
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
  EXPECT_EQ(stats.total_points, data.size());
  EXPECT_GT(stats.total_blocks, 0u);
}

TEST(Sz, CompressesSmoothDataWell) {
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field_3d(dims, 52);
  Params params;
  params.abs_error_bound = 0.5;
  Stats stats;
  const auto bytes = compress(data, dims, params, &stats);
  // Smooth field at a generous bound: expect well over 8x.
  EXPECT_LT(bytes.size(), data.size() * sizeof(float) / 8);
  EXPECT_GT(stats.bit_rate, 0.0);
  EXPECT_LT(stats.bit_rate, 4.0);
}

TEST(Sz, TighterBoundCostsMoreBits) {
  const Dims dims = Dims::d3(32, 32, 32);
  const auto data = smooth_field_3d(dims, 53);
  Params loose, tight;
  loose.abs_error_bound = 1.0;
  tight.abs_error_bound = 0.001;
  const auto loose_bytes = compress(data, dims, loose);
  const auto tight_bytes = compress(data, dims, tight);
  EXPECT_LT(loose_bytes.size(), tight_bytes.size());
}

TEST(Sz, RoundTrip1d) {
  const Dims dims = Dims::d1(5000);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(0.01 * static_cast<double>(i)) * 50.0);
  }
  Params params;
  params.abs_error_bound = 0.01;
  const auto recon = decompress(compress(data, dims, params));
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, RoundTrip2d) {
  const Dims dims = Dims::d2(64, 48);
  std::vector<float> data(dims.count());
  for (std::size_t y = 0; y < dims.ny; ++y) {
    for (std::size_t x = 0; x < dims.nx; ++x) {
      data[dims.index(x, y, 0)] =
          static_cast<float>(x) * 0.5f - static_cast<float>(y) * 0.25f;
    }
  }
  Params params;
  params.abs_error_bound = 0.02;
  const auto recon = decompress(compress(data, dims, params));
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, NonMultipleBlockDimensions) {
  const Dims dims = Dims::d3(13, 9, 11);  // not multiples of block edge 8
  const auto data = smooth_field_3d(dims, 54);
  Params params;
  params.abs_error_bound = 0.1;
  const auto recon = decompress(compress(data, dims, params));
  ASSERT_EQ(recon.size(), data.size());
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, RandomNoiseStillBounded) {
  // Worst case for prediction: white noise with a huge range.
  const Dims dims = Dims::d3(16, 16, 16);
  Rng rng(55);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1e4, 1e4));
  Params params;
  params.abs_error_bound = 1.0;
  const auto recon = decompress(compress(data, dims, params));
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, ConstantFieldNearlyFree) {
  const Dims dims = Dims::d3(32, 32, 32);
  std::vector<float> data(dims.count(), 42.0f);
  Params params;
  params.abs_error_bound = 0.001;
  Stats stats;
  const auto bytes = compress(data, dims, params, &stats);
  EXPECT_LT(stats.bit_rate, 0.2);
  const auto recon = decompress(bytes);
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, ExtremeValuesBecomeUnpredictableNotWrong) {
  const Dims dims = Dims::d3(16, 16, 16);
  auto data = smooth_field_3d(dims, 56);
  data[100] = 1e30f;  // a spike far outside the quantization range
  data[2000] = -1e30f;
  Params params;
  params.abs_error_bound = 0.01;
  Stats stats;
  const auto recon = decompress(compress(data, dims, params, &stats));
  EXPECT_GT(stats.unpredictable_points, 0u);
  EXPECT_FLOAT_EQ(recon[100], 1e30f);  // stored verbatim
  EXPECT_FLOAT_EQ(recon[2000], -1e30f);
  EXPECT_LE(max_abs_error(data, recon), params.abs_error_bound * (1 + 1e-9));
}

TEST(Sz, RegressionToggleAffectsStream) {
  const Dims dims = Dims::d3(24, 24, 24);
  const auto data = smooth_field_3d(dims, 57);
  Params with_reg, without_reg;
  with_reg.abs_error_bound = without_reg.abs_error_bound = 0.05;
  without_reg.regression = false;
  Stats stats_with, stats_without;
  const auto a = compress(data, dims, with_reg, &stats_with);
  const auto b = compress(data, dims, without_reg, &stats_without);
  EXPECT_EQ(stats_without.regression_blocks, 0u);
  // Both decode within bound regardless.
  EXPECT_LE(max_abs_error(data, decompress(a)), 0.05 * (1 + 1e-9));
  EXPECT_LE(max_abs_error(data, decompress(b)), 0.05 * (1 + 1e-9));
}

TEST(Sz, LosslessStageToggle) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field_3d(dims, 58);
  Params packed, raw;
  packed.abs_error_bound = raw.abs_error_bound = 0.05;
  raw.lossless = false;
  const auto a = compress(data, dims, packed);
  const auto b = compress(data, dims, raw);
  EXPECT_LE(a.size(), b.size());
  EXPECT_EQ(decompress(a), decompress(b));
}

TEST(Sz, DeterministicOutput) {
  const Dims dims = Dims::d3(16, 16, 16);
  const auto data = smooth_field_3d(dims, 59);
  Params params;
  params.abs_error_bound = 0.1;
  EXPECT_EQ(compress(data, dims, params), compress(data, dims, params));
}

TEST(Sz, InvalidInputsRejected) {
  Params params;
  EXPECT_THROW(compress({}, Dims::d1(0), params), InvalidArgument);
  const std::vector<float> data(10, 1.0f);
  EXPECT_THROW(compress(data, Dims::d1(11), params), InvalidArgument);
  params.abs_error_bound = -1.0;
  EXPECT_THROW(compress(data, Dims::d1(10), params), InvalidArgument);
}

TEST(Sz, CorruptStreamThrows) {
  const Dims dims = Dims::d3(8, 8, 8);
  const auto data = smooth_field_3d(dims, 60);
  Params params;
  params.abs_error_bound = 0.1;
  auto bytes = compress(data, dims, params);
  EXPECT_THROW(decompress(std::span<const std::uint8_t>(bytes.data(), 3)), FormatError);
  std::vector<std::uint8_t> empty;
  EXPECT_THROW(decompress(empty), FormatError);
}

TEST(Sz, DefaultBlockEdges) {
  EXPECT_EQ(default_block_edge(1), 128u);
  EXPECT_EQ(default_block_edge(2), 16u);
  EXPECT_EQ(default_block_edge(3), 8u);
}

/// Property sweep: the ABS bound holds across bounds and shapes.
class SzBoundSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SzBoundSweep, ErrorBoundHolds) {
  const auto [bound, shape] = GetParam();
  Dims dims;
  switch (shape) {
    case 0: dims = Dims::d1(4096); break;
    case 1: dims = Dims::d2(64, 64); break;
    default: dims = Dims::d3(16, 16, 16); break;
  }
  Rng rng(100 + shape);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(50.0 * std::sin(0.05 * static_cast<double>(i)) +
                                 rng.normal());
  }
  Params params;
  params.abs_error_bound = bound;
  const auto recon = decompress(compress(data, dims, params));
  EXPECT_LE(max_abs_error(data, recon), bound * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndShapes, SzBoundSweep,
    ::testing::Combine(::testing::Values(1e-4, 1e-2, 0.5, 10.0),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace cosmo::sz
