/// \file test_parallel_determinism.cpp
/// \brief The PR's determinism guarantee, checked end to end: every
/// parallelized kernel must produce byte-identical compressed streams and
/// bitwise-identical analysis outputs for any thread count, on both HACC-
/// and Nyx-like synthetic data, including non-power-of-two shapes that
/// leave ragged chunk boundaries.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "analysis/cic.hpp"
#include "analysis/fof.hpp"
#include "analysis/power_spectrum.hpp"
#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/thread_pool.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "fft/fft.hpp"
#include "random/rng.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

using namespace cosmo;

/// The thread counts under test: serial, even, and an awkward prime that
/// never divides the chunk counts evenly.
std::vector<std::unique_ptr<ThreadPool>> make_pools() {
  std::vector<std::unique_ptr<ThreadPool>> pools;
  pools.push_back(nullptr);  // threads == 1
  pools.push_back(std::make_unique<ThreadPool>(2));
  pools.push_back(std::make_unique<ThreadPool>(7));
  return pools;
}

bool bytes_equal(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool floats_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Nyx-like smooth 3-D field; any shape (non-power-of-two allowed since the
/// codecs do not need the FFT).
std::vector<float> smooth_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.02 * static_cast<double>(i)) +
                                 rng.normal());
  }
  return data;
}

TEST(ParallelDeterminism, ZfpStreamsByteIdenticalAcrossThreads) {
  // 50x33x27 -> 13x9x7 = 819 blocks: above the parallel threshold, ragged
  // on every axis. 64^3 covers the aligned case.
  for (const Dims& dims : {Dims::d3(50, 33, 27), Dims::d3(64, 64, 64)}) {
    const auto data = smooth_field(dims, 21);
    for (const zfp::Mode mode : {zfp::Mode::kFixedRate, zfp::Mode::kFixedAccuracy}) {
      zfp::Params params;
      params.mode = mode;
      params.rate = 8.0;
      params.tolerance = 0.05;
      const auto baseline = zfp::compress(data, dims, params);
      const auto baseline_recon = zfp::decompress(baseline);
      for (const auto& pool : make_pools()) {
        const auto bytes = zfp::compress(data, dims, params, nullptr, pool.get());
        EXPECT_TRUE(bytes_equal(bytes, baseline))
            << "zfp mode " << static_cast<int>(mode) << " stream differs";
        const auto recon = zfp::decompress(bytes, nullptr, pool.get());
        EXPECT_TRUE(floats_identical(recon, baseline_recon));
      }
    }
  }
}

TEST(ParallelDeterminism, SzStreamsByteIdenticalAcrossThreads) {
  for (const Dims& dims : {Dims::d3(50, 33, 27), Dims::d3(64, 64, 64)}) {
    const auto data = smooth_field(dims, 22);
    sz::Params params;
    params.abs_error_bound = 0.1;
    const auto baseline = sz::compress(data, dims, params);
    const auto baseline_recon = sz::decompress(baseline);
    for (const auto& pool : make_pools()) {
      const auto bytes = sz::compress(data, dims, params, nullptr, pool.get());
      EXPECT_TRUE(bytes_equal(bytes, baseline)) << "sz stream differs";
      const auto recon = sz::decompress(bytes, nullptr, pool.get());
      EXPECT_TRUE(floats_identical(recon, baseline_recon));
    }
  }
}

TEST(ParallelDeterminism, SzPwRelStreamsByteIdenticalAcrossThreads) {
  const Dims dims = Dims::d3(40, 25, 19);
  auto data = smooth_field(dims, 23);
  data[7] = 0.0f;  // exercise the zero-threshold class
  sz::PwRelParams params;
  params.pw_rel_bound = 0.01;
  const auto baseline = sz::compress_pwrel(data, dims, params);
  const auto baseline_recon = sz::decompress_pwrel(baseline);
  for (const auto& pool : make_pools()) {
    const auto bytes = sz::compress_pwrel(data, dims, params, nullptr, pool.get());
    EXPECT_TRUE(bytes_equal(bytes, baseline)) << "pw_rel stream differs";
    const auto recon = sz::decompress_pwrel(bytes, nullptr, pool.get());
    EXPECT_TRUE(floats_identical(recon, baseline_recon));
  }
}

TEST(ParallelDeterminism, HaccPositionFieldStreams) {
  // The HACC snapshot's 1-D position arrays, compressed directly (rank 1).
  HaccConfig config;
  config.particles = 60000;  // not a multiple of the 1-D block edge (128)
  config.seed = 9;
  const auto snapshot = generate_hacc(config);
  const auto& x = snapshot.find("x").field.data;
  const Dims dims = Dims::d1(x.size());
  sz::Params params;
  params.abs_error_bound = 1e-3;
  const auto baseline = sz::compress(x, dims, params);
  for (const auto& pool : make_pools()) {
    EXPECT_TRUE(bytes_equal(sz::compress(x, dims, params, nullptr, pool.get()), baseline));
  }
}

TEST(ParallelDeterminism, ChunkedHuffmanRoundtripAndIdentical) {
  Rng rng(31);
  // 100003 symbols with a 1000-symbol chunk: 101 chunks, last one ragged.
  std::vector<std::uint32_t> symbols(100003);
  for (auto& s : symbols) {
    s = 32768u + static_cast<std::uint32_t>(rng.uniform_index(64));
  }
  const auto baseline = huffman_encode_chunked(symbols, nullptr, 1000);
  ASSERT_TRUE(is_chunked_huffman(baseline));
  for (const auto& pool : make_pools()) {
    const auto bytes = huffman_encode_chunked(symbols, pool.get(), 1000);
    EXPECT_TRUE(bytes_equal(bytes, baseline));
    EXPECT_EQ(huffman_decode_chunked(bytes, pool.get()), symbols);
    // The generic decoder dispatches on the container magic.
    EXPECT_EQ(huffman_decode(bytes), symbols);
  }
}

TEST(ParallelDeterminism, ChunkedLzssRoundtripAndIdentical) {
  Rng rng(32);
  std::vector<std::uint8_t> input(300001);  // ragged against 4 KiB chunks
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 9) % 31 + rng.uniform_index(4));
  }
  const auto baseline = lzss_encode_chunked(input, nullptr, 4096);
  ASSERT_TRUE(is_chunked_lzss(baseline));
  for (const auto& pool : make_pools()) {
    const auto bytes = lzss_encode_chunked(input, pool.get(), 4096);
    EXPECT_TRUE(bytes_equal(bytes, baseline));
    EXPECT_EQ(lzss_decode_chunked(bytes, pool.get()), input);
    EXPECT_EQ(lzss_decode(bytes), input);
  }
}

TEST(ParallelDeterminism, PowerSpectrumBitwiseIdenticalAcrossThreads) {
  NyxConfig config;
  config.dim = 32;
  config.seed = 5;
  const Field delta = generate_nyx_delta(config);
  const auto baseline = analysis::power_spectrum(delta.data, delta.dims);
  ASSERT_FALSE(baseline.empty());
  for (const auto& pool : make_pools()) {
    const auto bins = analysis::power_spectrum(delta.data, delta.dims, 0, pool.get());
    ASSERT_EQ(bins.size(), baseline.size());
    for (std::size_t i = 0; i < bins.size(); ++i) {
      EXPECT_EQ(bins[i].modes, baseline[i].modes);
      // Bitwise: the fixed z-order reduction must make these exact.
      EXPECT_EQ(std::memcmp(&bins[i].k, &baseline[i].k, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&bins[i].power, &baseline[i].power, sizeof(double)), 0);
    }
  }
}

TEST(ParallelDeterminism, CicAndFofBitwiseIdenticalAcrossThreads) {
  HaccConfig config;
  config.particles = 30000;
  config.seed = 3;
  const auto snapshot = generate_hacc(config);
  const auto& x = snapshot.find("x").field.data;
  const auto& y = snapshot.find("y").field.data;
  const auto& z = snapshot.find("z").field.data;

  const Field cic_baseline = analysis::cic_deposit(x, y, z, config.box, 48);
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.5;
  fof_params.box = config.box;
  fof_params.most_connected = true;
  fof_params.most_bound = true;
  const auto fof_baseline = analysis::fof(x, y, z, fof_params);
  ASSERT_FALSE(fof_baseline.halos.empty());

  for (const auto& pool : make_pools()) {
    const Field cic = analysis::cic_deposit(x, y, z, config.box, 48, pool.get());
    EXPECT_TRUE(floats_identical(cic.data, cic_baseline.data));

    const auto fof = analysis::fof(x, y, z, fof_params, pool.get());
    EXPECT_EQ(fof.halo_of_particle, fof_baseline.halo_of_particle);
    EXPECT_EQ(fof.grid_edge_cells, fof_baseline.grid_edge_cells);
    ASSERT_EQ(fof.halos.size(), fof_baseline.halos.size());
    for (std::size_t h = 0; h < fof.halos.size(); ++h) {
      EXPECT_EQ(fof.halos[h].members, fof_baseline.halos[h].members);
      EXPECT_EQ(std::memcmp(&fof.halos[h].cx, &fof_baseline.halos[h].cx,
                            3 * sizeof(double)),
                0);
      EXPECT_EQ(fof.halos[h].most_connected_particle,
                fof_baseline.halos[h].most_connected_particle);
      EXPECT_EQ(fof.halos[h].most_bound_particle,
                fof_baseline.halos[h].most_bound_particle);
    }
  }
}

TEST(ParallelDeterminism, PkRatioBitwiseIdenticalAcrossThreads) {
  NyxConfig config;
  config.dim = 32;
  config.seed = 6;
  const Field delta = generate_nyx_delta(config);
  sz::Params params;
  params.abs_error_bound = 0.05;
  const auto recon = sz::decompress(sz::compress(delta.data, delta.dims, params));
  const auto baseline = analysis::pk_ratio(delta.data, recon, delta.dims, 0.5);
  for (const auto& pool : make_pools()) {
    const auto r = analysis::pk_ratio(delta.data, recon, delta.dims, 0.5, pool.get());
    ASSERT_EQ(r.ratio.size(), baseline.ratio.size());
    EXPECT_EQ(std::memcmp(&r.max_deviation, &baseline.max_deviation, sizeof(double)), 0);
    for (std::size_t i = 0; i < r.ratio.size(); ++i) {
      EXPECT_EQ(std::memcmp(&r.ratio[i], &baseline.ratio[i], sizeof(double)), 0);
    }
  }
}

TEST(FftTwiddleCache, MatchesDftReferenceAcrossCachedSizes) {
  Rng rng(41);
  for (const std::size_t n : {2u, 8u, 32u, 128u, 512u}) {
    std::vector<cplx> data(n);
    for (auto& v : data) v = cplx(rng.normal(), rng.normal());
    const auto want = dft_reference(data, false);
    // Two passes per size: the second is guaranteed to hit the cache and
    // must produce exactly the same answer.
    for (int pass = 0; pass < 2; ++pass) {
      auto got = data;
      fft_1d(got, false);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i].real(), want[i].real(), 1e-9 * static_cast<double>(n));
        EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-9 * static_cast<double>(n));
      }
      // Inverse through the cached conjugate path restores the input.
      fft_1d(got, true);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i].real(), data[i].real(), 1e-10 * static_cast<double>(n));
        EXPECT_NEAR(got[i].imag(), data[i].imag(), 1e-10 * static_cast<double>(n));
      }
    }
  }
  // All five sizes must now be resident (the cache is process-wide, so
  // other tests may have added more).
  EXPECT_GE(fft_twiddle_cache_entries(), 5u);
}

TEST(FftTwiddleCache, Fft3dBitwiseIdenticalAcrossThreads) {
  const Dims dims = Dims::d3(16, 8, 32);
  Rng rng(42);
  std::vector<cplx> data(dims.count());
  for (auto& v : data) v = cplx(rng.normal(), rng.normal());
  auto baseline = data;
  fft_3d(baseline, dims, false);
  for (const auto& pool : make_pools()) {
    auto work = data;
    fft_3d(work, dims, false, pool.get());
    ASSERT_EQ(work.size(), baseline.size());
    EXPECT_EQ(std::memcmp(work.data(), baseline.data(), work.size() * sizeof(cplx)), 0);
  }
}

}  // namespace
