#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "analysis/error_distribution.hpp"
#include "codec/fpc.hpp"
#include "common/error.hpp"
#include "random/rng.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace cosmo {
namespace {

// ---------- error distribution ----------

TEST(ErrorDistribution, UniformErrorsClassifiedUniform) {
  Rng rng(301);
  std::vector<float> orig(20000), recon(20000);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    recon[i] = orig[i] + static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  const auto h = analysis::error_histogram(orig, recon);
  EXPECT_NEAR(h.excess_kurtosis, -1.2, 0.15);
  EXPECT_NEAR(h.within_one_sigma, 0.577, 0.02);
  EXPECT_EQ(analysis::classify_error_shape(h), analysis::ErrorShape::kUniformLike);
  EXPECT_NEAR(h.mean, 0.0, 0.02);
  EXPECT_NEAR(h.stddev, 0.5 / std::sqrt(3.0), 0.02);
}

TEST(ErrorDistribution, GaussianErrorsClassifiedGaussian) {
  Rng rng(302);
  std::vector<float> orig(20000), recon(20000);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    recon[i] = orig[i] + static_cast<float>(rng.normal(0.0, 0.2));
  }
  const auto h = analysis::error_histogram(orig, recon);
  EXPECT_NEAR(h.excess_kurtosis, 0.0, 0.3);
  EXPECT_NEAR(h.within_one_sigma, 0.683, 0.02);
  EXPECT_EQ(analysis::classify_error_shape(h), analysis::ErrorShape::kGaussianLike);
}

TEST(ErrorDistribution, HistogramCountsSumToInRangePoints) {
  Rng rng(303);
  std::vector<float> orig(5000), recon(5000);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(rng.normal());
    recon[i] = orig[i] + static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto h = analysis::error_histogram(orig, recon, 16);
  std::size_t total = 0;
  for (const auto c : h.counts) total += c;
  EXPECT_EQ(total, orig.size());  // default range covers max |error|
  EXPECT_EQ(h.bin_edges.size(), 17u);
  EXPECT_LT(h.bin_edges.front(), 0.0);
  EXPECT_GT(h.bin_edges.back(), 0.0);
}

TEST(ErrorDistribution, SzIsUniformLikeZfpIsConcentrated) {
  // The paper's CBench motivation, as a regression test.
  Rng rng(304);
  const Dims dims = Dims::d3(24, 24, 24);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.05 * static_cast<double>(i)) +
                                 rng.normal());
  }
  sz::Params sz_params;
  sz_params.abs_error_bound = 0.5;
  const auto sz_recon = sz::decompress(sz::compress(data, dims, sz_params));
  const auto sz_hist = analysis::error_histogram(data, sz_recon);
  EXPECT_EQ(analysis::classify_error_shape(sz_hist),
            analysis::ErrorShape::kUniformLike);

  zfp::Params zfp_params;
  zfp_params.rate = 10.0;
  const auto zfp_recon = zfp::decompress(zfp::compress(data, dims, zfp_params));
  const auto zfp_hist = analysis::error_histogram(data, zfp_recon);
  EXPECT_GT(zfp_hist.excess_kurtosis, sz_hist.excess_kurtosis + 0.5);
  EXPECT_GT(zfp_hist.within_one_sigma, sz_hist.within_one_sigma);
}

TEST(ErrorDistribution, InvalidInputsRejected) {
  const std::vector<float> a(8, 1.0f);
  const std::vector<float> b(4, 1.0f);
  EXPECT_THROW(analysis::error_histogram(a, b), InvalidArgument);
  EXPECT_THROW(analysis::error_histogram(a, a, 2), InvalidArgument);
  EXPECT_THROW(
      analysis::error_histogram(std::span<const float>(), std::span<const float>()),
      InvalidArgument);
}

// ---------- FPC lossless codec ----------

TEST(Fpc, RoundTripIsBitExact) {
  Rng rng(305);
  std::vector<float> data(10000);
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1e5));
  EXPECT_EQ(fpc_decode(fpc_encode(data)), data);
}

TEST(Fpc, SpecialValuesSurvive) {
  const std::vector<float> data = {0.0f,
                                   -0.0f,
                                   1e-38f,
                                   3.4e38f,
                                   -3.4e38f,
                                   std::numeric_limits<float>::infinity(),
                                   -std::numeric_limits<float>::infinity(),
                                   1.5f};
  const auto decoded = fpc_decode(fpc_encode(data));
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint32_t a, b;
    std::memcpy(&a, &data[i], 4);
    std::memcpy(&b, &decoded[i], 4);
    EXPECT_EQ(a, b) << i;  // bit-exact, including signed zero
  }
}

TEST(Fpc, EmptyInput) {
  const std::vector<float> data;
  EXPECT_EQ(fpc_decode(fpc_encode(data)), data);
}

TEST(Fpc, RepetitiveDataCompressesWell) {
  std::vector<float> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 16);  // strongly predictable pattern
  }
  const auto encoded = fpc_encode(data);
  EXPECT_LT(encoded.size(), data.size() * 4 / 3);  // >3x on pattern data
  EXPECT_EQ(fpc_decode(encoded), data);
}

TEST(Fpc, DenseScientificDataStaysUnderTwoToOne) {
  // The paper's Section II-A claim.
  Rng rng(306);
  std::vector<float> data(50000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.01 * static_cast<double>(i)) +
                                 rng.normal());
  }
  const auto encoded = fpc_encode(data);
  const double ratio =
      static_cast<double>(data.size() * 4) / static_cast<double>(encoded.size());
  EXPECT_LT(ratio, 2.0);
  EXPECT_GT(ratio, 0.8);  // bounded expansion on incompressible data
  EXPECT_EQ(fpc_decode(encoded), data);
}

TEST(Fpc, CorruptStreamThrows) {
  std::vector<float> data(100, 1.0f);
  auto encoded = fpc_encode(data);
  encoded.resize(8);
  EXPECT_THROW(fpc_decode(encoded), FormatError);
  encoded = fpc_encode(data);
  encoded[0] ^= 0xFF;
  EXPECT_THROW(fpc_decode(encoded), FormatError);
}

}  // namespace
}  // namespace cosmo
