/// Cross-module parameterized property sweeps: invariants that must hold
/// over whole parameter ranges, not just single configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fof.hpp"
#include "common/error.hpp"
#include "cosmo/nyx_sequence.hpp"
#include "io/container.hpp"
#include "random/rng.hpp"
#include "sz/pwrel.hpp"
#include "sz/temporal.hpp"
#include "zfp/chunked.hpp"

namespace cosmo {
namespace {

// ---------- FoF: halo count monotone in linking length ----------

class FofLinkingSweep : public ::testing::TestWithParam<double> {};

TEST_P(FofLinkingSweep, ParticlesInHalosGrowsWithLinkingLength) {
  // With a larger linking length, groups can only merge or absorb more
  // particles: the number of particles assigned to halos is monotone.
  static const auto cloud = [] {
    Rng rng(401);
    std::vector<std::array<float, 3>> pts;
    for (int blob = 0; blob < 5; ++blob) {
      const double cx = 40.0 + 40.0 * blob;
      for (int i = 0; i < 300; ++i) {
        pts.push_back({static_cast<float>(cx + rng.normal(0.0, 1.2)),
                       static_cast<float>(100.0 + rng.normal(0.0, 1.2)),
                       static_cast<float>(100.0 + rng.normal(0.0, 1.2))});
      }
    }
    return pts;
  }();
  std::vector<float> x, y, z;
  for (const auto& p : cloud) {
    x.push_back(p[0]);
    y.push_back(p[1]);
    z.push_back(p[2]);
  }
  analysis::FofParams params;
  params.min_members = 20;
  params.linking_length = GetParam();
  const auto smaller = analysis::fof(x, y, z, params);
  params.linking_length = GetParam() * 1.5;
  const auto larger = analysis::fof(x, y, z, params);
  auto assigned = [](const analysis::FofResult& r) {
    std::size_t n = 0;
    for (const auto id : r.halo_of_particle) {
      if (id >= 0) ++n;
    }
    return n;
  };
  EXPECT_GE(assigned(larger), assigned(smaller)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LinkingLengths, FofLinkingSweep,
                         ::testing::Values(0.3, 0.6, 1.0, 2.0));

// ---------- Temporal SZ: bound holds for every key interval ----------

class TemporalKeySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TemporalKeySweep, BoundHoldsAndKeyCountIsExact) {
  NyxSequenceConfig config;
  config.base.dim = 16;
  config.steps = 8;
  const auto frames = generate_nyx_density_sequence(config);
  sz::TemporalParams params;
  params.abs_error_bound = 1.0;
  params.key_interval = GetParam();
  sz::TemporalStats stats;
  const auto bytes = sz::compress_temporal(frames, params, &stats);
  const std::size_t expected_keys =
      GetParam() == 0 ? 1 : (frames.size() + GetParam() - 1) / GetParam();
  EXPECT_EQ(stats.key_frames, expected_keys);
  const auto recon = sz::decompress_temporal(bytes);
  for (std::size_t t = 0; t < frames.size(); ++t) {
    for (std::size_t i = 0; i < frames[t].data.size(); ++i) {
      ASSERT_LE(std::fabs(static_cast<double>(frames[t].data[i]) - recon[t].data[i]),
                1.0 * (1 + 1e-9))
          << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KeyIntervals, TemporalKeySweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u));

// ---------- Chunked ZFP: any chunk count round-trips identically ----------

class ChunkCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkCountSweep, ReconstructionIndependentOfChunkCount) {
  const Dims dims = Dims::d3(8, 8, 24);
  Rng rng(402);
  std::vector<float> data(dims.count());
  for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 50.0));
  zfp::Params params;
  params.rate = 10.0;
  static std::vector<float> reference;
  const auto recon =
      zfp::decompress_chunked(zfp::compress_chunked(data, dims, params, nullptr, GetParam()),
                              nullptr);
  if (GetParam() == 1) {
    reference = recon;
  } else if (!reference.empty()) {
    // 4-aligned slab cuts make chunked output block-identical regardless of
    // the chunk count.
    EXPECT_EQ(recon, reference) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, ChunkCountSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 100u));

// ---------- PW_REL: zero-threshold ratio sweep ----------

class ZeroThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZeroThresholdSweep, SubThresholdAlwaysExactZeroAboveAlwaysBounded) {
  const Dims dims = Dims::d3(8, 8, 8);
  Rng rng(403);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Mix of magnitudes spanning 12 decades around the threshold.
    data[i] = static_cast<float>(std::pow(10.0, rng.uniform(-8.0, 4.0)) *
                                 (rng.uniform() < 0.5 ? -1.0 : 1.0));
  }
  sz::PwRelParams params;
  params.pw_rel_bound = 0.05;
  params.zero_threshold_ratio = GetParam();
  const auto recon = sz::decompress_pwrel(sz::compress_pwrel(data, dims, params));
  double max_abs = 0.0;
  for (const float v : data) max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
  const double thresh = max_abs * GetParam();
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::fabs(data[i]) <= thresh) {
      ASSERT_EQ(recon[i], 0.0f) << i;
    } else {
      ASSERT_LE(std::fabs(static_cast<double>(recon[i]) - data[i]) /
                    std::fabs(static_cast<double>(data[i])),
                0.05 * (1 + 1e-6))
          << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ZeroThresholdSweep,
                         ::testing::Values(1e-12, 1e-9, 1e-6, 1e-3));

// ---------- Containers: both dialects preserve any variable set ----------

class DialectSweep : public ::testing::TestWithParam<io::Dialect> {};

TEST_P(DialectSweep, ArbitraryVariableMixRoundTrips) {
  Rng rng(404);
  io::Container c;
  for (int v = 0; v < 5; ++v) {
    io::Variable variable;
    const int rank = 1 + static_cast<int>(rng.uniform_index(3));
    Dims dims = rank == 1   ? Dims::d1(1 + rng.uniform_index(500))
                : rank == 2 ? Dims::d2(1 + rng.uniform_index(20), 1 + rng.uniform_index(20))
                            : Dims::d3(1 + rng.uniform_index(8), 1 + rng.uniform_index(8),
                                       1 + rng.uniform_index(8));
    variable.field = Field("var" + std::to_string(v), dims);
    for (auto& x : variable.field.data) x = static_cast<float>(rng.normal());
    variable.attributes["note"] = "sweep, dialect test";
    c.variables.push_back(std::move(variable));
  }
  const std::string path = ::testing::TempDir() + "/dialect_sweep.bin";
  io::save(c, path, GetParam());
  const auto loaded = io::load(path);
  ASSERT_EQ(loaded.variables.size(), c.variables.size());
  for (std::size_t v = 0; v < c.variables.size(); ++v) {
    EXPECT_EQ(loaded.variables[v].field.data, c.variables[v].field.data);
    EXPECT_EQ(loaded.variables[v].field.dims, c.variables[v].field.dims);
    EXPECT_EQ(loaded.variables[v].attributes, c.variables[v].attributes);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Dialects, DialectSweep,
                         ::testing::Values(io::Dialect::kGenericIo,
                                           io::Dialect::kHdf5Lite));

}  // namespace
}  // namespace cosmo
