/// \file test_encode_fastpaths.cpp
/// \brief Byte-identity coverage for the encode-side fast paths: the
/// table-driven Huffman encoder vs the std::map + bit-at-a-time reference,
/// the gated hash-chain LZSS encoder vs the byte-at-a-time reference, the
/// BitWriter put_pair/Appender fast lanes vs plain put sequences, and
/// thread-count independence of the chunked containers. The encoders'
/// contract is stronger than round-trip correctness: the rewritten paths
/// must emit the same bytes as the originals on every input.
#include <gtest/gtest.h>

#include <cstring>

#include "codec/bitstream.hpp"
#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "random/rng.hpp"

namespace cosmo {
namespace {

/// Symbol streams spanning the histogram strategies (dense span vs sparse
/// map fallback) and the emit-table shapes (short codes, long codes,
/// degenerate alphabets).
std::vector<std::vector<std::uint32_t>> encode_symbol_cases() {
  std::vector<std::vector<std::uint32_t>> cases;
  Rng rng(321);
  // Quantization-code cluster around the SZ radius: dense histogram,
  // short codes.
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 20000; ++i) {
      s.push_back(32768 + static_cast<std::uint32_t>(rng.uniform_index(9)) - 4);
    }
    cases.push_back(std::move(s));
  }
  // Uniform over a wide alphabet: long codes, still dense (span 8192).
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 30000; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.uniform_index(8192)));
    }
    cases.push_back(std::move(s));
  }
  // Span wider than the dense-histogram cutoff (2^22): forces the sparse
  // std::map fallback in count_freqs and the sparse emit table.
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 5000; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.uniform_index(1u << 24)));
    }
    s.push_back(0);            // pin the span ends
    s.push_back((1u << 24) + 7);
    cases.push_back(std::move(s));
  }
  // Skewed mix: dominant symbol plus long tail.
  {
    std::vector<std::uint32_t> s;
    for (int i = 0; i < 30000; ++i) {
      s.push_back(rng.uniform() < 0.6
                      ? 7u
                      : static_cast<std::uint32_t>(rng.uniform_index(5000)));
    }
    cases.push_back(std::move(s));
  }
  cases.push_back({});                    // empty
  cases.push_back({1234});                // single occurrence
  cases.push_back({5, 5, 5, 5});          // single symbol, multiple counts
  cases.push_back({0, 0xFFFFFFFFu});      // extreme span, two symbols
  cases.push_back(std::vector<std::uint32_t>(4096, 99));  // constant run
  return cases;
}

/// Byte buffers spanning the LZSS search regimes: incompressible (every
/// candidate gate fails), all-match (maximal-length matches), periodic
/// (distance ties broken by chain order), planted long-range matches, and
/// repeats straddling the window boundary.
std::vector<std::vector<std::uint8_t>> encode_byte_cases() {
  std::vector<std::vector<std::uint8_t>> cases;
  Rng rng(654);
  {
    std::vector<std::uint8_t> random_bytes(1 << 18);
    for (auto& b : random_bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    cases.push_back(random_bytes);
    // Planted matches inside otherwise incompressible data.
    std::vector<std::uint8_t> mixed = random_bytes;
    std::memcpy(mixed.data() + 150000, mixed.data() + 123, 20000);
    std::memcpy(mixed.data() + 250000, mixed.data() + 150001, 300);
    cases.push_back(std::move(mixed));
  }
  cases.push_back(std::vector<std::uint8_t>(1 << 17, 0x42));  // constant
  {
    std::vector<std::uint8_t> periodic(1 << 17);
    for (std::size_t i = 0; i < periodic.size(); ++i) {
      periodic[i] = static_cast<std::uint8_t>(i % 251);
    }
    cases.push_back(std::move(periodic));
  }
  // Hash-chain torture: 90% zeros keeps the zero bucket's chain at the
  // kMaxChain cap so the capped-walk bookkeeping is exercised.
  {
    std::vector<std::uint8_t> heavy(1 << 17);
    for (std::size_t i = 0; i < heavy.size(); ++i) {
      heavy[i] = rng.uniform() < 0.9 ? 0 : static_cast<std::uint8_t>(i * 7);
    }
    cases.push_back(std::move(heavy));
  }
  // Repeats spaced exactly at the window size and one past it: the first
  // is the most distant legal match, the second must be rejected.
  {
    const std::size_t window = 1u << 16;
    std::vector<std::uint8_t> spaced(3 * window + 64);
    for (auto& b : spaced) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    std::memcpy(spaced.data() + window, spaced.data(), 12);
    std::memcpy(spaced.data() + 2 * window + 1, spaced.data() + window, 12);
    cases.push_back(std::move(spaced));
  }
  // Degenerate sizes around the kMinMatch = 4 threshold.
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 17u}) {
    std::vector<std::uint8_t> s(n);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    cases.push_back(std::move(s));
  }
  return cases;
}

TEST(EncodeFastPaths, HuffmanFastMatchesReferenceByteForByte) {
  for (const auto& symbols : encode_symbol_cases()) {
    const auto fast = huffman_encode(symbols);
    const auto reference = huffman_encode_reference(symbols);
    ASSERT_EQ(fast, reference) << "case size " << symbols.size();
    EXPECT_EQ(huffman_decode(fast), symbols);
  }
}

TEST(EncodeFastPaths, LzssFastMatchesReferenceByteForByte) {
  for (const auto& input : encode_byte_cases()) {
    const auto fast = lzss_encode(input);
    const auto reference = lzss_encode_reference(input);
    ASSERT_EQ(fast, reference) << "case size " << input.size();
    EXPECT_EQ(lzss_decode(fast), input);
  }
}

TEST(EncodeFastPaths, LzssEncodeIgnoresArenaReuseState) {
  // A dirty arena (stale chain tables from a previous, different input)
  // must not change the stream.
  const auto cases = encode_byte_cases();
  ScratchArena arena;
  for (const auto& input : cases) {
    const auto with_arena = lzss_encode(input, &arena);
    EXPECT_EQ(with_arena, lzss_encode(input)) << "case size " << input.size();
  }
  // Encode again in reverse order so every lease is a reuse.
  for (auto it = cases.rbegin(); it != cases.rend(); ++it) {
    EXPECT_EQ(lzss_encode(*it, &arena), lzss_encode(*it));
  }
  EXPECT_GT(arena.stats().reuses, 0u);
}

TEST(EncodeFastPaths, LzssArenaHighWaterCoversChainTables) {
  // head table: 2^15 int32 entries; prev table: one int32 per input byte.
  const std::size_t n = 1u << 16;
  std::vector<std::uint8_t> input(n);
  Rng rng(9);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  ScratchArena arena;
  (void)lzss_encode(input, &arena);
  const auto stats = arena.stats();
  const std::size_t expected = ((1u << 15) + n) * sizeof(std::int32_t);
  EXPECT_GE(stats.high_water_bytes, expected);
  // Re-encoding must reuse both table leases rather than allocating.
  (void)lzss_encode(input, &arena);
  EXPECT_GE(arena.stats().reuses, 2u);
  EXPECT_EQ(arena.stats().high_water_bytes, stats.high_water_bytes);
}

TEST(EncodeFastPaths, ChunkedContainersAreThreadCountIndependent) {
  Rng rng(77);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 200000; ++i) {
    symbols.push_back(32768 + static_cast<std::uint32_t>(rng.uniform_index(17)) - 8);
  }
  std::vector<std::uint8_t> bytes(1 << 20);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  std::memcpy(bytes.data() + 700000, bytes.data() + 31, 50000);

  const auto huff_serial = huffman_encode_chunked(symbols, nullptr, 1 << 14);
  const auto lzss_serial = lzss_encode_chunked(bytes, nullptr, 1 << 16);
  for (std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(huffman_encode_chunked(symbols, &pool, 1 << 14), huff_serial)
        << threads << " threads";
    EXPECT_EQ(lzss_encode_chunked(bytes, &pool, 1 << 16), lzss_serial)
        << threads << " threads";
  }
  EXPECT_EQ(huffman_decode_chunked(huff_serial, nullptr), symbols);
  EXPECT_EQ(lzss_decode_chunked(lzss_serial, nullptr), bytes);
}

TEST(EncodeFastPaths, PutPairMatchesTwoPuts) {
  Rng rng(11);
  BitWriter pair_writer;
  BitWriter put_writer;
  for (int i = 0; i < 2000; ++i) {
    const unsigned nbits_a = static_cast<unsigned>(rng.uniform_index(64));  // 0..63
    const unsigned nbits_b = static_cast<unsigned>(rng.uniform_index(65));  // 0..64
    const auto value_a = static_cast<std::uint64_t>(rng.uniform() * 1e18);
    const auto value_b = static_cast<std::uint64_t>(rng.uniform() * 1e18);
    pair_writer.put_pair(value_a, nbits_a, value_b, nbits_b);
    put_writer.put(value_a, nbits_a);
    put_writer.put(value_b, nbits_b);
  }
  EXPECT_EQ(pair_writer.bit_count(), put_writer.bit_count());
  EXPECT_EQ(pair_writer.finish(), put_writer.finish());
}

TEST(EncodeFastPaths, AppenderMatchesPutSequence) {
  Rng rng(13);
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 5000; ++i) {
    const unsigned nbits = 1 + static_cast<unsigned>(rng.uniform_index(64));  // 1..64
    std::uint64_t value = static_cast<std::uint64_t>(rng.uniform() * 1e18);
    if (nbits < 64) value &= (1ull << nbits) - 1;  // Appender contract: pre-masked
    writes.emplace_back(value, nbits);
  }
  BitWriter plain;
  for (const auto& [v, n] : writes) plain.put(v, n);

  BitWriter fast;
  {
    BitWriter::Appender ap(fast);
    for (const auto& [v, n] : writes) ap.put(v, n);
  }  // destructor flushes
  EXPECT_EQ(fast.bit_count(), plain.bit_count());
  EXPECT_EQ(fast.finish(), plain.finish());

  // Interleaving appender bursts with direct writer use (flush between).
  BitWriter mixed;
  BitWriter::Appender ap(mixed);
  for (std::size_t i = 0; i < writes.size() / 2; ++i) ap.put(writes[i].first, writes[i].second);
  ap.flush();
  for (std::size_t i = writes.size() / 2; i < writes.size(); ++i) {
    mixed.put(writes[i].first, writes[i].second);
  }
  EXPECT_EQ(mixed.finish(), plain.finish());
}

TEST(EncodeFastPaths, ReserveBitsIsContentNeutral) {
  BitWriter reserved;
  BitWriter plain;
  reserved.reserve_bits(1 << 20);
  for (int i = 0; i < 1000; ++i) {
    reserved.put(static_cast<std::uint64_t>(i) * 2654435761u, 37);
    plain.put(static_cast<std::uint64_t>(i) * 2654435761u, 37);
  }
  EXPECT_EQ(reserved.finish(), plain.finish());
}

}  // namespace
}  // namespace cosmo
