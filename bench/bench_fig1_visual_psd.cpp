/// \file bench_fig1_visual_psd.cpp
/// \brief Reproduces paper Fig. 1: visualization of original vs
/// GPU-SZ-reconstructed Nyx data at PW_REL = 0.1 and 0.25, plus the power
/// spectrum density comparison that reveals the difference the eye cannot
/// see. Writes PPM slice images and an SVG PSD plot under bench_out/.
#include <cstdio>

#include "analysis/power_spectrum.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "foresight/cinema.hpp"
#include "gpu/device_compressor.hpp"
#include "io/ppm.hpp"

int main() {
  using namespace cosmo;
  bench::banner("Fig. 1", "Nyx visualization + power spectrum density, PW_REL 0.1 vs 0.25");

  const io::Container nyx = bench::make_nyx();
  const Field& rho = nyx.find("baryon_density").field;

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  gpu::GpuSzDevice device(sim);

  const std::string dir = bench::out_dir() + "/fig1";
  foresight::ensure_directory(dir);

  // Original slice image.
  io::write_ppm(io::render_slice(rho, rho.dims.nz / 2), dir + "/original.ppm");

  foresight::SvgPlot psd("Power spectrum ratio, baryon density", "k (grid frequency)",
                         "P_recon(k) / P_orig(k)");
  psd.add_hband(0.99, 1.01);
  psd.add_hline(1.0);

  std::printf("%-12s %8s %10s %16s\n", "PW_REL", "ratio", "PSNR(dB)", "max |pk-1|");
  std::printf("%s\n", std::string(50, '-').c_str());
  for (const double pwrel : {0.1, 0.25}) {
    const auto c = device.compress_pwrel(rho.data, rho.dims, pwrel);
    const auto d = device.decompress(c.bytes);
    Field recon(rho.name, rho.dims, std::move(d.values));
    io::write_ppm(io::render_slice(recon, rho.dims.nz / 2),
                  dir + strprintf("/recon_pwrel_%g.ppm", pwrel));
    const auto pk = analysis::pk_ratio(rho.data, recon.data, rho.dims, 0.8);
    const auto dist = analysis::compare(rho.data, recon.data);
    const double ratio = static_cast<double>(rho.bytes()) / c.bytes.size();
    std::printf("%-12g %8.2f %10.2f %16.4f %s\n", pwrel, ratio, dist.psnr_db,
                pk.max_deviation,
                pk.max_deviation <= 0.01 ? "(acceptable)" : "(NOT acceptable)");
    psd.add_series({strprintf("PW_REL = %g", pwrel), pk.k, pk.ratio, "", false});
  }
  psd.save(dir + "/psd_ratio.svg");

  std::printf(
      "\nExpected shape (paper Fig. 1): both reconstructions look identical in the\n"
      "slice images, but the PW_REL = 0.25 spectrum leaves the 1%% band while 0.1\n"
      "stays much closer — visual fidelity does not imply analysis fidelity.\n");
  std::printf("artifacts: %s/{original,recon_pwrel_*}.ppm, psd_ratio.svg\n", dir.c_str());
  return 0;
}
