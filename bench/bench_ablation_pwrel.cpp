/// \file bench_ablation_pwrel.cpp
/// \brief Ablation for the paper's Section IV/V claim that "PW_REL is better
/// than ABS for the velocity fields in the HACC dataset": at matched
/// bitrate, compare ABS-mode and PW_REL-via-log GPU-SZ on HACC velocities
/// using both PSNR (which the paper warns favors ABS) and the halo
/// bulk-velocity preservation metric (which PW_REL wins).
#include <cmath>
#include <cstdio>

#include "analysis/fof.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "foresight/cbench.hpp"

using namespace cosmo;

namespace {

/// Mean relative error of per-halo bulk velocity.
double bulk_velocity_error(const analysis::FofResult& halos, std::span<const float> orig,
                           std::span<const float> recon) {
  std::vector<double> sum_o(halos.halos.size(), 0.0), sum_r(halos.halos.size(), 0.0);
  std::vector<std::size_t> count(halos.halos.size(), 0);
  for (std::size_t p = 0; p < orig.size(); ++p) {
    const auto h = halos.halo_of_particle[p];
    if (h < 0) continue;
    sum_o[static_cast<std::size_t>(h)] += orig[p];
    sum_r[static_cast<std::size_t>(h)] += recon[p];
    ++count[static_cast<std::size_t>(h)];
  }
  double err = 0.0;
  std::size_t used = 0;
  for (std::size_t h = 0; h < halos.halos.size(); ++h) {
    if (count[h] == 0) continue;
    const double mo = sum_o[h] / static_cast<double>(count[h]);
    const double mr = sum_r[h] / static_cast<double>(count[h]);
    err += std::fabs(mr - mo) / std::max(std::fabs(mo), 10.0);
    ++used;
  }
  return used ? err / static_cast<double>(used) : 0.0;
}

}  // namespace

int main() {
  bench::banner("Ablation: PW_REL vs ABS", "HACC velocity compression mode comparison");

  const io::Container hacc = bench::make_hacc();
  const Field& vx = hacc.find("vx").field;

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 20;
  const auto halos = analysis::fof(hacc.find("x").field.data, hacc.find("y").field.data,
                                   hacc.find("z").field.data, fof_params);
  std::printf("halos for the bulk-velocity metric: %zu\n\n", halos.halos.size());

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &sim);
  foresight::CBench cb({.keep_reconstructed = true, .dataset_name = "ablation"});

  std::printf("%-14s %10s %10s %14s %18s\n", "config", "bitrate", "PSNR(dB)",
              "max rel err", "bulk-vel err");
  std::printf("%s\n", std::string(72, '-').c_str());

  struct Case {
    foresight::CompressorConfig config;
  };
  const Case cases[] = {
      {{"abs", 50.0}},  {{"abs", 250.0}},  {{"abs", 1000.0}},
      {{"pw_rel", 0.01}}, {{"pw_rel", 0.05}}, {{"pw_rel", 0.25}},
  };
  const auto session = gpu_sz->open_session();  // buffers reused per case
  for (const auto& c : cases) {
    const auto r = cb.run_session(vx, gpu_sz->name(), *session, c.config);
    const double bulk = bulk_velocity_error(halos, vx.data, r.reconstructed);
    std::printf("%-14s %10.3f %10.2f %14.4g %18.5f\n", c.config.label().c_str(),
                r.bit_rate, r.distortion.psnr_db, r.distortion.max_rel_err, bulk);
  }

  std::printf(
      "\nExpected shape (paper Sections IV-B4, V-A): at comparable bitrate ABS gives\n"
      "higher PSNR (its error is uniform) but PW_REL bounds the *relative* error of\n"
      "every particle, so slow particles — which dominate bound halo cores — keep\n"
      "far better bulk-velocity fidelity: \"higher PSNR does not necessarily\n"
      "indicate better postanalysis quality\".\n");
  return 0;
}
