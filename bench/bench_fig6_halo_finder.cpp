/// \file bench_fig6_halo_finder.cpp
/// \brief Reproduces paper Fig. 6: Friends-of-Friends halo-finder analysis
/// on original vs reconstructed HACC data — halo counts per mass bin
/// (left axis), count ratio (right axis) — one panel per registered device
/// codec: the paper's absolute position bounds for error-bounded codecs
/// (6a: GPU-SZ) and fixed bitrates for rate-mode codecs (6b: cuZFP); a
/// newly registered device backend gets the next panel letter with no
/// edits here. Also derives the paper's configuration pick: GPU-SZ abs
/// 0.005/0.025 (positions/velocities) -> 4.25x vs cuZFP rate 8 -> 4x.
#include <cstdio>

#include "analysis/fof.hpp"
#include "analysis/halo_stats.hpp"
#include "bench_util.hpp"
#include "foresight/cbench.hpp"
#include "foresight/cinema.hpp"
#include "foresight/codec_registry.hpp"

using namespace cosmo;

namespace {

constexpr std::size_t kMassBins = 10;

void print_comparison(const std::string& label,
                      const analysis::HaloComparison& cmp) {
  std::printf("%s\n", label.c_str());
  std::printf("    %-24s %10s %10s %8s\n", "mass bin", "orig", "recon", "ratio");
  for (std::size_t b = 0; b < cmp.original.size(); ++b) {
    if (cmp.original[b].count == 0 && cmp.reconstructed[b].count == 0) continue;
    std::printf("    [%.3g, %.3g) %12zu %10zu %8.3f\n", cmp.original[b].mass_lo,
                cmp.original[b].mass_hi, cmp.original[b].count,
                cmp.reconstructed[b].count, cmp.ratio[b]);
  }
  std::printf("    total count ratio %.3f, max bin deviation %.3f\n",
              cmp.total_ratio, cmp.max_ratio_deviation);
}

}  // namespace

int main() {
  bench::banner("Fig. 6", "halo-finder comparison on original vs reconstructed HACC");

  const io::Container hacc = bench::make_hacc();
  const auto& x = hacc.find("x").field;
  const auto& y = hacc.find("y").field;
  const auto& z = hacc.find("z").field;

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 20;
  const auto original = analysis::fof(x.data, y.data, z.data, fof_params);
  std::printf("original snapshot: %zu halos\n\n", original.halos.size());

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  foresight::CBench cb({.keep_reconstructed = true, .dataset_name = "fig6"});
  foresight::ensure_directory(bench::out_dir());

  struct Panel {
    std::string codec;
    std::vector<foresight::CompressorConfig> configs;
  };
  // One panel per registered device codec: the paper's absolute position
  // bounds when the codec is error-bounded, its fixed bitrates otherwise.
  std::vector<Panel> panels;
  for (const auto& name : foresight::available_compressors()) {
    const auto& caps = foresight::CodecRegistry::instance().capabilities(name);
    if (!caps.needs_device) continue;
    if (caps.supports_mode("abs")) {
      panels.push_back(
          {name, {{"abs", 0.001}, {"abs", 0.005}, {"abs", 0.025}, {"abs", 0.25}}});
    } else {
      panels.push_back(
          {name, {{"rate", 16.0}, {"rate", 8.0}, {"rate", 4.0}, {"rate", 2.0}}});
    }
  }

  for (std::size_t panel_index = 0; panel_index < panels.size(); ++panel_index) {
    const auto& panel = panels[panel_index];
    const auto codec = foresight::make_compressor(panel.codec, &sim);
    std::printf("--- Fig. 6%c: %s ---\n", static_cast<char>('a' + panel_index),
                panel.codec.c_str());
    foresight::SvgPlot plot(
        strprintf("Fig 6: halo count ratio, %s", panel.codec.c_str()),
        "halo mass (particles)", "count ratio (recon / orig)");
    plot.set_log_x(true);
    plot.add_hline(1.0);

    double best_ratio = -1.0;
    std::string best_label = "none";
    const auto session = codec->open_session();  // buffers reused per config
    for (const auto& config : panel.configs) {
      const auto rx = cb.run_session(x, codec->name(), *session, config);
      const auto ry = cb.run_session(y, codec->name(), *session, config);
      const auto rz = cb.run_session(z, codec->name(), *session, config);
      const auto recon = analysis::fof(rx.reconstructed, ry.reconstructed,
                                       rz.reconstructed, fof_params);
      const double compression = 3.0 * static_cast<double>(x.bytes()) /
                                 static_cast<double>(rx.compressed_bytes +
                                                     ry.compressed_bytes +
                                                     rz.compressed_bytes);
      if (recon.halos.empty()) {
        std::printf("%s (position ratio %.2fx): halo structure destroyed\n\n",
                    config.label().c_str(), compression);
        continue;
      }
      const auto cmp =
          analysis::compare_halo_catalogs(original.halos, recon.halos, 1.0, kMassBins);
      print_comparison(strprintf("%s (position ratio %.2fx)", config.label().c_str(),
                                 compression),
                       cmp);
      std::printf("\n");
      std::vector<double> mass_centers;
      for (const auto& bin : cmp.original) {
        mass_centers.push_back(0.5 * (bin.mass_lo + bin.mass_hi));
      }
      plot.add_series({config.label(), mass_centers, cmp.ratio, "", false});
      if (cmp.max_ratio_deviation <= 0.05 && compression > best_ratio) {
        best_ratio = compression;
        best_label = config.label();
      }
    }
    std::printf("best halo-preserving position config for %s: %s (%.2fx)\n\n",
                panel.codec.c_str(), best_label.c_str(), best_ratio);
    plot.save(bench::out_dir() + strprintf("/fig6_%s_halo_ratio.svg",
                                           panel.codec.c_str()));
  }

  std::printf(
      "Expected shape (paper Fig. 6): count ratios stay ~1 across the mass range at\n"
      "tight bounds / high rates; small-mass bins degrade first as compression gets\n"
      "aggressive; GPU-SZ preserves halos at a slightly better ratio than cuZFP\n"
      "(paper: 4.25x vs 4x).\n");
  std::printf("artifacts: %s/fig6_*_halo_ratio.svg\n", bench::out_dir().c_str());
  return 0;
}
