/// \file bench_codec_microbench.cpp
/// \brief google-benchmark micro-benchmarks for every substrate codec:
/// SZ / ZFP compression and decompression, Huffman, LZSS and the FFT.
/// These are the real single-core rates behind Fig. 8's measured CPU rows.
#include <benchmark/benchmark.h>

#include <cmath>

#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/field.hpp"
#include "fft/fft.hpp"
#include "random/rng.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

using namespace cosmo;

std::vector<float> smooth_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.02 * static_cast<double>(i)) +
                                 rng.normal());
  }
  return data;
}

void BM_SzCompress(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const Dims dims = Dims::d3(edge, edge, edge);
  const auto data = smooth_field(dims, 1);
  sz::Params params;
  params.abs_error_bound = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sz::compress(data, dims, params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
}
BENCHMARK(BM_SzCompress)->Arg(32)->Arg(64);

void BM_SzDecompress(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const Dims dims = Dims::d3(edge, edge, edge);
  const auto data = smooth_field(dims, 2);
  sz::Params params;
  params.abs_error_bound = 0.1;
  const auto bytes = sz::compress(data, dims, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sz::decompress(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
}
BENCHMARK(BM_SzDecompress)->Arg(32)->Arg(64);

void BM_ZfpCompress(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const Dims dims = Dims::d3(edge, edge, edge);
  const auto data = smooth_field(dims, 3);
  zfp::Params params;
  params.rate = 8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zfp::compress(data, dims, params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
}
BENCHMARK(BM_ZfpCompress)->Arg(32)->Arg(64);

void BM_ZfpDecompress(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const Dims dims = Dims::d3(edge, edge, edge);
  const auto data = smooth_field(dims, 4);
  zfp::Params params;
  params.rate = 8.0;
  const auto bytes = zfp::compress(data, dims, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zfp::decompress(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
}
BENCHMARK(BM_ZfpDecompress)->Arg(32)->Arg(64);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint32_t> symbols(static_cast<std::size_t>(state.range(0)));
  for (auto& s : symbols) {
    s = 32768u + static_cast<std::uint32_t>(rng.uniform_index(32)) - 16u;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman_encode(symbols));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzssEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::uint8_t> input(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 7) % 23 + rng.uniform_index(3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_encode(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LzssEncode)->Arg(1 << 16)->Arg(1 << 20);

void BM_Fft3d(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const Dims dims = Dims::d3(edge, edge, edge);
  Rng rng(7);
  std::vector<cplx> data(dims.count());
  for (auto& x : data) x = cplx(rng.normal(), 0.0);
  for (auto _ : state) {
    auto work = data;
    fft_3d(work, dims, false);
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dims.count()));
}
BENCHMARK(BM_Fft3d)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
