/// \file bench_node_overhead.cpp
/// \brief Reproduces the paper's Summit-node overhead claim (Section V-C):
/// "taking into account multiple GPUs on a single node, for instance, six
/// Nvidia Tesla V100 GPUs per Summit node, cuZFP can significantly reduce
/// the compression overhead to 1/40 of the original multi-core compression
/// overhead (e.g., from more than 10% to lower than 0.3%)" — using the
/// paper's HACC-on-Summit numbers: 0.1 trillion particles on 1,024 nodes,
/// ~10 s per timestep, 2.5 TB per snapshot.
#include <cstdio>

#include "bench_util.hpp"
#include "gpu/node.hpp"

using namespace cosmo;

int main() {
  bench::banner("Node overhead (Sec. V-C)",
                "in-situ compression overhead per Summit node");

  // Paper scenario: 2.5 TB snapshot over 1,024 nodes.
  const std::uint64_t snapshot_per_node = 2'500'000'000'000ull / 1024;
  const double timestep_seconds = 10.0;
  const double bitrate = 3.2;  // the ~10x Nyx best-fit regime

  std::printf("per-node snapshot: %s, timestep %.0f s, cuZFP bitrate %.1f\n\n",
              human_bytes(snapshot_per_node).c_str(), timestep_seconds, bitrate);

  // CPU comparison point: 2 TB/s across 1,024 nodes ~ 2 GB/s per node
  // (paper: SZ with 64 cores/node per [9], [18]).
  const double cpu_node_gbps = 2.0;
  const double cpu_overhead =
      gpu::cpu_overhead_fraction(cpu_node_gbps, snapshot_per_node, timestep_seconds);
  std::printf("%-34s overhead %6.2f%%  (paper: \"more than 10%%\")\n",
              "CPU, 2 GB/s per node", 100.0 * cpu_overhead);

  for (const int gpus : {1, 2, 6}) {
    gpu::NodeConfig node;
    node.gpu = gpu::find_device("Tesla V100");
    node.gpu_count = gpus;
    node.pcie_links = std::min(gpus, 2);
    node.simulation_seconds = timestep_seconds;
    const auto report = gpu::model_node_compression(node, snapshot_per_node, bitrate);
    std::printf("%-34s overhead %6.3f%%  node throughput %7.1f GB/s "
                "(kernel %.2f ms, transfer %.2f ms)\n",
                strprintf("%d x V100 per node", gpus).c_str(),
                100.0 * report.overhead_fraction, report.node_throughput_gbps,
                report.kernel_seconds * 1e3, report.transfer_seconds * 1e3);
  }

  std::printf(
      "\nExpected shape: the six-GPU node drops the overhead to well under 0.3%% —\n"
      "roughly 1/40 of the multicore CPU cost — making in-situ compression\n"
      "effectively free next to the 10 s timestep.\n");
  return 0;
}
