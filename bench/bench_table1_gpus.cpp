/// \file bench_table1_gpus.cpp
/// \brief Reproduces paper Table I ("Specifications of Different GPUs Used
/// in Our Experiments") from the device catalog, and appends the modeled
/// cuZFP kernel rates each spec implies — the numbers every throughput
/// figure is built from.
#include <cstdio>

#include "gpu/sim.hpp"
#include "gpu/specs.hpp"

int main() {
  using namespace cosmo;
  std::printf("Table I: Specifications of Different GPUs Used in Our Experiments\n\n");
  std::printf("%s\n", gpu::format_table1().c_str());
  std::printf("note: Tesla K80 is a dual-die board; per-die values are listed\n");
  std::printf("      (the paper prints 12x2 GB, 2496x2 shaders, 4x2 TFLOPS, 240x2 GB/s)\n\n");

  std::printf("Derived cuZFP kernel-rate model (GB/s of uncompressed data):\n");
  std::printf("%-20s %14s %14s\n", "GPU", "comp @ rate 4", "decomp @ rate 4");
  for (const auto& spec : gpu::device_catalog()) {
    gpu::GpuSimulator sim(spec);
    std::printf("%-20s %14.1f %14.1f\n", spec.name.c_str(),
                sim.zfp_compress_kernel_gbps(4.0), sim.zfp_decompress_kernel_gbps(4.0));
  }
  std::printf("\nPCIe model shared by all devices: %.1f GB/s effective, %.0f us latency\n",
              gpu::kPcieGbps, gpu::kPcieLatency * 1e6);
  return 0;
}
