/// \file bench_rate_estimator.cpp
/// \brief Validates the entropy-based rate estimator against full SZ runs
/// across fields and error bounds, and reports the speedup it offers the
/// Section V-D configuration search as a pre-filter.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sz/rate_estimate.hpp"

using namespace cosmo;

int main() {
  bench::banner("Rate estimator", "entropy-based SZ bitrate prediction vs real streams");

  const io::Container nyx = bench::make_nyx();
  std::printf("%-22s %10s | %10s %10s %8s | %10s %10s\n", "field", "abs bound",
              "est b/v", "real b/v", "err%", "est (ms)", "real (ms)");
  std::printf("%s\n", std::string(95, '-').c_str());

  double est_total = 0.0, real_total = 0.0;
  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    const auto [lo, hi] = value_range(field.view());
    const double range = static_cast<double>(hi) - lo;
    for (const double frac : {1e-5, 1e-4, 1e-3}) {
      sz::Params params;
      params.abs_error_bound = range * frac;

      Timer timer;
      const auto est = sz::estimate_rate(field.data, field.dims, params);
      const double est_ms = timer.millis();
      timer.reset();
      sz::Stats stats;
      sz::compress(field.data, field.dims, params, &stats);
      const double real_ms = timer.millis();
      est_total += est_ms;
      real_total += real_ms;

      const double err =
          100.0 * (est.estimated_bits_per_value - stats.bit_rate) / stats.bit_rate;
      std::printf("%-22s %10.3g | %10.3f %10.3f %7.1f%% | %10.2f %10.2f\n",
                  field.name.c_str(), params.abs_error_bound,
                  est.estimated_bits_per_value, stats.bit_rate, err, est_ms, real_ms);
    }
  }
  std::printf("\nestimator speedup over full compression: %.1fx\n",
              real_total / est_total);
  std::printf(
      "Expected shape: estimates track real bitrates within tens of percent\n"
      "(entropy lower-bounds Huffman; LZSS can dip below it), at a several-fold\n"
      "cheaper cost — useful for pre-filtering guideline candidates.\n");
  return 0;
}
