/// \file bench_fig7_breakdown.cpp
/// \brief Reproduces paper Fig. 7: breakdown of cuZFP compression (7a) and
/// decompression (7b) time into init / kernel / memcpy / free on the Nyx
/// dataset across bitrates, on the simulated Tesla V100, against the
/// no-compression PCIe transfer baseline. Uses the paper's measurement
/// methodology (10 warm-ups, then average/stddev over 10 runs).
#include <cstdio>

#include "bench_util.hpp"
#include "foresight/cinema.hpp"
#include "gpu/device_compressor.hpp"

using namespace cosmo;

int main() {
  bench::banner("Fig. 7", "cuZFP (de)compression time breakdown vs bitrate, Tesla V100");

  // Timing is modeled at the paper's true field size (512^3 floats): the
  // fixed-rate stream size is deterministic (rate/32 of the raw size), so
  // no actual 536 MB buffer is needed; REPRO_FIG7_DIM rescales.
  const std::size_t dim = env_size("REPRO_FIG7_DIM", 512);
  const std::uint64_t raw_bytes = static_cast<std::uint64_t>(dim) * dim * dim * 4;

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));

  const double baseline_ms = sim.baseline_transfer_seconds(raw_bytes) * 1e3;
  std::printf("field: one Nyx variable at %zu^3 (%s); baseline raw transfer: %.3f ms\n\n",
              dim, human_bytes(raw_bytes).c_str(), baseline_ms);

  foresight::ensure_directory(bench::out_dir());
  foresight::SvgPlot plot_c("Fig 7a: cuZFP compression breakdown",
                            "bitrate (bits/value)", "time (ms)");
  foresight::SvgPlot plot_d("Fig 7b: cuZFP decompression breakdown",
                            "bitrate (bits/value)", "time (ms)");
  plot_c.add_hline(baseline_ms, "no-compression transfer");
  plot_d.add_hline(baseline_ms, "no-compression transfer");

  struct Row {
    double bitrate;
    gpu::TimingBreakdown comp, decomp;
    double comp_std_ms, decomp_std_ms;
  };
  std::vector<Row> rows;

  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    // Fixed-rate mode: the compressed size is exactly rate/32 of the raw
    // size (verified by tests/test_zfp.cpp on real codec execution).
    const auto compressed_bytes =
        static_cast<std::uint64_t>(static_cast<double>(raw_bytes) * rate / 32.0);
    // The paper's warm-up/measure loop over the timing model.
    Row row;
    row.bitrate = rate;
    const RunningStats comp_stats = gpu::measure_with_warmup([&] {
      row.comp = sim.model_compression(raw_bytes, compressed_bytes,
                                       sim.zfp_compress_kernel_gbps(rate));
      return row.comp.total();
    });
    const RunningStats decomp_stats = gpu::measure_with_warmup([&] {
      row.decomp = sim.model_decompression(raw_bytes, compressed_bytes,
                                           sim.zfp_decompress_kernel_gbps(rate));
      return row.decomp.total();
    });
    row.comp_std_ms = comp_stats.stddev() * 1e3;
    row.decomp_std_ms = decomp_stats.stddev() * 1e3;
    rows.push_back(row);
  }

  for (const char* which : {"compression", "decompression"}) {
    const bool comp = which[0] == 'c';
    std::printf("--- %s ---\n", which);
    std::printf("%8s %10s %10s %10s %10s %12s %10s\n", "bitrate", "init(ms)",
                "kernel(ms)", "memcpy(ms)", "free(ms)", "total(ms)", "std(ms)");
    for (const auto& row : rows) {
      const auto& t = comp ? row.comp : row.decomp;
      std::printf("%8.1f %10.3f %10.3f %10.3f %10.3f %12.3f %10.4f\n", row.bitrate,
                  t.init * 1e3, t.kernel * 1e3, t.memcpy * 1e3, t.free * 1e3,
                  t.total() * 1e3, comp ? row.comp_std_ms : row.decomp_std_ms);
    }
    std::printf("\n");
    auto& plot = comp ? plot_c : plot_d;
    for (const auto* part : {"init", "kernel", "memcpy", "free", "total"}) {
      std::vector<double> xs, ys;
      for (const auto& row : rows) {
        const auto& t = comp ? row.comp : row.decomp;
        xs.push_back(row.bitrate);
        const double v = std::string(part) == "init"     ? t.init
                         : std::string(part) == "kernel" ? t.kernel
                         : std::string(part) == "memcpy" ? t.memcpy
                         : std::string(part) == "free"   ? t.free
                                                         : t.total();
        ys.push_back(v * 1e3);
      }
      plot.add_series({part, xs, ys, "", false});
    }
  }
  plot_c.save(bench::out_dir() + "/fig7a_compression_breakdown.svg");
  plot_d.save(bench::out_dir() + "/fig7b_decompression_breakdown.svg");

  // Stacked-bar rendering, matching the paper's Fig. 7 presentation.
  for (const bool comp : {true, false}) {
    foresight::SvgBarChart bars(
        comp ? "Fig 7a: compression breakdown (stacked)"
             : "Fig 7b: decompression breakdown (stacked)",
        "bitrate (bits/value)", "time (ms)");
    bars.set_segments({"init", "kernel", "memcpy", "free"});
    bars.add_hline(baseline_ms, "no-compression transfer");
    for (const auto& row : rows) {
      const auto& t = comp ? row.comp : row.decomp;
      bars.add_bar(strprintf("%.0f", row.bitrate),
                   {t.init * 1e3, t.kernel * 1e3, t.memcpy * 1e3, t.free * 1e3});
    }
    bars.save(bench::out_dir() +
              (comp ? "/fig7a_compression_bars.svg" : "/fig7b_decompression_bars.svg"));
  }

  std::printf(
      "Expected shapes (paper Fig. 7): total time grows with bitrate; memcpy (the\n"
      "PCIe move of the compressed stream) dominates the kernel; at practical\n"
      "bitrates the total stays below the no-compression transfer baseline.\n");
  std::printf("artifacts: %s/fig7{a,b}_*.svg\n", bench::out_dir().c_str());
  return 0;
}
