/// \file bench_fig4_rate_distortion.cpp
/// \brief Reproduces paper Fig. 4: rate-distortion (PSNR vs bitrate) of
/// GPU-SZ and cuZFP on (a) the Nyx fields and (b) the HACC fields.
///
/// GPU-SZ sweeps error bounds (ABS for densities/temperature, PW_REL-via-log
/// for HACC velocities, matching Section IV-B4); cuZFP sweeps fixed
/// bitrates. Each series is printed as (bitrate, PSNR) rows and plotted to
/// SVG. Solid = GPU-SZ, dashed = cuZFP, as in the paper.
#include <cstdio>
#include <map>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "foresight/cbench.hpp"
#include "foresight/cinema.hpp"

using namespace cosmo;

namespace {

struct Series {
  std::vector<double> bitrate;
  std::vector<double> psnr;
};

void print_series(const std::string& label, const Series& s) {
  std::printf("%s\n", label.c_str());
  for (std::size_t i = 0; i < s.bitrate.size(); ++i) {
    std::printf("    bitrate %7.3f  PSNR %7.2f dB\n", s.bitrate[i], s.psnr[i]);
  }
}

/// Sweeps one compressor over one field; returns (bitrate, psnr) points
/// sorted by bitrate. One session serves the whole sweep, so stream and
/// reconstruction buffers are reused across configs.
Series sweep(foresight::CBench& bench, const Field& field,
             foresight::Compressor& codec,
             const std::vector<foresight::CompressorConfig>& configs) {
  Series s;
  const auto session = codec.open_session();
  foresight::CompressResult c;
  foresight::DecompressResult d;
  std::vector<std::pair<double, double>> points;
  for (const auto& config : configs) {
    const auto r = bench.run_session(field, codec.name(), *session, config, c, d);
    points.emplace_back(r.bit_rate, r.distortion.psnr_db);
  }
  std::sort(points.begin(), points.end());
  for (const auto& [b, p] : points) {
    s.bitrate.push_back(b);
    s.psnr.push_back(p);
  }
  return s;
}

/// Error-bound sweep spanning the field's dynamic range: bounds are set as
/// fractions of the value range so every field gets a comparable bitrate
/// span.
std::vector<foresight::CompressorConfig> abs_sweep(const Field& field) {
  const auto [lo, hi] = value_range(field.view());
  const double range = static_cast<double>(hi) - lo;
  std::vector<foresight::CompressorConfig> configs;
  for (const double frac : {3e-7, 3e-6, 3e-5, 3e-4, 3e-3, 3e-2}) {
    configs.push_back({"abs", range * frac});
  }
  return configs;
}

const std::vector<foresight::CompressorConfig> kRateSweep = {
    {"rate", 1.0}, {"rate", 2.0}, {"rate", 4.0}, {"rate", 6.0},
    {"rate", 8.0}, {"rate", 12.0}, {"rate", 16.0}};

}  // namespace

int main() {
  bench::banner("Fig. 4", "rate-distortion of GPU-SZ and cuZFP on Nyx and HACC");

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &sim);
  const auto cuzfp = foresight::make_compressor("cuzfp", &sim);
  foresight::CBench bench({.keep_reconstructed = false, .dataset_name = "fig4"});

  foresight::ensure_directory(bench::out_dir());
  foresight::SvgPlot plot_nyx("Fig 4a: Nyx rate-distortion", "bitrate (bits/value)",
                              "PSNR (dB)");
  foresight::SvgPlot plot_hacc("Fig 4b: HACC rate-distortion", "bitrate (bits/value)",
                               "PSNR (dB)");

  // ---------- (a) Nyx ----------
  std::printf("--- Fig. 4a: Nyx ---\n");
  const io::Container nyx = bench::make_nyx();
  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    const Series sz_series = sweep(bench, field, *gpu_sz, abs_sweep(field));
    const Series zfp_series = sweep(bench, field, *cuzfp, kRateSweep);
    print_series("GPU-SZ  " + field.name, sz_series);
    print_series("cuZFP   " + field.name, zfp_series);
    plot_nyx.add_series({field.name + " (GPU-SZ)", sz_series.bitrate, sz_series.psnr,
                         "", false});
    plot_nyx.add_series({field.name + " (cuZFP)", zfp_series.bitrate, zfp_series.psnr,
                         "", true});
  }

  // ---------- (b) HACC ----------
  std::printf("\n--- Fig. 4b: HACC ---\n");
  const io::Container hacc = bench::make_hacc();
  for (const auto& variable : hacc.variables) {
    const Field& field = variable.field;
    const bool is_velocity = field.name[0] == 'v';
    // PW_REL for velocities (Sec. IV-B4); ABS for positions.
    std::vector<foresight::CompressorConfig> sz_configs;
    if (is_velocity) {
      for (const double b : {1e-4, 1e-3, 5e-3, 2e-2, 1e-1, 3e-1}) {
        sz_configs.push_back({"pw_rel", b});
      }
    } else {
      sz_configs = abs_sweep(field);
    }
    const Series sz_series = sweep(bench, field, *gpu_sz, sz_configs);
    const Series zfp_series = sweep(bench, field, *cuzfp, kRateSweep);
    print_series(std::string("GPU-SZ  ") + field.name +
                     (is_velocity ? " (PW_REL)" : " (ABS)"),
                 sz_series);
    print_series("cuZFP   " + field.name, zfp_series);
    plot_hacc.add_series({field.name + " (GPU-SZ)", sz_series.bitrate, sz_series.psnr,
                          "", false});
    plot_hacc.add_series({field.name + " (cuZFP)", zfp_series.bitrate, zfp_series.psnr,
                          "", true});
  }

  plot_nyx.save(bench::out_dir() + "/fig4a_nyx_rate_distortion.svg");
  plot_hacc.save(bench::out_dir() + "/fig4b_hacc_rate_distortion.svg");

  std::printf(
      "\nExpected shapes (paper Fig. 4): PSNR grows near-linearly with bitrate for\n"
      "both codecs; GPU-SZ beats cuZFP at equal bitrate on the smooth Nyx fields;\n"
      "the three velocity curves are nearly identical; GPU-SZ drops at very low\n"
      "bitrates on density/temperature (independent-block decorrelation).\n");
  std::printf("artifacts: %s/fig4{a,b}_*.svg\n", bench::out_dir().c_str());
  return 0;
}
