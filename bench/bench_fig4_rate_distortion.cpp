/// \file bench_fig4_rate_distortion.cpp
/// \brief Reproduces paper Fig. 4: rate-distortion (PSNR vs bitrate) of the
/// registered device codecs on (a) the Nyx fields and (b) the HACC fields.
///
/// The codec roster comes from the registry: every compressor whose
/// capabilities say needs_device participates (GPU-SZ, cuZFP, FZ, and any
/// future backend — this file never names codecs). Error-bounded codecs
/// sweep bounds (ABS for densities/temperature, PW_REL for HACC velocities
/// when supported, matching Section IV-B4); rate-mode codecs sweep fixed
/// bitrates. Each series is printed as (bitrate, PSNR) rows and plotted to
/// SVG; dashed styling follows CodecCapabilities::plot_dashed, as in the
/// paper (solid = GPU-SZ, dashed = cuZFP).
#include <cstdio>
#include <map>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "foresight/cbench.hpp"
#include "foresight/cinema.hpp"
#include "foresight/codec_registry.hpp"

using namespace cosmo;

namespace {

struct Series {
  std::vector<double> bitrate;
  std::vector<double> psnr;
};

void print_series(const std::string& label, const Series& s) {
  std::printf("%s\n", label.c_str());
  for (std::size_t i = 0; i < s.bitrate.size(); ++i) {
    std::printf("    bitrate %7.3f  PSNR %7.2f dB\n", s.bitrate[i], s.psnr[i]);
  }
}

/// Sweeps one compressor over one field; returns (bitrate, psnr) points
/// sorted by bitrate. One session serves the whole sweep, so stream and
/// reconstruction buffers are reused across configs.
Series sweep(foresight::CBench& bench, const Field& field,
             foresight::Compressor& codec,
             const std::vector<foresight::CompressorConfig>& configs) {
  Series s;
  const auto session = codec.open_session();
  foresight::CompressResult c;
  foresight::DecompressResult d;
  std::vector<std::pair<double, double>> points;
  for (const auto& config : configs) {
    const auto r = bench.run_session(field, codec.name(), *session, config, c, d);
    points.emplace_back(r.bit_rate, r.distortion.psnr_db);
  }
  std::sort(points.begin(), points.end());
  for (const auto& [b, p] : points) {
    s.bitrate.push_back(b);
    s.psnr.push_back(p);
  }
  return s;
}

/// Error-bound sweep spanning the field's dynamic range: bounds are set as
/// fractions of the value range so every field gets a comparable bitrate
/// span.
std::vector<foresight::CompressorConfig> abs_sweep(const Field& field) {
  const auto [lo, hi] = value_range(field.view());
  const double range = static_cast<double>(hi) - lo;
  std::vector<foresight::CompressorConfig> configs;
  for (const double frac : {3e-7, 3e-6, 3e-5, 3e-4, 3e-3, 3e-2}) {
    configs.push_back({"abs", range * frac});
  }
  return configs;
}

const std::vector<foresight::CompressorConfig> kRateSweep = {
    {"rate", 1.0}, {"rate", 2.0}, {"rate", 4.0}, {"rate", 6.0},
    {"rate", 8.0}, {"rate", 12.0}, {"rate", 16.0}};

/// Picks the sweep for one codec on one field from its capabilities:
/// PW_REL for velocity components when the codec supports it (Sec. IV-B4),
/// otherwise range-scaled ABS bounds, otherwise fixed bitrates.
std::vector<foresight::CompressorConfig> sweep_for(
    const foresight::CodecCapabilities& caps, const Field& field, bool velocity) {
  if (velocity && caps.supports_mode("pw_rel")) {
    std::vector<foresight::CompressorConfig> configs;
    for (const double b : {1e-4, 1e-3, 5e-3, 2e-2, 1e-1, 3e-1}) {
      configs.push_back({"pw_rel", b});
    }
    return configs;
  }
  if (caps.supports_mode("abs")) return abs_sweep(field);
  return kRateSweep;
}

/// One registered device codec plus its capability record.
struct DeviceCodec {
  std::unique_ptr<foresight::Compressor> codec;
  const foresight::CodecCapabilities* caps;
};

std::vector<DeviceCodec> device_codecs(gpu::GpuSimulator& sim) {
  std::vector<DeviceCodec> out;
  for (const auto& name : foresight::available_compressors()) {
    const auto& caps = foresight::CodecRegistry::instance().capabilities(name);
    if (!caps.needs_device) continue;
    out.push_back({foresight::make_compressor(name, &sim), &caps});
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Fig. 4", "rate-distortion of the registered device codecs on Nyx and HACC");

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  auto codecs = device_codecs(sim);
  foresight::CBench bench({.keep_reconstructed = false, .dataset_name = "fig4"});

  foresight::ensure_directory(bench::out_dir());
  foresight::SvgPlot plot_nyx("Fig 4a: Nyx rate-distortion", "bitrate (bits/value)",
                              "PSNR (dB)");
  foresight::SvgPlot plot_hacc("Fig 4b: HACC rate-distortion", "bitrate (bits/value)",
                               "PSNR (dB)");

  // ---------- (a) Nyx ----------
  std::printf("--- Fig. 4a: Nyx ---\n");
  const io::Container nyx = bench::make_nyx();
  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    for (auto& [codec, caps] : codecs) {
      const Series series = sweep(bench, field, *codec, sweep_for(*caps, field, false));
      print_series(caps->name + "  " + field.name, series);
      plot_nyx.add_series({field.name + " (" + caps->name + ")", series.bitrate,
                           series.psnr, "", caps->plot_dashed});
    }
  }

  // ---------- (b) HACC ----------
  std::printf("\n--- Fig. 4b: HACC ---\n");
  const io::Container hacc = bench::make_hacc();
  for (const auto& variable : hacc.variables) {
    const Field& field = variable.field;
    const bool is_velocity = field.name[0] == 'v';
    for (auto& [codec, caps] : codecs) {
      const auto configs = sweep_for(*caps, field, is_velocity);
      const Series series = sweep(bench, field, *codec, configs);
      print_series(caps->name + "  " + field.name + " (" + configs.front().mode + ")",
                   series);
      plot_hacc.add_series({field.name + " (" + caps->name + ")", series.bitrate,
                            series.psnr, "", caps->plot_dashed});
    }
  }

  plot_nyx.save(bench::out_dir() + "/fig4a_nyx_rate_distortion.svg");
  plot_hacc.save(bench::out_dir() + "/fig4b_hacc_rate_distortion.svg");

  std::printf(
      "\nExpected shapes (paper Fig. 4): PSNR grows near-linearly with bitrate for\n"
      "every codec; GPU-SZ beats cuZFP at equal bitrate on the smooth Nyx fields;\n"
      "the three velocity curves are nearly identical; the SZ-family codecs drop at\n"
      "very low bitrates on density/temperature (independent-block decorrelation).\n");
  std::printf("artifacts: %s/fig4{a,b}_*.svg\n", bench::out_dir().c_str());
  return 0;
}
