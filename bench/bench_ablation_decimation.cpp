/// \file bench_ablation_decimation.cpp
/// \brief Measures the paper's Section I motivation instead of assuming it:
/// "A better solution to this simple decimation strategy has been proposed
/// — a new generation of error-bounded lossy compression techniques ...
/// can usually achieve much higher compression ratios, given the same
/// distortion". We compare temporal decimation (keep 1-in-k + linear
/// interpolation) against error-bounded SZ (spatial, and temporal
/// adjacent-snapshot) on a coherent snapshot sequence, at matched storage.
#include <cstdio>

#include "analysis/decimation.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "cosmo/nyx_sequence.hpp"
#include "sz/temporal.hpp"

using namespace cosmo;

int main() {
  bench::banner("Ablation: decimation baseline",
                "decimation vs error-bounded compression at matched storage");

  NyxSequenceConfig config;
  config.base.dim = std::min<std::size_t>(bench::nyx_dim(), 64);
  config.steps = 9;
  config.rotation_per_step = 0.12;
  const auto frames = generate_nyx_density_sequence(config);
  const double raw_bytes = static_cast<double>(frames.size()) *
                           static_cast<double>(frames[0].bytes());
  std::printf("sequence: %zu snapshots of %zu^3 (%s raw)\n\n", frames.size(),
              config.base.dim, human_bytes(static_cast<std::uint64_t>(raw_bytes)).c_str());

  std::printf("%-34s %10s %12s\n", "method", "ratio", "mean PSNR");
  std::printf("%s\n", std::string(60, '-').c_str());

  // --- Decimation at several factors. ---
  for (const std::size_t keep : {2u, 3u, 4u}) {
    const auto d = analysis::decimate_and_reconstruct(frames, keep);
    const double psnr = analysis::sequence_mean_psnr(frames, d.reconstructed);
    std::printf("%-34s %10.2f %12.2f\n",
                strprintf("decimation keep-1-in-%zu", keep).c_str(), d.storage_ratio,
                psnr);
  }

  // --- Error-bounded SZ across bounds (spatial per frame, and temporal). ---
  for (const double frac : {3e-4, 1e-3, 4e-3}) {
    const auto [lo, hi] = value_range(frames[0].view());
    const double bound = (static_cast<double>(hi) - lo) * frac;

    sz::TemporalParams spatial;
    spatial.abs_error_bound = bound;
    spatial.key_interval = 1;  // all frames compressed spatially
    sz::TemporalStats spatial_stats;
    const auto spatial_bytes = sz::compress_temporal(frames, spatial, &spatial_stats);
    const auto spatial_recon = sz::decompress_temporal(spatial_bytes);
    std::printf("%-34s %10.2f %12.2f\n",
                strprintf("SZ spatial, abs=%.3g", bound).c_str(),
                raw_bytes / static_cast<double>(spatial_stats.compressed_bytes),
                analysis::sequence_mean_psnr(frames, spatial_recon));

    sz::TemporalParams temporal = spatial;
    temporal.key_interval = 0;  // one key frame, temporal prediction after
    sz::TemporalStats temporal_stats;
    const auto temporal_bytes = sz::compress_temporal(frames, temporal, &temporal_stats);
    const auto temporal_recon = sz::decompress_temporal(temporal_bytes);
    std::printf("%-34s %10.2f %12.2f\n",
                strprintf("SZ temporal, abs=%.3g", bound).c_str(),
                raw_bytes / static_cast<double>(temporal_stats.compressed_bytes),
                analysis::sequence_mean_psnr(frames, temporal_recon));
  }

  std::printf(
      "\nExpected shape: at any storage ratio decimation reaches, error-bounded\n"
      "compression delivers far higher mean PSNR (and a guaranteed per-point\n"
      "bound, which decimation cannot give); temporal prediction beats per-frame\n"
      "spatial compression on fine-cadence sequences (Li et al. [41]).\n");
  return 0;
}
