/// \file bench_fig5_power_spectrum.cpp
/// \brief Reproduces paper Fig. 5: power-spectrum ratio curves for the Nyx
/// fields under every registered device codec — fixed bitrates for the
/// rate-mode codecs, error bounds for the bounded ones — with the
/// 1 +/- 1% acceptance band; then derives the paper's per-field
/// configuration pick and the overall compression ratio (paper: cuZFP
/// rates (4,4,4,2,2,2) -> 10.7x; GPU-SZ bounds
/// (0.2, 0.4, 1e3, 2e5, 2e5, 2e5) -> 15.4x).
///
/// The per-codec candidate grids come from each codec's registered
/// default sweep lattice (default_grid_candidates), so a newly registered
/// backend shows up here without edits. The composite spectra of the
/// paper's panels (overall density, velocity magnitude) are computed too.
#include <cmath>
#include <cstdio>

#include "analysis/power_spectrum.hpp"
#include "bench_util.hpp"
#include "foresight/cbench.hpp"
#include "foresight/cinema.hpp"
#include "foresight/codec_registry.hpp"
#include "foresight/sweep.hpp"

using namespace cosmo;

namespace {

constexpr double kKFraction = 0.5;  // evaluate k <= k_nyq/2

/// Registered device codecs, in registration order.
std::vector<std::string> device_codec_names() {
  std::vector<std::string> out;
  for (const auto& name : foresight::available_compressors()) {
    if (foresight::CodecRegistry::instance().capabilities(name).needs_device) {
      out.push_back(name);
    }
  }
  return out;
}

/// Velocity magnitude field from three components.
Field velocity_magnitude(const io::Container& c) {
  const auto& vx = c.find("velocity_x").field.data;
  const auto& vy = c.find("velocity_y").field.data;
  const auto& vz = c.find("velocity_z").field.data;
  Field out("velocity_magnitude", c.find("velocity_x").field.dims);
  for (std::size_t i = 0; i < vx.size(); ++i) {
    out.data[i] = std::sqrt(vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  }
  return out;
}

/// Sum of two density fields (the paper's "overall density" panel).
Field overall_density(const io::Container& c) {
  const auto& b = c.find("baryon_density").field.data;
  const auto& dm = c.find("dark_matter_density").field.data;
  Field out("overall_density", c.find("baryon_density").field.dims);
  for (std::size_t i = 0; i < b.size(); ++i) out.data[i] = b[i] + dm[i];
  return out;
}

}  // namespace

int main() {
  bench::banner("Fig. 5", "Nyx power-spectrum ratios with the 1 +/- 1% constraint");

  const io::Container nyx = bench::make_nyx();
  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  foresight::CBench cb({.keep_reconstructed = true, .dataset_name = "fig5"});
  foresight::ensure_directory(bench::out_dir());

  for (const auto& codec_name : device_codec_names()) {
    const auto codec = foresight::make_compressor(codec_name, &sim);
    std::printf("--- %s ---\n", codec_name.c_str());
    std::printf("%-22s %-14s %8s %12s %s\n", "field", "config", "ratio",
                "max |pk-1|", "verdict");
    std::printf("%s\n", std::string(75, '-').c_str());

    // Per-field: pick highest-ratio acceptable config (guideline step 2+3),
    // accumulating the overall six-field ratio.
    std::size_t total_original = 0;
    double total_compressed = 0.0;
    bool all_ok = true;
    // Keep the chosen reconstruction per field for composite spectra.
    std::map<std::string, std::vector<float>> chosen_recon;

    for (const auto& variable : nyx.variables) {
      const Field& field = variable.field;
      foresight::SvgPlot plot(
          strprintf("Fig 5: %s, %s", field.name.c_str(), codec_name.c_str()),
          "k (grid frequency)", "pk ratio");
      plot.add_hband(0.99, 1.01);
      plot.add_hline(1.0);

      double best_ratio = -1.0;
      std::string best_label = "none";
      const auto session = codec->open_session();  // buffers reused per config
      for (const auto& config : foresight::default_grid_candidates(codec_name, field)) {
        const auto r = cb.run_session(field, codec->name(), *session, config);
        const auto pk =
            analysis::pk_ratio(field.data, r.reconstructed, field.dims, kKFraction);
        const bool ok = analysis::pk_acceptable(pk, 0.01);
        std::printf("%-22s %-14s %8.2f %12.4f %s\n", field.name.c_str(),
                    config.label().c_str(), r.ratio, pk.max_deviation,
                    ok ? "OK" : "reject");
        plot.add_series({config.label(), pk.k, pk.ratio, "", false});
        if (ok && r.ratio > best_ratio) {
          best_ratio = r.ratio;
          best_label = config.label();
          chosen_recon[field.name] = r.reconstructed;
        }
      }
      if (best_ratio > 0.0) {
        std::printf("%-22s -> best-fit %s (%.2fx)\n", field.name.c_str(),
                    best_label.c_str(), best_ratio);
        total_original += field.bytes();
        total_compressed += static_cast<double>(field.bytes()) / best_ratio;
      } else {
        std::printf("%-22s -> no acceptable config in the sweep\n", field.name.c_str());
        all_ok = false;
      }
      plot.save(bench::out_dir() +
                strprintf("/fig5_%s_%s.svg", codec_name.c_str(), field.name.c_str()));
    }

    if (all_ok) {
      std::printf("\noverall six-field ratio with best-fit configs: %.2fx "
                  "(paper: cuZFP 10.7x, GPU-SZ 15.4x on the real 512^3 data)\n",
                  static_cast<double>(total_original) / total_compressed);
    }

    // Composite panels: overall density and velocity magnitude from the
    // chosen per-field reconstructions.
    if (chosen_recon.count("baryon_density") && chosen_recon.count("dark_matter_density")) {
      const Field orig = overall_density(nyx);
      Field recon = orig;
      const auto& b = chosen_recon["baryon_density"];
      const auto& dm = chosen_recon["dark_matter_density"];
      for (std::size_t i = 0; i < recon.data.size(); ++i) recon.data[i] = b[i] + dm[i];
      const auto pk = analysis::pk_ratio(orig.data, recon.data, orig.dims, kKFraction);
      std::printf("composite overall-density pk deviation: %.4f\n", pk.max_deviation);
    }
    if (chosen_recon.count("velocity_x") && chosen_recon.count("velocity_y") &&
        chosen_recon.count("velocity_z")) {
      const Field orig = velocity_magnitude(nyx);
      Field recon = orig;
      const auto& vx = chosen_recon["velocity_x"];
      const auto& vy = chosen_recon["velocity_y"];
      const auto& vz = chosen_recon["velocity_z"];
      for (std::size_t i = 0; i < recon.data.size(); ++i) {
        recon.data[i] =
            std::sqrt(vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
      }
      const auto pk = analysis::pk_ratio(orig.data, recon.data, orig.dims, kKFraction);
      std::printf("composite velocity-magnitude pk deviation: %.4f\n", pk.max_deviation);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shapes (paper Fig. 5): density fields leave the band first as the\n"
      "rate drops / bound grows; velocities tolerate aggressive compression; the\n"
      "acceptable GPU-SZ pick compresses better than the acceptable cuZFP pick.\n");
  std::printf("artifacts: %s/fig5_*.svg\n", bench::out_dir().c_str());
  return 0;
}
