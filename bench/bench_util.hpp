/// \file bench_util.hpp
/// \brief Shared helpers for the per-table/figure benchmark binaries.
///
/// Scale defaults are container-friendly; REPRO_NYX_DIM / REPRO_HACC_N
/// scale the experiments toward the paper's 512^3 / 1.07e9 sizes.
#pragma once

#include <cstdio>
#include <string>

#include "common/env.hpp"
#include "common/str.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cinema.hpp"

namespace cosmo::bench {

inline std::size_t nyx_dim() { return env_size("REPRO_NYX_DIM", 64); }
inline std::size_t hacc_particles() { return env_size("REPRO_HACC_N", 200000); }
inline std::string out_dir() { return env_string("REPRO_OUT_DIR", "bench_out"); }

inline io::Container make_nyx() {
  NyxConfig config;
  config.dim = nyx_dim();
  return generate_nyx(config);
}

inline io::Container make_hacc() {
  HaccConfig config;
  config.particles = hacc_particles();
  config.halo_count = std::max<std::size_t>(40, hacc_particles() / 1500);
  return generate_hacc(config);
}

inline void banner(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("scale: Nyx %zu^3, HACC %zu particles (REPRO_NYX_DIM / REPRO_HACC_N)\n",
              nyx_dim(), hacc_particles());
  std::printf("==============================================================\n\n");
}

}  // namespace cosmo::bench
