/// \file bench_fig8_cpu_vs_gpu.cpp
/// \brief Reproduces paper Fig. 8: compression and decompression throughput
/// of SZ and ZFP on a 20-core Xeon Gold 6148 vs cuZFP on a Tesla V100
/// (including CPU-GPU data transfer), at the best-fit Nyx configurations
/// from the Fig. 5 analysis.
///
/// Substitutions (documented in DESIGN.md): the single-core numbers are
/// measured on this machine's real codec execution; the 20-core numbers are
/// modeled from them with the documented parallel-efficiency factor (the
/// container exposes one core); the GPU numbers come from the device model.
/// ZFP's OpenMP decompression is printed N/A, as in the paper.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "foresight/cbench.hpp"

using namespace cosmo;

int main() {
  bench::banner("Fig. 8", "CPU (1/20 cores) vs GPU throughput, SZ and ZFP");

  const io::Container nyx = bench::make_nyx();
  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const gpu::CpuSpec cpu = gpu::evaluation_cpu();

  // Best-fit Nyx configurations (paper Section V-B): GPU-SZ absolute bounds
  // (0.2, 0.4, 1e3, 2e5, 2e5, 2e5); cuZFP bitrates (4, 4, 4, 2, 2, 2).
  const std::map<std::string, foresight::CompressorConfig> sz_config = {
      {"baryon_density", {"abs", 0.2}},      {"dark_matter_density", {"abs", 0.4}},
      {"temperature", {"abs", 1e3}},         {"velocity_x", {"abs", 2e5}},
      {"velocity_y", {"abs", 2e5}},          {"velocity_z", {"abs", 2e5}}};
  const std::map<std::string, foresight::CompressorConfig> zfp_config = {
      {"baryon_density", {"rate", 4.0}},     {"dark_matter_density", {"rate", 4.0}},
      {"temperature", {"rate", 4.0}},        {"velocity_x", {"rate", 2.0}},
      {"velocity_y", {"rate", 2.0}},         {"velocity_z", {"rate", 2.0}}};

  // --- CPU: real single-core execution over all six fields. ---
  double sz_comp_s = 0.0, sz_dec_s = 0.0, zfp_comp_s = 0.0, zfp_dec_s = 0.0;
  std::size_t total_bytes = 0;
  std::size_t sz_compressed = 0, zfp_compressed = 0;
  const auto sz_cpu = foresight::make_compressor("sz-cpu");
  const auto zfp_cpu = foresight::make_compressor("zfp-cpu");
  // Staged sessions, serial on purpose: each stage is timed on its own and
  // buffer reuse keeps allocator noise out of the measured throughput.
  const auto sz_session = sz_cpu->open_session();
  const auto zfp_session = zfp_cpu->open_session();
  foresight::CompressResult c;
  foresight::DecompressResult d;
  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    total_bytes += field.bytes();
    sz_session->compress(field, sz_config.at(field.name), c);
    sz_session->decompress(c, d);
    sz_comp_s += c.seconds();
    sz_dec_s += d.seconds();
    sz_compressed += c.bytes.size();
    zfp_session->compress(field, zfp_config.at(field.name), c);
    zfp_session->decompress(c, d);
    zfp_comp_s += c.seconds();
    zfp_dec_s += d.seconds();
    zfp_compressed += c.bytes.size();
  }
  const double gb = static_cast<double>(total_bytes);
  const double scale = cpu.cores * cpu.parallel_efficiency;

  // --- GPU: cuZFP model at the same configs (kernel + PCIe transfer),
  // evaluated at the paper's 512^3 field size so fixed launch/alloc
  // overheads are amortized as they are in the real experiment. ---
  const std::uint64_t gpu_field_bytes = 512ull * 512 * 512 * 4;
  const double gpu_gb = 6.0 * static_cast<double>(gpu_field_bytes);
  double gpu_comp_s = 0.0, gpu_dec_s = 0.0;
  for (const auto& variable : nyx.variables) {
    const double rate = zfp_config.at(variable.field.name).value;
    const auto compressed_bytes = static_cast<std::uint64_t>(
        static_cast<double>(gpu_field_bytes) * rate / 32.0);
    gpu_comp_s += sim.model_compression(gpu_field_bytes, compressed_bytes,
                                        sim.zfp_compress_kernel_gbps(rate))
                      .total();
    gpu_dec_s += sim.model_decompression(gpu_field_bytes, compressed_bytes,
                                         sim.zfp_decompress_kernel_gbps(rate))
                     .total();
  }

  std::printf("dataset: six Nyx fields, %s total; best-fit configs\n", human_bytes(total_bytes).c_str());
  std::printf("overall ratios at these configs: SZ %.2fx, ZFP %.2fx\n\n",
              gb / static_cast<double>(sz_compressed),
              gb / static_cast<double>(zfp_compressed));
  std::printf("%-34s %16s %16s\n", "configuration", "compress GB/s", "decompress GB/s");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("%-34s %16.3f %16.3f\n", "SZ, 1 CPU core (measured)", gb / sz_comp_s / 1e9,
              gb / sz_dec_s / 1e9);
  std::printf("%-34s %16.3f %16.3f\n",
              strprintf("SZ, %d cores (modeled, eff %.2f)", cpu.cores,
                        cpu.parallel_efficiency)
                  .c_str(),
              gb / (sz_comp_s / scale) / 1e9, gb / (sz_dec_s / scale) / 1e9);
  std::printf("%-34s %16.3f %16.3f\n", "ZFP, 1 CPU core (measured)",
              gb / zfp_comp_s / 1e9, gb / zfp_dec_s / 1e9);
  std::printf("%-34s %16.3f %16s\n",
              strprintf("ZFP, %d cores OpenMP (modeled)", cpu.cores).c_str(),
              gb / (zfp_comp_s / scale) / 1e9, "N/A (no OpenMP decomp)");
  std::printf("%-34s %16.3f %16.3f\n", "cuZFP, Tesla V100 (incl. PCIe)",
              gpu_gb / gpu_comp_s / 1e9, gpu_gb / gpu_dec_s / 1e9);

  // Per-byte time ratio, GPU vs modeled 20-core ZFP compression.
  const double gpu_per_byte = gpu_comp_s / gpu_gb;
  const double cpu20_per_byte = (zfp_comp_s / scale) / gb;
  std::printf(
      "\nGPU vs 20-core compression time per byte: %.1f%% — with six V100s per\n"
      "Summit node the paper reduces compression overhead to ~1/40 of the\n"
      "multicore cost (>10%% of runtime down to <0.3%%).\n",
      100.0 * gpu_per_byte / cpu20_per_byte);
  std::printf(
      "Expected shape (paper Fig. 8): GPU >> multicore CPU >> single core, even\n"
      "with the CPU-GPU transfer included.\n");
  return 0;
}
