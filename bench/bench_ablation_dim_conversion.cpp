/// \file bench_ablation_dim_conversion.cpp
/// \brief Ablation of the paper's dimension-conversion procedure (Section
/// IV-B4): HACC's 1-D arrays compressed (a) natively in 1-D, (b) reshaped
/// to the (n/64) x 8 x 8 layout, and (c) reshaped to a near-cubic
/// power-of-two grid — "the 512x512x512 conversion results in best
/// compression quality in our experiments" for GPU-SZ, while cuZFP uses
/// the x8x8 layout.
#include <cmath>
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

using namespace cosmo;

namespace {

/// Near-cubic reshape: edge = ceil(cbrt(n)) rounded up so the cube holds n.
Dims cube_dims(std::size_t n) {
  auto edge = static_cast<std::size_t>(std::ceil(std::cbrt(static_cast<double>(n))));
  while (edge * edge * edge < n) ++edge;
  return Dims::d3(edge, edge, edge);
}

std::vector<float> pad_to(const std::vector<float>& data, std::size_t n) {
  std::vector<float> out(n, 0.0f);
  std::copy(data.begin(), data.end(), out.begin());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: 1-D -> 3-D conversion",
                "HACC dimension conversion layouts for SZ and ZFP");

  const io::Container hacc = bench::make_hacc();
  const Field& x = hacc.find("x").field;
  const std::size_t n = x.data.size();

  struct Layout {
    const char* name;
    Dims dims;
  };
  const Layout layouts[] = {
      {"native 1-D", Dims::d1(n)},
      {"(n/64) x 8 x 8", Dims::d3((n + 63) / 64, 8, 8)},
      {"near-cubic 3-D", cube_dims(n)},
  };

  std::printf("field: x (positions), %zu particles; SZ abs bound 0.01, ZFP rate 8\n\n", n);
  std::printf("%-18s | %10s %10s | %10s %10s\n", "layout", "SZ b/v", "SZ PSNR",
              "ZFP b/v", "ZFP PSNR");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (const auto& layout : layouts) {
    const auto padded = pad_to(x.data, layout.dims.count());

    sz::Params sz_params;
    sz_params.abs_error_bound = 0.01;
    sz::Stats sz_stats;
    const auto sz_bytes = sz::compress(padded, layout.dims, sz_params, &sz_stats);
    auto sz_recon = sz::decompress(sz_bytes);
    sz_recon.resize(n);
    // Bitrate accounted against real (unpadded) points.
    const double sz_bv = static_cast<double>(sz_bytes.size()) * 8.0 / static_cast<double>(n);
    const double sz_psnr = analysis::psnr_db(x.data, sz_recon);

    zfp::Params zfp_params;
    zfp_params.rate = 8.0;
    const auto zfp_bytes = zfp::compress(padded, layout.dims, zfp_params);
    auto zfp_recon = zfp::decompress(zfp_bytes);
    zfp_recon.resize(n);
    const double zfp_bv =
        static_cast<double>(zfp_bytes.size()) * 8.0 / static_cast<double>(n);
    const double zfp_psnr = analysis::psnr_db(x.data, zfp_recon);

    std::printf("%-18s | %10.3f %10.2f | %10.3f %10.2f\n", layout.name, sz_bv, sz_psnr,
                zfp_bv, zfp_psnr);
  }

  std::printf(
      "\nExpected shape (paper Sec. IV-B4): ZFP's block transform clearly gains\n"
      "from a 3-D layout (its 1-D blocks see only 4 neighbors) — the paper's\n"
      "reason to convert before cuZFP. For SZ the conversion exists because\n"
      "GPU-SZ only accepts 3-D input; on synthetic data whose only coherence is\n"
      "the halo-ordered file order, native 1-D Lorenzo is competitive, whereas\n"
      "the real HACC snapshot favored the 512^3 layout — a data-dependent\n"
      "outcome the framework lets users measure per dataset.\n");
  return 0;
}
