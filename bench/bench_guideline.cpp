/// \file bench_guideline.cpp
/// \brief Reproduces the paper's Section V-D optimization guideline on both
/// datasets across every registered device codec: benchmark candidate
/// configurations, filter by the cosmology metrics (power spectrum for
/// Nyx, halo counts + bulk velocities for HACC), pick the highest-ratio
/// acceptable config per field, and report the overall compression ratio —
/// the numbers that in the paper come out as Nyx: cuZFP 10.7x / GPU-SZ
/// 15.4x and HACC: cuZFP ~4x / GPU-SZ 4.25x. The codec roster and the Nyx
/// candidate grids come from the registry (default_grid_candidates), so a
/// new backend joins the guideline without edits here.
#include <cstdio>

#include "bench_util.hpp"
#include "foresight/codec_registry.hpp"
#include "foresight/optimizer.hpp"
#include "foresight/sweep.hpp"

using namespace cosmo;

namespace {

/// Registered device codecs, in registration order.
std::vector<std::string> device_codec_names() {
  std::vector<std::string> out;
  for (const auto& name : foresight::available_compressors()) {
    if (foresight::CodecRegistry::instance().capabilities(name).needs_device) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Guideline (Sec. V-D)", "best-fit configuration search on Nyx and HACC");

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const auto codec_names = device_codec_names();

  // ---------------- Nyx ----------------
  const io::Container nyx = bench::make_nyx();
  for (const auto& codec_name : codec_names) {
    const auto codec = foresight::make_compressor(codec_name, &sim);
    std::map<std::string, std::vector<foresight::CompressorConfig>> candidates;
    for (const auto& variable : nyx.variables) {
      candidates[variable.field.name] =
          foresight::default_grid_candidates(codec_name, variable.field);
    }
    const auto result =
        foresight::optimize_grid_dataset(nyx, *codec, candidates, 0.01, 0.5);
    std::printf("--- Nyx, %s ---\n%s\n", codec_name.c_str(),
                foresight::format_optimization(result).c_str());
  }
  std::printf("(paper, real 512^3 Nyx: cuZFP rates (4,4,4,2,2,2) -> 10.7x;"
              " GPU-SZ bounds (0.2,0.4,1e3,2e5,2e5,2e5) -> 15.4x)\n\n");

  // ---------------- HACC ----------------
  const io::Container hacc = bench::make_hacc();
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 20;

  for (const auto& codec_name : codec_names) {
    const auto& caps = foresight::CodecRegistry::instance().capabilities(codec_name);
    const auto codec = foresight::make_compressor(codec_name, &sim);
    const auto result = foresight::optimize_particle_dataset(
        hacc, *codec, foresight::default_position_candidates(caps),
        foresight::default_velocity_candidates(caps, hacc.find("vx").field), fof_params,
        0.05, 0.05);
    std::printf("--- HACC, %s ---\n%s\n", codec_name.c_str(),
                foresight::format_optimization(result).c_str());
  }
  std::printf("(paper, real 1.07e9-particle HACC: GPU-SZ abs 0.005/0.025 -> 4.25x;"
              " cuZFP rate 8 -> 4x)\n");
  std::printf(
      "\nExpected shape: every codec finds acceptable configs; GPU-SZ's best\n"
      "acceptable overall ratio beats cuZFP's on both datasets.\n");
  return 0;
}
