/// \file bench_guideline.cpp
/// \brief Reproduces the paper's Section V-D optimization guideline on both
/// datasets and both compressors: benchmark candidate configurations,
/// filter by the cosmology metrics (power spectrum for Nyx, halo counts +
/// bulk velocities for HACC), pick the highest-ratio acceptable config per
/// field, and report the overall compression ratio — the numbers that in
/// the paper come out as Nyx: cuZFP 10.7x / GPU-SZ 15.4x and HACC:
/// cuZFP ~4x / GPU-SZ 4.25x.
#include <cstdio>

#include "bench_util.hpp"
#include "foresight/optimizer.hpp"

using namespace cosmo;

int main() {
  bench::banner("Guideline (Sec. V-D)", "best-fit configuration search on Nyx and HACC");

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));

  // ---------------- Nyx ----------------
  const io::Container nyx = bench::make_nyx();
  for (const auto& codec_name : {std::string("gpu-sz"), std::string("cuzfp")}) {
    const auto codec = foresight::make_compressor(codec_name, &sim);
    std::map<std::string, std::vector<foresight::CompressorConfig>> candidates;
    for (const auto& variable : nyx.variables) {
      if (codec_name == "cuzfp") {
        candidates[variable.field.name] = {
            {"rate", 1.0}, {"rate", 2.0}, {"rate", 4.0}, {"rate", 8.0}};
      } else {
        const auto [lo, hi] = value_range(variable.field.view());
        const double range = static_cast<double>(hi) - lo;
        candidates[variable.field.name] = {{"abs", range * 2e-6},
                                           {"abs", range * 2e-5},
                                           {"abs", range * 2e-4},
                                           {"abs", range * 2e-3}};
      }
    }
    const auto result =
        foresight::optimize_grid_dataset(nyx, *codec, candidates, 0.01, 0.5);
    std::printf("--- Nyx, %s ---\n%s\n", codec_name.c_str(),
                foresight::format_optimization(result).c_str());
  }
  std::printf("(paper, real 512^3 Nyx: cuZFP rates (4,4,4,2,2,2) -> 10.7x;"
              " GPU-SZ bounds (0.2,0.4,1e3,2e5,2e5,2e5) -> 15.4x)\n\n");

  // ---------------- HACC ----------------
  const io::Container hacc = bench::make_hacc();
  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 20;

  {
    const auto gpu_sz = foresight::make_compressor("gpu-sz", &sim);
    const auto result = foresight::optimize_particle_dataset(
        hacc, *gpu_sz,
        {{"abs", 0.001}, {"abs", 0.005}, {"abs", 0.025}, {"abs", 0.25}},
        {{"pw_rel", 0.005}, {"pw_rel", 0.025}, {"pw_rel", 0.1}}, fof_params,
        0.05, 0.05);
    std::printf("--- HACC, gpu-sz ---\n%s\n",
                foresight::format_optimization(result).c_str());
  }
  {
    const auto cuzfp = foresight::make_compressor("cuzfp", &sim);
    const auto result = foresight::optimize_particle_dataset(
        hacc, *cuzfp, {{"rate", 16.0}, {"rate", 8.0}, {"rate", 4.0}},
        {{"rate", 8.0}, {"rate", 4.0}}, fof_params, 0.05, 0.05);
    std::printf("--- HACC, cuzfp ---\n%s\n",
                foresight::format_optimization(result).c_str());
  }
  std::printf("(paper, real 1.07e9-particle HACC: GPU-SZ abs 0.005/0.025 -> 4.25x;"
              " cuZFP rate 8 -> 4x)\n");
  std::printf(
      "\nExpected shape: both codecs find acceptable configs; GPU-SZ's best\n"
      "acceptable overall ratio beats cuZFP's on both datasets.\n");
  return 0;
}
