/// \file bench_ablation_predictors.cpp
/// \brief Ablation of SZ's "adaptive, best-fit prediction method": Lorenzo
/// only vs the adaptive Lorenzo/regression selection (paper Section II-A
/// and the [11] attribution of GPU-SZ's decorrelation efficiency), across
/// field types with different smoothness.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "sz/sz.hpp"

using namespace cosmo;

int main() {
  bench::banner("Ablation: predictors", "Lorenzo-only vs adaptive Lorenzo+regression");

  const io::Container nyx = bench::make_nyx();
  std::printf("%-22s %12s | %10s %10s | %10s %10s\n", "field", "abs bound",
              "lorenzo b/v", "PSNR", "adaptive b/v", "PSNR");
  std::printf("%s\n", std::string(85, '-').c_str());

  for (const auto& variable : nyx.variables) {
    const Field& field = variable.field;
    const auto [lo, hi] = value_range(field.view());
    const double bound = (static_cast<double>(hi) - lo) * 1e-4;

    sz::Params lorenzo_only;
    lorenzo_only.abs_error_bound = bound;
    lorenzo_only.regression = false;
    sz::Stats lorenzo_stats;
    const auto lorenzo_bytes =
        sz::compress(field.data, field.dims, lorenzo_only, &lorenzo_stats);
    const double lorenzo_psnr =
        analysis::psnr_db(field.data, sz::decompress(lorenzo_bytes));

    sz::Params adaptive = lorenzo_only;
    adaptive.regression = true;
    sz::Stats adaptive_stats;
    const auto adaptive_bytes =
        sz::compress(field.data, field.dims, adaptive, &adaptive_stats);
    const double adaptive_psnr =
        analysis::psnr_db(field.data, sz::decompress(adaptive_bytes));

    std::printf("%-22s %12.4g | %10.3f %10.2f | %10.3f %10.2f  (%zu/%zu reg blocks)\n",
                field.name.c_str(), bound, lorenzo_stats.bit_rate, lorenzo_psnr,
                adaptive_stats.bit_rate, adaptive_psnr,
                adaptive_stats.regression_blocks, adaptive_stats.total_blocks);
  }

  std::printf(
      "\nExpected shape: the adaptive selector never does meaningfully worse than\n"
      "Lorenzo-only and wins where block-local trends dominate (regression blocks\n"
      "selected); PSNR stays pinned by the shared error bound in all variants.\n");
  return 0;
}
