/// \file bench_ablation_blocking.cpp
/// \brief Ablation for the paper's Section V-A hypothesis: "this drop could
/// be caused by the GPU-SZ dataset blocking, which divides the data into
/// multiple independent blocks and decorrelates at the block borders,
/// leading to more unpredictable data points and a lower compression ratio".
///
/// We sweep the SZ block edge at a fixed error bound: smaller independent
/// blocks mean more border resets, so the bitrate at equal distortion must
/// rise as blocks shrink — directly testing the attributed cause.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "sz/sz.hpp"

using namespace cosmo;

int main() {
  bench::banner("Ablation: blocking",
                "SZ independent-block size vs rate at fixed error bound");

  const io::Container nyx = bench::make_nyx();
  const Field& field = nyx.find("baryon_density").field;
  const auto [lo, hi] = value_range(field.view());
  const double bound = (static_cast<double>(hi) - lo) * 1e-4;

  std::printf("field: %s, abs bound %.4g (1e-4 of range)\n\n", field.name.c_str(), bound);
  std::printf("%10s %10s %10s %14s %12s\n", "block edge", "bitrate", "PSNR(dB)",
              "unpredictable", "reg. blocks");
  std::printf("%s\n", std::string(62, '-').c_str());

  for (const std::size_t edge : {4u, 8u, 16u, 32u, 64u}) {
    if (edge > field.dims.nx) break;
    sz::Params params;
    params.abs_error_bound = bound;
    params.block_edge = edge;
    sz::Stats stats;
    const auto bytes = sz::compress(field.data, field.dims, params, &stats);
    const auto recon = sz::decompress(bytes);
    const double psnr = analysis::psnr_db(field.data, recon);
    std::printf("%10zu %10.3f %10.2f %14zu %12zu\n", edge, stats.bit_rate, psnr,
                stats.unpredictable_points, stats.regression_blocks);
  }

  std::printf(
      "\nExpected shape: PSNR is pinned by the fixed bound, while the bitrate falls\n"
      "as blocks grow — larger blocks leave fewer decorrelated borders, confirming\n"
      "the paper's explanation of the low-bitrate rate-distortion drop.\n");
  return 0;
}
