/// \file bench_ablation_error_distribution.cpp
/// \brief Measures two background claims of the paper:
///  1. "lossy compression — such as ZFP — provides a Gaussian-like error
///     distribution" while SZ's linear quantization spreads errors nearly
///     uniformly over the bound (Section IV-A1's reason CBench exists);
///  2. "Lossless compressors such as FPZIP and FPC can provide only
///     compression ratios typically lower than 2:1 for dense scientific
///     data" (Section II-A) — measured with our FPC-style comparator.
#include <cstdio>

#include "analysis/error_distribution.hpp"
#include "bench_util.hpp"
#include "codec/fpc.hpp"
#include "common/timer.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

using namespace cosmo;

namespace {

const char* shape_name(analysis::ErrorShape s) {
  switch (s) {
    case analysis::ErrorShape::kUniformLike: return "uniform-like";
    case analysis::ErrorShape::kGaussianLike: return "gaussian-like";
    default: return "other";
  }
}

}  // namespace

int main() {
  bench::banner("Ablation: error distribution + lossless baseline",
                "SZ vs ZFP error shapes; FPC-style lossless ratio");

  const io::Container nyx = bench::make_nyx();
  const Field& field = nyx.find("temperature").field;

  // --- Error shapes at comparable distortion. ---
  sz::Params sz_params;
  sz_params.abs_error_bound = 50.0;
  const auto sz_recon = sz::decompress(sz::compress(field.data, field.dims, sz_params));
  const auto sz_hist = analysis::error_histogram(field.data, sz_recon);

  zfp::Params zfp_params;
  zfp_params.rate = 12.0;
  const auto zfp_recon = zfp::decompress(zfp::compress(field.data, field.dims, zfp_params));
  const auto zfp_hist = analysis::error_histogram(field.data, zfp_recon);

  std::printf("%-8s %12s %14s %16s %14s\n", "codec", "stddev", "kurtosis",
              "within 1 sigma", "shape");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("%-8s %12.4g %14.3f %15.1f%% %14s\n", "SZ", sz_hist.stddev,
              sz_hist.excess_kurtosis, 100.0 * sz_hist.within_one_sigma,
              shape_name(analysis::classify_error_shape(sz_hist)));
  std::printf("%-8s %12.4g %14.3f %15.1f%% %14s\n", "ZFP", zfp_hist.stddev,
              zfp_hist.excess_kurtosis, 100.0 * zfp_hist.within_one_sigma,
              shape_name(analysis::classify_error_shape(zfp_hist)));
  std::printf("(reference: uniform kurtosis -1.2 / 57.7%% in sigma; gaussian 0 / 68.3%%)\n\n");

  // --- Lossless baseline across all six fields. ---
  std::printf("FPC-style lossless ratios (paper: \"typically lower than 2:1\"):\n");
  std::printf("%-22s %10s %12s\n", "field", "ratio", "enc MB/s");
  std::printf("%s\n", std::string(48, '-').c_str());
  for (const auto& variable : nyx.variables) {
    Timer timer;
    const auto encoded = fpc_encode(variable.field.data);
    const double seconds = timer.seconds();
    const auto decoded = fpc_decode(encoded);
    require(decoded == variable.field.data, "fpc: lossless round trip failed");
    std::printf("%-22s %10.3f %12.1f\n", variable.field.name.c_str(),
                static_cast<double>(variable.field.bytes()) /
                    static_cast<double>(encoded.size()),
                static_cast<double>(variable.field.bytes()) / seconds / 1e6);
  }

  std::printf(
      "\nExpected shapes: SZ's linear-scaling quantizer spreads errors broadly\n"
      "across the bound (platykurtic), ZFP's truncated transform concentrates\n"
      "them around zero (Gaussian-like); lossless ratios stay below ~2:1 on every\n"
      "field — the gap error-bounded lossy compression exists to close.\n");
  return 0;
}
