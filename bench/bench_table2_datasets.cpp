/// \file bench_table2_datasets.cpp
/// \brief Reproduces paper Table II ("Details of HACC and Nyx Dataset Used
/// in Experiments"): the paper's original rows plus the same description
/// computed from our synthetic stand-ins, so the range/dimension contract
/// of the substitution is checked on every run.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "cosmo/dataset_info.hpp"

int main() {
  using namespace cosmo;
  bench::banner("Table II", "HACC and Nyx dataset details");

  std::printf("Paper datasets:\n%s\n",
              format_table({hacc_paper_info(), nyx_paper_info()}).c_str());

  Timer timer;
  const io::Container hacc = bench::make_hacc();
  const double hacc_seconds = timer.seconds();
  timer.reset();
  const io::Container nyx = bench::make_nyx();
  const double nyx_seconds = timer.seconds();

  std::printf("Synthetic stand-ins (generated in %.2f s / %.2f s):\n%s\n", hacc_seconds,
              nyx_seconds,
              format_table({describe(hacc, "HACC-synth"), describe(nyx, "Nyx-synth")})
                  .c_str());

  std::printf("Every synthetic field range must sit inside the paper's range\n");
  std::printf("(enforced by tests/test_cosmo_synth.cpp).\n");
  return 0;
}
