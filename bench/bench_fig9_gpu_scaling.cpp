/// \file bench_fig9_gpu_scaling.cpp
/// \brief Reproduces paper Fig. 9: cuZFP compression and decompression
/// kernel throughput across the seven GPUs of Table I (the data transfer
/// time is identical for all — PCIe 3.0 x16 — so only kernel rates vary).
#include <cstdio>

#include "bench_util.hpp"
#include "foresight/cinema.hpp"
#include "gpu/sim.hpp"

using namespace cosmo;

int main() {
  bench::banner("Fig. 9", "cuZFP kernel throughput across Table I GPUs");

  const double rate = 4.0;  // the Fig. 5 best-fit density bitrate
  std::printf("fixed-rate bitrate: %.0f bits/value\n\n", rate);
  std::printf("%-20s %18s %18s\n", "GPU", "compress GB/s", "decompress GB/s");
  std::printf("%s\n", std::string(60, '-').c_str());

  foresight::ensure_directory(bench::out_dir());
  foresight::SvgPlot plot("Fig 9: cuZFP kernel throughput by GPU", "GPU index (Table I order)",
                          "kernel GB/s");
  std::vector<double> xs, comp, decomp;
  double idx = 1.0;
  for (const auto& spec : gpu::device_catalog()) {
    gpu::GpuSimulator sim(spec);
    // Paper methodology: warm up, then average over repeated runs.
    const auto comp_stats = gpu::measure_with_warmup([&] {
      return sim.kernel_seconds(1'000'000'000, sim.zfp_compress_kernel_gbps(rate));
    });
    const auto dec_stats = gpu::measure_with_warmup([&] {
      return sim.kernel_seconds(1'000'000'000, sim.zfp_decompress_kernel_gbps(rate));
    });
    const double comp_gbps = 1.0 / comp_stats.mean();
    const double dec_gbps = 1.0 / dec_stats.mean();
    std::printf("%-20s %18.1f %18.1f\n", spec.name.c_str(), comp_gbps, dec_gbps);
    xs.push_back(idx++);
    comp.push_back(comp_gbps);
    decomp.push_back(dec_gbps);
  }
  plot.add_series({"compression", xs, comp, "", false});
  plot.add_series({"decompression", xs, decomp, "", true});
  plot.save(bench::out_dir() + "/fig9_gpu_scaling.svg");

  std::printf(
      "\nExpected shape (paper Fig. 9): kernel throughput rises with upgraded\n"
      "hardware — more shaders, higher peak FLOPS, higher memory bandwidth; the\n"
      "V100/Titan V lead, the K80 trails.\n");
  std::printf("artifacts: %s/fig9_gpu_scaling.svg\n", bench::out_dir().c_str());
  return 0;
}
