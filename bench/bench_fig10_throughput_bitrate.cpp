/// \file bench_fig10_throughput_bitrate.cpp
/// \brief Reproduces paper Fig. 10: cuZFP compression and decompression
/// throughput on the Nyx dataset as a function of bitrate — kernel-only
/// (solid) vs overall including CPU-GPU transfer (dashed) — against the
/// no-compression transfer baseline. This is the figure behind the
/// guideline's "highest acceptable ratio also maximizes throughput".
#include <cstdio>

#include "bench_util.hpp"
#include "foresight/cinema.hpp"
#include "gpu/device_compressor.hpp"

using namespace cosmo;

int main() {
  bench::banner("Fig. 10", "cuZFP throughput vs bitrate, kernel vs overall, Tesla V100");

  // Paper-scale field (512^3 floats); fixed-rate stream sizes are
  // deterministic so the throughput model needs no real buffer.
  const std::size_t dim = env_size("REPRO_FIG7_DIM", 512);
  const std::uint64_t raw = static_cast<std::uint64_t>(dim) * dim * dim * 4;

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const double baseline_gbps =
      static_cast<double>(raw) / sim.baseline_transfer_seconds(raw) / 1e9;

  std::printf("field: one Nyx variable at %zu^3 (%s); "
              "no-compression transfer baseline: %.2f GB/s\n\n",
              dim, human_bytes(raw).c_str(), baseline_gbps);
  std::printf("%8s %8s | %12s %12s | %12s %12s\n", "bitrate", "ratio", "comp kern",
              "comp overall", "dec kern", "dec overall");
  std::printf("%s\n", std::string(75, '-').c_str());

  foresight::ensure_directory(bench::out_dir());
  foresight::SvgPlot plot("Fig 10: cuZFP throughput vs bitrate", "bitrate (bits/value)",
                          "throughput (GB/s)");
  plot.add_hline(baseline_gbps, "no-compression transfer");
  std::vector<double> xs, ck, co, dk, dd;

  for (const double rate : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto cbytes =
        static_cast<std::uint64_t>(static_cast<double>(raw) * rate / 32.0);
    const double ratio = static_cast<double>(raw) / static_cast<double>(cbytes);

    const double comp_kernel = sim.zfp_compress_kernel_gbps(rate);
    const double dec_kernel = sim.zfp_decompress_kernel_gbps(rate);
    const double comp_overall =
        static_cast<double>(raw) /
        sim.model_compression(raw, cbytes, comp_kernel).total() / 1e9;
    const double dec_overall =
        static_cast<double>(raw) /
        sim.model_decompression(raw, cbytes, dec_kernel).total() / 1e9;

    std::printf("%8.1f %8.2f | %12.1f %12.2f | %12.1f %12.2f\n", rate, ratio,
                comp_kernel, comp_overall, dec_kernel, dec_overall);
    xs.push_back(rate);
    ck.push_back(comp_kernel);
    co.push_back(comp_overall);
    dk.push_back(dec_kernel);
    dd.push_back(dec_overall);
  }
  plot.add_series({"compression kernel", xs, ck, "", false});
  plot.add_series({"compression overall", xs, co, "", true});
  plot.add_series({"decompression kernel", xs, dk, "", false});
  plot.add_series({"decompression overall", xs, dd, "", true});
  plot.set_log_y(true);
  plot.save(bench::out_dir() + "/fig10_throughput_vs_bitrate.svg");

  std::printf(
      "\nExpected shapes (paper Fig. 10): both kernel and overall throughput fall\n"
      "as bitrate rises (more bit planes to code, more compressed bytes to move);\n"
      "the overall curve is transfer-bound, so a higher compression ratio (lower\n"
      "bitrate) directly buys higher end-to-end throughput — the guideline's\n"
      "justification for picking the highest acceptable ratio.\n");
  std::printf("artifacts: %s/fig10_throughput_vs_bitrate.svg\n", bench::out_dir().c_str());
  return 0;
}
