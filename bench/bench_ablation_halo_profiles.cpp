/// \file bench_ablation_halo_profiles.cpp
/// \brief Extension beyond the paper's Fig. 6: halo *internal structure*
/// under compression. Halo counts (the paper's metric) can survive bounds
/// that already distort the stacked radial density profile — the quantity
/// halo-concentration studies (paper ref [16]) actually consume. This
/// ablation measures where profile fidelity degrades relative to count
/// fidelity.
#include <cstdio>

#include "analysis/halo_profiles.hpp"
#include "analysis/halo_stats.hpp"
#include "bench_util.hpp"
#include "sz/sz.hpp"

using namespace cosmo;

int main() {
  bench::banner("Ablation: halo profiles",
                "stacked radial profiles under position compression");

  const io::Container hacc = bench::make_hacc();
  const auto& x = hacc.find("x").field;
  const auto& y = hacc.find("y").field;
  const auto& z = hacc.find("z").field;

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 50;
  const auto halos = analysis::fof(x.data, y.data, z.data, fof_params);
  const auto reference = analysis::stacked_profile(x.data, y.data, z.data, halos);
  std::printf("halos stacked: %zu; reference concentration proxy %.3f\n\n",
              halos.halos.size(), analysis::concentration_proxy(reference));

  std::printf("%-10s %10s %14s %16s %16s\n", "abs bound", "ratio", "count dev",
              "profile dev", "concentration");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (const double bound : {0.001, 0.005, 0.025, 0.1, 0.5}) {
    sz::Params params;
    params.abs_error_bound = bound;
    sz::Stats sx, sy, sz_;
    const auto rx = sz::decompress(sz::compress(x.data, x.dims, params, &sx));
    const auto ry = sz::decompress(sz::compress(y.data, y.dims, params, &sy));
    const auto rz = sz::decompress(sz::compress(z.data, z.dims, params, &sz_));
    const double ratio = 3.0 * static_cast<double>(x.bytes()) /
                         static_cast<double>(sx.compressed_bytes + sy.compressed_bytes +
                                             sz_.compressed_bytes);

    const auto recon_halos = analysis::fof(rx, ry, rz, fof_params);
    double count_dev = 1.0;
    if (!recon_halos.halos.empty()) {
      count_dev = analysis::compare_halo_catalogs(halos.halos, recon_halos.halos, 1.0)
                      .max_ratio_deviation;
    }
    // Profile on the reconstructed positions with the reconstructed catalog.
    const auto recon_profile = analysis::stacked_profile(rx, ry, rz, recon_halos);
    const double profile_dev = analysis::profile_deviation(reference, recon_profile, 100);
    std::printf("%-10g %10.2f %14.3f %16.3f %16.3f\n", bound, ratio, count_dev,
                profile_dev, analysis::concentration_proxy(recon_profile));
  }

  std::printf(
      "\nExpected shape: count deviation stays ~0 across these bounds (Fig. 6's\n"
      "finding), while profile deviation grows as the bound approaches the halo\n"
      "core scale — internal structure degrades before counts do, so profile-\n"
      "sensitive analyses need tighter bounds than halo-count analyses.\n");
  return 0;
}
