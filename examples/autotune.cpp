/// \file autotune.cpp
/// \brief The Section V-D optimization guideline end-to-end: benchmark a
/// candidate configuration grid with CBench, filter by the domain metrics
/// (power-spectrum ratio within 1 +/- 1%), and pick the acceptable
/// configuration with the highest compression ratio per field.
///
/// Usage: autotune [--dim 64] [--compressor gpu-sz|cuzfp] [--tolerance 0.01]
#include <cstdio>

#include "common/cli.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/optimizer.hpp"
#include "foresight/sweep.hpp"

using namespace cosmo;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  NyxConfig nyx;
  nyx.dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const std::string codec_name = args.get("compressor", "gpu-sz");
  const double tolerance = args.get_double("tolerance", 0.01);

  std::printf("Guideline run: %s on synthetic Nyx %zu^3, pk tolerance 1+/-%.0f%%\n\n",
              codec_name.c_str(), nyx.dim, tolerance * 100.0);
  const io::Container data = generate_nyx(nyx);

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const auto codec = foresight::make_compressor(codec_name, &sim);

  // Candidate grids per field, mirroring the paper's sweeps: absolute error
  // bounds scaled to each field's value range for GPU-SZ (Fig. 5b), fixed
  // bitrates for cuZFP (Fig. 5a) — built with the shared sweep API.
  std::map<std::string, std::vector<foresight::CompressorConfig>> candidates;
  for (const auto& variable : data.variables) {
    candidates[variable.field.name] =
        foresight::default_grid_candidates(codec_name, variable.field);
  }

  const auto result =
      foresight::optimize_grid_dataset(data, *codec, candidates, tolerance, 0.5);
  std::printf("%s", foresight::format_optimization(result).c_str());

  std::printf(
      "\nGuideline recap (paper Section V-D): among configurations whose power\n"
      "spectrum stays within the band, the highest compression ratio also gives\n"
      "the highest overall throughput and the lowest storage cost.\n");
  return result.all_fields_ok ? 0 : 1;
}
