/// \file quickstart.cpp
/// \brief Five-minute tour of the library: generate a synthetic Nyx field,
/// compress it with GPU-SZ and cuZFP (on a simulated Tesla V100), and print
/// ratio / distortion / throughput — the paper's four metric families in
/// one screen.
///
/// Usage: quickstart [--dim 64] [--gpu "Tesla V100"]
#include <cstdio>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"

using namespace cosmo;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const std::string gpu_name = args.get("gpu", "Tesla V100");

  std::printf("== Quickstart: GPU lossy compression for cosmology ==\n\n");

  // 1. Synthetic Nyx snapshot (stands in for the 512^3 LBNL dataset).
  NyxConfig nyx;
  nyx.dim = dim;
  std::printf("Generating synthetic Nyx snapshot (%zu^3, 6 fields)...\n", dim);
  const io::Container dataset = generate_nyx(nyx);
  std::printf("  payload: %s\n\n", human_bytes(dataset.payload_bytes()).c_str());

  // 2. A simulated GPU from the paper's Table I.
  gpu::GpuSimulator sim(gpu::find_device(gpu_name));
  std::printf("Simulated device: %s (%.0f GB/s memory bandwidth)\n\n",
              sim.spec().name.c_str(), sim.spec().memory_bw_gbps);

  // 3. Run both GPU compressors through CBench. Each compressor opens a
  // codec session (the staged compress/decompress API); CBench fills the
  // metric rows from the staged results.
  foresight::CBench bench({.keep_reconstructed = false, .dataset_name = "nyx"});
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &sim);
  const auto cuzfp = foresight::make_compressor("cuzfp", &sim);
  const auto sz_session = gpu_sz->open_session();
  const auto zfp_session = cuzfp->open_session();

  std::vector<foresight::CBenchResult> results;
  const Field& rho = dataset.find("baryon_density").field;
  const Field& vx = dataset.find("velocity_x").field;
  results.push_back(bench.run_session(rho, gpu_sz->name(), *sz_session, {"abs", 0.2}));
  results.push_back(bench.run_session(rho, cuzfp->name(), *zfp_session, {"rate", 4.0}));
  results.push_back(bench.run_session(vx, gpu_sz->name(), *sz_session, {"pw_rel", 0.01}));
  results.push_back(bench.run_session(vx, cuzfp->name(), *zfp_session, {"rate", 4.0}));

  std::printf("%s\n", foresight::format_results(results).c_str());

  // 4. GPU time breakdown for one run (Fig. 7's four components).
  const auto& r = results[1];
  std::printf("cuZFP compression breakdown on %s (rate=4):\n", rho.name.c_str());
  std::printf("  init   %8.3f ms\n", r.gpu_compress().init * 1e3);
  std::printf("  kernel %8.3f ms\n", r.gpu_compress().kernel * 1e3);
  std::printf("  memcpy %8.3f ms (compressed stream, D2H over PCIe 3.0 x16)\n",
              r.gpu_compress().memcpy * 1e3);
  std::printf("  free   %8.3f ms\n", r.gpu_compress().free * 1e3);
  std::printf("  total  %8.3f ms  vs  %.3f ms to move the raw field uncompressed\n",
              r.gpu_compress().total() * 1e3,
              sim.baseline_transfer_seconds(rho.bytes()) * 1e3);
  if (rho.bytes() < 64u << 20) {
    std::printf(
        "  (note: at this demo size fixed launch/alloc overheads dominate; at the\n"
        "   paper's 512^3 fields compression beats the raw transfer — see\n"
        "   bench_fig7_breakdown)\n");
  }
  return 0;
}
