/// \file temporal_archive.cpp
/// \brief Snapshot-archive scenario: the choice the paper's introduction
/// frames — decimate the time series, or compress it with error bounds.
///
/// Generates a temporally coherent density sequence, then compares three
/// archive strategies at a user-chosen error bound:
///   1. decimation + linear interpolation (the status quo the paper
///      criticizes),
///   2. per-snapshot spatial SZ,
///   3. temporal (adjacent-snapshot) SZ — the related-work direction [41].
///
/// Usage: temporal_archive [--dim 48] [--steps 10] [--bound-frac 1e-3]
#include <cstdio>

#include "analysis/decimation.hpp"
#include "analysis/stats.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "cosmo/nyx_sequence.hpp"
#include "sz/temporal.hpp"

using namespace cosmo;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  NyxSequenceConfig config;
  config.base.dim = static_cast<std::size_t>(args.get_int("dim", 48));
  config.steps = static_cast<std::size_t>(args.get_int("steps", 10));
  config.rotation_per_step = 0.1;
  const double bound_frac = args.get_double("bound-frac", 1e-3);

  std::printf("Generating %zu coherent snapshots at %zu^3...\n", config.steps,
              config.base.dim);
  const auto frames = generate_nyx_density_sequence(config);
  const double raw_bytes =
      static_cast<double>(frames.size()) * static_cast<double>(frames[0].bytes());
  const auto [lo, hi] = value_range(frames[0].view());
  const double bound = (static_cast<double>(hi) - lo) * bound_frac;
  std::printf("raw archive: %s; abs error bound %.4g (%.0e of range)\n\n",
              human_bytes(static_cast<std::uint64_t>(raw_bytes)).c_str(), bound,
              bound_frac);

  std::printf("%-32s %10s %12s %16s\n", "strategy", "ratio", "mean PSNR",
              "per-point bound");
  std::printf("%s\n", std::string(75, '-').c_str());

  // 1. Decimation at the factor whose storage matches spatial SZ (~5x).
  for (const std::size_t keep : {2u, 4u}) {
    const auto d = analysis::decimate_and_reconstruct(frames, keep);
    std::printf("%-32s %10.2f %12.2f %16s\n",
                strprintf("decimation keep-1-in-%zu", keep).c_str(), d.storage_ratio,
                analysis::sequence_mean_psnr(frames, d.reconstructed), "none");
  }

  // 2. Spatial SZ per snapshot.
  sz::TemporalParams spatial;
  spatial.abs_error_bound = bound;
  spatial.key_interval = 1;
  sz::TemporalStats spatial_stats;
  const auto spatial_bytes = sz::compress_temporal(frames, spatial, &spatial_stats);
  std::printf("%-32s %10.2f %12.2f %16s\n", "SZ spatial (every frame keyed)",
              raw_bytes / static_cast<double>(spatial_stats.compressed_bytes),
              analysis::sequence_mean_psnr(frames, sz::decompress_temporal(spatial_bytes)),
              "guaranteed");

  // 3. Temporal SZ (one key frame, previous-snapshot prediction).
  sz::TemporalParams temporal = spatial;
  temporal.key_interval = 0;
  sz::TemporalStats temporal_stats;
  const auto temporal_bytes = sz::compress_temporal(frames, temporal, &temporal_stats);
  std::printf("%-32s %10.2f %12.2f %16s\n", "SZ temporal (adjacent-snapshot)",
              raw_bytes / static_cast<double>(temporal_stats.compressed_bytes),
              analysis::sequence_mean_psnr(frames,
                                           sz::decompress_temporal(temporal_bytes)),
              "guaranteed");

  std::printf(
      "\nTakeaway (paper Section I): error-bounded compression archives the *whole*\n"
      "series with a per-point guarantee at a ratio decimation can only reach by\n"
      "throwing snapshots away — and temporal prediction roughly doubles it again\n"
      "on fine-cadence output.\n");
  return 0;
}
