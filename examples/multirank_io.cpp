/// \file multirank_io.cpp
/// \brief HACC-style multi-rank in-situ compression scenario.
///
/// The paper's I/O motivation (Section I): a trillion-particle HACC run
/// writes 220 TB per snapshot over many ranks, and in-situ compression must
/// keep up. This example rebuilds that pipeline at laptop scale on the
/// in-process MPI substrate: the snapshot is domain-decomposed over an
/// rx x ry x rz rank grid (the dataset's own layout was 8x8x4), every rank
/// compresses its slab's particles with SZ, and rank 0 aggregates ratio /
/// error / modeled-I/O statistics with collectives.
///
/// Usage: multirank_io [--ranks 8] [--particles 120000] [--bound 0.005]
#include <cmath>
#include <cstdio>
#include <cstring>

#include "analysis/stats.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "cosmo/hacc_synth.hpp"
#include "mpi/comm.hpp"
#include "mpi/domain.hpp"
#include "sz/sz.hpp"

using namespace cosmo;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const std::size_t particles = static_cast<std::size_t>(args.get_int("particles", 120000));
  const double bound = args.get_double("bound", 0.005);

  // Rank grid: factor `ranks` as evenly as possible into rx x ry x rz.
  mpi::DomainDecomposition domain;
  domain.rx = ranks >= 8 ? 2 : 1;
  domain.ry = ranks >= 4 ? 2 : 1;
  domain.rz = static_cast<std::size_t>(ranks) / (domain.rx * domain.ry);
  require(domain.rank_count() == static_cast<std::size_t>(ranks),
          "multirank_io: --ranks must be 1, 2, 4 or a multiple of 4");

  HaccConfig config;
  config.particles = particles;
  config.halo_count = std::max<std::size_t>(30, particles / 2000);
  std::printf("Generating %zu particles; decomposing over %zux%zux%zu ranks...\n",
              particles, domain.rx, domain.ry, domain.rz);
  const io::Container snapshot = generate_hacc(config);
  const auto& x = snapshot.find("x").field.data;
  const auto& y = snapshot.find("y").field.data;
  const auto& z = snapshot.find("z").field.data;
  const auto parts = mpi::partition_particles(domain, x, y, z);

  std::printf("%-6s %10s %12s %10s %12s\n", "rank", "particles", "compressed",
              "ratio", "max err");
  std::printf("%s\n", std::string(56, '-').c_str());

  mpi::run_world(ranks, [&](mpi::Comm& comm) {
    const auto& mine = parts[static_cast<std::size_t>(comm.rank())];

    // Gather this rank's slab particles (x coordinate; y/z identical cost).
    std::vector<float> local(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) local[i] = x[mine[i]];

    double local_ratio = 0.0;
    double local_max_err = 0.0;
    std::size_t local_compressed = 0;
    if (!local.empty()) {
      sz::Params params;
      params.abs_error_bound = bound;
      const auto bytes = sz::compress(local, Dims::d1(local.size()), params);
      const auto recon = sz::decompress(bytes);
      local_compressed = bytes.size();
      local_ratio = static_cast<double>(local.size() * 4) /
                    static_cast<double>(bytes.size());
      for (std::size_t i = 0; i < local.size(); ++i) {
        local_max_err = std::max(
            local_max_err, std::fabs(static_cast<double>(recon[i]) - local[i]));
      }
    }

    // Per-rank report lines are serialized through rank 0 via gather.
    const std::string line = strprintf("%-6d %10zu %12zu %10.2f %12.4g", comm.rank(),
                                       mine.size(), local_compressed, local_ratio,
                                       local_max_err);
    mpi::Message msg(line.begin(), line.end());
    const auto all = comm.gather(0, std::move(msg));
    if (comm.rank() == 0) {
      for (const auto& m : all) {
        std::printf("%s\n", std::string(m.begin(), m.end()).c_str());
      }
    }

    // Aggregate statistics with collectives (the numbers a real in-situ
    // pipeline would feed to its I/O scheduler).
    const double total_raw = comm.allreduce_sum(static_cast<double>(mine.size() * 4));
    const double total_compressed =
        comm.allreduce_sum(static_cast<double>(local_compressed));
    const double worst_err = comm.allreduce_max(local_max_err);
    comm.barrier();
    if (comm.rank() == 0) {
      std::printf("%s\n", std::string(56, '-').c_str());
      std::printf("aggregate ratio %.2fx, worst-rank max error %.4g (bound %.4g)\n",
                  total_raw / total_compressed, worst_err, bound);
      // Paper-scale projection: 220 TB snapshot over 500 GB/s storage.
      const double snapshot_tb = 220.0;
      const double bw_gbps = 500.0;
      const double ratio = total_raw / total_compressed;
      std::printf(
          "at HACC scale: a %.0f TB snapshot writes in %.1f min raw vs %.1f min "
          "compressed at %.0f GB/s sustained\n",
          snapshot_tb, snapshot_tb * 1e3 / bw_gbps / 60.0,
          snapshot_tb * 1e3 / ratio / bw_gbps / 60.0, bw_gbps);
    }
  });
  return 0;
}
