/// \file nyx_pipeline.cpp
/// \brief The full Foresight pipeline, JSON-configured, exactly as the paper
/// describes its framework (Section IV-A): "By only configuring a simple
/// JSON file, Foresight can automatically evaluate diverse compression
/// configurations and provide user-desired analysis and visualization."
///
/// Runs CBench sweeps over both GPU compressors, a PAT-scheduled
/// power-spectrum analysis, and emits a Cinema database (data.csv +
/// SVG plots + index.html).
///
/// Usage: nyx_pipeline [--config my.json] [--out out/nyx_demo] [--dim 64]
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "foresight/pipeline.hpp"

using namespace cosmo;

namespace {

/// The default pipeline config, written next to the outputs for reference.
std::string default_config(const std::string& out_dir, long dim) {
  return strprintf(R"({
  "output": "%s",
  "dataset": {"type": "nyx", "dim": %ld, "seed": 42},
  "gpu": "Tesla V100",
  "runs": [
    {"compressor": "gpu-sz",
     "configs": [{"mode": "abs", "value": 0.2}, {"mode": "abs", "value": 1.0}]},
    {"compressor": "cuzfp",
     "configs": [{"mode": "rate", "value": 2}, {"mode": "rate", "value": 4},
                  {"mode": "rate", "value": 8}]}
  ],
  "analysis": {"power_spectrum": true},
  "cinema": true
})",
                   out_dir.c_str(), dim);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "out/nyx_demo");
  const long dim = args.get_int("dim", 64);

  json::Value config;
  if (args.has("config")) {
    config = json::parse_file(args.get("config", ""));
    std::printf("Loaded pipeline config from %s\n", args.get("config", "").c_str());
  } else {
    config = json::parse(default_config(out_dir, dim));
    std::printf("Using the built-in demo config (override with --config).\n");
  }

  const foresight::PipelineSummary summary = foresight::run_pipeline(config);

  std::printf("\nworkflow %s; %zu CBench results\n",
              summary.workflow_ok ? "succeeded" : "had failures",
              summary.results.size());
  std::printf("%s\n", foresight::format_results(summary.results).c_str());

  if (!summary.pk_deviation.empty()) {
    std::printf("power-spectrum deviations (max |pk ratio - 1|, k <= k_nyq/2):\n");
    for (const auto& [key, dev] : summary.pk_deviation) {
      std::printf("  %-55s %.5f %s\n", key.c_str(), dev,
                  dev <= 0.01 ? "within 1%" : "OUTSIDE 1% band");
    }
  }

  // Persist the config used, for reproducibility.
  {
    std::ofstream cfg(summary.output_dir + "/config_used.json");
    cfg << config.dump(2) << "\n";
  }
  std::printf("\nCinema database and plots written under %s/\n",
              summary.output_dir.c_str());
  return summary.workflow_ok ? 0 : 1;
}
