/// \file hacc_halos.cpp
/// \brief HACC particle scenario: generate a synthetic particle snapshot,
/// compress positions with GPU-SZ at several absolute error bounds, and
/// compare the Friends-of-Friends halo catalogs of original vs
/// reconstructed data (the paper's Fig. 6 analysis, Metric 3a).
///
/// Usage: hacc_halos [--particles 200000] [--halos 150] [--bounds 0.001,0.005,0.025,0.25]
#include <cstdio>

#include "analysis/fof.hpp"
#include "analysis/halo_stats.hpp"
#include "common/cli.hpp"
#include "common/str.hpp"
#include "cosmo/hacc_synth.hpp"
#include "foresight/cbench.hpp"

using namespace cosmo;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  HaccConfig config;
  config.particles = static_cast<std::size_t>(args.get_int("particles", 200000));
  config.halo_count = static_cast<std::size_t>(args.get_int("halos", 150));

  std::printf("Generating synthetic HACC snapshot: %zu particles, ~%zu halos...\n",
              config.particles, config.halo_count);
  const io::Container data = generate_hacc(config);

  analysis::FofParams fof_params;
  fof_params.linking_length = 1.0;
  fof_params.min_members = 20;
  const auto& x = data.find("x").field;
  const auto& y = data.find("y").field;
  const auto& z = data.find("z").field;
  const auto original = analysis::fof(x.data, y.data, z.data, fof_params);
  std::printf("FoF on original data: %zu halos (linking length %.2f)\n\n",
              original.halos.size(), fof_params.linking_length);

  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  const auto gpu_sz = foresight::make_compressor("gpu-sz", &sim);
  foresight::CBench bench({.keep_reconstructed = true, .dataset_name = "hacc"});

  std::vector<double> bounds;
  for (const auto& tok : split(args.get("bounds", "0.001,0.005,0.025,0.25"), ',')) {
    bounds.push_back(std::strtod(tok.c_str(), nullptr));
  }

  std::printf("%-10s %8s %10s %12s %14s %s\n", "abs bound", "ratio", "halos",
              "count ratio", "max bin dev", "verdict");
  std::printf("%s\n", std::string(75, '-').c_str());
  const auto session = gpu_sz->open_session();  // buffers reused per bound
  for (const double bound : bounds) {
    const foresight::CompressorConfig cfg{"abs", bound};
    const auto rx = bench.run_session(x, gpu_sz->name(), *session, cfg);
    const auto ry = bench.run_session(y, gpu_sz->name(), *session, cfg);
    const auto rz = bench.run_session(z, gpu_sz->name(), *session, cfg);
    const auto recon =
        analysis::fof(rx.reconstructed, ry.reconstructed, rz.reconstructed, fof_params);
    const double ratio = 3.0 * static_cast<double>(x.bytes()) /
                         static_cast<double>(rx.compressed_bytes + ry.compressed_bytes +
                                             rz.compressed_bytes);
    if (recon.halos.empty()) {
      std::printf("%-10g %8.2f %10zu %12s %14s %s\n", bound, ratio, recon.halos.size(),
                  "-", "-", "halo structure destroyed");
      continue;
    }
    const auto cmp = analysis::compare_halo_catalogs(original.halos, recon.halos, 1.0);
    std::printf("%-10g %8.2f %10zu %12.3f %14.3f %s\n", bound, ratio,
                recon.halos.size(), cmp.total_ratio, cmp.max_ratio_deviation,
                cmp.max_ratio_deviation <= 0.05 ? "halos preserved"
                                                : "small halos degraded");
  }

  std::printf(
      "\nExpected shape (paper Fig. 6): tight bounds keep every count ratio near 1;\n"
      "bounds approaching the linking length break small halos first.\n");
  return 0;
}
