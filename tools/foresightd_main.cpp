/// \file foresightd_main.cpp
/// \brief The foresightd binary: serve compression jobs over a Unix socket
/// and, optionally, a TCP listener sharing the same pipeline.
///
/// Usage:
///   foresightd --socket /tmp/foresightd.sock [--workers N]
///              [--tcp-port PORT] [--tcp-host 127.0.0.1]
///              [--tcp-port-file PATH]
///              [--queue-capacity N] [--quota N] [--priorities N]
///              [--default-deadline SECONDS] [--drain-budget SECONDS]
///              [--transfer-idle SECONDS] [--transfer-budget BYTES]
///              [--stream-threshold BYTES] [--dataset-cache BYTES]
///              [--gpu "Tesla V100"] [--metrics-out metrics.json]
///              [--config config.json]
///
/// --tcp-port 0 binds an ephemeral port; --tcp-port-file writes the bound
/// port as a single decimal line once listening (for scripts that need to
/// discover it).
///
/// --config points at a JSON file whose optional "faults" object installs a
/// deterministic fault plan for the daemon's lifetime (same schema as the
/// pipeline config; see pipeline.hpp).
///
/// SIGTERM and SIGINT start a graceful drain: the listen socket closes, new
/// jobs are rejected with "draining", admitted jobs finish (or are
/// cancelled when --drain-budget expires), metrics are flushed, and the
/// process exits 0.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "foresight/pipeline.hpp"
#include "foresightd/daemon.hpp"
#include "json/json.hpp"

namespace {

std::atomic<int> g_signal_fd{-1};

void on_signal(int) {
  // Async-signal-safe shutdown: one byte into the daemon's wake pipe.
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cosmo;
  const CliArgs args(argc, argv);
  foresightd::DaemonOptions options;
  options.socket_path = args.get("socket", "");
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "foresightd: --socket PATH is required\n");
    return 2;
  }
  options.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  options.tcp_port = static_cast<int>(args.get_int("tcp-port", -1));
  options.tcp_host = args.get("tcp-host", "127.0.0.1");
  options.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  options.per_client_quota = static_cast<std::size_t>(args.get_int("quota", 0));
  options.priorities = static_cast<int>(args.get_int("priorities", 3));
  options.default_deadline_seconds = args.get_double("default-deadline", 0.0);
  options.drain_budget_seconds = args.get_double("drain-budget", 5.0);
  options.transfer_idle_seconds = args.get_double("transfer-idle", 30.0);
  const auto transfer_budget = args.get_int("transfer-budget", 0);
  if (transfer_budget > 0) {
    options.transfer_limits.budget_bytes = static_cast<std::uint64_t>(transfer_budget);
  }
  options.response_stream_threshold =
      static_cast<std::uint64_t>(args.get_int("stream-threshold", 0));
  const auto cache_bytes = args.get_int("dataset-cache", 0);
  if (cache_bytes > 0) {
    options.dataset_cache_bytes = static_cast<std::uint64_t>(cache_bytes);
  }
  options.gpu = args.get("gpu", "Tesla V100");
  options.metrics_out = args.get("metrics-out", "");

  try {
    const std::string config_path = args.get("config", "");
    if (!config_path.empty()) {
      options.faults = foresight::parse_faults(json::parse_file(config_path));
    }

    foresightd::Daemon daemon(options);
    daemon.start();
    g_signal_fd.store(daemon.signal_fd(), std::memory_order_relaxed);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    if (daemon.bound_tcp_port() >= 0) {
      std::fprintf(stderr,
                   "foresightd: listening on %s + tcp:%s:%d (%zu workers, capacity %zu)\n",
                   options.socket_path.c_str(), options.tcp_host.c_str(),
                   daemon.bound_tcp_port(), options.workers, options.queue_capacity);
      const std::string port_file = args.get("tcp-port-file", "");
      if (!port_file.empty()) {
        if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
          std::fprintf(f, "%d\n", daemon.bound_tcp_port());
          std::fclose(f);
        }
      }
    } else {
      std::fprintf(stderr, "foresightd: listening on %s (%zu workers, capacity %zu)\n",
                   options.socket_path.c_str(), options.workers, options.queue_capacity);
    }
    daemon.wait();

    const auto s = daemon.stats();
    std::fprintf(stderr,
                 "foresightd: drained. admitted=%llu ok=%llu failed=%llu cancelled=%llu "
                 "deadline=%llu rejected=%llu protocol_errors=%llu queue_high_water=%zu "
                 "transfers=%llu transfers_reaped=%llu\n",
                 static_cast<unsigned long long>(s.admitted),
                 static_cast<unsigned long long>(s.ok),
                 static_cast<unsigned long long>(s.failed),
                 static_cast<unsigned long long>(s.cancelled),
                 static_cast<unsigned long long>(s.deadline),
                 static_cast<unsigned long long>(s.rejected),
                 static_cast<unsigned long long>(s.protocol_errors), s.queue_high_water,
                 static_cast<unsigned long long>(s.transfers_completed),
                 static_cast<unsigned long long>(s.transfers_reaped));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "foresightd: %s\n", e.what());
    return 1;
  }
}
