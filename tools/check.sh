#!/usr/bin/env bash
# Repo health check: fails if build artifacts are tracked, then does a fresh
# out-of-tree build with -Wall -Wextra and runs the full test suite.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-check"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cd "${repo_root}"

# 1. No build-tree files may be tracked by git.
tracked_build="$(git ls-files -- 'build/' 'build-*/' 'bench_out/' 'foresight_out/')"
if [[ -n "${tracked_build}" ]]; then
  echo "error: build/output files are tracked by git:" >&2
  echo "${tracked_build}" | head -20 >&2
  exit 1
fi

# 2. Fresh out-of-tree configure + build with warnings on.
rm -rf "${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "${build_dir}" -j "${jobs}"

# 3. Full test suite.
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "check.sh: OK (build dir: ${build_dir})"
