#!/usr/bin/env bash
# Repo health check: fails if build artifacts are tracked, then does a fresh
# out-of-tree build with -Wall -Wextra and runs the full test suite.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
#        tools/check.sh --tsan [build-dir]
#        tools/check.sh --asan [build-dir]
#        tools/check.sh --ubsan [build-dir]
#        tools/check.sh --fuzz-smoke [build-dir]
#        tools/check.sh --bench-smoke [build-dir]
#        tools/check.sh --trace-smoke [build-dir]
#        tools/check.sh --optimizer-smoke [build-dir]
#        tools/check.sh --daemon-smoke [build-dir]
#
# --tsan builds with ThreadSanitizer (-fsanitize=thread) and runs the tests
# that exercise the parallel kernels (thread pool, sweep scheduler, and the
# per-kernel determinism suite). Slower than the plain run; use it whenever
# parallel_for call sites or shared-state code change.
#
# --asan builds with AddressSanitizer + UBSan and runs the codec test
# surface (bitstream, Huffman, LZSS/RLE, ZFP, and the malformed-stream
# fast-path suite). This is what backs the "truncated/corrupted streams
# never read out of bounds" contract; run it whenever codec hot paths or
# stream parsing change.
#
# --ubsan builds with UndefinedBehaviorSanitizer alone (no ASan shadow
# memory, so it composes with workloads too large for the ASan run) and
# runs the full test suite. Use it to flush signed-overflow, misaligned
# access, and invalid-shift bugs across every component.
#
# --fuzz-smoke builds the fuzz_smoke tool under ASan+UBSan and throws
# seeded corruption (500 cases per decode surface) at every codec and the
# container loader. This is the executable form of the failure-containment
# contract: corrupted streams decode or throw cosmo::Error, never crash.
#
# --bench-smoke builds Release and runs the single-thread kernel
# microbenchmarks against the committed BENCH_kernels.json, failing if any
# kernel regresses by more than 30% or if any kernel's output_crc32 differs
# from the committed value (byte-identity gate for the encode fast paths).
# Use it to catch accidental slowdowns or stream-format drift in the codec
# hot paths.
#
# --trace-smoke builds Release, runs a tiny pipeline with --trace-out and
# --metrics-out, then validates the Chrome trace with `foresight_cli
# trace-check` (well-formed events, consistent span nesting, the expected
# codec stages present) and asserts the metrics export recorded work. It
# also runs `bench_report --trace-overhead`, which fails if disabled
# tracing costs the codec hot paths more than 1%.
#
# --optimizer-smoke builds Release and runs `bench_report --optimizer` at
# small sizes: the Section V-D search runs exhaustively and guided on
# seeded Nyx + HACC snapshots, and the tool exits non-zero when a guided
# choice is unacceptable or more than 2% worse CR than the exhaustive
# winner, or when the Nyx guided search spends more than 1/3 of the
# exhaustive full evaluations or less than a 3x wall-clock win.
#
# --daemon-smoke builds foresightd + daemon_stress (Release) and runs the
# service-daemon acceptance scenario at full size: the in-process stress
# (1000+ jobs, 4 clients, mixed codecs, seeded faults — exactly-once
# statuses, byte-identical streams, budgeted drain, and the chunked
# streaming phase that round-trips a 192³ = 28 MiB field — past the 16 MiB
# frame cap — over AF_UNIX and TCP loopback), then the real binary under
# external load twice: once over TCP loopback to completion, and once over
# AF_UNIX with a mid-run SIGTERM, requiring a clean exit 0 with metrics
# flushed. Run it whenever foresightd, the wire protocol, or the
# admission/cancel primitives change.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

mode="plain"
case "${1:-}" in
  --tsan) mode="tsan"; shift ;;
  --asan) mode="asan"; shift ;;
  --ubsan) mode="ubsan"; shift ;;
  --fuzz-smoke) mode="fuzz"; shift ;;
  --bench-smoke) mode="bench"; shift ;;
  --trace-smoke) mode="trace"; shift ;;
  --optimizer-smoke) mode="optimizer"; shift ;;
  --daemon-smoke) mode="daemon"; shift ;;
esac

default_dir="build-check"
case "${mode}" in
  tsan) default_dir="build-tsan" ;;
  asan) default_dir="build-asan" ;;
  ubsan) default_dir="build-ubsan" ;;
  fuzz) default_dir="build-fuzz-smoke" ;;
  bench) default_dir="build-bench-smoke" ;;
  trace) default_dir="build-trace-smoke" ;;
  optimizer) default_dir="build-optimizer-smoke" ;;
  daemon) default_dir="build-daemon-smoke" ;;
esac
build_dir="${1:-"${repo_root}/${default_dir}"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cd "${repo_root}"

# 1. No build-tree files may be tracked by git.
tracked_build="$(git ls-files -- 'build/' 'build-*/' 'bench_out/' 'foresight_out/')"
if [[ -n "${tracked_build}" ]]; then
  echo "error: build/output files are tracked by git:" >&2
  echo "${tracked_build}" | head -20 >&2
  exit 1
fi

# 2. Fresh out-of-tree configure + build with warnings on.
rm -rf "${build_dir}"
case "${mode}" in
  tsan)
    # RelWithDebInfo keeps symbols so TSan reports point at source lines.
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Wall -Wextra -fsanitize=thread -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    ;;
  asan|fuzz)
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Wall -Wextra -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    ;;
  ubsan)
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Wall -Wextra -fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all"
    ;;
  *)
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_FLAGS="-Wall -Wextra"
    ;;
esac
if [[ "${mode}" == "bench" || "${mode}" == "optimizer" ]]; then
  cmake --build "${build_dir}" --target bench_report -j "${jobs}"
elif [[ "${mode}" == "trace" ]]; then
  cmake --build "${build_dir}" --target foresight_cli bench_report -j "${jobs}"
elif [[ "${mode}" == "fuzz" ]]; then
  cmake --build "${build_dir}" --target fuzz_smoke -j "${jobs}"
elif [[ "${mode}" == "daemon" ]]; then
  cmake --build "${build_dir}" --target foresightd daemon_stress -j "${jobs}"
else
  cmake --build "${build_dir}" -j "${jobs}"
fi

# 3. Tests.
case "${mode}" in
  tsan)
    # The parallel surface: pool/parallel_for internals, the sweep scheduler,
    # and every threaded kernel via the cross-thread-count determinism suite.
    TSAN_OPTIONS="halt_on_error=1" "${build_dir}/tests/cosmo_tests" \
      --gtest_filter='ThreadPool*:*Sweep*:*Parallel*:ParallelDeterminism.*:FftTwiddleCache.*:Foresightd*'
    ;;
  asan)
    # The codec surface: bitstream I/O, entropy/dictionary coders, ZFP block
    # transforms, and the malformed-stream suite (truncated/corrupted inputs
    # must throw, never touch out-of-bounds memory).
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      "${build_dir}/tests/cosmo_tests" \
      --gtest_filter='BitStream.*:Huffman.*:Rle.*:Lzss.*:CodecFastPaths.*:Zfp*.*:Sz.*:Robustness.*'
    ;;
  ubsan)
    # Full suite: UBSan alone is cheap enough to run everything.
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
    ;;
  fuzz)
    # Seeded corruption across every decode surface, under ASan+UBSan.
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      "${build_dir}/tools/fuzz_smoke" --cases 500
    ;;
  bench)
    # Regression gate against the committed kernel rates. 30% leaves
    # headroom for machine-to-machine noise while still catching real
    # fast-path regressions.
    # --check-crc is the deterministic half of the gate: every kernel's
    # output_crc32 must match the committed BENCH_kernels.json byte for
    # byte, so a stream-format change can never slip through as "noise".
    "${build_dir}/tools/bench_report" --kernels --edge 256 --repeats 3 \
      --out "${build_dir}/BENCH_kernels_smoke.json" \
      --baseline "${repo_root}/BENCH_kernels.json" --max-regress 0.30 \
      --check-crc "${repo_root}/BENCH_kernels.json"
    ;;
  optimizer)
    # Guided-vs-exhaustive gate at smoke sizes: the guided search must land
    # on an acceptable config within 2% CR of the exhaustive winner while
    # spending a third of the evaluations (and a 3x wall win on Nyx).
    "${build_dir}/tools/bench_report" --optimizer --dim 32 --particles 12000 \
      --out "${build_dir}/BENCH_optimizer_smoke.json"
    ;;
  daemon)
    # Full-size acceptance stress, in-process: 1000 jobs from 4 pipelining
    # clients over the whole codec roster with seeded faults, plus the
    # streaming phase (28 MiB chunked round-trip over AF_UNIX + TCP,
    # byte-identical to the single-shot reference). The harness exits
    # non-zero on any duplicate/missing status, any stream that differs
    # from its single-shot reference, or a drain contract breach.
    "${build_dir}/tools/daemon_stress" --jobs 1000 --clients 4

    # Real binary with both listeners up: AF_UNIX socket + an ephemeral
    # TCP loopback port written to a file once bound.
    sock="${build_dir}/foresightd-smoke.sock"
    metrics="${build_dir}/foresightd-smoke-metrics.json"
    portfile="${build_dir}/foresightd-smoke.port"
    rm -f "${portfile}"
    "${build_dir}/tools/foresightd" --socket "${sock}" --workers 2 \
      --queue-capacity 32 --tcp-port 0 --tcp-port-file "${portfile}" \
      --metrics-out "${metrics}" &
    daemon_pid=$!
    for _ in $(seq 1 50); do [[ -S "${sock}" && -s "${portfile}" ]] && break; sleep 0.1; done
    if [[ ! -S "${sock}" || ! -s "${portfile}" ]]; then
      echo "error: foresightd did not bind ${sock} + tcp port" >&2
      exit 1
    fi

    # TCP-loopback variant: the same external load generator, fan-in over
    # TCP, run to completion against the live daemon (no signals). Both
    # transports share one IO/admission/worker pipeline, so the same
    # exactly-once and byte-identity gates apply.
    if ! "${build_dir}/tools/daemon_stress" \
        --socket "tcp:127.0.0.1:$(cat "${portfile}")" --jobs 400 --clients 2; then
      echo "error: TCP-loopback daemon_stress reported a protocol violation" >&2
      exit 1
    fi

    # Real-binary drain: load the daemon over AF_UNIX, SIGTERM it mid-run,
    # and require a clean exit 0 with final metrics flushed.
    "${build_dir}/tools/daemon_stress" --socket "${sock}" --jobs 4000 --clients 2 &
    load_pid=$!
    sleep 1
    kill -TERM "${daemon_pid}"
    if ! wait "${daemon_pid}"; then
      echo "error: foresightd exited non-zero after SIGTERM" >&2
      exit 1
    fi
    # The daemon hanging up on the load generator mid-run is expected; the
    # generator still fails on duplicate statuses, which is what we gate on.
    if ! wait "${load_pid}"; then
      echo "error: external daemon_stress reported a protocol violation" >&2
      exit 1
    fi
    if [[ ! -s "${metrics}" ]]; then
      echo "error: foresightd did not flush metrics to ${metrics}" >&2
      exit 1
    fi
    ;;
  trace)
    # The registry roster must list every built-in codec, fz included.
    codecs_out="$("${build_dir}/tools/foresight_cli" codecs)"
    for codec in gpu-sz cuzfp sz-cpu zfp-cpu zfp-omp fz-cpu fz-gpu; do
      if ! grep -q "^${codec} " <<< "${codecs_out}"; then
        echo "error: codec '${codec}' missing from 'foresight_cli codecs'" >&2
        exit 1
      fi
    done
    # Tiny GPU + CPU sweep with telemetry on, then validate the exports.
    smoke_out="${build_dir}/trace-smoke"
    cat > "${build_dir}/trace_smoke.json" <<SMOKE
{
  "output": "${smoke_out}",
  "dataset": {"type": "nyx", "dim": 32, "seed": 42},
  "runs": [
    {"compressor": "cuzfp", "fields": ["baryon_density"],
     "configs": [{"mode": "rate", "value": 4}]},
    {"compressor": "sz-cpu", "fields": ["temperature"],
     "configs": [{"mode": "abs", "value": 0.1}]},
    {"compressor": "fz-cpu", "fields": ["temperature"],
     "configs": [{"mode": "abs", "value": 0.1}]}
  ],
  "jobs": 2
}
SMOKE
    "${build_dir}/tools/foresight_cli" run "${build_dir}/trace_smoke.json" \
      --trace-out trace.json --metrics-out metrics.json
    check_out="$("${build_dir}/tools/foresight_cli" trace-check "${smoke_out}/trace.json")"
    echo "${check_out}"
    # The stages the telemetry contract names must all appear in the trace.
    for span in session.open cbench.job cuzfp.compress cuzfp.decompress \
                gpu.device.compress sz.lorenzo_quantize zfp.block_scan.encode \
                fz-cpu.compress fz.compress; do
      if ! grep -q "${span}" <<< "${check_out}"; then
        echo "error: span '${span}' missing from trace" >&2
        exit 1
      fi
    done
    # The metrics export must have recorded the sweep's work.
    if ! grep -q '"cbench.jobs": 3' "${smoke_out}/metrics.json"; then
      echo "error: metrics.json did not record the 3 sweep jobs" >&2
      exit 1
    fi
    # Disabled tracing must stay under the 1% overhead contract.
    "${build_dir}/tools/bench_report" --trace-overhead --edge 64 --repeats 2 \
      --out "${build_dir}/BENCH_trace_overhead_smoke.json"
    ;;
  *)
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
    ;;
esac

echo "check.sh: OK (build dir: ${build_dir}, mode: ${mode})"
