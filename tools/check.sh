#!/usr/bin/env bash
# Repo health check: fails if build artifacts are tracked, then does a fresh
# out-of-tree build with -Wall -Wextra and runs the full test suite.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
#        tools/check.sh --tsan [build-dir]
#
# --tsan builds with ThreadSanitizer (-fsanitize=thread) and runs the tests
# that exercise the parallel kernels (thread pool, sweep scheduler, and the
# per-kernel determinism suite). Slower than the plain run; use it whenever
# parallel_for call sites or shared-state code change.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

tsan=0
if [[ "${1:-}" == "--tsan" ]]; then
  tsan=1
  shift
fi

default_dir="build-check"
if [[ "${tsan}" == 1 ]]; then default_dir="build-tsan"; fi
build_dir="${1:-"${repo_root}/${default_dir}"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cd "${repo_root}"

# 1. No build-tree files may be tracked by git.
tracked_build="$(git ls-files -- 'build/' 'build-*/' 'bench_out/' 'foresight_out/')"
if [[ -n "${tracked_build}" ]]; then
  echo "error: build/output files are tracked by git:" >&2
  echo "${tracked_build}" | head -20 >&2
  exit 1
fi

# 2. Fresh out-of-tree configure + build with warnings on.
rm -rf "${build_dir}"
if [[ "${tsan}" == 1 ]]; then
  # RelWithDebInfo keeps symbols so TSan reports point at source lines.
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
else
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra"
fi
cmake --build "${build_dir}" -j "${jobs}"

# 3. Tests.
if [[ "${tsan}" == 1 ]]; then
  # The parallel surface: pool/parallel_for internals, the sweep scheduler,
  # and every threaded kernel via the cross-thread-count determinism suite.
  TSAN_OPTIONS="halt_on_error=1" "${build_dir}/tests/cosmo_tests" \
    --gtest_filter='ThreadPool*:*Sweep*:*Parallel*:ParallelDeterminism.*:FftTwiddleCache.*'
else
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
fi

echo "check.sh: OK (build dir: ${build_dir}, tsan: ${tsan})"
