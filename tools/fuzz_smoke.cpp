/// \file fuzz_smoke.cpp
/// \brief Seeded corruption fuzzing over every decode surface.
///
/// For each codec (SZ, SZ-pw_rel, ZFP, ZFP-chunked, Huffman, LZSS, RLE,
/// FPC, FZ plus its bitshuffle / zero-run stage decoders) and the
/// container loader, this tool encodes a clean stream once,
/// then decodes N seeded mutations of it. The containment contract: every
/// case either decodes or throws a cosmo::Error. Anything else — a crash,
/// a sanitizer report (run under check.sh --fuzz-smoke), std::bad_alloc
/// from an unbounded header-driven allocation, or a hang (ctest timeout) —
/// fails the run.
///
/// Usage: fuzz_smoke [--cases N] [--seed S] [--tmp DIR]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "codec/fpc.hpp"
#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "codec/rle.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresightd/protocol.hpp"
#include "fz/fz.hpp"
#include "io/container.hpp"
#include "io/crc32.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/chunked.hpp"
#include "zfp/zfp.hpp"

using namespace cosmo;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// One decode surface: a clean stream plus the decoder under test.
struct Surface {
  std::string name;
  std::vector<std::uint8_t> clean;
  std::function<void(const std::vector<std::uint8_t>&)> decode;
};

/// Applies one seeded mutation. Reuses the three FaultPlan corruption kinds
/// and adds a fourth, harsher one: overwrite a run with random bytes.
void mutate(std::vector<std::uint8_t>& bytes, std::uint64_t& rng) {
  if (bytes.empty()) return;
  const std::uint64_t kind = splitmix64(rng) % 4;
  const std::size_t offset = splitmix64(rng) % bytes.size();
  switch (kind) {
    case 0: {  // up to 8 scattered bit flips
      const std::size_t flips = 1 + splitmix64(rng) % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        fault::FaultPlan::apply(bytes, fault::Corruption::kBitFlip,
                                splitmix64(rng) % bytes.size(), splitmix64(rng));
      }
      break;
    }
    case 1:
      fault::FaultPlan::apply(bytes, fault::Corruption::kTruncate, offset, 0);
      break;
    case 2:
      fault::FaultPlan::apply(bytes, fault::Corruption::kZeroRun, offset,
                              1 + splitmix64(rng) % 256);
      break;
    default: {  // random-byte run
      const std::size_t len =
          std::min<std::size_t>(1 + splitmix64(rng) % 64, bytes.size() - offset);
      for (std::size_t i = 0; i < len; ++i) {
        bytes[offset + i] = static_cast<std::uint8_t>(splitmix64(rng));
      }
      break;
    }
  }
}

int run_surface(const Surface& surface, std::size_t cases, std::uint64_t seed) {
  std::uint64_t rng = seed;
  std::size_t decoded = 0, rejected = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    std::vector<std::uint8_t> bytes = surface.clean;
    mutate(bytes, rng);
    try {
      surface.decode(bytes);
      ++decoded;
    } catch (const Error&) {
      ++rejected;  // the contained outcome for malformed input
    }
    // Any other exception type escapes and fails the tool: the decode
    // surfaces promise cosmo::Error for malformed streams, nothing else.
  }
  std::printf("%-14s %6zu cases: %6zu decoded, %6zu rejected\n", surface.name.c_str(),
              cases, decoded, rejected);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t cases = static_cast<std::size_t>(args.get_int("cases", 500));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 20260805));
  const char* env_tmp = std::getenv("TMPDIR");
  const std::string tmp_dir = args.get("tmp", env_tmp != nullptr ? env_tmp : "/tmp");

  // Source data: one synthetic cosmology field (3-D) drives every codec.
  NyxConfig nyx_config;
  nyx_config.dim = 16;
  const io::Container dataset = generate_nyx(nyx_config);
  const Field& field = dataset.find("baryon_density").field;

  // Symbol / byte views for the entropy and dictionary coders.
  std::vector<std::uint32_t> symbols(field.data.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i] = static_cast<std::uint32_t>(i * 2654435761u % 1024u);
  }
  std::vector<std::uint8_t> raw_bytes(field.data.size());
  for (std::size_t i = 0; i < raw_bytes.size(); ++i) {
    raw_bytes[i] = static_cast<std::uint8_t>(static_cast<std::uint32_t>(field.data[i] * 255.f));
  }

  sz::Params sz_params;
  sz_params.abs_error_bound = 0.1;
  sz::PwRelParams pw_params;
  pw_params.pw_rel_bound = 0.05;
  zfp::Params zfp_params;
  zfp_params.mode = zfp::Mode::kFixedRate;
  zfp_params.rate = 8.0;

  // Container surface: the clean stream is a saved file; decoding writes
  // the mutated bytes back out and runs the loader.
  NyxConfig small_config;
  small_config.dim = 8;
  const io::Container small = generate_nyx(small_config);
  const std::string container_path = tmp_dir + "/fuzz_smoke_container.gio";
  io::save(small, container_path, io::Dialect::kGenericIo);
  std::vector<std::uint8_t> container_bytes;
  {
    std::ifstream in(container_path, std::ios::binary);
    container_bytes.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
  }

  std::vector<Surface> surfaces;
  surfaces.push_back({"sz", sz::compress(field.data, field.dims, sz_params),
                      [](const std::vector<std::uint8_t>& b) { (void)sz::decompress(b); }});
  surfaces.push_back(
      {"sz-pwrel", sz::compress_pwrel(field.data, field.dims, pw_params),
       [](const std::vector<std::uint8_t>& b) { (void)sz::decompress_pwrel(b); }});
  surfaces.push_back({"zfp", zfp::compress(field.data, field.dims, zfp_params),
                      [](const std::vector<std::uint8_t>& b) { (void)zfp::decompress(b); }});
  surfaces.push_back(
      {"zfp-chunked", zfp::compress_chunked(field.data, field.dims, zfp_params, nullptr, 4),
       [](const std::vector<std::uint8_t>& b) { (void)zfp::decompress_chunked(b, nullptr); }});
  surfaces.push_back(
      {"huffman", huffman_encode(symbols),
       [](const std::vector<std::uint8_t>& b) { (void)huffman_decode(b); }});
  surfaces.push_back(
      {"huffman-chunk", huffman_encode_chunked(symbols, nullptr, 1 << 10),
       [](const std::vector<std::uint8_t>& b) { (void)huffman_decode(b); }});
  surfaces.push_back({"lzss", lzss_encode(raw_bytes), [](const std::vector<std::uint8_t>& b) {
                        (void)lzss_decode(b);
                      }});
  surfaces.push_back(
      {"lzss-chunked", lzss_encode_chunked(raw_bytes, nullptr),
       [](const std::vector<std::uint8_t>& b) { (void)lzss_decode_chunked(b, nullptr); }});
  surfaces.push_back({"rle", rle_encode(raw_bytes), [](const std::vector<std::uint8_t>& b) {
                        (void)rle_decode(b);
                      }});
  surfaces.push_back({"fpc", fpc_encode(field.data), [](const std::vector<std::uint8_t>& b) {
                        (void)fpc_decode(b);
                      }});
  fz::Params fz_params;
  fz_params.abs_error_bound = 0.1;
  surfaces.push_back({"fz", fz::compress(field.data, field.dims, fz_params),
                      [](const std::vector<std::uint8_t>& b) { (void)fz::decompress(b); }});
  // The FZ stage decoders get their own surfaces: corrupted plane buffers
  // and sparsifier streams must reject cleanly too, not just full streams.
  std::vector<std::uint16_t> fz_codes(symbols.size());
  for (std::size_t i = 0; i < fz_codes.size(); ++i) {
    fz_codes[i] = static_cast<std::uint16_t>(symbols[i]);
  }
  surfaces.push_back({"fz-bitshuffle", fz::bitshuffle(fz_codes),
                      [n = fz_codes.size()](const std::vector<std::uint8_t>& b) {
                        (void)fz::bitunshuffle(b, n);
                      }});
  surfaces.push_back({"fz-zero-run", fz::zero_run_encode(raw_bytes),
                      [](const std::vector<std::uint8_t>& b) { (void)fz::zero_run_decode(b); }});
  // foresightd wire protocol: framing, the request schema, and base64.
  // Mutations routinely hit the 4-byte length prefix, so hostile declared
  // lengths (0, > 16 MiB, truncated headers) are exercised constantly; the
  // contract is a clean FormatError before any payload allocation.
  foresightd::JobRequest wire_request;
  wire_request.type = foresightd::RequestType::kRoundtrip;
  wire_request.id = 7;
  wire_request.codec = "sz-cpu";
  wire_request.mode = "abs";
  wire_request.value = 0.1;
  wire_request.field = "baryon_density";
  {
    json::Object spec;
    spec["type"] = "nyx";
    spec["dim"] = 16;
    spec["seed"] = 42;
    wire_request.dataset = json::Value(std::move(spec));
  }
  const json::Value wire_json = wire_request.to_json();
  surfaces.push_back({"fsd-frame", foresightd::encode_frame(wire_json),
                      [](const std::vector<std::uint8_t>& b) {
                        foresightd::FrameParser parser;
                        parser.feed(b.data(), b.size());
                        while (parser.next()) {
                        }
                      }});
  // Same surface fed in small chunks: incremental header validation must
  // behave identically to one-shot feeding.
  surfaces.push_back({"fsd-frame-inc", foresightd::encode_frame(wire_json),
                      [](const std::vector<std::uint8_t>& b) {
                        foresightd::FrameParser parser;
                        for (std::size_t i = 0; i < b.size(); i += 3) {
                          parser.feed(b.data() + i, std::min<std::size_t>(3, b.size() - i));
                          while (parser.next()) {
                          }
                        }
                      }});
  const std::string wire_text = wire_json.dump();
  surfaces.push_back(
      {"fsd-request", std::vector<std::uint8_t>(wire_text.begin(), wire_text.end()),
       [](const std::vector<std::uint8_t>& b) {
         const std::string text(b.begin(), b.end());
         (void)foresightd::JobRequest::parse(json::parse(text));
       }});
  const std::string b64_text = foresightd::base64_encode(raw_bytes);
  surfaces.push_back(
      {"fsd-base64", std::vector<std::uint8_t>(b64_text.begin(), b64_text.end()),
       [](const std::vector<std::uint8_t>& b) {
         (void)foresightd::base64_decode(std::string(b.begin(), b.end()));
       }});
  // Chunked-transfer reassembly, single message: mutations of one
  // chunk_data JSON hit the seq, crc32, payload and transfer-id fields.
  // Malformed messages must throw FormatError from parse; well-formed but
  // wrong ones (bad seq, crc mismatch, overrun) must come back as failure
  // acks from the table — never a crash.
  foresightd::ChunkMessage chunk_msg;
  chunk_msg.type = foresightd::ChunkType::kData;
  chunk_msg.transfer = "fuzz";
  chunk_msg.seq = 0;
  chunk_msg.payload = raw_bytes;
  chunk_msg.crc32 = crc32(raw_bytes.data(), raw_bytes.size());
  const std::string chunk_text = chunk_msg.to_json().dump();
  surfaces.push_back(
      {"fsd-chunk", std::vector<std::uint8_t>(chunk_text.begin(), chunk_text.end()),
       [&raw_bytes](const std::vector<std::uint8_t>& b) {
         foresightd::TransferTable table{foresightd::TransferLimits{}};
         foresightd::ChunkMessage begin;
         begin.type = foresightd::ChunkType::kBegin;
         begin.transfer = "fuzz";
         begin.total_bytes = raw_bytes.size();
         (void)table.apply(begin);
         const std::string text(b.begin(), b.end());
         (void)table.apply(foresightd::ChunkMessage::parse(json::parse(text)));
       }});
  // Interleaved transfers on one table: two woven uploads, so mutations
  // produce truncated transfers, duplicate begins, declared-size
  // mismatches, crc mismatches and cross-transfer sequence errors.
  std::vector<std::uint8_t> woven;
  {
    const auto add_frame = [&woven](const foresightd::ChunkMessage& m) {
      const std::vector<std::uint8_t> f = foresightd::encode_frame(m.to_json());
      woven.insert(woven.end(), f.begin(), f.end());
    };
    const std::size_t half = raw_bytes.size() / 2;
    for (const char* id : {"a", "b"}) {
      foresightd::ChunkMessage begin;
      begin.type = foresightd::ChunkType::kBegin;
      begin.transfer = id;
      begin.total_bytes = raw_bytes.size();
      add_frame(begin);
    }
    for (std::size_t part = 0; part < 2; ++part) {
      for (const char* id : {"a", "b"}) {
        foresightd::ChunkMessage data;
        data.type = foresightd::ChunkType::kData;
        data.transfer = id;
        data.seq = part;
        const std::size_t from = part == 0 ? 0 : half;
        const std::size_t to = part == 0 ? half : raw_bytes.size();
        data.payload.assign(raw_bytes.begin() + static_cast<std::ptrdiff_t>(from),
                            raw_bytes.begin() + static_cast<std::ptrdiff_t>(to));
        data.crc32 = crc32(data.payload.data(), data.payload.size());
        add_frame(data);
      }
    }
    for (const char* id : {"a", "b"}) {
      foresightd::ChunkMessage end;
      end.type = foresightd::ChunkType::kEnd;
      end.transfer = id;
      end.crc32 = crc32(raw_bytes.data(), raw_bytes.size());
      end.has_crc32 = true;
      add_frame(end);
    }
  }
  surfaces.push_back({"fsd-chunk-interleaved", woven,
                      [](const std::vector<std::uint8_t>& b) {
                        foresightd::TransferTable table{foresightd::TransferLimits{}};
                        foresightd::FrameParser parser;
                        parser.feed(b.data(), b.size());
                        while (auto frame = parser.next()) {
                          if (!foresightd::ChunkMessage::is_chunk(*frame)) continue;
                          (void)table.apply(foresightd::ChunkMessage::parse(*frame));
                        }
                      }});
  surfaces.push_back({"container", container_bytes,
                      [&container_path](const std::vector<std::uint8_t>& b) {
                        std::ofstream out(container_path, std::ios::binary | std::ios::trunc);
                        out.write(reinterpret_cast<const char*>(b.data()),
                                  static_cast<std::streamsize>(b.size()));
                        out.close();
                        (void)io::load(container_path);
                      }});

  int rc = 0;
  for (std::size_t i = 0; i < surfaces.size(); ++i) {
    // Distinct seed per surface so corpora don't correlate across codecs.
    rc |= run_surface(surfaces[i], cases, seed + i * 0x9E3779B9ull);
  }
  std::remove(container_path.c_str());
  std::printf("fuzz_smoke: OK (%zu surfaces x %zu cases, seed %llu)\n", surfaces.size(),
              cases, static_cast<unsigned long long>(seed));
  return rc;
}
