/// \file daemon_stress.cpp
/// \brief foresightd stress harness: many clients, mixed codecs, injected
/// faults, zero cross-job interference.
///
/// In-process mode (default) runs the full acceptance scenario:
///
///  1. Computes single-shot reference streams (crc32 + size) for every
///     codec with no daemon and no fault plan active.
///  2. Starts a Daemon with seeded fault injection (stream corruption,
///     GPU transients, device OOM) and a bounded queue.
///  3. Spawns N client threads, each pipelining a windowed job mix over its
///     own connection: roundtrips across all seven codecs, sweep jobs,
///     already-expired-deadline jobs, enough in flight to overrun admission.
///  4. Asserts the robustness contract: every request gets exactly one
///     terminal status from {ok, failed, rejected, cancelled, deadline};
///     every response that reports a compressed stream matches the
///     single-shot reference byte-for-byte (crc32 + size) no matter what
///     faults hit neighboring jobs; expired deadlines report "deadline".
///  5. Drain phase: loads the workers with slow sweeps, requests shutdown,
///     verifies a post-drain submission is rejected with "draining", that
///     every in-flight job is still answered exactly once (the drain budget
///     cancelling stragglers), and that final metrics were flushed.
///
/// External mode (--socket PATH) drives an already-running foresightd with
/// the same windowed load and just reports statuses — check.sh uses it as
/// the load generator for the real-binary SIGTERM drain test, where the
/// daemon may hang up mid-run (remaining jobs are counted as unanswered,
/// not errors).
///
/// Usage: daemon_stress [--jobs N] [--clients N] [--window N] [--dim N]
///                      [--workers N] [--queue-capacity N] [--seed S]
///                      [--no-faults] [--socket PATH]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "foresight/compressor.hpp"
#include "foresight/pipeline.hpp"
#include "foresightd/client.hpp"
#include "foresightd/daemon.hpp"
#include "gpu/sim.hpp"
#include "io/crc32.hpp"
#include "json/json.hpp"

using namespace cosmo;

namespace {

struct CodecConfig {
  const char* codec;
  const char* mode;
  double value;
};

/// The full mixed roster: CPU, simulated-GPU and OpenMP-style codecs.
constexpr CodecConfig kRoster[] = {
    {"sz-cpu", "abs", 0.1},  {"zfp-cpu", "rate", 8},  {"fz-cpu", "abs", 0.1},
    {"cuzfp", "rate", 8},    {"gpu-sz", "abs", 0.1},  {"zfp-omp", "rate", 8},
    {"fz-gpu", "abs", 0.1},
};
constexpr std::size_t kRosterSize = sizeof(kRoster) / sizeof(kRoster[0]);

struct Reference {
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
};

struct Outcome {
  std::string status;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  bool has_crc = false;
  int responses = 0;
};

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

json::Value dataset_spec(std::size_t dim) {
  json::Object spec;
  spec["type"] = "nyx";
  spec["dim"] = dim;
  spec["seed"] = 42;
  return json::Value(spec);
}

/// Single-shot references, computed with no fault plan installed.
std::map<std::string, Reference> compute_references(const Field& field) {
  std::map<std::string, Reference> refs;
  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  for (const auto& entry : kRoster) {
    auto compressor = foresight::make_compressor(entry.codec, &sim);
    auto session = compressor->open_session();
    const foresight::CompressResult c =
        session->compress(field, {entry.mode, entry.value});
    refs[entry.codec] = {crc32(c.bytes.data(), c.bytes.size()), c.bytes.size()};
  }
  return refs;
}

/// One client's windowed pipelined run. Returns id -> outcome.
std::map<std::uint64_t, Outcome> run_client(const std::string& socket, std::size_t client,
                                            std::size_t jobs, std::size_t window,
                                            std::size_t dim, bool tolerate_eof) {
  std::map<std::uint64_t, Outcome> outcomes;
  foresightd::Client conn(socket);
  const json::Value dataset = dataset_spec(dim);

  std::size_t outstanding = 0;
  std::size_t sent = 0;
  bool eof = false;

  const auto receive_one = [&] {
    json::Value reply;
    try {
      reply = conn.recv();
    } catch (const Error&) {
      if (!tolerate_eof) throw;
      eof = true;
      return;
    }
    const std::uint64_t id = static_cast<std::uint64_t>(reply.get("id", 0.0));
    Outcome& out = outcomes[id];
    ++out.responses;
    out.status = reply.get("status", std::string("<none>"));
    if (reply.contains("crc32")) {
      out.has_crc = true;
      out.crc = static_cast<std::uint32_t>(reply.at("crc32").as_number());
      out.bytes = static_cast<std::size_t>(reply.get("compressed_bytes", 0.0));
    }
    --outstanding;
  };

  for (std::size_t i = 0; i < jobs && !eof; ++i) {
    foresightd::JobRequest request;
    request.id = client * 1000000 + i + 1;
    const CodecConfig& entry = kRoster[(client + i) % kRosterSize];
    request.codec = entry.codec;
    request.dataset = dataset;
    request.field = "baryon_density";
    request.priority = static_cast<int>(i % 3);
    if (i % 50 == 7) {
      // Already expired at admission: must come back as "deadline" (or
      // "rejected" if admission itself refused it), never "ok".
      request.type = foresightd::RequestType::kRoundtrip;
      request.mode = entry.mode;
      request.value = entry.value;
      request.deadline_seconds = 1e-9;
    } else if (i % 25 == 3) {
      request.type = foresightd::RequestType::kSweep;
      for (int k = 0; k < 3; ++k) request.configs.emplace_back(entry.mode, entry.value);
    } else {
      request.type = foresightd::RequestType::kRoundtrip;
      request.mode = entry.mode;
      request.value = entry.value;
    }
    try {
      conn.send(request.to_json());
    } catch (const Error&) {
      if (!tolerate_eof) throw;
      eof = true;
      break;
    }
    ++sent;
    ++outstanding;
    while (outstanding >= window && !eof) receive_one();
  }
  while (outstanding > 0 && !eof) receive_one();
  return outcomes;
}

/// Validates one client's outcomes against the references; returns status
/// counts into \p counts.
void validate(const std::map<std::uint64_t, Outcome>& outcomes,
              const std::map<std::string, Reference>& refs, std::size_t client,
              std::size_t dim, std::map<std::string, std::size_t>& counts) {
  (void)dim;
  for (const auto& [id, out] : outcomes) {
    expect(out.responses == 1, "job " + std::to_string(id) + " answered " +
                                   std::to_string(out.responses) + " times");
    const bool known = out.status == "ok" || out.status == "failed" ||
                       out.status == "rejected" || out.status == "cancelled" ||
                       out.status == "deadline";
    expect(known, "job " + std::to_string(id) + " has unknown status " + out.status);
    ++counts[out.status];

    const std::size_t i = id - client * 1000000 - 1;
    if (i % 50 == 7) {
      expect(out.status == "deadline" || out.status == "rejected",
             "expired-deadline job " + std::to_string(id) + " reported " + out.status);
    }
    if (out.has_crc) {
      const CodecConfig& entry = kRoster[(client + i) % kRosterSize];
      const Reference& ref = refs.at(entry.codec);
      expect(out.crc == ref.crc && out.bytes == ref.bytes,
             std::string("stream mismatch vs single-shot for ") + entry.codec +
                 " (job " + std::to_string(id) + ")");
    }
  }
}

int run_external(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 400));
  const std::size_t clients = std::max<std::size_t>(1, args.get_int("clients", 1));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window", 32));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 16));

  std::vector<std::map<std::uint64_t, Outcome>> per_client(clients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        per_client[c] =
            run_client(socket, c + 1, jobs / clients, window, dim, /*tolerate_eof=*/true);
      } catch (const Error&) {
        // Daemon already gone before this client connected: nothing answered.
      }
    });
  }
  for (auto& t : threads) t.join();

  std::map<std::string, std::size_t> counts;
  std::size_t answered = 0;
  for (const auto& outcomes : per_client) {
    for (const auto& [id, out] : outcomes) {
      if (out.responses == 0) continue;  // daemon hung up before answering
      expect(out.responses == 1, "job answered more than once");
      ++counts[out.status];
      ++answered;
    }
  }
  std::printf("daemon_stress(external): sent<=%zu answered=%zu", jobs, answered);
  for (const auto& [status, n] : counts) std::printf(" %s=%zu", status.c_str(), n);
  std::printf("\n");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    if (args.has("socket")) return run_external(args);

    const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 1000));
    const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
    const std::size_t window = static_cast<std::size_t>(args.get_int("window", 8));
    const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 16));
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 20260808));

    // --- Phase A: single-shot references (no faults active). ---
    const io::Container data = foresight::build_dataset(dataset_spec(dim));
    const Field& field = data.find("baryon_density").field;
    const auto refs = compute_references(field);

    // --- Phase B: the stressed daemon. ---
    foresightd::DaemonOptions options;
    options.socket_path =
        "/tmp/fsd_stress_" + std::to_string(::getpid()) + ".sock";
    options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
    options.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity", 28));
    options.priorities = 3;
    options.drain_budget_seconds = 0.05;
    options.metrics_out = options.socket_path + ".metrics.json";
    if (!args.has("no-faults")) {
      fault::Config faults;
      faults.seed = seed;
      faults.corrupt_probability = 0.15;
      faults.gpu_transient_every = 7;
      faults.gpu_oom_every = 19;
      options.faults = faults;
    }
    foresightd::Daemon daemon(options);
    daemon.start();

    const std::size_t per_client = jobs / clients;
    std::vector<std::thread> threads;
    std::vector<std::map<std::uint64_t, Outcome>> results(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        results[c] = run_client(options.socket_path, c + 1, per_client, window, dim,
                                /*tolerate_eof=*/false);
      });
    }
    for (auto& t : threads) t.join();

    std::map<std::string, std::size_t> counts;
    std::size_t total = 0;
    for (std::size_t c = 0; c < clients; ++c) {
      expect(results[c].size() == per_client,
             "client " + std::to_string(c + 1) + " is missing responses");
      total += results[c].size();
      validate(results[c], refs, c + 1, dim, counts);
    }
    expect(counts["ok"] > 0, "stress produced no ok jobs");
    if (options.faults) {
      expect(counts["failed"] > 0,
             "fault injection produced no contained failures (suspicious)");
    }

    // --- Phase C: graceful drain under load. ---
    // Slow sweeps (64 lattice points each) keep workers busy well past the
    // 50 ms drain budget, so cooperative cancellation must kick in. The
    // control connection carries only the slow jobs; a second connection
    // carries pings and the post-drain probe so frames never interleave.
    foresightd::Client control(options.socket_path);
    foresightd::Client prober(options.socket_path);
    const std::uint64_t admitted_before = daemon.stats().admitted;
    const std::size_t slow_jobs = 8;
    for (std::size_t i = 0; i < slow_jobs; ++i) {
      foresightd::JobRequest request;
      request.id = 9000000 + i;
      request.type = foresightd::RequestType::kSweep;
      request.codec = "sz-cpu";
      request.dataset = dataset_spec(32);
      request.field = "baryon_density";
      for (int k = 0; k < 64; ++k) request.configs.emplace_back("abs", 0.1);
      control.send(request.to_json());
    }
    // Shut down only once everything is admitted, so the drain really does
    // find in-flight work (otherwise this would race toward 8 "draining"
    // rejections and prove nothing about cancellation).
    while (daemon.stats().admitted < admitted_before + slow_jobs) {
      std::this_thread::yield();
    }
    daemon.request_shutdown();
    while (!prober.ping().get("draining", false)) {
      std::this_thread::yield();
    }
    foresightd::JobRequest late;
    late.id = 9999999;
    late.type = foresightd::RequestType::kRoundtrip;
    late.codec = "sz-cpu";
    late.mode = "abs";
    late.value = 0.1;
    late.dataset = dataset_spec(dim);
    late.field = "baryon_density";
    const json::Value refusal = prober.call(late.to_json());
    expect(refusal.get("status", std::string()) == "rejected" &&
               refusal.get("reason", std::string()) == "draining",
           "post-drain submission was not rejected with 'draining'");

    std::map<std::uint64_t, int> drain_answers;
    std::map<std::string, std::size_t> drain_counts;
    for (std::size_t i = 0; i < slow_jobs; ++i) {
      const json::Value reply = control.recv();
      ++drain_answers[static_cast<std::uint64_t>(reply.get("id", 0.0))];
      ++drain_counts[reply.get("status", std::string("<none>"))];
    }
    for (const auto& [id, n] : drain_answers) {
      expect(n == 1, "drain job " + std::to_string(id) + " answered " +
                         std::to_string(n) + " times");
    }
    expect(drain_counts["cancelled"] > 0,
           "drain budget expiry cancelled nothing despite slow jobs");

    daemon.wait();

    const auto s = daemon.stats();
    expect(s.admitted == s.ok + s.failed + s.cancelled + s.deadline,
           "admitted jobs do not partition into terminal statuses");
    std::FILE* metrics = std::fopen(options.metrics_out.c_str(), "rb");
    expect(metrics != nullptr, "final metrics were not flushed to " + options.metrics_out);
    if (metrics) std::fclose(metrics);
    std::remove(options.metrics_out.c_str());

    std::printf("daemon_stress: %zu jobs, %zu clients |", total, clients);
    for (const auto& [status, n] : counts) std::printf(" %s=%zu", status.c_str(), n);
    std::printf(" | drain:");
    for (const auto& [status, n] : drain_counts) std::printf(" %s=%zu", status.c_str(), n);
    std::printf(" | queue_high_water=%zu admitted=%llu\n", s.queue_high_water,
                static_cast<unsigned long long>(s.admitted));
    if (g_failures == 0) {
      std::printf("daemon_stress: OK\n");
      return 0;
    }
    std::fprintf(stderr, "daemon_stress: %d failures\n", g_failures);
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "daemon_stress: fatal: %s\n", e.what());
    return 1;
  }
}
