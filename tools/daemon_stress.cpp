/// \file daemon_stress.cpp
/// \brief foresightd stress harness: many clients, mixed codecs, injected
/// faults, zero cross-job interference.
///
/// In-process mode (default) runs the full acceptance scenario:
///
///  1. Computes single-shot reference streams (crc32 + size) for every
///     codec with no daemon and no fault plan active.
///  2. Starts a Daemon with seeded fault injection (stream corruption,
///     GPU transients, device OOM) and a bounded queue.
///  3. Spawns N client threads, each pipelining a windowed job mix over its
///     own connection: roundtrips across all seven codecs, sweep jobs,
///     already-expired-deadline jobs, enough in flight to overrun admission.
///  4. Asserts the robustness contract: every request gets exactly one
///     terminal status from {ok, failed, rejected, cancelled, deadline};
///     every response that reports a compressed stream matches the
///     single-shot reference byte-for-byte (crc32 + size) no matter what
///     faults hit neighboring jobs; expired deadlines report "deadline".
///  5. Drain phase: loads the workers with slow sweeps, requests shutdown,
///     verifies a post-drain submission is rejected with "draining", that
///     every in-flight job is still answered exactly once (the drain budget
///     cancelling stragglers), and that final metrics were flushed.
///
/// Streaming phase (in-process mode, before the fault phases): a clean
/// daemon with both AF_UNIX and TCP listeners round-trips a --stream-dim³
/// field — larger than the 16 MiB frame cap, so it rides the chunked
/// transfer family — over BOTH transports, asserting the compressed stream
/// is byte-identical to a single-shot in-process reference; plus v1/v2
/// response compatibility, unsupported-version rejection, mid-transfer
/// disconnect (reassembly budget must return to zero) and watchdog reaping
/// of abandoned transfers.
///
/// External mode (--socket ENDPOINT, unix path or tcp:HOST:PORT) drives an
/// already-running foresightd with the same windowed load and just reports
/// statuses — check.sh uses it as the load generator for the real-binary
/// SIGTERM drain test, where the daemon may hang up mid-run (remaining
/// jobs are counted as unanswered, not errors).
///
/// Usage: daemon_stress [--jobs N] [--clients N] [--window N] [--dim N]
///                      [--stream-dim N] [--workers N] [--queue-capacity N]
///                      [--seed S] [--no-faults] [--socket ENDPOINT]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "foresight/compressor.hpp"
#include "foresight/pipeline.hpp"
#include "foresightd/client.hpp"
#include "foresightd/daemon.hpp"
#include "gpu/sim.hpp"
#include "io/crc32.hpp"
#include "json/json.hpp"

using namespace cosmo;

namespace {

struct CodecConfig {
  const char* codec;
  const char* mode;
  double value;
};

/// The full mixed roster: CPU, simulated-GPU and OpenMP-style codecs.
constexpr CodecConfig kRoster[] = {
    {"sz-cpu", "abs", 0.1},  {"zfp-cpu", "rate", 8},  {"fz-cpu", "abs", 0.1},
    {"cuzfp", "rate", 8},    {"gpu-sz", "abs", 0.1},  {"zfp-omp", "rate", 8},
    {"fz-gpu", "abs", 0.1},
};
constexpr std::size_t kRosterSize = sizeof(kRoster) / sizeof(kRoster[0]);

struct Reference {
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
};

struct Outcome {
  std::string status;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  bool has_crc = false;
  int responses = 0;
};

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

json::Value dataset_spec(std::size_t dim) {
  json::Object spec;
  spec["type"] = "nyx";
  spec["dim"] = dim;
  spec["seed"] = 42;
  return json::Value(spec);
}

/// Single-shot references, computed with no fault plan installed.
std::map<std::string, Reference> compute_references(const Field& field) {
  std::map<std::string, Reference> refs;
  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  for (const auto& entry : kRoster) {
    auto compressor = foresight::make_compressor(entry.codec, &sim);
    auto session = compressor->open_session();
    const foresight::CompressResult c =
        session->compress(field, {entry.mode, entry.value});
    refs[entry.codec] = {crc32(c.bytes.data(), c.bytes.size()), c.bytes.size()};
  }
  return refs;
}

/// One client's windowed pipelined run. Returns id -> outcome.
std::map<std::uint64_t, Outcome> run_client(const std::string& socket, std::size_t client,
                                            std::size_t jobs, std::size_t window,
                                            std::size_t dim, bool tolerate_eof) {
  std::map<std::uint64_t, Outcome> outcomes;
  foresightd::Client conn(socket);
  const json::Value dataset = dataset_spec(dim);

  std::size_t outstanding = 0;
  std::size_t sent = 0;
  bool eof = false;

  const auto receive_one = [&] {
    foresightd::JobReply reply;
    try {
      reply = conn.recv_reply();
    } catch (const Error&) {
      if (!tolerate_eof) throw;
      eof = true;
      return;
    }
    Outcome& out = outcomes[reply.id];
    ++out.responses;
    out.status = reply.status.empty() ? "<none>" : reply.status;
    if (reply.raw.contains("crc32")) {
      out.has_crc = true;
      out.crc = static_cast<std::uint32_t>(reply.raw.at("crc32").as_number());
      out.bytes = static_cast<std::size_t>(reply.raw.get("compressed_bytes", 0.0));
    }
    --outstanding;
  };

  for (std::size_t i = 0; i < jobs && !eof; ++i) {
    const std::uint64_t id = client * 1000000 + i + 1;
    const CodecConfig& entry = kRoster[(client + i) % kRosterSize];
    foresightd::JobOptions job_options;
    job_options.priority = static_cast<int>(i % 3);
    foresightd::JobRequest request;
    if (i % 50 == 7) {
      // Already expired at admission: must come back as "deadline" (or
      // "rejected" if admission itself refused it), never "ok".
      foresightd::RoundtripRequest r;
      r.codec = entry.codec;
      r.mode = entry.mode;
      r.value = entry.value;
      r.dataset = dataset;
      r.field = "baryon_density";
      r.options = job_options;
      r.options.deadline_seconds = 1e-9;
      request = r.to_request(id);
    } else if (i % 25 == 3) {
      foresightd::SweepRequest s;
      s.codec = entry.codec;
      s.dataset = dataset;
      s.field = "baryon_density";
      for (int k = 0; k < 3; ++k) s.configs.emplace_back(entry.mode, entry.value);
      s.options = job_options;
      request = s.to_request(id);
    } else {
      foresightd::RoundtripRequest r;
      r.codec = entry.codec;
      r.mode = entry.mode;
      r.value = entry.value;
      r.dataset = dataset;
      r.field = "baryon_density";
      r.options = job_options;
      request = r.to_request(id);
    }
    try {
      conn.submit(request);
    } catch (const Error&) {
      if (!tolerate_eof) throw;
      eof = true;
      break;
    }
    ++sent;
    ++outstanding;
    while (outstanding >= window && !eof) receive_one();
  }
  while (outstanding > 0 && !eof) receive_one();
  return outcomes;
}

/// Validates one client's outcomes against the references; returns status
/// counts into \p counts.
void validate(const std::map<std::uint64_t, Outcome>& outcomes,
              const std::map<std::string, Reference>& refs, std::size_t client,
              std::size_t dim, std::map<std::string, std::size_t>& counts) {
  (void)dim;
  for (const auto& [id, out] : outcomes) {
    expect(out.responses == 1, "job " + std::to_string(id) + " answered " +
                                   std::to_string(out.responses) + " times");
    const bool known = out.status == "ok" || out.status == "failed" ||
                       out.status == "rejected" || out.status == "cancelled" ||
                       out.status == "deadline";
    expect(known, "job " + std::to_string(id) + " has unknown status " + out.status);
    ++counts[out.status];

    const std::size_t i = id - client * 1000000 - 1;
    if (i % 50 == 7) {
      expect(out.status == "deadline" || out.status == "rejected",
             "expired-deadline job " + std::to_string(id) + " reported " + out.status);
    }
    if (out.has_crc) {
      const CodecConfig& entry = kRoster[(client + i) % kRosterSize];
      const Reference& ref = refs.at(entry.codec);
      expect(out.crc == ref.crc && out.bytes == ref.bytes,
             std::string("stream mismatch vs single-shot for ") + entry.codec +
                 " (job " + std::to_string(id) + ")");
    }
  }
}

/// Polls \p cond every 5 ms until it holds or \p timeout_s elapses.
bool poll_until(double timeout_s, const std::function<bool()>& cond) {
  Timer timer;
  while (!cond()) {
    if (timer.seconds() > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

/// Deterministic synthetic field (xorshift-filled): cheap to build even at
/// 512^3, and the daemon never sees a dataset spec for it — only the
/// uploaded bytes — so this exercises the inline-dataset path for real.
Field make_stream_field(std::size_t dim) {
  Field field("baryon_density", Dims::d3(dim, dim, dim));
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (float& v : field.data) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = 1.0f + static_cast<float>(x & 0xffffu) / 65536.0f;
  }
  return field;
}

/// The streaming acceptance scenario (see the file doc): a clean daemon on
/// both transports, a field past the 16 MiB frame cap uploaded and
/// compressed byte-identically to the single-shot reference, v1/v2
/// response compatibility, version refusal, and reassembly-budget hygiene
/// under disconnect and idling. Failures are recorded through expect().
void run_stream_phase(std::size_t stream_dim) {
  const Field field = make_stream_field(stream_dim);
  const auto* field_bytes = reinterpret_cast<const std::uint8_t*>(field.data.data());
  const std::size_t field_len = field.bytes();
  std::printf("daemon_stress: stream phase, %zu^3 field (%.1f MiB raw)\n", stream_dim,
              static_cast<double>(field_len) / (1 << 20));

  // Single-shot reference with the same codec/config the streamed jobs use.
  gpu::GpuSimulator sim(gpu::find_device("Tesla V100"));
  auto compressor = foresight::make_compressor("zfp-cpu", &sim);
  auto session = compressor->open_session();
  const foresight::CompressResult ref = session->compress(field, {"rate", 8});
  const foresight::DecompressResult ref_values = session->decompress(ref);
  const std::uint32_t ref_values_crc =
      crc32(reinterpret_cast<const std::uint8_t*>(ref_values.values.data()),
            ref_values.values.size() * sizeof(float));

  foresightd::DaemonOptions options;
  options.socket_path = "/tmp/fsd_stream_" + std::to_string(::getpid()) + ".sock";
  options.workers = 2;
  options.tcp_port = 0;  // ephemeral port: both transports, one pipeline
  options.transfer_idle_seconds = 1.0;
  options.response_stream_threshold = 4096;  // stream even small v2 payloads
  foresightd::Daemon daemon(options);
  daemon.start();
  expect(daemon.bound_tcp_port() > 0, "daemon did not bind a TCP port");
  const std::string tcp_endpoint =
      "tcp:127.0.0.1:" + std::to_string(daemon.bound_tcp_port());

  std::uint64_t id = 0;
  std::map<std::string, std::vector<std::uint8_t>> streams;  // endpoint -> bytes
  for (const std::string& endpoint : {options.socket_path, tcp_endpoint}) {
    foresightd::Client client(endpoint);
    const foresightd::HelloReply hello = client.hello();
    expect(hello.proto_major == foresightd::kProtoMajor,
           "hello advertised proto major " + std::to_string(hello.proto_major));
    expect(hello.max_frame_bytes == foresightd::kMaxFrameBytes,
           "hello frame-cap mismatch (" + endpoint + ")");

    // Upload the raw field — deliberately larger than one frame can carry.
    const auto up = client.upload("field", field_bytes, field_len);
    expect(up.ok, "upload rejected (" + endpoint + "): " + up.reason);
    expect(up.received_bytes == field_len, "upload size mismatch (" + endpoint + ")");
    expect(up.crc32 == crc32(field_bytes, field_len),
           "upload crc mismatch (" + endpoint + ")");

    // Compress via the inline-dataset path; the oversized result must come
    // back as a server->client stream and match the reference exactly.
    foresightd::CompressRequest creq;
    creq.codec = "zfp-cpu";
    creq.mode = "rate";
    creq.value = 8;
    creq.dataset = foresightd::inline_dataset("field", field.dims);
    creq.field = "baryon_density";
    creq.return_bytes = true;
    const foresightd::JobReply reply = client.call_reply(creq.to_request(++id));
    expect(reply.ok(), "streamed compress failed (" + endpoint + "): status=" +
                           reply.status + " reason=" + reply.reason + " " + reply.error);
    expect(!reply.payload_transfer.empty(),
           "oversized payload was not streamed (" + endpoint + ")");
    expect(reply.payload == ref.bytes,
           "streamed payload is not byte-identical to the single-shot reference (" +
               endpoint + ")");
    streams[endpoint] = reply.payload;

    // Round the stream back through decompress-by-transfer.
    if (reply.payload.empty()) continue;  // already failed above; don't cascade
    const auto up2 = client.upload("stream", reply.payload);
    expect(up2.ok, "stream re-upload rejected (" + endpoint + "): " + up2.reason);
    foresightd::DecompressRequest dreq;
    dreq.codec = "zfp-cpu";
    dreq.payload_transfer = "stream";
    const foresightd::JobReply dec = client.call_reply(dreq.to_request(++id));
    expect(dec.ok(), "streamed decompress failed (" + endpoint + "): status=" +
                         dec.status + " reason=" + dec.reason);
    expect(static_cast<std::uint32_t>(dec.raw.get("values_crc32", 0.0)) == ref_values_crc,
           "decompressed values crc mismatch (" + endpoint + ")");
  }
  // Both matching the reference already implies this, but it is the
  // acceptance criterion, so assert it directly.
  expect(streams[options.socket_path] == streams[tcp_endpoint],
         "AF_UNIX and TCP returned different streams");

  {
    // v1 (no proto field) gets the payload inline when it fits one frame;
    // the same request at v2 rides the response stream (threshold 4 KiB).
    foresightd::Client compat(options.socket_path);
    foresightd::CompressRequest small;
    small.codec = "zfp-cpu";
    small.mode = "rate";
    small.value = 8;
    small.dataset = foresightd::nyx_dataset(32);
    small.field = "baryon_density";
    small.return_bytes = true;
    foresightd::JobRequest v1 = small.to_request(++id);
    v1.proto_major = 0;  // pre-versioning client: no proto field at all
    v1.proto_minor = 0;
    const auto v1_reply = foresightd::JobReply::parse(compat.call(v1.to_json()));
    expect(v1_reply.ok() && !v1_reply.payload.empty() && v1_reply.payload_transfer.empty(),
           "v1 client did not get an inline payload");
    const foresightd::JobReply v2_reply = compat.call_reply(small.to_request(++id));
    expect(v2_reply.ok() && !v2_reply.payload_transfer.empty(),
           "v2 client did not get a streamed payload past the threshold");
    expect(v1_reply.payload == v2_reply.payload,
           "v1 inline and v2 streamed payloads differ");

    // A future major version must be refused with a structured error.
    json::Value future = small.to_request(++id).to_json();
    future.as_object()["proto"] = "3.0";
    const auto refused = foresightd::JobReply::parse(compat.call(future));
    expect(refused.kind == foresightd::ReplyKind::kError &&
               refused.error_code == "unsupported_version",
           "proto 3.0 was not refused with unsupported_version");
  }

  {
    // Mid-transfer disconnect: the daemon must release the reassembly
    // budget when the connection dies, never leak it.
    {
      foresightd::Client dropper(options.socket_path);
      foresightd::ChunkMessage begin;
      begin.type = foresightd::ChunkType::kBegin;
      begin.transfer = "abandoned";
      begin.total_bytes = field_len;
      dropper.send(begin.to_json());
      foresightd::ChunkMessage data;
      data.type = foresightd::ChunkType::kData;
      data.transfer = "abandoned";
      data.seq = 0;
      data.payload.assign(field_bytes, field_bytes + (1 << 20));
      data.crc32 = crc32(data.payload.data(), data.payload.size());
      data.has_crc32 = true;
      dropper.send(data.to_json());
      expect(poll_until(5.0,
                        [&] { return daemon.stats().transfer_reserved_bytes > 0; }),
             "daemon never reserved budget for the abandoned transfer");
    }  // dropper hangs up here, mid-transfer
    expect(poll_until(5.0, [&] { return daemon.stats().transfer_reserved_bytes == 0; }),
           "mid-transfer disconnect leaked reassembly budget");
  }

  {
    // Watchdog reap: a half-finished transfer idling on a *live* connection
    // is reaped after transfer_idle_seconds and its budget released.
    foresightd::Client idler(options.socket_path);
    foresightd::ChunkMessage begin;
    begin.type = foresightd::ChunkType::kBegin;
    begin.transfer = "idle";
    begin.total_bytes = 1 << 20;
    idler.send(begin.to_json());
    const foresightd::JobReply ack = idler.recv_reply();
    expect(ack.kind == foresightd::ReplyKind::kChunkAck && ack.chunk_ok,
           "begin for the idle transfer was not acked");
    const std::uint64_t reaped_before = daemon.stats().transfers_reaped;
    expect(poll_until(10.0,
                      [&] {
                        const auto s = daemon.stats();
                        return s.transfers_reaped > reaped_before &&
                               s.transfer_reserved_bytes == 0;
                      }),
           "watchdog did not reap the idle transfer");

    // A job referencing the reaped transfer must be rejected, never hang.
    foresightd::CompressRequest ghost;
    ghost.codec = "zfp-cpu";
    ghost.mode = "rate";
    ghost.value = 8;
    ghost.dataset = foresightd::inline_dataset("idle", Dims::d3(64, 64, 64));
    ghost.field = "baryon_density";
    const foresightd::JobReply gr = idler.call_reply(ghost.to_request(++id));
    expect(gr.status == "rejected" && gr.reason == "transfer_missing",
           "job on a reaped transfer was not rejected with transfer_missing");
  }

  daemon.request_shutdown();
  daemon.wait();
  const auto s = daemon.stats();
  expect(s.admitted == s.ok + s.failed + s.cancelled + s.deadline,
         "stream phase: admitted jobs do not partition into terminal statuses");
  expect(s.transfer_reserved_bytes == 0,
         "stream phase ended with reserved transfer bytes");
  expect(s.transfers_completed >= 4, "expected at least four completed transfers");
  expect(s.dataset_cache.hits + s.dataset_cache.misses > 0,
         "dataset cache was never consulted");
  std::printf(
      "daemon_stress: stream phase ok (%zu-byte stream, unix+tcp byte-identical)\n",
      streams[tcp_endpoint].size());
}

int run_external(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 400));
  const std::size_t clients = std::max<std::size_t>(1, args.get_int("clients", 1));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window", 32));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 16));

  std::vector<std::map<std::uint64_t, Outcome>> per_client(clients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        per_client[c] =
            run_client(socket, c + 1, jobs / clients, window, dim, /*tolerate_eof=*/true);
      } catch (const Error&) {
        // Daemon already gone before this client connected: nothing answered.
      }
    });
  }
  for (auto& t : threads) t.join();

  std::map<std::string, std::size_t> counts;
  std::size_t answered = 0;
  for (const auto& outcomes : per_client) {
    for (const auto& [id, out] : outcomes) {
      if (out.responses == 0) continue;  // daemon hung up before answering
      expect(out.responses == 1, "job answered more than once");
      ++counts[out.status];
      ++answered;
    }
  }
  std::printf("daemon_stress(external): sent<=%zu answered=%zu", jobs, answered);
  for (const auto& [status, n] : counts) std::printf(" %s=%zu", status.c_str(), n);
  std::printf("\n");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    if (args.has("socket")) return run_external(args);

    const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 1000));
    const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
    const std::size_t window = static_cast<std::size_t>(args.get_int("window", 8));
    const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 16));
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 20260808));

    // --- Phase A: single-shot references (no faults active). ---
    const io::Container data = foresight::build_dataset(dataset_spec(dim));
    const Field& field = data.find("baryon_density").field;
    const auto refs = compute_references(field);

    // --- Streaming phase: chunked transfers over AF_UNIX + TCP, before
    // any fault plan is installed (streams must be byte-exact). ---
    const std::size_t stream_dim =
        static_cast<std::size_t>(args.get_int("stream-dim", 192));
    if (stream_dim > 0) run_stream_phase(stream_dim);

    // --- Phase B: the stressed daemon. ---
    foresightd::DaemonOptions options;
    options.socket_path =
        "/tmp/fsd_stress_" + std::to_string(::getpid()) + ".sock";
    options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
    options.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity", 28));
    options.priorities = 3;
    options.drain_budget_seconds = 0.05;
    options.metrics_out = options.socket_path + ".metrics.json";
    if (!args.has("no-faults")) {
      fault::Config faults;
      faults.seed = seed;
      faults.corrupt_probability = 0.15;
      faults.gpu_transient_every = 7;
      faults.gpu_oom_every = 19;
      options.faults = faults;
    }
    foresightd::Daemon daemon(options);
    daemon.start();

    const std::size_t per_client = jobs / clients;
    std::vector<std::thread> threads;
    std::vector<std::map<std::uint64_t, Outcome>> results(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        results[c] = run_client(options.socket_path, c + 1, per_client, window, dim,
                                /*tolerate_eof=*/false);
      });
    }
    for (auto& t : threads) t.join();

    std::map<std::string, std::size_t> counts;
    std::size_t total = 0;
    for (std::size_t c = 0; c < clients; ++c) {
      expect(results[c].size() == per_client,
             "client " + std::to_string(c + 1) + " is missing responses");
      total += results[c].size();
      validate(results[c], refs, c + 1, dim, counts);
    }
    expect(counts["ok"] > 0, "stress produced no ok jobs");
    if (options.faults && jobs >= 100) {  // tiny runs may dodge every fault
      expect(counts["failed"] > 0,
             "fault injection produced no contained failures (suspicious)");
    }

    // --- Phase C: graceful drain under load. ---
    // Slow sweeps (64 lattice points each) keep workers busy well past the
    // 50 ms drain budget, so cooperative cancellation must kick in. The
    // control connection carries only the slow jobs; a second connection
    // carries pings and the post-drain probe so frames never interleave.
    foresightd::Client control(options.socket_path);
    foresightd::Client prober(options.socket_path);
    const std::uint64_t admitted_before = daemon.stats().admitted;
    const std::size_t slow_jobs = 8;
    for (std::size_t i = 0; i < slow_jobs; ++i) {
      foresightd::SweepRequest slow;
      slow.codec = "sz-cpu";
      slow.dataset = dataset_spec(32);
      slow.field = "baryon_density";
      for (int k = 0; k < 64; ++k) slow.configs.emplace_back("abs", 0.1);
      control.submit(slow.to_request(9000000 + i));
    }
    // Shut down only once everything is admitted, so the drain really does
    // find in-flight work (otherwise this would race toward 8 "draining"
    // rejections and prove nothing about cancellation).
    while (daemon.stats().admitted < admitted_before + slow_jobs) {
      std::this_thread::yield();
    }
    daemon.request_shutdown();
    while (!prober.ping().get("draining", false)) {
      std::this_thread::yield();
    }
    foresightd::RoundtripRequest late;
    late.codec = "sz-cpu";
    late.mode = "abs";
    late.value = 0.1;
    late.dataset = dataset_spec(dim);
    late.field = "baryon_density";
    const foresightd::JobReply refusal = prober.call_reply(late.to_request(9999999));
    expect(refusal.status == "rejected" && refusal.reason == "draining",
           "post-drain submission was not rejected with 'draining'");

    std::map<std::uint64_t, int> drain_answers;
    std::map<std::string, std::size_t> drain_counts;
    for (std::size_t i = 0; i < slow_jobs; ++i) {
      const foresightd::JobReply reply = control.recv_reply();
      ++drain_answers[reply.id];
      ++drain_counts[reply.status.empty() ? "<none>" : reply.status];
    }
    for (const auto& [id, n] : drain_answers) {
      expect(n == 1, "drain job " + std::to_string(id) + " answered " +
                         std::to_string(n) + " times");
    }
    expect(drain_counts["cancelled"] > 0,
           "drain budget expiry cancelled nothing despite slow jobs");

    daemon.wait();

    const auto s = daemon.stats();
    expect(s.admitted == s.ok + s.failed + s.cancelled + s.deadline,
           "admitted jobs do not partition into terminal statuses");
    std::FILE* metrics = std::fopen(options.metrics_out.c_str(), "rb");
    expect(metrics != nullptr, "final metrics were not flushed to " + options.metrics_out);
    if (metrics) std::fclose(metrics);
    std::remove(options.metrics_out.c_str());

    std::printf("daemon_stress: %zu jobs, %zu clients |", total, clients);
    for (const auto& [status, n] : counts) std::printf(" %s=%zu", status.c_str(), n);
    std::printf(" | drain:");
    for (const auto& [status, n] : drain_counts) std::printf(" %s=%zu", status.c_str(), n);
    std::printf(" | queue_high_water=%zu admitted=%llu\n", s.queue_high_water,
                static_cast<unsigned long long>(s.admitted));
    if (g_failures == 0) {
      std::printf("daemon_stress: OK\n");
      return 0;
    }
    std::fprintf(stderr, "daemon_stress: %d failures\n", g_failures);
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "daemon_stress: fatal: %s\n", e.what());
    return 1;
  }
}
