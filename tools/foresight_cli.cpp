/// \file foresight_cli.cpp
/// \brief The `foresight` command-line tool: the paper's workflow ("By only
/// configuring a simple JSON file, Foresight can automatically evaluate
/// diverse compression configurations...") exposed as a shippable CLI.
///
/// Subcommands:
///   devices                         print Table I and the kernel model
///   codecs                          print the codec registry (capabilities)
///   generate --type nyx|hacc --out F [--dim N] [--particles N] [--seed S]
///   info <file>                     describe a container (Table II style)
///   compress --codec C --mode M --value V --input F [--field NAME] [--gpu G]
///   estimate --input F --field NAME --bound B [--stride N]
///   optimize --codec C [--input F | --type nyx|hacc] [--search guided] ...
///                                   Section V-D best-fit configuration search
///   run <config.json>               run the full JSON pipeline
///                                   (--trace-out/--metrics-out enable the
///                                   telemetry layer for the run)
///   trace-check <trace.json>        validate a Chrome trace export
///   daemon <ping|hello|metrics|shutdown|submit> --socket ENDPOINT
///                                   talk to a running foresightd over
///                                   AF_UNIX (a path) or tcp:HOST:PORT
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/str.hpp"
#include "cosmo/dataset_info.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cbench.hpp"
#include "foresight/optimizer.hpp"
#include "foresight/pipeline.hpp"
#include "foresight/report.hpp"
#include "foresight/sweep.hpp"
#include "foresightd/client.hpp"
#include "foresightd/protocol.hpp"
#include "json/json.hpp"
#include "gpu/specs.hpp"
#include "sz/rate_estimate.hpp"

using namespace cosmo;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: foresight_cli <command> [options]\n"
               "  devices\n"
               "  codecs\n"
               "  generate --type nyx|hacc --out FILE [--dim N] [--particles N] [--seed S]\n"
               "  info FILE\n"
               "  compress --codec NAME --mode MODE --value V --input FILE [--field NAME] [--gpu NAME] [--threads N]\n"
               "  estimate --input FILE --field NAME --bound B [--stride N]\n"
               "  optimize --codec NAME [--input FILE | --type nyx|hacc [--dim N] "
               "[--particles N] [--seed S]]\n"
               "           [--gpu NAME] [--search exhaustive|guided] [--probes K] "
               "[--threads N]\n"
               "           [--tolerance T] [--k-fraction F] [--halo-tolerance T] "
               "[--velocity-tolerance T]\n"
               "           [--linking-length L] [--min-members N]\n"
               "  run CONFIG.json [--fail-fast] [--trace-out FILE] [--metrics-out FILE]\n"
               "  trace-check TRACE.json\n"
               "  daemon ping|hello|metrics|shutdown --socket ENDPOINT\n"
               "  daemon submit --socket ENDPOINT --codec NAME [--job roundtrip|compress]\n"
               "      (ENDPOINT: a unix socket path or tcp:HOST:PORT)\n"
               "         [--mode M --value V] [--type nyx|hacc] [--dim N] [--particles N]\n"
               "         [--seed S] [--field NAME] [--deadline SECONDS] [--priority P]\n");
  return 2;
}

int cmd_devices() {
  std::printf("%s", gpu::format_table1().c_str());
  return 0;
}

/// Prints the live codec registry — one row per registered compressor with
/// its capabilities, so scripts (and check.sh) can assert on the roster
/// without hard-coding names.
int cmd_codecs() {
  std::printf("%-8s %-26s %-7s %-11s %-11s %-8s %s\n", "name", "modes", "device",
              "concurrent", "throughput", "profile", "summary");
  for (const auto& name : foresight::available_compressors()) {
    const auto& caps = foresight::CodecRegistry::instance().capabilities(name);
    std::printf("%-8s %-26s %-7s %-11s %-11s %-8s %s\n", caps.name.c_str(),
                caps.modes_label().c_str(), caps.needs_device ? "sim" : "host",
                caps.concurrent_sessions_safe ? "yes" : "no",
                caps.throughput_reportable ? "reported" : "n/a",
                caps.kernel_profile.empty() ? "-" : caps.kernel_profile.c_str(),
                caps.summary.c_str());
  }
  // Map each kernel profile to its rows in BENCH_kernels.json so a codec's
  // end-to-end numbers can be cross-read against the per-kernel bench.
  std::vector<std::string> profiles;
  for (const auto& name : foresight::available_compressors()) {
    const auto& caps = foresight::CodecRegistry::instance().capabilities(name);
    if (caps.kernel_profile.empty()) continue;
    if (std::find(profiles.begin(), profiles.end(), caps.kernel_profile) != profiles.end())
      continue;
    profiles.push_back(caps.kernel_profile);
  }
  if (!profiles.empty()) {
    std::printf("\nbench rows (BENCH_kernels.json):\n");
    for (const auto& p : profiles) {
      std::printf("  %-8s -> %s_encode / %s_decode\n", p.c_str(), p.c_str(), p.c_str());
    }
  }
  return 0;
}

int cmd_generate(const CliArgs& args) {
  const std::string type = args.get("type", "nyx");
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  if (type == "nyx") {
    NyxConfig config;
    config.dim = static_cast<std::size_t>(args.get_int("dim", 64));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const auto c = generate_nyx(config);
    io::save(c, out, io::Dialect::kHdf5Lite);
    std::printf("wrote %s (%s)\n", out.c_str(), human_bytes(c.payload_bytes()).c_str());
    return 0;
  }
  if (type == "hacc") {
    HaccConfig config;
    config.particles = static_cast<std::size_t>(args.get_int("particles", 200000));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto c = generate_hacc(config);
    io::save(c, out, io::Dialect::kGenericIo);
    std::printf("wrote %s (%s)\n", out.c_str(), human_bytes(c.payload_bytes()).c_str());
    return 0;
  }
  std::fprintf(stderr, "generate: unknown type '%s'\n", type.c_str());
  return 2;
}

int cmd_info(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "info: missing file argument\n");
    return 2;
  }
  const std::string path = args.positional()[1];
  const auto c = io::load(path);
  const auto dialect = io::probe_dialect(path);
  std::printf("%s (%s dialect)\n\n", path.c_str(),
              dialect == io::Dialect::kGenericIo ? "GenericIO-lite" : "HDF5-lite");
  std::printf("%s", format_table({describe(c, path)}).c_str());
  return 0;
}

int cmd_compress(const CliArgs& args) {
  const std::string codec_name = args.get("codec", "sz-cpu");
  const std::string mode = args.get("mode", "abs");
  const double value = args.get_double("value", 0.0);
  const std::string input = args.get("input", "");
  if (input.empty() || value == 0.0) {
    std::fprintf(stderr, "compress: --input and --value are required\n");
    return 2;
  }
  const int threads_arg = args.get_int("threads", 1);
  if (threads_arg < 0) {
    std::fprintf(stderr, "compress: --threads must be >= 0 (got %d)\n", threads_arg);
    return 2;
  }
  const auto data = io::load(input);
  gpu::GpuSimulator sim(gpu::find_device(args.get("gpu", "Tesla V100")));
  const auto codec = foresight::make_compressor(codec_name, &sim);
  const auto threads = static_cast<std::size_t>(threads_arg);
  // One knob serves both levels: a multi-field sweep parallelizes across
  // fields (sessions serial); a single-field run falls back to the serial
  // sweep path, where session_threads fans the codec kernels out instead.
  foresight::CBench bench({.keep_reconstructed = false, .dataset_name = input,
                           .threads = threads, .session_threads = threads});

  const std::string only_field = args.get("field", "");
  const auto field_filter = [&only_field](const std::string& name) {
    return only_field.empty() || name == only_field;
  };
  std::vector<foresight::CBenchResult> results =
      bench.sweep(data, *codec, {{mode, value}}, field_filter);
  if (results.empty()) {
    std::fprintf(stderr, "compress: no matching fields\n");
    return 2;
  }
  std::printf("%s", foresight::format_results(results).c_str());
  std::printf("overall ratio: %.2fx\n", foresight::CBench::overall_ratio(results));
  return 0;
}

int cmd_estimate(const CliArgs& args) {
  const std::string input = args.get("input", "");
  const std::string field_name = args.get("field", "");
  const double bound = args.get_double("bound", 0.0);
  if (input.empty() || field_name.empty() || bound <= 0.0) {
    std::fprintf(stderr, "estimate: --input, --field and --bound are required\n");
    return 2;
  }
  const int stride = args.get_int("stride", 1);
  if (stride < 1) {
    std::fprintf(stderr, "estimate: --stride must be >= 1 (got %d)\n", stride);
    return 2;
  }
  const auto data = io::load(input);
  const Field& field = data.find(field_name).field;
  sz::Params params;
  params.abs_error_bound = bound;
  const auto est = sz::estimate_rate(field.data, field.dims, params,
                                     static_cast<std::size_t>(stride));
  std::printf("field %s, abs bound %g:\n", field_name.c_str(), bound);
  std::printf("  code entropy        %.3f bits/value\n", est.entropy_bits_per_value);
  std::printf("  unpredictable       %.2f%%\n", 100.0 * est.unpredictable_fraction);
  std::printf("  estimated bitrate   %.3f bits/value (~%.2fx ratio)\n",
              est.estimated_bits_per_value, 32.0 / est.estimated_bits_per_value);
  if (est.sampled_blocks != est.total_blocks) {
    std::printf("  sampled             %zu of %zu blocks (stride %d)\n",
                est.sampled_blocks, est.total_blocks, stride);
  }
  return 0;
}

/// Detects a HACC-style particle container: position and velocity triples.
bool is_particle_container(const io::Container& data) {
  std::size_t found = 0;
  for (const auto& v : data.variables) {
    if (v.field.name == "x" || v.field.name == "y" || v.field.name == "z" ||
        v.field.name == "vx" || v.field.name == "vy" || v.field.name == "vz") {
      ++found;
    }
  }
  return found == 6;
}

int cmd_optimize(const CliArgs& args) {
  const std::string codec_name = args.get("codec", "");
  if (codec_name.empty()) {
    std::fprintf(stderr, "optimize: --codec is required\n");
    return 2;
  }
  foresight::OptimizerOptions options;
  options.search = foresight::parse_search_mode(args.get("search", "exhaustive"));
  options.probes = static_cast<std::size_t>(args.get_int("probes", 3));
  const int threads_arg = args.get_int("threads", 1);
  if (threads_arg < 0) {
    std::fprintf(stderr, "optimize: --threads must be >= 0 (got %d)\n", threads_arg);
    return 2;
  }
  options.threads = static_cast<std::size_t>(threads_arg);

  io::Container data;
  const std::string input = args.get("input", "");
  if (!input.empty()) {
    data = io::load(input);
  } else if (args.get("type", "nyx") == "hacc") {
    HaccConfig config;
    config.particles = static_cast<std::size_t>(args.get_int("particles", 200000));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    data = generate_hacc(config);
  } else {
    NyxConfig config;
    config.dim = static_cast<std::size_t>(args.get_int("dim", 64));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    data = generate_nyx(config);
  }

  gpu::GpuSimulator sim(gpu::find_device(args.get("gpu", "Tesla V100")));
  const auto codec = foresight::make_compressor(codec_name, &sim);

  foresight::OptimizationResult result;
  if (is_particle_container(data)) {
    analysis::FofParams fof_params;
    fof_params.linking_length = args.get_double("linking-length", 1.5);
    fof_params.min_members = static_cast<std::size_t>(args.get_int("min-members", 10));
    result = foresight::optimize_particle_dataset(
        data, *codec, foresight::default_position_candidates(codec->capabilities()),
        foresight::default_velocity_candidates(codec->capabilities(),
                                               data.find("vx").field),
        fof_params, args.get_double("halo-tolerance", 0.05),
        args.get_double("velocity-tolerance", 0.05), options);
  } else {
    std::map<std::string, std::vector<foresight::CompressorConfig>> candidates;
    for (const auto& variable : data.variables) {
      if (variable.field.dims.rank() != 3) continue;
      candidates[variable.field.name] =
          foresight::default_grid_candidates(codec_name, variable.field);
    }
    result = foresight::optimize_grid_dataset(data, *codec, candidates,
                                              args.get_double("tolerance", 0.01),
                                              args.get_double("k-fraction", 0.5), options);
  }
  std::printf("search mode: %s\n%s", foresight::search_mode_label(options.search).c_str(),
              foresight::format_optimization(result).c_str());
  return result.all_fields_ok ? 0 : 1;
}

int cmd_run(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "run: missing config file\n");
    return 2;
  }
  json::Value config = json::parse_file(args.positional()[1]);
  // --fail-fast overrides the config: stop at the first failed job instead
  // of recording it and continuing.
  if (args.has("fail-fast")) config.as_object()["on_error"] = "abort";
  // --trace-out / --metrics-out layer the telemetry knob over the config
  // (the flag wins over a conflicting config entry).
  if (args.has("trace-out") || args.has("metrics-out")) {
    json::Object& root = config.as_object();
    if (!root["telemetry"].is_object()) root["telemetry"] = json::Object{};
    json::Object& t = root["telemetry"].as_object();
    if (args.has("trace-out")) t["trace_out"] = args.get("trace-out", "trace.json");
    if (args.has("metrics-out")) t["metrics_out"] = args.get("metrics-out", "metrics.json");
  }
  const auto summary = foresight::run_pipeline(config);
  std::printf("%s", foresight::format_results(summary.results).c_str());
  if (summary.failed_jobs > 0 || summary.injected_faults > 0) {
    std::printf("failed jobs: %zu of %zu (injected faults: %zu)\n", summary.failed_jobs,
                summary.results.size(), summary.injected_faults);
  }
  for (const auto& [key, dev] : summary.pk_deviation) {
    std::printf("pk  %-55s %.5f\n", key.c_str(), dev);
  }
  for (const auto& [key, dev] : summary.halo_deviation) {
    std::printf("halo %-54s %.5f\n", key.c_str(), dev);
  }
  for (const auto& [key, s] : summary.ssim) {
    std::printf("ssim %-54s %.5f\n", key.c_str(), s);
  }
  if (summary.optimization) {
    std::printf("--- optimizer ---\n%s",
                foresight::format_optimization(*summary.optimization).c_str());
  }
  foresight::write_markdown_report(summary, summary.output_dir + "/report.md");
  std::printf("outputs: %s (incl. report.md)\n", summary.output_dir.c_str());
  if (!summary.trace_path.empty()) std::printf("trace: %s\n", summary.trace_path.c_str());
  if (!summary.metrics_path.empty()) {
    std::printf("metrics: %s\n", summary.metrics_path.c_str());
  }
  return summary.workflow_ok ? 0 : 1;
}

/// Validates a Chrome trace_event export: well-formed JSON, every event a
/// complete ("X") event with name/ts/dur/pid/tid, and per-(pid, tid) span
/// nesting consistent with the recorded args.depth (a span at depth d+1 must
/// lie inside the most recent open span at depth d). Prints a one-line
/// summary so check.sh --trace-smoke can assert on coverage.
int cmd_trace_check(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "trace-check: missing trace file\n");
    return 2;
  }
  const json::Value trace = json::parse_file(args.positional()[1]);
  const json::Array& events = trace.at("traceEvents").as_array();
  std::map<long, std::vector<std::pair<double, double>>> open;  // tid -> stack of [ts, end)
  std::map<std::string, std::size_t> by_name;
  // Events are exported sorted by start time, so a simple per-thread stack
  // replay checks the nesting claim.
  for (const auto& ev : events) {
    if (ev.get("ph", std::string()) != "X") {
      std::fprintf(stderr, "trace-check: non-complete event found\n");
      return 1;
    }
    const std::string name = ev.at("name").as_string();
    const double ts = ev.at("ts").as_number();
    const double dur = ev.at("dur").as_number();
    const long tid = ev.at("tid").as_int();
    const auto depth = static_cast<std::size_t>(ev.at("args").get("depth", -1.0));
    ++by_name[name];
    auto& stack = open[tid];
    while (!stack.empty() && ts >= stack.back().second) stack.pop_back();
    if (depth != stack.size()) {
      std::fprintf(stderr, "trace-check: '%s' at ts=%.3f claims depth %zu, stack is %zu\n",
                   name.c_str(), ts, depth, stack.size());
      return 1;
    }
    if (!stack.empty() && ts + dur > stack.back().second + 1e-9) {
      std::fprintf(stderr, "trace-check: '%s' at ts=%.3f overflows its parent span\n",
                   name.c_str(), ts);
      return 1;
    }
    stack.emplace_back(ts, ts + dur);
  }
  std::printf("trace-check: %zu events, %zu distinct spans, %zu threads\n", events.size(),
              by_name.size(), open.size());
  for (const auto& [name, count] : by_name) {
    std::printf("  %-32s %zu\n", name.c_str(), count);
  }
  return events.empty() ? 1 : 0;
}

/// Talks to a running foresightd over AF_UNIX or TCP ("tcp:host:port"):
/// control requests (ping/hello/metrics/shutdown) or a single synchronous
/// job submission through the typed API, response printed as JSON.
int cmd_daemon(const CliArgs& args) {
  const auto& positional = args.positional();
  const std::string action = positional.size() > 1 ? positional[1] : "";
  const std::string socket = args.get("socket", "");
  if (socket.empty() || action.empty()) {
    std::fprintf(stderr, "daemon: an action and --socket ENDPOINT are required\n");
    return 2;
  }
  foresightd::Client client(socket);
  json::Value reply;
  if (action == "ping") {
    reply = client.ping();
  } else if (action == "hello") {
    const foresightd::HelloReply hello = client.hello();
    std::printf("proto %d.%d  max_frame %llu  chunk %llu  max_transfer %llu%s\n",
                hello.proto_major, hello.proto_minor,
                static_cast<unsigned long long>(hello.max_frame_bytes),
                static_cast<unsigned long long>(hello.chunk_bytes),
                static_cast<unsigned long long>(hello.max_transfer_bytes),
                hello.draining ? "  (draining)" : "");
    return 0;
  } else if (action == "metrics") {
    reply = client.metrics();
  } else if (action == "shutdown") {
    reply = client.shutdown();
  } else if (action == "submit") {
    const std::string job = args.get("job", "roundtrip");
    json::Value dataset;
    {
      json::Object spec;
      spec["type"] = args.get("type", "nyx");
      if (spec["type"] == json::Value("hacc")) {
        spec["particles"] = static_cast<std::size_t>(args.get_int("particles", 100000));
      } else {
        spec["dim"] = static_cast<std::size_t>(args.get_int("dim", 32));
      }
      spec["seed"] = static_cast<std::size_t>(args.get_int("seed", 42));
      dataset = json::Value(std::move(spec));
    }
    foresightd::JobOptions options;
    options.deadline_seconds = args.get_double("deadline", 0.0);
    options.priority = static_cast<int>(args.get_int("priority", 1));

    foresightd::JobReply typed;
    if (job == "compress") {
      foresightd::CompressRequest request;
      request.codec = args.get("codec", "sz-cpu");
      request.mode = args.get("mode", "abs");
      request.value = args.get_double("value", 0.1);
      request.dataset = dataset;
      request.field = args.get("field", "baryon_density");
      request.options = options;
      typed = client.call_reply(request.to_request(1));
    } else {
      foresightd::RoundtripRequest request;
      request.codec = args.get("codec", "sz-cpu");
      request.mode = args.get("mode", "abs");
      request.value = args.get_double("value", 0.1);
      request.dataset = dataset;
      request.field = args.get("field", "baryon_density");
      request.options = options;
      typed = client.call_reply(request.to_request(1));
    }
    std::printf("%s\n", typed.raw.dump(2).c_str());
    return typed.ok() ? 0 : 1;
  } else {
    std::fprintf(stderr, "daemon: unknown action '%s'\n", action.c_str());
    return 2;
  }
  std::printf("%s\n", reply.dump(2).c_str());
  return reply.get("status", std::string("ok")) == "ok" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const CliArgs args(argc, argv);
  try {
    if (command == "devices") return cmd_devices();
    if (command == "codecs") return cmd_codecs();
    if (command == "generate") return cmd_generate(args);
    if (command == "info") return cmd_info(args);
    if (command == "compress") return cmd_compress(args);
    if (command == "estimate") return cmd_estimate(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "run") return cmd_run(args);
    if (command == "trace-check") return cmd_trace_check(args);
    if (command == "daemon") return cmd_daemon(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "foresight_cli %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
