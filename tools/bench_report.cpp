/// \file bench_report.cpp
/// \brief Machine-readable throughput trajectory for the threaded codecs.
///
/// Sweeps codec x field x thread-count over large synthetic fields and
/// writes BENCH_throughput.json: MB/s, speedup over the 1-thread baseline,
/// and a byte-identity verdict for every entry (the determinism guarantee
/// is checked for real on every run, not assumed).
///
/// Speedup accounting: when the host has at least as many hardware threads
/// as the entry requests, the reported speedup is the measured wall-clock
/// ratio. On smaller hosts (the CI container has one core) wall clock
/// cannot speed up, so the entry reports a modeled speedup instead —
/// Amdahl with the *measured* parallel fraction of that very run (from
/// parallel_region_seconds()) and the 0.85 per-thread efficiency the
/// EXPERIMENTS.md multicore rows already use — and is flagged
/// "modeled": true so nobody mistakes it for a measurement.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "json/json.hpp"
#include "random/rng.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

using namespace cosmo;

constexpr double kParallelEfficiency = 0.85;

/// Smooth Nyx-like scalar field (same shape the codec microbenches use).
std::vector<float> nyx_like_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.02 * static_cast<double>(i)) +
                                 rng.normal());
  }
  return data;
}

/// HACC-like particle position component: cell-ordered positions with
/// sub-cell jitter (positions of sorted particles vary smoothly, which is
/// what makes SZ's Lorenzo predictor effective on them).
std::vector<float> hacc_like_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  const double box = 256.0;
  std::vector<float> data(dims.count());
  const std::size_t per_row = dims.nx;
  const double cell = box / static_cast<double>(per_row);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double base = static_cast<double>(i % per_row) * cell;
    data[i] = static_cast<float>(base + 0.35 * cell * (1.0 + 0.5 * rng.normal()));
  }
  return data;
}

struct PhaseTiming {
  double seconds = 0.0;           ///< best-of-repeats wall time
  double parallel_fraction = 0.0; ///< region seconds / wall, for that best run
};

struct RunResult {
  PhaseTiming compress;
  PhaseTiming decompress;
  std::vector<std::uint8_t> bytes;
  std::vector<float> recon;
};

template <typename CompressFn, typename DecompressFn>
RunResult run_codec(const CompressFn& compress_into, const DecompressFn& decompress_into,
                    std::size_t threads, int repeats) {
  const PoolHandle handle(threads);
  ThreadPool* pool = handle.get();
  RunResult r;
  r.compress.seconds = 1e300;
  r.decompress.seconds = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    const double region0 = parallel_region_seconds();
    Timer t;
    compress_into(r.bytes, pool);
    const double wall = t.seconds();
    if (wall < r.compress.seconds) {
      r.compress.seconds = wall;
      r.compress.parallel_fraction =
          wall > 0.0 ? std::min(1.0, (parallel_region_seconds() - region0) / wall) : 0.0;
    }
  }
  for (int rep = 0; rep < repeats; ++rep) {
    const double region0 = parallel_region_seconds();
    Timer t;
    decompress_into(r.bytes, r.recon, pool);
    const double wall = t.seconds();
    if (wall < r.decompress.seconds) {
      r.decompress.seconds = wall;
      r.decompress.parallel_fraction =
          wall > 0.0 ? std::min(1.0, (parallel_region_seconds() - region0) / wall) : 0.0;
    }
  }
  return r;
}

double amdahl(double parallel_fraction, std::size_t threads) {
  const double n = static_cast<double>(threads) * kParallelEfficiency;
  return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / n);
}

double mb_per_s(std::size_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / seconds / 1e6 : 0.0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_report [--edge N] [--repeats R] [--out FILE]\n"
               "  sweeps {sz, zfp} x {nyx-like, hacc-like} x threads {1, 2, 4}\n"
               "  on an N^3 synthetic field and writes BENCH_throughput.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t edge = 256;
  int repeats = 2;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--edge" && i + 1 < argc) {
      edge = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (edge < 8 || repeats < 1) return usage();

  const Dims dims = Dims::d3(edge, edge, edge);
  const std::size_t field_bytes = dims.count() * sizeof(float);
  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_counts = {1, 2, 4};

  struct FieldSpec {
    std::string name;
    std::vector<float> data;
  };
  std::vector<FieldSpec> fields;
  fields.push_back({"nyx_baryon_density", nyx_like_field(dims, 11)});
  fields.push_back({"hacc_x", hacc_like_field(dims, 12)});

  sz::Params sz_params;
  sz_params.abs_error_bound = 0.1;
  zfp::Params zfp_params;
  zfp_params.rate = 8.0;

  json::Array entries;
  bool all_identical = true;

  for (const auto& field : fields) {
    for (const std::string codec : {"sz", "zfp"}) {
      auto compress_into = [&](std::vector<std::uint8_t>& out, ThreadPool* pool) {
        if (codec == "sz") {
          sz::compress_into(field.data, dims, sz_params, out, nullptr, pool);
        } else {
          zfp::compress_into(field.data, dims, zfp_params, out, nullptr, pool);
        }
      };
      auto decompress_into = [&](const std::vector<std::uint8_t>& bytes,
                                 std::vector<float>& out, ThreadPool* pool) {
        if (codec == "sz") {
          sz::decompress_into(bytes, out, nullptr, pool);
        } else {
          zfp::decompress_into(bytes, out, nullptr, pool);
        }
      };

      RunResult baseline;  // threads == 1
      for (const std::size_t threads : thread_counts) {
        RunResult r = run_codec(compress_into, decompress_into, threads, repeats);
        const bool is_baseline = threads == 1;
        if (is_baseline) baseline = std::move(r);
        const RunResult& cur = is_baseline ? baseline : r;

        const bool stream_identical =
            cur.bytes.size() == baseline.bytes.size() &&
            (cur.bytes.empty() ||
             std::memcmp(cur.bytes.data(), baseline.bytes.data(), cur.bytes.size()) == 0);
        const bool recon_identical =
            cur.recon.size() == baseline.recon.size() &&
            (cur.recon.empty() ||
             std::memcmp(cur.recon.data(), baseline.recon.data(),
                         cur.recon.size() * sizeof(float)) == 0);
        all_identical = all_identical && stream_identical && recon_identical;

        const double t1_total = baseline.compress.seconds + baseline.decompress.seconds;
        const double tn_total = cur.compress.seconds + cur.decompress.seconds;
        const double measured_c = cur.compress.seconds > 0.0
                                      ? baseline.compress.seconds / cur.compress.seconds
                                      : 0.0;
        const double measured_d =
            cur.decompress.seconds > 0.0
                ? baseline.decompress.seconds / cur.decompress.seconds
                : 0.0;
        const double measured_total = tn_total > 0.0 ? t1_total / tn_total : 0.0;
        // Combined parallel fraction weights each phase by its wall share.
        const double combined_fraction =
            tn_total > 0.0
                ? (cur.compress.parallel_fraction * cur.compress.seconds +
                   cur.decompress.parallel_fraction * cur.decompress.seconds) /
                      tn_total
                : 0.0;
        const bool modeled = threads > 1 && hw_threads < threads;

        json::Object e;
        e["codec"] = codec;
        e["field"] = field.name;
        e["threads"] = threads;
        e["compress_seconds"] = cur.compress.seconds;
        e["decompress_seconds"] = cur.decompress.seconds;
        e["compress_mb_s"] = mb_per_s(field_bytes, cur.compress.seconds);
        e["decompress_mb_s"] = mb_per_s(field_bytes, cur.decompress.seconds);
        e["compressed_bytes"] = cur.bytes.size();
        e["stream_identical_to_1_thread"] = stream_identical;
        e["recon_identical_to_1_thread"] = recon_identical;
        e["parallel_fraction_compress"] = cur.compress.parallel_fraction;
        e["parallel_fraction_decompress"] = cur.decompress.parallel_fraction;
        e["modeled"] = modeled;
        e["measured_wall_speedup"] = measured_total;
        if (modeled) {
          e["compress_speedup"] = amdahl(cur.compress.parallel_fraction, threads);
          e["decompress_speedup"] = amdahl(cur.decompress.parallel_fraction, threads);
          e["combined_speedup"] = amdahl(combined_fraction, threads);
        } else {
          e["compress_speedup"] = threads == 1 ? 1.0 : measured_c;
          e["decompress_speedup"] = threads == 1 ? 1.0 : measured_d;
          e["combined_speedup"] = threads == 1 ? 1.0 : measured_total;
        }
        entries.push_back(json::Value(std::move(e)));

        std::printf(
            "%-4s %-20s threads=%zu  comp %8.1f MB/s  dec %8.1f MB/s  "
            "x%.2f%s  bytes %s\n",
            codec.c_str(), field.name.c_str(), threads,
            mb_per_s(field_bytes, cur.compress.seconds),
            mb_per_s(field_bytes, cur.decompress.seconds),
            entries.back().at("combined_speedup").as_number(),
            modeled ? " (modeled)" : "", stream_identical ? "identical" : "DIFFER");
      }
    }
  }

  json::Object root;
  root["schema"] = "cosmo-bench-throughput/1";
  root["edge"] = edge;
  root["field_bytes"] = field_bytes;
  root["repeats"] = repeats;
  root["hardware_threads"] = hw_threads;
  root["parallel_efficiency_model"] = kParallelEfficiency;
  root["all_streams_identical"] = all_identical;
  root["entries"] = json::Value(std::move(entries));

  const std::string text = json::Value(std::move(root)).dump(2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
