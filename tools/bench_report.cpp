/// \file bench_report.cpp
/// \brief Machine-readable throughput trajectory for the threaded codecs.
///
/// Sweeps codec x field x thread-count over large synthetic fields and
/// writes BENCH_throughput.json: MB/s, speedup over the 1-thread baseline,
/// and a byte-identity verdict for every entry (the determinism guarantee
/// is checked for real on every run, not assumed).
///
/// A third mode, --trace-overhead, measures what the telemetry layer costs
/// when tracing is disabled (the production default): the per-span price of
/// a disabled TRACE_SPAN, the span count an enabled SZ/ZFP round trip
/// records, and the implied fractional overhead — which must stay under the
/// 1% contract docs/architecture.md promises (exit 1 otherwise).
///
/// A second mode, --kernels, runs single-thread microbenchmarks of the
/// codec building blocks (bitstream put/get, CRC32, quantizer, Huffman,
/// LZSS, ZFP block codec, full SZ/ZFP pipelines) and writes
/// BENCH_kernels.json. Each entry carries a CRC32 of the kernel's output so
/// runs across builds can be checked for byte-identity, and --baseline
/// turns the tool into a regression gate (check.sh --bench-smoke).
///
/// Speedup accounting: when the host has at least as many hardware threads
/// as the entry requests, the reported speedup is the measured wall-clock
/// ratio. On smaller hosts (the CI container has one core) wall clock
/// cannot speed up, so the entry reports a modeled speedup instead —
/// Amdahl with the *measured* parallel fraction of that very run (from
/// parallel_region_seconds()) and the 0.85 per-thread efficiency the
/// EXPERIMENTS.md multicore rows already use — and is flagged
/// "modeled": true so nobody mistakes it for a measurement.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "codec/bitstream.hpp"
#include "codec/huffman.hpp"
#include "codec/lzss.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/optimizer.hpp"
#include "foresight/sweep.hpp"
#include "fz/fz.hpp"
#include "io/crc32.hpp"
#include "json/json.hpp"
#include "random/rng.hpp"
#include "sz/quantizer.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

using namespace cosmo;

constexpr double kParallelEfficiency = 0.85;

/// Smooth Nyx-like scalar field (same shape the codec microbenches use).
std::vector<float> nyx_like_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(dims.count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(100.0 * std::sin(0.02 * static_cast<double>(i)) +
                                 rng.normal());
  }
  return data;
}

/// HACC-like particle position component: cell-ordered positions with
/// sub-cell jitter (positions of sorted particles vary smoothly, which is
/// what makes SZ's Lorenzo predictor effective on them).
std::vector<float> hacc_like_field(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  const double box = 256.0;
  std::vector<float> data(dims.count());
  const std::size_t per_row = dims.nx;
  const double cell = box / static_cast<double>(per_row);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double base = static_cast<double>(i % per_row) * cell;
    data[i] = static_cast<float>(base + 0.35 * cell * (1.0 + 0.5 * rng.normal()));
  }
  return data;
}

struct PhaseTiming {
  double seconds = 0.0;           ///< best-of-repeats wall time
  double parallel_fraction = 0.0; ///< region seconds / wall, for that best run
};

struct RunResult {
  PhaseTiming compress;
  PhaseTiming decompress;
  std::vector<std::uint8_t> bytes;
  std::vector<float> recon;
};

template <typename CompressFn, typename DecompressFn>
RunResult run_codec(const CompressFn& compress_into, const DecompressFn& decompress_into,
                    std::size_t threads, int repeats) {
  const PoolHandle handle(threads);
  ThreadPool* pool = handle.get();
  RunResult r;
  r.compress.seconds = 1e300;
  r.decompress.seconds = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    const double region0 = parallel_region_seconds();
    Timer t;
    compress_into(r.bytes, pool);
    const double wall = t.seconds();
    if (wall < r.compress.seconds) {
      r.compress.seconds = wall;
      r.compress.parallel_fraction =
          wall > 0.0 ? std::min(1.0, (parallel_region_seconds() - region0) / wall) : 0.0;
    }
  }
  for (int rep = 0; rep < repeats; ++rep) {
    const double region0 = parallel_region_seconds();
    Timer t;
    decompress_into(r.bytes, r.recon, pool);
    const double wall = t.seconds();
    if (wall < r.decompress.seconds) {
      r.decompress.seconds = wall;
      r.decompress.parallel_fraction =
          wall > 0.0 ? std::min(1.0, (parallel_region_seconds() - region0) / wall) : 0.0;
    }
  }
  return r;
}

double amdahl(double parallel_fraction, std::size_t threads) {
  const double n = static_cast<double>(threads) * kParallelEfficiency;
  return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / n);
}

double mb_per_s(std::size_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / seconds / 1e6 : 0.0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_report [--edge N] [--reps R] [--out FILE]\n"
               "  sweeps {sz, zfp} x {nyx-like, hacc-like} x threads {1, 2, 4}\n"
               "  on an N^3 synthetic field and writes BENCH_throughput.json\n"
               "\n"
               "       bench_report --kernels [--edge N] [--reps R] [--out FILE]\n"
               "                    [--pre FILE] [--baseline FILE] [--max-regress F]\n"
               "                    [--check-crc FILE]\n"
               "  single-thread per-kernel microbenchmarks -> BENCH_kernels.json;\n"
               "  each kernel runs R reps (default 3, --repeats is an alias) and\n"
               "  reports the best, which damps run-to-run drift\n"
               "  --pre embeds a previous run's rates as pre_pr_mb_s + speedup;\n"
               "  --baseline fails (exit 1) when any kernel is more than F (default\n"
               "  0.30) slower than the same kernel in FILE;\n"
               "  --check-crc fails (exit 1) when any kernel's output_crc32 differs\n"
               "  from the same kernel in FILE (deterministic byte-identity gate)\n"
               "\n"
               "       bench_report --trace-overhead [--edge N] [--repeats R] [--out FILE]\n"
               "  measures the disabled-tracing span cost and fails (exit 1) if the\n"
               "  implied overhead on an SZ/ZFP round trip exceeds 1%%\n"
               "\n"
               "       bench_report --optimizer [--dim N] [--particles P] [--threads T]\n"
               "                    [--out FILE]\n"
               "  runs the Section V-D configuration search twice (exhaustive, then\n"
               "  guided) with sz-cpu on a seeded N^3 Nyx snapshot (28-bound abs\n"
               "  lattice per field) and a seeded P-particle HACC snapshot, and\n"
               "  writes BENCH_optimizer.json; fails (exit 1) when a guided choice\n"
               "  is unacceptable or >2%% worse CR than the exhaustive winner, or\n"
               "  when the Nyx guided search spends more than 1/3 of the exhaustive\n"
               "  full evaluations or less than 3x lower optimizer wall-clock\n");
  return 2;
}

/// One microbenchmark result. `payload_bytes` is the uncompressed-side byte
/// count the rate is normalized by; `checksum` is a CRC32 of the kernel's
/// output so two builds can be diffed for byte-identity from the JSON alone.
struct KernelResult {
  std::string kernel;
  double seconds = 1e300;  // best-of-repeats
  std::size_t payload_bytes = 0;
  std::uint32_t checksum = 0;
};

template <typename Fn>
KernelResult bench_kernel(const std::string& name, std::size_t payload_bytes, int repeats,
                          const Fn& run) {
  KernelResult r;
  r.kernel = name;
  r.payload_bytes = payload_bytes;
  for (int rep = 0; rep < repeats; ++rep) {
    Timer t;
    const std::uint32_t sum = run();
    const double wall = t.seconds();
    if (wall < r.seconds) r.seconds = wall;
    r.checksum = sum;
  }
  return r;
}

/// Quantization codes for the 256^3-style bench field: first-order (1-D
/// Lorenzo) prediction residuals through the production quantizer, i.e. the
/// same near-radius code distribution the SZ pipeline feeds to Huffman.
std::vector<std::uint32_t> quant_codes_for(const std::vector<float>& data, double eb) {
  const sz::Quantizer quant(eb);
  std::vector<std::uint32_t> codes(data.size());
  float prev = 0.0f;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const sz::Quantizer::Result q = quant.quantize(data[i], prev);
    codes[i] = q.code;
    prev = q.code == 0 ? data[i] : q.reconstructed;
  }
  return codes;
}

int run_kernel_bench(std::size_t edge, int repeats, const std::string& out_path,
                     const std::string& pre_path, const std::string& baseline_path,
                     double max_regress, const std::string& check_crc_path) {
  const Dims dims = Dims::d3(edge, edge, edge);
  const std::size_t field_bytes = dims.count() * sizeof(float);
  const std::vector<float> field = nyx_like_field(dims, 11);

  std::vector<KernelResult> results;

  // --- bitstream put/get: the width mix the codecs actually use (1-bit
  // flags, small multi-bit fields, occasional wide words).
  {
    std::vector<std::pair<std::uint64_t, unsigned>> writes;
    writes.reserve(1u << 21);
    Rng rng(21);
    std::uint64_t payload_bits = 0;
    for (std::size_t i = 0; i < (1u << 21); ++i) {
      const unsigned sel = static_cast<unsigned>(i % 8);
      const unsigned nbits = sel < 4 ? 1 : sel < 6 ? 9 : sel < 7 ? 16 : 48;
      std::uint64_t v = rng.next_u64();
      if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
      writes.emplace_back(v, nbits);
      payload_bits += nbits;
    }
    const std::size_t payload = static_cast<std::size_t>(payload_bits / 8);
    std::vector<std::uint8_t> encoded;
    results.push_back(bench_kernel("bitstream_put", payload, repeats, [&] {
      BitWriter bw;
      for (const auto& [v, nbits] : writes) bw.put(v, nbits);
      encoded = bw.finish();
      return crc32(encoded.data(), encoded.size());
    }));
    results.push_back(bench_kernel("bitstream_get", payload, repeats, [&] {
      BitReader br(encoded);
      std::uint64_t acc = 0;
      for (const auto& [v, nbits] : writes) acc ^= br.get(nbits) + nbits;
      return crc32(&acc, sizeof(acc));
    }));
  }

  // --- CRC32 over the raw field bytes.
  results.push_back(bench_kernel("crc32", field_bytes, repeats, [&] {
    return crc32(field.data(), field_bytes);
  }));

  // --- quantizer: quantize + reconstruct against a running prediction.
  results.push_back(bench_kernel("sz_quantize", field_bytes, repeats, [&] {
    const sz::Quantizer quant(0.1);
    float prev = 0.0f;
    std::uint64_t acc = 0;
    for (const float v : field) {
      const sz::Quantizer::Result q = quant.quantize(v, prev);
      prev = q.code == 0 ? v : q.reconstructed;
      acc += q.code;
    }
    return crc32(&acc, sizeof(acc));
  }));

  // --- Huffman over realistic quantization codes (chunked container, the
  // production path; pool=nullptr keeps it single-thread).
  const std::vector<std::uint32_t> codes = quant_codes_for(field, 0.1);
  const std::size_t code_bytes = codes.size() * sizeof(std::uint32_t);
  std::vector<std::uint8_t> huff;
  results.push_back(bench_kernel("huffman_encode", code_bytes, repeats, [&] {
    huff = huffman_encode_chunked(codes, nullptr);
    return crc32(huff.data(), huff.size());
  }));
  results.push_back(bench_kernel("huffman_decode", code_bytes, repeats, [&] {
    const std::vector<std::uint32_t> decoded = huffman_decode_chunked(huff, nullptr);
    require(decoded == codes, "bench: huffman round trip mismatch");
    return crc32(decoded.data(), decoded.size() * sizeof(std::uint32_t));
  }));

  // --- LZSS over the Huffman stream (what sz's lossless stage really sees).
  std::vector<std::uint8_t> lz;
  results.push_back(bench_kernel("lzss_encode", huff.size(), repeats, [&] {
    lz = lzss_encode_chunked(huff, nullptr);
    return crc32(lz.data(), lz.size());
  }));
  results.push_back(bench_kernel("lzss_decode", huff.size(), repeats, [&] {
    const std::vector<std::uint8_t> decoded = lzss_decode_chunked(lz, nullptr);
    require(decoded == huff, "bench: lzss round trip mismatch");
    return crc32(decoded.data(), decoded.size());
  }));

  // --- ZFP block codec via the fixed-rate pipeline (bit-plane coder + lift).
  {
    zfp::Params zp;
    zp.rate = 8.0;
    std::vector<std::uint8_t> stream;
    results.push_back(bench_kernel("zfp_encode", field_bytes, repeats, [&] {
      zfp::compress_into(field, dims, zp, stream, nullptr, nullptr);
      return crc32(stream.data(), stream.size());
    }));
    std::vector<float> recon;
    results.push_back(bench_kernel("zfp_decode", field_bytes, repeats, [&] {
      zfp::decompress_into(stream, recon, nullptr, nullptr);
      return crc32(recon.data(), recon.size() * sizeof(float));
    }));
  }

  // --- full SZ pipeline, serial (prediction + quantization + Huffman + LZSS).
  {
    sz::Params sp;
    sp.abs_error_bound = 0.1;
    std::vector<std::uint8_t> stream;
    results.push_back(bench_kernel("sz_encode", field_bytes, repeats, [&] {
      sz::compress_into(field, dims, sp, stream, nullptr, nullptr);
      return crc32(stream.data(), stream.size());
    }));
    std::vector<float> recon;
    results.push_back(bench_kernel("sz_decode", field_bytes, repeats, [&] {
      sz::decompress_into(stream, recon, nullptr, nullptr);
      return crc32(recon.data(), recon.size() * sizeof(float));
    }));
  }

  // --- FZ stages: the bitshuffle transpose and zero-run sparsifier over
  // the same quantization-code distribution the fz pipeline shuffles
  // (zigzag-remapped so high planes are sparse), then the full pipeline.
  {
    std::vector<std::uint16_t> fz_symbols(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      if (codes[i] == 0) {
        fz_symbols[i] = 0;
      } else {
        const std::int32_t centered = static_cast<std::int32_t>(codes[i]) - (1 << 15);
        const std::uint32_t zigzag = (static_cast<std::uint32_t>(centered) << 1) ^
                                     static_cast<std::uint32_t>(centered >> 31);
        fz_symbols[i] = static_cast<std::uint16_t>(zigzag + 1);
      }
    }
    const std::size_t symbol_bytes = fz_symbols.size() * sizeof(std::uint16_t);
    std::vector<std::uint8_t> planes;
    results.push_back(bench_kernel("fz_bitshuffle", symbol_bytes, repeats, [&] {
      planes = fz::bitshuffle(fz_symbols);
      return crc32(planes.data(), planes.size());
    }));
    results.push_back(bench_kernel("fz_unshuffle", symbol_bytes, repeats, [&] {
      const std::vector<std::uint16_t> back = fz::bitunshuffle(planes, fz_symbols.size());
      require(back == fz_symbols, "bench: bitshuffle round trip mismatch");
      return crc32(back.data(), back.size() * sizeof(std::uint16_t));
    }));
    std::vector<std::uint8_t> sparse;
    results.push_back(bench_kernel("fz_zero_run_encode", planes.size(), repeats, [&] {
      sparse = fz::zero_run_encode(planes);
      return crc32(sparse.data(), sparse.size());
    }));
    results.push_back(bench_kernel("fz_zero_run_decode", planes.size(), repeats, [&] {
      const std::vector<std::uint8_t> back = fz::zero_run_decode(sparse);
      require(back == planes, "bench: zero-run round trip mismatch");
      return crc32(back.data(), back.size());
    }));

    fz::Params fp;
    fp.abs_error_bound = 0.1;
    std::vector<std::uint8_t> stream;
    results.push_back(bench_kernel("fz_encode", field_bytes, repeats, [&] {
      fz::compress_into(field, dims, fp, stream, nullptr, nullptr);
      return crc32(stream.data(), stream.size());
    }));
    std::vector<float> recon;
    results.push_back(bench_kernel("fz_decode", field_bytes, repeats, [&] {
      fz::decompress_into(stream, recon, nullptr, nullptr);
      return crc32(recon.data(), recon.size() * sizeof(float));
    }));
  }

  // Optional reference runs: --pre embeds a previous run for before/after
  // bookkeeping; --baseline gates on regression.
  auto load_rates = [](const std::string& path) {
    std::map<std::string, double> rates;
    const json::Value root = json::parse_file(path);
    for (const auto& entry : root.as_object().at("kernels").as_array()) {
      const auto& obj = entry.as_object();
      rates[obj.at("kernel").as_string()] = obj.at("mb_s").as_number();
    }
    return rates;
  };
  std::map<std::string, double> pre_rates;
  if (!pre_path.empty()) pre_rates = load_rates(pre_path);
  std::map<std::string, double> baseline_rates;
  if (!baseline_path.empty()) baseline_rates = load_rates(baseline_path);

  // --check-crc: byte-identity gate against a committed run. Unlike the
  // throughput gate this is deterministic, so CI can fail hard on any
  // output_crc32 drift (kernels present only on one side are ignored —
  // new kernels may be added between runs).
  std::map<std::string, std::uint32_t> baseline_crcs;
  if (!check_crc_path.empty()) {
    const json::Value root = json::parse_file(check_crc_path);
    for (const auto& entry : root.as_object().at("kernels").as_array()) {
      const auto& obj = entry.as_object();
      baseline_crcs[obj.at("kernel").as_string()] =
          static_cast<std::uint32_t>(obj.at("output_crc32").as_number());
    }
  }

  bool regressed = false;
  bool crc_mismatch = false;
  json::Array entries;
  for (const KernelResult& r : results) {
    const double rate = mb_per_s(r.payload_bytes, r.seconds);
    json::Object e;
    e["kernel"] = r.kernel;
    e["seconds"] = r.seconds;
    e["payload_bytes"] = r.payload_bytes;
    e["mb_s"] = rate;
    e["output_crc32"] = static_cast<double>(r.checksum);
    std::string note;
    if (const auto it = pre_rates.find(r.kernel); it != pre_rates.end()) {
      e["pre_pr_mb_s"] = it->second;
      e["speedup_vs_pre"] = it->second > 0.0 ? rate / it->second : 0.0;
      note = " (x" + std::to_string(it->second > 0.0 ? rate / it->second : 0.0).substr(0, 4) +
             " vs pre)";
    }
    if (const auto it = baseline_rates.find(r.kernel); it != baseline_rates.end()) {
      const bool bad = rate < (1.0 - max_regress) * it->second;
      e["regressed_vs_baseline"] = bad;
      if (bad) {
        regressed = true;
        std::fprintf(stderr, "bench_report: REGRESSION %s %.1f MB/s vs baseline %.1f MB/s\n",
                     r.kernel.c_str(), rate, it->second);
      }
    }
    if (const auto it = baseline_crcs.find(r.kernel); it != baseline_crcs.end()) {
      if (it->second != r.checksum) {
        crc_mismatch = true;
        std::fprintf(stderr, "bench_report: CRC MISMATCH %s output %08x vs baseline %08x\n",
                     r.kernel.c_str(), r.checksum, it->second);
      }
    }
    std::printf("%-16s %10.1f MB/s  %.4fs  crc %08x%s\n", r.kernel.c_str(), rate, r.seconds,
                r.checksum, note.c_str());
    entries.push_back(json::Value(std::move(e)));
  }

  json::Object root;
  root["schema"] = "cosmo-bench-kernels/1";
  root["edge"] = edge;
  root["repeats"] = repeats;
  root["threads"] = 1;
  root["kernels"] = json::Value(std::move(entries));

  const std::string text = json::Value(std::move(root)).dump(2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return (regressed || crc_mismatch) ? 1 : 0;
}

/// Measures the telemetry contract: with tracing disabled (the production
/// default) a TRACE_SPAN costs one relaxed atomic load, so the instrumented
/// hot paths must run at effectively uninstrumented speed. Reported as
/// ns/span x spans-per-round-trip / round-trip seconds; the densest real
/// workload (SZ + ZFP at edge^3) has to stay under 1%.
int run_trace_overhead(std::size_t edge, int repeats, const std::string& out_path) {
  using telemetry::Tracer;
  require(!Tracer::enabled(), "bench: tracer unexpectedly enabled");

  // --- price of one disabled span (best of repeats, amortized over 16M).
  constexpr std::size_t kSpans = 1u << 24;
  double span_loop_s = 1e300;
  for (int rep = 0; rep < std::max(repeats, 3); ++rep) {
    Timer t;
    for (std::size_t i = 0; i < kSpans; ++i) {
      TRACE_SPAN("bench.disabled_span");
    }
    span_loop_s = std::min(span_loop_s, t.seconds());
  }
  const double ns_per_span = span_loop_s / static_cast<double>(kSpans) * 1e9;

  // --- how many spans one SZ + ZFP round trip actually records, and how
  // long it takes with tracing off. Enabled run first (span census), then
  // the timed disabled runs.
  const Dims dims = Dims::d3(edge, edge, edge);
  const std::vector<float> field = nyx_like_field(dims, 11);
  sz::Params sp;
  sp.abs_error_bound = 0.1;
  zfp::Params zp;
  zp.rate = 8.0;
  const auto round_trip = [&] {
    std::vector<std::uint8_t> stream;
    std::vector<float> recon;
    sz::compress_into(field, dims, sp, stream, nullptr, nullptr);
    sz::decompress_into(stream, recon, nullptr, nullptr);
    zfp::compress_into(field, dims, zp, stream, nullptr, nullptr);
    zfp::decompress_into(stream, recon, nullptr, nullptr);
  };

  Tracer::enable();
  round_trip();
  const std::size_t spans_per_trip = Tracer::snapshot().size();
  Tracer::disable();
  Tracer::clear();

  double trip_s = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    Timer t;
    round_trip();
    trip_s = std::min(trip_s, t.seconds());
  }

  const double overhead =
      trip_s > 0.0 ? static_cast<double>(spans_per_trip) * ns_per_span * 1e-9 / trip_s : 0.0;
  const bool ok = overhead < 0.01;
  std::printf("disabled span        %.2f ns\n", ns_per_span);
  std::printf("spans per round trip %zu\n", spans_per_trip);
  std::printf("round trip (traced code, tracing off)  %.4fs\n", trip_s);
  std::printf("implied overhead     %.5f%% (%s 1%% contract)\n", overhead * 100.0,
              ok ? "within" : "VIOLATES");

  json::Object root;
  root["schema"] = "cosmo-bench-trace-overhead/1";
  root["edge"] = edge;
  root["repeats"] = repeats;
  root["disabled_span_ns"] = ns_per_span;
  root["spans_per_round_trip"] = spans_per_trip;
  root["round_trip_seconds"] = trip_s;
  root["overhead_fraction"] = overhead;
  root["within_contract"] = ok;
  const std::string text = json::Value(std::move(root)).dump(2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --optimizer: exhaustive vs guided Section V-D search
// ---------------------------------------------------------------------------

constexpr double kOptimizerCrBand = 0.02;     ///< guided CR may be this much worse
constexpr double kOptimizerEvalFraction = 1.0 / 3.0;  ///< Nyx guided/exhaustive evals
constexpr double kOptimizerMinSpeedup = 3.0;  ///< Nyx exhaustive/guided wall

/// Search-cost + choice summary of one optimize run, for the JSON report.
json::Object optimizer_run_entry(const foresight::OptimizationResult& r) {
  json::Object s;
  s["candidates"] = r.stats.candidates;
  s["full_evals"] = r.stats.full_evals;
  s["probes"] = r.stats.probes;
  s["pruned"] = r.stats.pruned;
  s["rate_estimates"] = r.stats.rate_estimates;
  s["baseline_cache_hits"] = r.stats.baseline_cache_hits;
  s["wall_seconds"] = r.stats.wall_seconds;
  s["overall_ratio"] = r.overall_ratio;
  s["all_fields_ok"] = r.all_fields_ok;
  json::Array choices;
  for (const auto& f : r.per_field) {
    json::Object c;
    c["field"] = f.field;
    c["found"] = f.found;
    if (f.found) {
      c["mode"] = f.chosen.config.mode;
      c["value"] = f.chosen.config.value;
      c["ratio"] = f.chosen.ratio;
      c["metric_deviation"] = f.chosen.metric_deviation;
    }
    choices.push_back(json::Value(std::move(c)));
  }
  s["choices"] = json::Value(std::move(choices));
  return s;
}

/// Compares guided against exhaustive on one dataset, appending any gate
/// violations to \p failures. \p gate_evals turns on the Nyx-only cost
/// gates (eval fraction, wall speedup).
json::Object optimizer_compare(const std::string& dataset,
                               const foresight::OptimizationResult& ex,
                               const foresight::OptimizationResult& gd, bool gate_evals,
                               std::vector<std::string>& failures) {
  json::Object e;
  e["dataset"] = dataset;
  e["exhaustive"] = json::Value(optimizer_run_entry(ex));
  e["guided"] = json::Value(optimizer_run_entry(gd));

  const double fraction =
      ex.stats.full_evals > 0
          ? static_cast<double>(gd.stats.full_evals) / static_cast<double>(ex.stats.full_evals)
          : 1.0;
  const double speedup =
      gd.stats.wall_seconds > 0.0 ? ex.stats.wall_seconds / gd.stats.wall_seconds : 0.0;
  e["eval_fraction"] = fraction;
  e["wall_speedup"] = speedup;

  bool choices_match = ex.per_field.size() == gd.per_field.size();
  double worst_cr_shortfall = 0.0;
  for (std::size_t i = 0; i < ex.per_field.size() && i < gd.per_field.size(); ++i) {
    const auto& fe = ex.per_field[i];
    const auto& fg = gd.per_field[i];
    if (fe.found != fg.found ||
        (fe.found && (fe.chosen.config.mode != fg.chosen.config.mode ||
                      fe.chosen.config.value != fg.chosen.config.value))) {
      choices_match = false;
    }
    if (!fe.found) continue;  // nothing for guided to match
    if (!fg.found || !fg.chosen.acceptable) {
      failures.push_back(dataset + "/" + fe.field + ": guided found no acceptable config");
      continue;
    }
    const double shortfall = fe.chosen.ratio > 0.0 ? 1.0 - fg.chosen.ratio / fe.chosen.ratio : 0.0;
    worst_cr_shortfall = std::max(worst_cr_shortfall, shortfall);
    if (shortfall > kOptimizerCrBand) {
      failures.push_back(dataset + "/" + fe.field + ": guided CR " +
                         std::to_string(fg.chosen.ratio) + " is more than 2% below exhaustive " +
                         std::to_string(fe.chosen.ratio));
    }
  }
  e["choices_match"] = choices_match;
  e["worst_cr_shortfall"] = worst_cr_shortfall;
  if (gate_evals) {
    if (fraction > kOptimizerEvalFraction + 1e-9) {
      failures.push_back(dataset + ": guided used " + std::to_string(gd.stats.full_evals) +
                         " of " + std::to_string(ex.stats.full_evals) +
                         " full evals (> 1/3)");
    }
    if (speedup < kOptimizerMinSpeedup) {
      failures.push_back(dataset + ": optimizer wall speedup " + std::to_string(speedup) +
                         " < 3x");
    }
  }
  std::printf("%-5s exhaustive %3zu evals %7.2fs  guided %3zu evals %7.2fs  "
              "(%.0f%% of evals, x%.2f wall)  choices %s\n",
              dataset.c_str(), ex.stats.full_evals, ex.stats.wall_seconds,
              gd.stats.full_evals, gd.stats.wall_seconds, fraction * 100.0, speedup,
              choices_match ? "match" : "DIFFER");
  return e;
}

/// Runs exhaustive and guided search on seeded Nyx + HACC snapshots with
/// sz-cpu and writes BENCH_optimizer.json. The lattices are deliberately
/// denser than the codec's default sweep — the point of guided search is
/// that frontier resolution no longer costs one full evaluation per bound.
int run_optimizer_bench(std::size_t dim, std::size_t particles, std::size_t threads,
                        const std::string& out_path) {
  using namespace foresight;
  const auto codec = make_compressor("sz-cpu", nullptr);

  OptimizerOptions exhaustive;
  exhaustive.threads = threads;
  OptimizerOptions guided;
  guided.search = SearchMode::kGuided;
  guided.probes = 3;
  guided.threads = threads;

  std::vector<std::string> failures;
  json::Array datasets;

  // ---------------- Nyx ----------------
  NyxConfig nyx_cfg;
  nyx_cfg.dim = dim;
  const io::Container nyx = generate_nyx(nyx_cfg);
  std::map<std::string, std::vector<CompressorConfig>> nyx_cands;
  for (const auto& variable : nyx.variables) {
    nyx_cands[variable.field.name] = abs_sweep_for_field(variable.field, 2e-6, 2e-2, 28);
  }
  const auto nyx_ex = optimize_grid_dataset(nyx, *codec, nyx_cands, 0.01, 0.5, exhaustive);
  const auto nyx_gd = optimize_grid_dataset(nyx, *codec, nyx_cands, 0.01, 0.5, guided);
  if (std::getenv("BENCH_OPT_DUMP")) {
    std::printf("--- nyx exhaustive ---\n%s\n--- nyx guided ---\n%s\n",
                format_optimization(nyx_ex).c_str(), format_optimization(nyx_gd).c_str());
  }
  datasets.push_back(
      json::Value(optimizer_compare("nyx", nyx_ex, nyx_gd, /*gate_evals=*/true, failures)));

  // ---------------- HACC ----------------
  HaccConfig hacc_cfg;
  hacc_cfg.particles = particles;
  hacc_cfg.halo_count = std::max<std::size_t>(40, particles / 1500);
  const io::Container hacc = generate_hacc(hacc_cfg);
  analysis::FofParams fof;
  fof.linking_length = 1.0;
  fof.min_members = 20;
  const auto position_cands = abs_sweep_for_field(hacc.find("x").field, 4e-6, 4e-3, 12);
  const auto velocity_cands = pwrel_sweep(1e-3, 2e-1, 8);
  const auto hacc_ex = optimize_particle_dataset(hacc, *codec, position_cands, velocity_cands,
                                                 fof, 0.05, 0.05, exhaustive);
  const auto hacc_gd = optimize_particle_dataset(hacc, *codec, position_cands, velocity_cands,
                                                 fof, 0.05, 0.05, guided);
  datasets.push_back(
      json::Value(optimizer_compare("hacc", hacc_ex, hacc_gd, /*gate_evals=*/false, failures)));

  for (const auto& f : failures) std::fprintf(stderr, "bench_report: GATE: %s\n", f.c_str());

  json::Object root;
  root["schema"] = "cosmo-bench-optimizer/1";
  root["codec"] = "sz-cpu";
  root["nyx_dim"] = dim;
  root["hacc_particles"] = particles;
  root["threads"] = threads;
  root["nyx_lattice"] = "abs, 28 log-spaced range fractions in [2e-6, 2e-2] per field";
  root["hacc_position_lattice"] = "abs, 12 log-spaced range fractions in [4e-6, 4e-3]";
  root["hacc_velocity_lattice"] = "pw_rel, 8 log-spaced bounds in [1e-3, 2e-1]";
  json::Object gates;
  gates["cr_within"] = kOptimizerCrBand;
  gates["nyx_eval_fraction_max"] = kOptimizerEvalFraction;
  gates["nyx_wall_speedup_min"] = kOptimizerMinSpeedup;
  root["gates"] = json::Value(std::move(gates));
  root["datasets"] = json::Value(std::move(datasets));
  json::Array failure_rows;
  for (const auto& f : failures) failure_rows.push_back(json::Value(f));
  root["failures"] = json::Value(std::move(failure_rows));
  root["ok"] = failures.empty();

  const std::string text = json::Value(std::move(root)).dump(2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t edge = 256;
  // Every kernel runs `repeats` times and reports the best: single-shot
  // numbers drift 0.93–0.99x run to run, which made the --max-regress gate
  // noisy. 3 reps keeps the full --kernels pass under a minute at edge 256.
  int repeats = 3;
  bool kernels = false;
  bool trace_overhead = false;
  bool optimizer = false;
  std::size_t opt_dim = 64;
  std::size_t opt_particles = 60000;
  std::size_t opt_threads = 1;
  std::string out_path;
  std::string pre_path;
  std::string baseline_path;
  std::string check_crc_path;
  double max_regress = 0.30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--edge" && i + 1 < argc) {
      edge = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if ((arg == "--reps" || arg == "--repeats") && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--kernels") {
      kernels = true;
    } else if (arg == "--trace-overhead") {
      trace_overhead = true;
    } else if (arg == "--optimizer") {
      optimizer = true;
    } else if (arg == "--dim" && i + 1 < argc) {
      opt_dim = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--particles" && i + 1 < argc) {
      opt_particles = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      opt_threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--pre" && i + 1 < argc) {
      pre_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--check-crc" && i + 1 < argc) {
      check_crc_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  if (edge < 8 || repeats < 1) return usage();
  if (out_path.empty()) {
    out_path = optimizer ? "BENCH_optimizer.json"
                         : (trace_overhead ? "BENCH_trace_overhead.json"
                                           : (kernels ? "BENCH_kernels.json"
                                                      : "BENCH_throughput.json"));
  }
  if (optimizer) {
    if (opt_dim < 16 || opt_particles < 1000) return usage();
    try {
      return run_optimizer_bench(opt_dim, opt_particles, opt_threads, out_path);
    } catch (const Error& e) {
      std::fprintf(stderr, "bench_report: %s\n", e.what());
      return 1;
    }
  }
  if (trace_overhead) {
    try {
      return run_trace_overhead(edge, repeats, out_path);
    } catch (const Error& e) {
      std::fprintf(stderr, "bench_report: %s\n", e.what());
      return 1;
    }
  }
  if (kernels) {
    try {
      return run_kernel_bench(edge, repeats, out_path, pre_path, baseline_path, max_regress,
                              check_crc_path);
    } catch (const Error& e) {
      std::fprintf(stderr, "bench_report: %s\n", e.what());
      return 1;
    }
  }

  const Dims dims = Dims::d3(edge, edge, edge);
  const std::size_t field_bytes = dims.count() * sizeof(float);
  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_counts = {1, 2, 4};

  struct FieldSpec {
    std::string name;
    std::vector<float> data;
  };
  std::vector<FieldSpec> fields;
  fields.push_back({"nyx_baryon_density", nyx_like_field(dims, 11)});
  fields.push_back({"hacc_x", hacc_like_field(dims, 12)});

  sz::Params sz_params;
  sz_params.abs_error_bound = 0.1;
  zfp::Params zfp_params;
  zfp_params.rate = 8.0;

  json::Array entries;
  bool all_identical = true;

  for (const auto& field : fields) {
    for (const std::string codec : {"sz", "zfp"}) {
      auto compress_into = [&](std::vector<std::uint8_t>& out, ThreadPool* pool) {
        if (codec == "sz") {
          sz::compress_into(field.data, dims, sz_params, out, nullptr, pool);
        } else {
          zfp::compress_into(field.data, dims, zfp_params, out, nullptr, pool);
        }
      };
      auto decompress_into = [&](const std::vector<std::uint8_t>& bytes,
                                 std::vector<float>& out, ThreadPool* pool) {
        if (codec == "sz") {
          sz::decompress_into(bytes, out, nullptr, pool);
        } else {
          zfp::decompress_into(bytes, out, nullptr, pool);
        }
      };

      RunResult baseline;  // threads == 1
      for (const std::size_t threads : thread_counts) {
        RunResult r = run_codec(compress_into, decompress_into, threads, repeats);
        const bool is_baseline = threads == 1;
        if (is_baseline) baseline = std::move(r);
        const RunResult& cur = is_baseline ? baseline : r;

        const bool stream_identical =
            cur.bytes.size() == baseline.bytes.size() &&
            (cur.bytes.empty() ||
             std::memcmp(cur.bytes.data(), baseline.bytes.data(), cur.bytes.size()) == 0);
        const bool recon_identical =
            cur.recon.size() == baseline.recon.size() &&
            (cur.recon.empty() ||
             std::memcmp(cur.recon.data(), baseline.recon.data(),
                         cur.recon.size() * sizeof(float)) == 0);
        all_identical = all_identical && stream_identical && recon_identical;

        const double t1_total = baseline.compress.seconds + baseline.decompress.seconds;
        const double tn_total = cur.compress.seconds + cur.decompress.seconds;
        const double measured_c = cur.compress.seconds > 0.0
                                      ? baseline.compress.seconds / cur.compress.seconds
                                      : 0.0;
        const double measured_d =
            cur.decompress.seconds > 0.0
                ? baseline.decompress.seconds / cur.decompress.seconds
                : 0.0;
        const double measured_total = tn_total > 0.0 ? t1_total / tn_total : 0.0;
        // Combined parallel fraction weights each phase by its wall share.
        const double combined_fraction =
            tn_total > 0.0
                ? (cur.compress.parallel_fraction * cur.compress.seconds +
                   cur.decompress.parallel_fraction * cur.decompress.seconds) /
                      tn_total
                : 0.0;
        const bool modeled = threads > 1 && hw_threads < threads;

        json::Object e;
        e["codec"] = codec;
        e["field"] = field.name;
        e["threads"] = threads;
        e["compress_seconds"] = cur.compress.seconds;
        e["decompress_seconds"] = cur.decompress.seconds;
        e["compress_mb_s"] = mb_per_s(field_bytes, cur.compress.seconds);
        e["decompress_mb_s"] = mb_per_s(field_bytes, cur.decompress.seconds);
        e["compressed_bytes"] = cur.bytes.size();
        e["stream_identical_to_1_thread"] = stream_identical;
        e["recon_identical_to_1_thread"] = recon_identical;
        e["parallel_fraction_compress"] = cur.compress.parallel_fraction;
        e["parallel_fraction_decompress"] = cur.decompress.parallel_fraction;
        e["modeled"] = modeled;
        e["measured_wall_speedup"] = measured_total;
        if (modeled) {
          e["compress_speedup"] = amdahl(cur.compress.parallel_fraction, threads);
          e["decompress_speedup"] = amdahl(cur.decompress.parallel_fraction, threads);
          e["combined_speedup"] = amdahl(combined_fraction, threads);
        } else {
          e["compress_speedup"] = threads == 1 ? 1.0 : measured_c;
          e["decompress_speedup"] = threads == 1 ? 1.0 : measured_d;
          e["combined_speedup"] = threads == 1 ? 1.0 : measured_total;
        }
        entries.push_back(json::Value(std::move(e)));

        std::printf(
            "%-4s %-20s threads=%zu  comp %8.1f MB/s  dec %8.1f MB/s  "
            "x%.2f%s  bytes %s\n",
            codec.c_str(), field.name.c_str(), threads,
            mb_per_s(field_bytes, cur.compress.seconds),
            mb_per_s(field_bytes, cur.decompress.seconds),
            entries.back().at("combined_speedup").as_number(),
            modeled ? " (modeled)" : "", stream_identical ? "identical" : "DIFFER");
      }
    }
  }

  json::Object root;
  root["schema"] = "cosmo-bench-throughput/1";
  root["edge"] = edge;
  root["field_bytes"] = field_bytes;
  root["repeats"] = repeats;
  root["hardware_threads"] = hw_threads;
  root["parallel_efficiency_model"] = kParallelEfficiency;
  root["all_streams_identical"] = all_identical;
  root["entries"] = json::Value(std::move(entries));

  const std::string text = json::Value(std::move(root)).dump(2) + "\n";
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
