/// \file comm.hpp
/// \brief An in-process message-passing substrate (MPI-flavored).
///
/// HACC decomposes its box over MPI ranks (the paper's dataset comes from
/// an 8x8x4 run, Section IV-B4) and Foresight's PAT fans work out over a
/// cluster. This module provides the communication primitives those
/// scenarios need — point-to-point send/recv, barrier, broadcast, gather,
/// and allreduce — implemented over threads, one thread per rank, with
/// MPI-like semantics: messages are matched by (source, tag), collectives
/// must be entered by every rank.
///
/// Following the MPI guidance in the HPC guides, all parallelism is
/// explicit: the user function receives its Comm handle and decides what
/// to communicate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace cosmo::mpi {

/// Wildcard source for recv(), like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;

/// A byte message.
using Message = std::vector<std::uint8_t>;

class World;

/// Per-rank communicator handle (value-semantic view onto the World).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Sends \p payload to \p dest with \p tag (buffered, non-blocking-ish:
  /// enqueues and returns).
  void send(int dest, int tag, Message payload);

  /// Receives the next message matching (source, tag); blocks until one
  /// arrives. \p source may be kAnySource. Returns (actual_source, payload).
  std::pair<int, Message> recv(int source, int tag);

  /// Collective barrier.
  void barrier();

  /// Broadcast from \p root: root's \p value is returned on every rank.
  Message broadcast(int root, Message value);

  /// Gather to \p root: returns all ranks' contributions (rank order) on
  /// root, empty elsewhere.
  std::vector<Message> gather(int root, Message value);

  /// Allreduce of a double with the given associative op.
  double allreduce(double value, const std::function<double(double, double)>& op);

  /// Sum-allreduce convenience.
  double allreduce_sum(double value);

  /// Max-allreduce convenience.
  double allreduce_max(double value);

 private:
  friend class World;
  friend void run_world(int, const std::function<void(Comm&)>&);
  Comm(World* world, int rank, int size) : world_(world), rank_(rank), size_(size) {}

  World* world_;
  int rank_;
  int size_;
  /// Per-collective sequence number. Every rank executes the same ordered
  /// sequence of collectives (the MPI contract), so the counters agree and
  /// give each collective a unique internal tag — without this, a fast
  /// rank's contribution to collective N+1 could be matched into the
  /// root's collective N (both would share one tag) and leave a slot of
  /// the earlier gather empty.
  std::uint32_t collective_seq_ = 0;
};

/// Launches \p size ranks, each running \p body(comm), and joins them.
/// Exceptions from any rank are collected; the first is rethrown after all
/// ranks finish or abort.
void run_world(int size, const std::function<void(Comm&)>& body);

/// The shared state behind a run_world() invocation (exposed for Comm).
class World {
 public:
  explicit World(int size);

  void send(int src, int dest, int tag, Message payload);
  std::pair<int, Message> recv(int self, int source, int tag);
  void enter_barrier(int self);
  void abort();  ///< wakes all blocked ranks with an error

  [[nodiscard]] int size() const { return size_; }

 private:
  struct Envelope {
    int source;
    int tag;
    Message payload;
  };

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Envelope>> mailboxes_;
  // Barrier generation counting.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool aborted_ = false;
};

}  // namespace cosmo::mpi
