#include "mpi/domain.hpp"

#include <cmath>

namespace cosmo::mpi {

DomainDecomposition::RankCoord DomainDecomposition::coord_of(std::size_t rank) const {
  require(rank < rank_count(), "domain: rank out of range");
  return {rank % rx, (rank / rx) % ry, rank / (rx * ry)};
}

std::size_t DomainDecomposition::rank_of_coord(std::size_t ix, std::size_t iy,
                                               std::size_t iz) const {
  require(ix < rx && iy < ry && iz < rz, "domain: coord out of range");
  return (iz * ry + iy) * rx + ix;
}

DomainDecomposition::Slab DomainDecomposition::slab_of(std::size_t rank) const {
  const RankCoord c = coord_of(rank);
  const double dx = box / static_cast<double>(rx);
  const double dy = box / static_cast<double>(ry);
  const double dz = box / static_cast<double>(rz);
  return {static_cast<double>(c.ix) * dx,     static_cast<double>(c.ix + 1) * dx,
          static_cast<double>(c.iy) * dy,     static_cast<double>(c.iy + 1) * dy,
          static_cast<double>(c.iz) * dz,     static_cast<double>(c.iz + 1) * dz};
}

std::size_t DomainDecomposition::owner_of(double x, double y, double z) const {
  auto cell = [this](double v, std::size_t n) {
    double w = std::fmod(v, box);
    if (w < 0.0) w += box;
    auto c = static_cast<std::size_t>(w / box * static_cast<double>(n));
    return c >= n ? n - 1 : c;
  };
  return rank_of_coord(cell(x, rx), cell(y, ry), cell(z, rz));
}

std::vector<std::vector<std::uint32_t>> partition_particles(
    const DomainDecomposition& domain, std::span<const float> x,
    std::span<const float> y, std::span<const float> z) {
  require(x.size() == y.size() && y.size() == z.size(),
          "partition_particles: coordinate size mismatch");
  std::vector<std::vector<std::uint32_t>> out(domain.rank_count());
  for (std::size_t p = 0; p < x.size(); ++p) {
    out[domain.owner_of(x[p], y[p], z[p])].push_back(static_cast<std::uint32_t>(p));
  }
  return out;
}

}  // namespace cosmo::mpi
