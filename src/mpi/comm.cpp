#include "mpi/comm.hpp"

#include <cstring>
#include <thread>

namespace cosmo::mpi {

World::World(int size) : size_(size), mailboxes_(static_cast<std::size_t>(size)) {
  require(size >= 1, "mpi: world size must be >= 1");
}

void World::send(int src, int dest, int tag, Message payload) {
  require(dest >= 0 && dest < size_, "mpi: send to invalid rank");
  {
    std::lock_guard lock(mu_);
    mailboxes_[static_cast<std::size_t>(dest)].push_back({src, tag, std::move(payload)});
  }
  cv_.notify_all();
}

std::pair<int, Message> World::recv(int self, int source, int tag) {
  std::unique_lock lock(mu_);
  auto& box = mailboxes_[static_cast<std::size_t>(self)];
  for (;;) {
    if (aborted_) throw Error("mpi: world aborted while rank was receiving");
    for (auto it = box.begin(); it != box.end(); ++it) {
      if ((source == kAnySource || it->source == source) && it->tag == tag) {
        const int actual = it->source;
        Message payload = std::move(it->payload);
        box.erase(it);
        return {actual, std::move(payload)};
      }
    }
    cv_.wait(lock);
  }
}

void World::enter_barrier(int self) {
  (void)self;
  std::unique_lock lock(mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, my_generation] {
    return barrier_generation_ != my_generation || aborted_;
  });
  if (aborted_) throw Error("mpi: world aborted during barrier");
}

void World::abort() {
  {
    std::lock_guard lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Comm::send(int dest, int tag, Message payload) {
  world_->send(rank_, dest, tag, std::move(payload));
}

std::pair<int, Message> Comm::recv(int source, int tag) {
  return world_->recv(rank_, source, tag);
}

void Comm::barrier() { world_->enter_barrier(rank_); }

namespace {
constexpr int kCollectiveBase = -1000;
constexpr int kKindBroadcast = 0;
constexpr int kKindGather = 1;

int collective_tag(std::uint32_t seq, int kind) {
  return kCollectiveBase - static_cast<int>(seq) * 2 - kind;
}
}  // namespace

Message Comm::broadcast(int root, Message value) {
  const int tag = collective_tag(collective_seq_++, kKindBroadcast);
  if (size_ == 1) return value;
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root) send(r, tag, value);
    }
    return value;
  }
  return recv(root, tag).second;
}

std::vector<Message> Comm::gather(int root, Message value) {
  const int tag = collective_tag(collective_seq_++, kKindGather);
  if (rank_ != root) {
    send(root, tag, std::move(value));
    return {};
  }
  std::vector<Message> out(static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(root)] = std::move(value);
  for (int i = 0; i < size_ - 1; ++i) {
    auto [src, payload] = recv(kAnySource, tag);
    out[static_cast<std::size_t>(src)] = std::move(payload);
  }
  return out;
}

double Comm::allreduce(double value, const std::function<double(double, double)>& op) {
  // Gather to rank 0, reduce, broadcast back — O(P) but simple and correct.
  Message mine(sizeof(double));
  std::memcpy(mine.data(), &value, sizeof(double));
  auto all = gather(0, std::move(mine));
  Message result(sizeof(double));
  if (rank_ == 0) {
    double acc = value;
    bool first = true;
    for (const auto& m : all) {
      double v;
      std::memcpy(&v, m.data(), sizeof(double));
      if (first) {
        acc = v;
        first = false;
      } else {
        acc = op(acc, v);
      }
    }
    std::memcpy(result.data(), &acc, sizeof(double));
  }
  result = broadcast(0, std::move(result));
  double out;
  std::memcpy(&out, result.data(), sizeof(double));
  return out;
}

double Comm::allreduce_sum(double value) {
  return allreduce(value, [](double a, double b) { return a + b; });
}

double Comm::allreduce_max(double value) {
  return allreduce(value, [](double a, double b) { return a > b ? a : b; });
}

void run_world(int size, const std::function<void(Comm&)>& body) {
  World world(size);
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &err_mu, &first_error, r, size] {
      Comm comm(&world, r, size);
      try {
        body(comm);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cosmo::mpi
