/// \file domain.hpp
/// \brief HACC-style spatial domain decomposition over a rank grid.
///
/// "the HACC simulation used to generate this dataset runs with 8x8x4 MPI
/// processes, and each MPI process saves its own portion of the dataset,
/// leading to 8x8x4 data partitions" (paper Section IV-B4). This module
/// maps a periodic box onto an rx x ry x rz rank grid, assigns particles
/// to owning ranks, and describes each rank's slab — the structure the
/// per-rank compression experiment and the dimension-conversion rationale
/// rest on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace cosmo::mpi {

/// A 3-D rank grid over a cubic box.
struct DomainDecomposition {
  std::size_t rx = 1, ry = 1, rz = 1;  ///< ranks per axis (paper: 8, 8, 4)
  double box = 256.0;

  [[nodiscard]] std::size_t rank_count() const { return rx * ry * rz; }

  /// Rank coordinates of linear rank r (row-major: x fastest).
  struct RankCoord {
    std::size_t ix, iy, iz;
  };
  [[nodiscard]] RankCoord coord_of(std::size_t rank) const;
  [[nodiscard]] std::size_t rank_of_coord(std::size_t ix, std::size_t iy,
                                          std::size_t iz) const;

  /// The axis-aligned slab owned by a rank ([lo, hi) per axis).
  struct Slab {
    double x0, x1, y0, y1, z0, z1;

    [[nodiscard]] bool contains(double x, double y, double z) const {
      return x >= x0 && x < x1 && y >= y0 && y < y1 && z >= z0 && z < z1;
    }
  };
  [[nodiscard]] Slab slab_of(std::size_t rank) const;

  /// Owning rank of a position (positions exactly at the box edge wrap).
  [[nodiscard]] std::size_t owner_of(double x, double y, double z) const;
};

/// Partitions particle indices by owning rank. Returns rank_count() index
/// lists (each sorted ascending, preserving file order within a rank —
/// exactly what per-rank GenericIO blocks hold).
std::vector<std::vector<std::uint32_t>> partition_particles(
    const DomainDecomposition& domain, std::span<const float> x,
    std::span<const float> y, std::span<const float> z);

}  // namespace cosmo::mpi
