/// \file fft.hpp
/// \brief Iterative radix-2 FFT, 1-D and 3-D, for power-of-two sizes.
///
/// Substrate for the matter power spectrum P(k) analysis (paper Metric 3b)
/// and for generating Gaussian random fields with a prescribed spectrum in
/// the synthetic Nyx generator. Unnormalized forward transform; inverse
/// divides by N (so inverse(forward(x)) == x).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/field.hpp"
#include "common/thread_pool.hpp"

namespace cosmo {

using cplx = std::complex<double>;

/// True when \p n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// In-place 1-D FFT of length data.size() (must be a power of two).
/// \p inverse selects the inverse transform (includes the 1/N scale).
/// Twiddle factors come from a process-wide table cached per transform
/// size, so repeated transforms of one size (the fft_3d pencil loops)
/// never recompute trigonometry.
void fft_1d(std::span<cplx> data, bool inverse);

/// Out-of-place 3-D FFT over a row-major nx*ny*nz array (each extent a
/// power of two). Transforms along all three axes; the independent pencils
/// of each pass run in parallel on \p pool, and the strided y/z passes move
/// data through cache-blocked transpose tiles. Results are bitwise
/// identical for any thread count (each pencil's arithmetic is unchanged).
void fft_3d(std::vector<cplx>& data, const Dims& dims, bool inverse,
            ThreadPool* pool = nullptr);

/// Convenience: forward 3-D FFT of a real field into a complex spectrum.
std::vector<cplx> fft_3d_real(std::span<const float> values, const Dims& dims,
                              ThreadPool* pool = nullptr);

/// Number of distinct transform sizes the twiddle cache currently holds
/// (observability hook for tests).
std::size_t& fft_twiddle_cache_entries();

/// Naive O(N^2) DFT used as the correctness oracle in tests.
std::vector<cplx> dft_reference(std::span<const cplx> data, bool inverse);

}  // namespace cosmo
