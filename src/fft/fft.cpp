#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

namespace cosmo {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_1d(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  require(is_pow2(n), "fft_1d: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies with per-stage twiddle recurrence.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void fft_3d(std::vector<cplx>& data, const Dims& dims, bool inverse) {
  require(data.size() == dims.count(), "fft_3d: size mismatch");
  require(is_pow2(dims.nx) && is_pow2(dims.ny) && is_pow2(dims.nz),
          "fft_3d: extents must be powers of two");
  const std::size_t nx = dims.nx, ny = dims.ny, nz = dims.nz;

  // Along x: contiguous rows.
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      fft_1d(std::span(data.data() + dims.index(0, y, z), nx), inverse);
    }
  }
  // Along y: gather/scatter strided columns.
  if (ny > 1) {
    std::vector<cplx> line(ny);
    for (std::size_t z = 0; z < nz; ++z) {
      for (std::size_t x = 0; x < nx; ++x) {
        for (std::size_t y = 0; y < ny; ++y) line[y] = data[dims.index(x, y, z)];
        fft_1d(line, inverse);
        for (std::size_t y = 0; y < ny; ++y) data[dims.index(x, y, z)] = line[y];
      }
    }
  }
  // Along z.
  if (nz > 1) {
    std::vector<cplx> line(nz);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        for (std::size_t z = 0; z < nz; ++z) line[z] = data[dims.index(x, y, z)];
        fft_1d(line, inverse);
        for (std::size_t z = 0; z < nz; ++z) data[dims.index(x, y, z)] = line[z];
      }
    }
  }
}

std::vector<cplx> fft_3d_real(std::span<const float> values, const Dims& dims) {
  require(values.size() == dims.count(), "fft_3d_real: size mismatch");
  std::vector<cplx> data(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) data[i] = cplx(values[i], 0.0);
  fft_3d(data, dims, /*inverse=*/false);
  return data;
}

std::vector<cplx> dft_reference(std::span<const cplx> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * std::numbers::pi * static_cast<double>(k * t) / static_cast<double>(n);
      acc += data[t] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace cosmo
