#include "fft/fft.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "common/telemetry.hpp"

namespace cosmo {

namespace {

/// Forward twiddle factors for a size-n transform, all stages concatenated:
/// the stage with half-length h (h = 1, 2, ..., n/2) owns entries
/// [h - 1, 2h - 1) holding exp(-2*pi*i*k / (2h)) for k in [0, h). The
/// inverse transform conjugates at the use site, so one table serves both
/// directions.
const std::vector<cplx>& twiddles_for(std::size_t n) {
  static std::mutex mu;
  static std::unordered_map<std::size_t, std::unique_ptr<const std::vector<cplx>>> cache;
  static std::size_t entry_count = 0;
  std::lock_guard lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::vector<cplx> tw(n - 1);
    for (std::size_t half = 1; half < n; half <<= 1) {
      const double ang = -2.0 * std::numbers::pi / static_cast<double>(2 * half);
      for (std::size_t k = 0; k < half; ++k) {
        tw[half - 1 + k] = cplx(std::cos(ang * static_cast<double>(k)),
                                std::sin(ang * static_cast<double>(k)));
      }
    }
    it = cache.emplace(n, std::make_unique<const std::vector<cplx>>(std::move(tw))).first;
    ++entry_count;
  }
  fft_twiddle_cache_entries() = entry_count;
  return *it->second;
}

/// Edge of the gather/scatter tile for the strided y/z passes: 16 pencils
/// are transposed through cache-resident storage at a time, so the unit
/// stride runs along the tile instead of jumping a full pencil per element.
constexpr std::size_t kTile = 16;

}  // namespace

std::size_t& fft_twiddle_cache_entries() {
  static std::size_t count = 0;
  return count;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_1d(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  require(is_pow2(n), "fft_1d: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies with cached per-size twiddle tables (exact trig per entry
  // instead of the w *= wlen recurrence, which drifts by ~len ulps across a
  // stage).
  const std::vector<cplx>& tw = twiddles_for(n);
  for (std::size_t half = 1; half < n; half <<= 1) {
    const cplx* stage = tw.data() + (half - 1);
    const std::size_t len = half * 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx w = inverse ? std::conj(stage[k]) : stage[k];
        const cplx u = data[i + k];
        const cplx v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void fft_3d(std::vector<cplx>& data, const Dims& dims, bool inverse, ThreadPool* pool) {
  TRACE_SPAN("fft.3d");
  require(data.size() == dims.count(), "fft_3d: size mismatch");
  require(is_pow2(dims.nx) && is_pow2(dims.ny) && is_pow2(dims.nz),
          "fft_3d: extents must be powers of two");
  const std::size_t nx = dims.nx, ny = dims.ny, nz = dims.nz;
  // Warm the caches serially so threads only ever read the tables.
  twiddles_for(nx);
  if (ny > 1) twiddles_for(ny);
  if (nz > 1) twiddles_for(nz);

  // Pencils along one axis are independent, and each writes only its own
  // elements, so every pass parallelizes over pencil groups with output
  // identical to the serial order.

  // Along x: contiguous rows, one pencil per (y, z).
  parallel_for(pool, ny * nz, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t y = r % ny;
      const std::size_t z = r / ny;
      fft_1d(std::span(data.data() + dims.index(0, y, z), nx), inverse);
    }
  }, /*min_grain=*/4);

  // Along y: per z-plane, columns gathered through a kTile-wide transpose
  // tile so the strided traversal reads/writes kTile consecutive elements
  // per row instead of one.
  if (ny > 1) {
    parallel_for(pool, nz, [&](std::size_t lo, std::size_t hi) {
      std::vector<cplx> tile(kTile * ny);
      for (std::size_t z = lo; z < hi; ++z) {
        for (std::size_t x0 = 0; x0 < nx; x0 += kTile) {
          const std::size_t tx = std::min(kTile, nx - x0);
          for (std::size_t y = 0; y < ny; ++y) {
            const cplx* row = data.data() + dims.index(x0, y, z);
            for (std::size_t dx = 0; dx < tx; ++dx) tile[dx * ny + y] = row[dx];
          }
          for (std::size_t dx = 0; dx < tx; ++dx) {
            fft_1d(std::span(tile.data() + dx * ny, ny), inverse);
          }
          for (std::size_t y = 0; y < ny; ++y) {
            cplx* row = data.data() + dims.index(x0, y, z);
            for (std::size_t dx = 0; dx < tx; ++dx) row[dx] = tile[dx * ny + y];
          }
        }
      }
    }, /*min_grain=*/1);
  }

  // Along z: same tiling, one y-row of columns per iteration.
  if (nz > 1) {
    parallel_for(pool, ny, [&](std::size_t lo, std::size_t hi) {
      std::vector<cplx> tile(kTile * nz);
      for (std::size_t y = lo; y < hi; ++y) {
        for (std::size_t x0 = 0; x0 < nx; x0 += kTile) {
          const std::size_t tx = std::min(kTile, nx - x0);
          for (std::size_t z = 0; z < nz; ++z) {
            const cplx* row = data.data() + dims.index(x0, y, z);
            for (std::size_t dx = 0; dx < tx; ++dx) tile[dx * nz + z] = row[dx];
          }
          for (std::size_t dx = 0; dx < tx; ++dx) {
            fft_1d(std::span(tile.data() + dx * nz, nz), inverse);
          }
          for (std::size_t z = 0; z < nz; ++z) {
            cplx* row = data.data() + dims.index(x0, y, z);
            for (std::size_t dx = 0; dx < tx; ++dx) row[dx] = tile[dx * nz + z];
          }
        }
      }
    }, /*min_grain=*/1);
  }
}

std::vector<cplx> fft_3d_real(std::span<const float> values, const Dims& dims,
                              ThreadPool* pool) {
  require(values.size() == dims.count(), "fft_3d_real: size mismatch");
  std::vector<cplx> data(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) data[i] = cplx(values[i], 0.0);
  fft_3d(data, dims, /*inverse=*/false, pool);
  return data;
}

std::vector<cplx> dft_reference(std::span<const cplx> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * std::numbers::pi * static_cast<double>(k * t) / static_cast<double>(n);
      acc += data[t] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace cosmo
