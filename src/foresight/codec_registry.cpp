#include "foresight/codec_registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "foresight/compressor.hpp"  // complete Compressor for unique_ptr use

namespace cosmo::foresight {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

bool CodecCapabilities::supports_mode(const std::string& mode) const {
  return std::find(modes.begin(), modes.end(), mode) != modes.end();
}

std::string CodecCapabilities::modes_label() const { return join(modes); }

void CodecCapabilities::require_mode(const std::string& mode) const {
  if (!supports_mode(mode)) {
    throw InvalidArgument(name + ": unsupported mode '" + mode +
                          "' (supported: " + modes_label() + ")");
  }
}

CodecRegistry& CodecRegistry::instance() {
  // The hooks take the registry by reference: calling instance() from
  // inside them would re-enter this initializer.
  static CodecRegistry registry = [] {
    CodecRegistry r;
    detail::register_paper_codecs(r);
    detail::register_fz_codecs(r);
    return r;
  }();
  return registry;
}

void CodecRegistry::add(CodecCapabilities caps, Factory factory) {
  require(!caps.name.empty(), "codec registry: empty codec name");
  require(!caps.modes.empty(), "codec registry: '" + caps.name + "' registers no modes");
  require(static_cast<bool>(factory), "codec registry: '" + caps.name + "' has no factory");
  require(find(caps.name) == nullptr,
          "codec registry: duplicate registration of '" + caps.name + "'");
  entries_.push_back({std::move(caps), std::move(factory)});
}

bool CodecRegistry::contains(const std::string& name) const { return find(name) != nullptr; }

const CodecRegistry::Entry* CodecRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.caps.name == name) return &entry;
  }
  return nullptr;
}

std::string CodecRegistry::names_label() const { return join(names()); }

const CodecCapabilities& CodecRegistry::capabilities(const std::string& name) const {
  const Entry* entry = find(name);
  require(entry != nullptr, "codec registry: unknown compressor '" + name +
                                "' (registered: " + names_label() + ")");
  return entry->caps;
}

std::unique_ptr<Compressor> CodecRegistry::make(const std::string& name,
                                                gpu::GpuSimulator* sim) const {
  const Entry* entry = find(name);
  require(entry != nullptr, "make_compressor: unknown compressor '" + name +
                                "' (registered: " + names_label() + ")");
  require(!entry->caps.needs_device || sim != nullptr,
          "make_compressor: '" + name + "' needs a GPU simulator");
  return entry->factory(sim);
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.caps.name);
  return out;
}

}  // namespace cosmo::foresight
