/// \file optimizer.hpp
/// \brief The paper's configuration-optimization guideline (Section V-D):
/// (1) benchmark candidate configurations with CBench, (2) keep those whose
/// domain metrics are acceptable (power-spectrum ratio within 1 +/- 1% for
/// grid data; halo-count ratio for particle data), (3) pick the acceptable
/// configuration with the highest compression ratio — which also maximizes
/// overall throughput and minimizes storage.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/fof.hpp"
#include "foresight/cbench.hpp"

namespace cosmo::foresight {

/// Outcome of evaluating one candidate configuration on one field.
struct CandidateOutcome {
  CompressorConfig config;
  double ratio = 0.0;
  double psnr_db = 0.0;
  bool acceptable = false;
  /// Domain-metric deviation: max |pk ratio - 1| (grid) or max halo
  /// count-ratio deviation (particles).
  double metric_deviation = 0.0;
};

/// Chosen configuration for one field.
struct FieldChoice {
  std::string field;
  bool found = false;          ///< an acceptable candidate exists
  CandidateOutcome chosen;     ///< valid when found
  std::vector<CandidateOutcome> candidates;  ///< all evaluated, input order
};

/// Full guideline result.
struct OptimizationResult {
  std::vector<FieldChoice> per_field;
  double overall_ratio = 0.0;  ///< total bytes over total compressed bytes
  bool all_fields_ok = false;
};

/// Grid datasets (Nyx): acceptance is the power-spectrum ratio staying
/// within 1 +/- \p tolerance for k <= k_fraction * k_nyquist.
OptimizationResult optimize_grid_dataset(
    const io::Container& data, Compressor& compressor,
    const std::map<std::string, std::vector<CompressorConfig>>& candidates,
    double tolerance = 0.01, double k_fraction = 0.5);

/// Particle datasets (HACC): position acceptance is the FoF halo
/// count-ratio per mass bin staying within 1 +/- \p halo_tolerance; the
/// same position bound is applied to x, y, z. Velocity acceptance is the
/// mean halo bulk-velocity relative deviation staying within
/// \p velocity_tolerance (velocities do not affect FoF, so they get their
/// own, velocity-based criterion). Returns choices for "position" and
/// "velocity" pseudo-fields.
OptimizationResult optimize_particle_dataset(
    const io::Container& data, Compressor& compressor,
    const std::vector<CompressorConfig>& position_candidates,
    const std::vector<CompressorConfig>& velocity_candidates,
    const analysis::FofParams& fof_params, double halo_tolerance = 0.05,
    double velocity_tolerance = 0.05);

/// Renders an OptimizationResult as text.
std::string format_optimization(const OptimizationResult& result);

}  // namespace cosmo::foresight
