/// \file optimizer.hpp
/// \brief The paper's configuration-optimization guideline (Section V-D):
/// (1) benchmark candidate configurations with CBench, (2) keep those whose
/// domain metrics are acceptable (power-spectrum ratio within 1 +/- 1% for
/// grid data; halo-count ratio for particle data), (3) pick the acceptable
/// configuration with the highest compression ratio — which also maximizes
/// overall throughput and minimizes storage.
///
/// Two search strategies share that contract. Exhaustive evaluates every
/// candidate. Guided (SearchMode::kGuided) fully evaluates only a few probe
/// configs per field, bisects onto the acceptability frontier using the
/// monotone deviation-vs-aggressiveness relationship, scans a short window
/// past the frontier (the deviation curve is only noisily monotone near the
/// tolerance, and the best config occasionally sits in an acceptable pocket
/// just beyond the first crossing), and fills the pruned rows from a
/// rate-quality surrogate (optimizer_model.hpp) — same chosen config on
/// monotone data, a fraction of the full evaluations. Both paths
/// compute the original-field baselines (P(k) spectrum, FoF catalog + halo
/// mass binning) once per field instead of once per candidate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/fof.hpp"
#include "foresight/cbench.hpp"

namespace cosmo::foresight {

/// Candidate-search strategy for the Section V-D guideline.
enum class SearchMode {
  kExhaustive,  ///< fully evaluate every supported candidate
  kGuided,      ///< probe + surrogate + frontier bisection
};

/// Parses "exhaustive" / "guided"; anything else throws InvalidArgument.
SearchMode parse_search_mode(const std::string& text);

/// "exhaustive" / "guided".
std::string search_mode_label(SearchMode mode);

/// Knobs shared by both optimizer entry points.
struct OptimizerOptions {
  SearchMode search = SearchMode::kExhaustive;
  /// Guided search: full evaluations spent probing each mode group before
  /// bisection (clamped to [2, group size]; endpoints are always probed).
  std::size_t probes = 3;
  /// Candidate-evaluation workers (the CBench convention: 1 = serial in the
  /// calling thread, 0 = global pool, N = dedicated pool of N). Codecs whose
  /// sessions cannot run concurrently always evaluate serially. Results are
  /// slotted by candidate index, so choices and report ordering are
  /// identical for any value.
  std::size_t threads = 1;
  /// kAbort rethrows a failing evaluation (historical behavior); kContinue
  /// records a "failed" candidate row and keeps searching. A failed probe
  /// counts as unacceptable for bracketing.
  OnError on_error = OnError::kAbort;
};

/// Outcome of evaluating one candidate configuration on one field.
struct CandidateOutcome {
  CompressorConfig config;
  double ratio = 0.0;
  double psnr_db = 0.0;
  bool acceptable = false;
  /// Domain-metric deviation: max |pk ratio - 1| (grid) or max halo
  /// count-ratio deviation (particles).
  double metric_deviation = 0.0;
  /// "evaluated" (full CBench run), "pruned" (guided search skipped it;
  /// ratio/deviation are surrogate predictions), "skipped" (codec does not
  /// support the mode), or "failed" (evaluation threw under kContinue).
  std::string status = "evaluated";
  /// True when ratio/metric_deviation come from the surrogate (or the SZ
  /// rate estimator) instead of a real run.
  bool predicted = false;
  std::string error;  ///< diagnostic for failed rows, empty otherwise
};

/// Chosen configuration for one field.
struct FieldChoice {
  std::string field;
  bool found = false;          ///< an acceptable candidate exists
  CandidateOutcome chosen;     ///< valid when found; always a real evaluation
  std::vector<CandidateOutcome> candidates;  ///< every candidate, input order
};

/// What the search spent, aggregated over all fields of one optimize call.
/// Mirrored into the process MetricsRegistry as optimizer.* counters.
struct OptimizerStats {
  std::size_t candidates = 0;          ///< candidate rows across all fields
  std::size_t full_evals = 0;          ///< real compress+decompress+metric runs
  std::size_t probes = 0;              ///< full evals spent on probe batches
  std::size_t pruned = 0;              ///< rows filled from the surrogate
  std::size_t skipped = 0;             ///< rows skipped for capability reasons
  std::size_t failed = 0;              ///< rows failed under OnError::kContinue
  std::size_t rate_estimates = 0;      ///< sz::estimate_rate calls
  std::size_t baseline_cache_hits = 0; ///< metric evals served by a cached baseline
  double wall_seconds = 0.0;           ///< whole optimize call
};

/// Full guideline result.
struct OptimizationResult {
  std::vector<FieldChoice> per_field;
  double overall_ratio = 0.0;  ///< total bytes over total compressed bytes
  bool all_fields_ok = false;
  OptimizerStats stats;
};

/// Grid datasets (Nyx): acceptance is the power-spectrum ratio staying
/// within 1 +/- \p tolerance for k <= k_fraction * k_nyquist.
OptimizationResult optimize_grid_dataset(
    const io::Container& data, Compressor& compressor,
    const std::map<std::string, std::vector<CompressorConfig>>& candidates,
    double tolerance = 0.01, double k_fraction = 0.5,
    const OptimizerOptions& options = {});

/// Particle datasets (HACC): position acceptance is the FoF halo
/// count-ratio per mass bin staying within 1 +/- \p halo_tolerance; the
/// same position bound is applied to x, y, z. Velocity acceptance is the
/// mean halo bulk-velocity relative deviation staying within
/// \p velocity_tolerance (velocities do not affect FoF, so they get their
/// own, velocity-based criterion). Returns choices for "position" and
/// "velocity" pseudo-fields.
OptimizationResult optimize_particle_dataset(
    const io::Container& data, Compressor& compressor,
    const std::vector<CompressorConfig>& position_candidates,
    const std::vector<CompressorConfig>& velocity_candidates,
    const analysis::FofParams& fof_params, double halo_tolerance = 0.05,
    double velocity_tolerance = 0.05, const OptimizerOptions& options = {});

/// Renders an OptimizationResult as text.
std::string format_optimization(const OptimizationResult& result);

}  // namespace cosmo::foresight
