/// \file fz_compressor.cpp
/// \brief The fz-cpu / fz-gpu backends: the FZ-GPU-style bitshuffle
/// pipeline (fz/fz.hpp) behind Foresight's session interface.
///
/// These two codecs exercise the registry contract: they are wired into
/// sweeps, the optimizer, the pipeline, CBench, the CLI and the bench
/// binaries purely through register_fz_codecs() — no dispatch layer names
/// them. fz-cpu measures host wall time and threads the chunk pipeline on
/// the session pool; fz-gpu pairs the same bit-exact streams with the
/// simulator's "fz" kernel-rate profile and falls back to the host path on
/// device OOM (identical bytes, fallback recorded).
#include "foresight/compressor.hpp"

#include "common/timer.hpp"
#include "fz/fz.hpp"

namespace cosmo::foresight {

namespace {

/// Counts host fallbacks across all sessions; surfaced via --metrics-out.
void count_fz_cpu_fallback() {
  telemetry::MetricsRegistry::instance().counter("codec.cpu_fallbacks").add();
}

/// Truncates a reconstruction back to the pre-padding length recorded at
/// compression time (no-op when the length is unknown or already right).
void drop_fz_padding(const CompressResult& compressed, std::vector<float>& values) {
  if (compressed.original_values != 0) values.resize(compressed.original_values);
}

class FzCpuSession final : public CodecSession {
 public:
  FzCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("fz-cpu.compress");
    CodecRegistry::instance().capabilities("fz-cpu").require_mode(config.mode);
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    fz::Params params;
    params.abs_error_bound = config.value;
    Timer timer;
    fz::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("fz-cpu.decompress");
    out.telemetry.reset_cpu();
    Timer timer;
    fz::decompress_into(compressed.bytes, out.values, nullptr, pool());
    drop_fz_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class FzCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("fz-cpu");
  }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    TRACE_SPAN("session.open");
    return std::make_unique<FzCpuSession>(arena, pool);
  }
};

class FzGpuSession final : public CodecSession {
 public:
  FzGpuSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("fz-gpu.compress");
    CodecRegistry::instance().capabilities("fz-gpu").require_mode(config.mode);
    out.telemetry.reset_gpu();
    out.throughput_reportable = gpu::FzDevice::throughput_supported();
    out.original_values = field.data.size();
    dev_c_.bytes.swap(out.bytes);  // bring the caller's capacity in for reuse
    try {
      device_.compress_into(field.data, field.dims, config.value, dev_c_);
    } catch (const OutOfMemoryError&) {
      // Device-OOM: the host pipeline emits the identical stream; record
      // the fallback and stop reporting device throughput.
      TRACE_SPAN("fz-gpu.compress.host_fallback");
      out.bytes.swap(dev_c_.bytes);
      out.telemetry.mark_cpu_fallback();
      out.throughput_reportable = false;
      count_fz_cpu_fallback();
      fz::Params params;
      params.abs_error_bound = config.value;
      Timer timer;
      fz::compress_into(field.data, field.dims, params, out.bytes);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.telemetry.set_device(dev_c_.timing, dev_c_.attempts);
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("fz-gpu.decompress");
    out.telemetry.reset_gpu();
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      TRACE_SPAN("fz-gpu.decompress.host_fallback");
      out.values.swap(dev_d_.values);
      out.telemetry.mark_cpu_fallback();
      count_fz_cpu_fallback();
      Timer timer;
      fz::decompress_into(compressed.bytes, out.values);
      drop_fz_padding(compressed, out.values);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.values.swap(dev_d_.values);
    drop_fz_padding(compressed, out.values);
    out.telemetry.set_device(dev_d_.timing, dev_d_.attempts);
  }

 private:
  gpu::FzDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class FzGpuCompressor final : public Compressor {
 public:
  explicit FzGpuCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("fz-gpu");
  }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<FzGpuSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

/// The ABS lattice both fz codecs sweep by default — the same range-scaled
/// fractions the SZ family uses, so rate-distortion figures are comparable.
std::vector<SweepAxis> fz_sweep() {
  SweepAxis abs;
  abs.mode = "abs";
  abs.kind = SweepAxis::Kind::kRangeFractions;
  abs.lo = 2e-6;
  abs.hi = 2e-3;
  abs.count = 4;
  return {abs};
}

}  // namespace

namespace detail {

void register_fz_codecs(CodecRegistry& registry) {
  {
    CodecCapabilities caps;
    caps.name = "fz-cpu";
    caps.summary = "FZ bitshuffle pipeline on the host (quantize + bitshuffle + zero-run)";
    caps.modes = {"abs"};
    caps.default_sweep = fz_sweep();
    registry.add(std::move(caps), [](gpu::GpuSimulator*) -> std::unique_ptr<Compressor> {
      return std::make_unique<FzCpuCompressor>();
    });
  }
  {
    CodecCapabilities caps;
    caps.name = "fz-gpu";
    caps.summary = "FZ-GPU (simulated device; fastest kernel profile, arXiv:2304.12557)";
    caps.modes = {"abs"};
    caps.needs_device = true;
    caps.concurrent_sessions_safe = false;  // shares the simulator jitter stream
    caps.throughput_reportable = gpu::FzDevice::throughput_supported();
    caps.kernel_profile = "fz";
    caps.default_sweep = fz_sweep();
    registry.add(std::move(caps), [](gpu::GpuSimulator* sim) -> std::unique_ptr<Compressor> {
      return std::make_unique<FzGpuCompressor>(*sim);
    });
  }
}

}  // namespace detail

}  // namespace cosmo::foresight
