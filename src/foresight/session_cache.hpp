/// \file session_cache.hpp
/// \brief Per-worker codec session reuse with fault-isolation reset.
///
/// A long-running service executes many jobs per worker thread; reopening a
/// CodecSession (and growing a fresh ScratchArena) per job throws away the
/// buffer-reuse win the staged API exists for. SessionCache keeps one open
/// session per codec name, all backed by one shared arena, so consecutive
/// jobs on the same worker reuse capacity exactly like sweep iterations do.
///
/// The robustness half is invalidate(): after a job fails (injected
/// corruption, device fault, malformed input), the daemon drops every
/// cached session *and* the arena and starts clean, so no partially-written
/// scratch state can leak into a neighboring job — the "session/arena state
/// reset between jobs" contract the cross-job interference tests assert.
/// Codec streams are unaffected either way (sessions already guarantee
/// byte-identical output for dirty arenas); invalidation is belt-and-
/// braces isolation for the service setting.
///
/// Not thread-safe: one SessionCache per worker thread, like sessions and
/// arenas themselves.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "foresight/compressor.hpp"

namespace cosmo::foresight {

class SessionCache {
 public:
  /// \p sim backs device codecs (may be null when only host codecs are
  /// used); \p pool threads intra-field kernels of cached sessions.
  explicit SessionCache(gpu::GpuSimulator* sim = nullptr, ThreadPool* pool = nullptr)
      : sim_(sim), pool_(pool), arena_(std::make_unique<ScratchArena>()) {}

  /// The cached session for \p codec, opened on first use. Throws
  /// InvalidArgument for unknown codecs (and for device codecs when no
  /// simulator was provided).
  [[nodiscard]] CodecSession& session(const std::string& codec);

  /// The cached compressor (capabilities live here). Opened on first use.
  [[nodiscard]] Compressor& compressor(const std::string& codec);

  /// Drops every cached session and replaces the arena. Compressor objects
  /// survive (they are stateless registry fronts); the next session() call
  /// reopens against the fresh arena.
  void invalidate();

  [[nodiscard]] ScratchArena& arena() { return *arena_; }

  /// Observability for tests: how many sessions have been opened and how
  /// many invalidations have run.
  [[nodiscard]] std::size_t sessions_opened() const { return sessions_opened_; }
  [[nodiscard]] std::size_t invalidations() const { return invalidations_; }

 private:
  gpu::GpuSimulator* sim_;
  ThreadPool* pool_;
  std::unique_ptr<ScratchArena> arena_;
  std::map<std::string, std::unique_ptr<Compressor>> compressors_;
  std::map<std::string, std::unique_ptr<CodecSession>> sessions_;
  std::size_t sessions_opened_ = 0;
  std::size_t invalidations_ = 0;
};

}  // namespace cosmo::foresight
