#include "foresight/compressor.hpp"

#include <algorithm>

#include "common/str.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "common/thread_pool.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/chunked.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::foresight {

std::string CompressorConfig::label() const {
  return strprintf("%s=%g", mode.c_str(), value);
}

CompressResult CodecSession::compress(const Field& field, const CompressorConfig& config) {
  CompressResult out;
  compress(field, config, out);
  return out;
}

DecompressResult CodecSession::decompress(const CompressResult& compressed) {
  DecompressResult out;
  decompress(compressed, out);
  return out;
}

RunOutput Compressor::run(const Field& field, const CompressorConfig& config) {
  TRACE_SPAN("session.run");
  const std::unique_ptr<CodecSession> session = open_session();
  CompressResult c;
  session->compress(field, config, c);
  DecompressResult d;
  session->decompress(c, d);

  RunOutput out;
  out.bytes = std::move(c.bytes);
  out.reconstructed = std::move(d.values);
  out.compress = c.telemetry;
  out.decompress = d.telemetry;
  out.throughput_reportable = c.throughput_reportable;
  return out;
}

namespace {

/// Rejects configs whose mode the codec does not register; the error lists
/// the supported modes (CodecCapabilities::require_mode).
void check_mode(const std::string& got, const char* codec) {
  CodecRegistry::instance().capabilities(codec).require_mode(got);
}

/// Truncates a reconstruction back to the pre-padding length recorded at
/// compression time (no-op when the length is unknown or already right).
void drop_padding(const CompressResult& compressed, std::vector<float>& values) {
  if (compressed.original_values != 0) values.resize(compressed.original_values);
}

/// Counts host fallbacks across all sessions; surfaced via --metrics-out.
void count_cpu_fallback() {
  telemetry::MetricsRegistry::instance().counter("codec.cpu_fallbacks").add();
}

class GpuSzSession final : public CodecSession {
 public:
  GpuSzSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("gpu-sz.compress");
    check_mode(config.mode, "gpu-sz");
    out.telemetry.reset_gpu();
    out.throughput_reportable = gpu::GpuSzDevice::throughput_supported();
    out.original_values = field.data.size();

    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);  // bring the caller's capacity in for reuse
    try {
      if (config.mode == "abs") {
        device_.compress_abs_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      } else {
        device_.compress_pwrel_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      }
    } catch (const OutOfMemoryError&) {
      // The job does not fit on the device; run the matching host codec
      // (bit-identical stream) with measured wall time instead. Throughput
      // stays non-reportable — the time no longer describes the device.
      out.bytes.swap(dev_c_.bytes);
      compress_on_host(shaped, config, out);
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.telemetry.set_device(dev_c_.timing, dev_c_.attempts);
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("gpu-sz.decompress");
    out.telemetry.reset_gpu();
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      out.values.swap(dev_d_.values);
      decompress_on_host(compressed, out);
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.telemetry.set_device(dev_d_.timing, dev_d_.attempts);
  }

 private:
  void compress_on_host(const ShapeAdapter& shaped, const CompressorConfig& config,
                        CompressResult& out) {
    TRACE_SPAN("gpu-sz.compress.host_fallback");
    out.telemetry.mark_cpu_fallback();
    out.throughput_reportable = false;
    count_cpu_fallback();
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(shaped.values(), shaped.dims(), params, out.bytes);
    }
    out.telemetry.seconds = timer.seconds();
  }

  void decompress_on_host(const CompressResult& compressed, DecompressResult& out) {
    TRACE_SPAN("gpu-sz.decompress.host_fallback");
    out.telemetry.mark_cpu_fallback();
    count_cpu_fallback();
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values);
    } else {
      sz::decompress_into(compressed.bytes, out.values);
    }
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }

  gpu::GpuSzDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class GpuSzCompressor final : public Compressor {
 public:
  explicit GpuSzCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("gpu-sz");
  }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<GpuSzSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class CuZfpSession final : public CodecSession {
 public:
  CuZfpSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("cuzfp.compress");
    check_mode(config.mode, "cuzfp");
    out.telemetry.reset_gpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();

    // "the compression quality on the 1-D data is not as good as that on
    // the converted 3-D data" — convert like the paper does.
    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);
    try {
      device_.compress_into(shaped.values(), shaped.dims(), config.value, dev_c_);
    } catch (const OutOfMemoryError&) {
      // Device-OOM: fixed-rate ZFP on the host emits the identical stream;
      // record the fallback and stop reporting device throughput.
      TRACE_SPAN("cuzfp.compress.host_fallback");
      out.bytes.swap(dev_c_.bytes);
      out.telemetry.mark_cpu_fallback();
      out.throughput_reportable = false;
      count_cpu_fallback();
      zfp::Params params;
      params.mode = zfp::Mode::kFixedRate;
      params.rate = config.value;
      Timer timer;
      zfp::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.telemetry.set_device(dev_c_.timing, dev_c_.attempts);
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("cuzfp.decompress");
    out.telemetry.reset_gpu();
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      TRACE_SPAN("cuzfp.decompress.host_fallback");
      out.values.swap(dev_d_.values);
      out.telemetry.mark_cpu_fallback();
      count_cpu_fallback();
      Timer timer;
      zfp::decompress_into(compressed.bytes, out.values);
      drop_padding(compressed, out.values);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.telemetry.set_device(dev_d_.timing, dev_d_.attempts);
  }

 private:
  gpu::CuZfpDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class CuZfpCompressor final : public Compressor {
 public:
  explicit CuZfpCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("cuzfp");
  }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<CuZfpSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class SzCpuSession final : public CodecSession {
 public:
  SzCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("sz-cpu.compress");
    check_mode(config.mode, "sz-cpu");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    }
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("sz-cpu.decompress");
    out.telemetry.reset_cpu();
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values, nullptr, pool());
    } else {
      sz::decompress_into(compressed.bytes, out.values, nullptr, pool());
    }
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class SzCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("sz-cpu");
  }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    TRACE_SPAN("session.open");
    return std::make_unique<SzCpuSession>(arena, pool);
  }
};

zfp::Params zfp_params_for(const CompressorConfig& config) {
  zfp::Params params;
  if (config.mode == "rate") {
    params.mode = zfp::Mode::kFixedRate;
    params.rate = config.value;
  } else if (config.mode == "precision") {
    params.mode = zfp::Mode::kFixedPrecision;
    params.precision = static_cast<unsigned>(config.value);
  } else {
    params.mode = zfp::Mode::kFixedAccuracy;
    params.tolerance = config.value;
  }
  return params;
}

class ZfpCpuSession final : public CodecSession {
 public:
  ZfpCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("zfp-cpu.compress");
    check_mode(config.mode, "zfp-cpu");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    Timer timer;
    zfp::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("zfp-cpu.decompress");
    out.telemetry.reset_cpu();
    Timer timer;
    zfp::decompress_into(compressed.bytes, out.values, nullptr, pool());
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class ZfpCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("zfp-cpu");
  }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    TRACE_SPAN("session.open");
    return std::make_unique<ZfpCpuSession>(arena, pool);
  }
};

/// ZFP with OpenMP-style chunk parallelism over the global thread pool —
/// the "ZFP OpenMP" row of Fig. 8, plus the parallel decompression the
/// released library lacked (every chunk is self-describing).
class ZfpOmpSession final : public CodecSession {
 public:
  explicit ZfpOmpSession(ScratchArena* arena) : CodecSession(arena) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("zfp-omp.compress");
    check_mode(config.mode, "zfp-omp");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    ThreadPool& pool = global_pool();
    Timer timer;
    out.bytes = zfp::compress_chunked(field.data, field.dims, params, &pool);
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("zfp-omp.decompress");
    out.telemetry.reset_cpu();
    ThreadPool& pool = global_pool();
    Timer timer;
    out.values = zfp::decompress_chunked(compressed.bytes, &pool);
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class ZfpOmpCompressor final : public Compressor {
 public:
  [[nodiscard]] const CodecCapabilities& capabilities() const override {
    return CodecRegistry::instance().capabilities("zfp-omp");
  }
  /// Ignores the session pool: chunks already fan out over the global pool.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<ZfpOmpSession>(arena);
  }
};

/// The shared ABS-bound lattice: log-spaced fractions of the field's value
/// range, matching the paper's per-field bound scaling.
std::vector<SweepAxis> sz_style_sweep() {
  SweepAxis abs;
  abs.mode = "abs";
  abs.kind = SweepAxis::Kind::kRangeFractions;
  abs.lo = 2e-6;
  abs.hi = 2e-3;
  abs.count = 4;
  SweepAxis pwrel;
  pwrel.mode = "pw_rel";
  pwrel.kind = SweepAxis::Kind::kLogValues;
  pwrel.lo = 1e-3;
  pwrel.hi = 1e-1;
  pwrel.count = 4;
  return {abs, pwrel};
}

SweepAxis rate_axis() {
  SweepAxis rate;
  rate.mode = "rate";
  rate.kind = SweepAxis::Kind::kFixedValues;
  rate.values = {1.0, 2.0, 4.0, 8.0};
  return rate;
}

SweepAxis accuracy_axis() {
  SweepAxis acc;
  acc.mode = "accuracy";
  acc.kind = SweepAxis::Kind::kLogValues;
  acc.lo = 1e-2;
  acc.hi = 1.0;
  acc.count = 4;
  return acc;
}

}  // namespace

namespace detail {

void register_paper_codecs(CodecRegistry& registry) {
  {
    CodecCapabilities caps;
    caps.name = "gpu-sz";
    caps.summary = "GPU-SZ prototype (simulated device; 1-D fields reshaped to 3-D)";
    caps.modes = {"abs", "pw_rel"};
    caps.needs_device = true;
    caps.concurrent_sessions_safe = false;  // shares the simulator jitter stream
    caps.throughput_reportable = gpu::GpuSzDevice::throughput_supported();
    caps.abs_rate_estimable = true;  // abs path is the SZ pipeline
    caps.kernel_profile = "sz";
    caps.default_sweep = sz_style_sweep();
    registry.add(std::move(caps), [](gpu::GpuSimulator* sim) -> std::unique_ptr<Compressor> {
      return std::make_unique<GpuSzCompressor>(*sim);
    });
  }
  {
    CodecCapabilities caps;
    caps.name = "cuzfp";
    caps.summary = "cuZFP (simulated device; fixed-rate transform coding)";
    caps.modes = {"rate"};
    caps.needs_device = true;
    caps.concurrent_sessions_safe = false;
    caps.plot_dashed = true;  // the paper draws fixed-rate cuZFP series dashed
    caps.kernel_profile = "zfp";
    caps.default_sweep = {rate_axis()};
    registry.add(std::move(caps), [](gpu::GpuSimulator* sim) -> std::unique_ptr<Compressor> {
      return std::make_unique<CuZfpCompressor>(*sim);
    });
  }
  {
    CodecCapabilities caps;
    caps.name = "sz-cpu";
    caps.summary = "CPU SZ (Lorenzo + quantize + Huffman/LZSS; measured wall time)";
    caps.modes = {"abs", "pw_rel"};
    caps.abs_rate_estimable = true;
    caps.default_sweep = sz_style_sweep();
    registry.add(std::move(caps), [](gpu::GpuSimulator*) -> std::unique_ptr<Compressor> {
      return std::make_unique<SzCpuCompressor>();
    });
  }
  {
    CodecCapabilities caps;
    caps.name = "zfp-cpu";
    caps.summary = "CPU ZFP (fixed-rate / fixed-accuracy / fixed-precision)";
    caps.modes = {"rate", "accuracy", "precision"};
    caps.plot_dashed = true;
    SweepAxis precision;
    precision.mode = "precision";
    precision.kind = SweepAxis::Kind::kFixedValues;
    precision.values = {8.0, 12.0, 16.0, 20.0};
    caps.default_sweep = {rate_axis(), accuracy_axis(), precision};
    registry.add(std::move(caps), [](gpu::GpuSimulator*) -> std::unique_ptr<Compressor> {
      return std::make_unique<ZfpCpuCompressor>();
    });
  }
  {
    CodecCapabilities caps;
    caps.name = "zfp-omp";
    caps.summary = "CPU ZFP with OpenMP-style chunk parallelism (global pool)";
    caps.modes = {"rate", "accuracy"};
    // Chunks already fan out over the global pool; a pool worker opening a
    // nested chunked run could deadlock waiting for its own queue.
    caps.concurrent_sessions_safe = false;
    caps.default_sweep = {rate_axis(), accuracy_axis()};
    registry.add(std::move(caps), [](gpu::GpuSimulator*) -> std::unique_ptr<Compressor> {
      return std::make_unique<ZfpOmpCompressor>();
    });
  }
}

}  // namespace detail

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim) {
  return CodecRegistry::instance().make(name, sim);
}

std::vector<std::string> available_compressors() {
  return CodecRegistry::instance().names();
}

}  // namespace cosmo::foresight
