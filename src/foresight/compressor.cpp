#include "foresight/compressor.hpp"

#include <algorithm>

#include "common/str.hpp"
#include "common/timer.hpp"
#include "common/thread_pool.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/chunked.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::foresight {

std::string CompressorConfig::label() const {
  return strprintf("%s=%g", mode.c_str(), value);
}

CompressResult CodecSession::compress(const Field& field, const CompressorConfig& config) {
  CompressResult out;
  compress(field, config, out);
  return out;
}

DecompressResult CodecSession::decompress(const CompressResult& compressed) {
  DecompressResult out;
  decompress(compressed, out);
  return out;
}

RunOutput Compressor::run(const Field& field, const CompressorConfig& config) {
  const std::unique_ptr<CodecSession> session = open_session();
  CompressResult c;
  session->compress(field, config, c);
  DecompressResult d;
  session->decompress(c, d);

  RunOutput out;
  out.bytes = std::move(c.bytes);
  out.reconstructed = std::move(d.values);
  out.compress_seconds = c.seconds;
  out.decompress_seconds = d.seconds;
  out.has_gpu_timing = c.has_gpu_timing;
  out.gpu_compress = c.gpu_timing;
  out.gpu_decompress = d.gpu_timing;
  out.throughput_reportable = c.throughput_reportable;
  return out;
}

namespace {

void check_mode(const std::string& got, const std::vector<std::string>& allowed,
                const std::string& who) {
  if (std::find(allowed.begin(), allowed.end(), got) == allowed.end()) {
    throw InvalidArgument(who + ": unsupported mode '" + got + "'");
  }
}

/// Truncates a reconstruction back to the pre-padding length recorded at
/// compression time (no-op when the length is unknown or already right).
void drop_padding(const CompressResult& compressed, std::vector<float>& values) {
  if (compressed.original_values != 0) values.resize(compressed.original_values);
}

/// Result objects are reused across sweep jobs, so every session must set
/// the status flags explicitly rather than rely on the defaults.
void reset_cpu_flags(CompressResult& out) {
  out.has_gpu_timing = false;
  out.throughput_reportable = true;
  out.cpu_fallback = false;
  out.device_attempts = 1;
}

void reset_cpu_flags(DecompressResult& out) {
  out.has_gpu_timing = false;
  out.cpu_fallback = false;
  out.device_attempts = 1;
}

class GpuSzSession final : public CodecSession {
 public:
  GpuSzSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    check_mode(config.mode, {"abs", "pw_rel"}, "gpu-sz");
    out.has_gpu_timing = true;
    out.throughput_reportable = gpu::GpuSzDevice::throughput_supported();
    out.cpu_fallback = false;
    out.device_attempts = 1;
    out.original_values = field.data.size();

    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);  // bring the caller's capacity in for reuse
    try {
      if (config.mode == "abs") {
        device_.compress_abs_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      } else {
        device_.compress_pwrel_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      }
    } catch (const OutOfMemoryError&) {
      // The job does not fit on the device; run the matching host codec
      // (bit-identical stream) with measured wall time instead. Throughput
      // stays non-reportable — the time no longer describes the device.
      out.bytes.swap(dev_c_.bytes);
      compress_on_host(shaped, config, out);
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.gpu_timing = dev_c_.timing;
    out.seconds = dev_c_.timing.total();
    out.device_attempts = dev_c_.attempts;
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    out.has_gpu_timing = true;
    out.cpu_fallback = false;
    out.device_attempts = 1;
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      out.values.swap(dev_d_.values);
      decompress_on_host(compressed, out);
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.gpu_timing = dev_d_.timing;
    out.seconds = dev_d_.timing.total();
    out.device_attempts = dev_d_.attempts;
  }

 private:
  void compress_on_host(const ShapeAdapter& shaped, const CompressorConfig& config,
                        CompressResult& out) {
    out.cpu_fallback = true;
    out.has_gpu_timing = false;
    out.throughput_reportable = false;
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(shaped.values(), shaped.dims(), params, out.bytes);
    }
    out.seconds = timer.seconds();
  }

  void decompress_on_host(const CompressResult& compressed, DecompressResult& out) {
    out.cpu_fallback = true;
    out.has_gpu_timing = false;
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values);
    } else {
      sz::decompress_into(compressed.bytes, out.values);
    }
    drop_padding(compressed, out.values);
    out.seconds = timer.seconds();
  }

  gpu::GpuSzDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class GpuSzCompressor final : public Compressor {
 public:
  explicit GpuSzCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] std::string name() const override { return "gpu-sz"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    return std::make_unique<GpuSzSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class CuZfpSession final : public CodecSession {
 public:
  CuZfpSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    check_mode(config.mode, {"rate"}, "cuzfp");
    out.has_gpu_timing = true;
    out.throughput_reportable = true;
    out.cpu_fallback = false;
    out.device_attempts = 1;
    out.original_values = field.data.size();

    // "the compression quality on the 1-D data is not as good as that on
    // the converted 3-D data" — convert like the paper does.
    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);
    try {
      device_.compress_into(shaped.values(), shaped.dims(), config.value, dev_c_);
    } catch (const OutOfMemoryError&) {
      // Device-OOM: fixed-rate ZFP on the host emits the identical stream;
      // record the fallback and stop reporting device throughput.
      out.bytes.swap(dev_c_.bytes);
      out.cpu_fallback = true;
      out.has_gpu_timing = false;
      out.throughput_reportable = false;
      zfp::Params params;
      params.mode = zfp::Mode::kFixedRate;
      params.rate = config.value;
      Timer timer;
      zfp::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
      out.seconds = timer.seconds();
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.gpu_timing = dev_c_.timing;
    out.seconds = dev_c_.timing.total();
    out.device_attempts = dev_c_.attempts;
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    out.has_gpu_timing = true;
    out.cpu_fallback = false;
    out.device_attempts = 1;
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      out.values.swap(dev_d_.values);
      out.cpu_fallback = true;
      out.has_gpu_timing = false;
      Timer timer;
      zfp::decompress_into(compressed.bytes, out.values);
      drop_padding(compressed, out.values);
      out.seconds = timer.seconds();
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.gpu_timing = dev_d_.timing;
    out.seconds = dev_d_.timing.total();
    out.device_attempts = dev_d_.attempts;
  }

 private:
  gpu::CuZfpDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class CuZfpCompressor final : public Compressor {
 public:
  explicit CuZfpCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] std::string name() const override { return "cuzfp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    return std::make_unique<CuZfpSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class SzCpuSession final : public CodecSession {
 public:
  SzCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    check_mode(config.mode, {"abs", "pw_rel"}, "sz-cpu");
    reset_cpu_flags(out);
    out.original_values = field.data.size();
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    }
    out.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    reset_cpu_flags(out);
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values, nullptr, pool());
    } else {
      sz::decompress_into(compressed.bytes, out.values, nullptr, pool());
    }
    drop_padding(compressed, out.values);
    out.seconds = timer.seconds();
  }
};

class SzCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "sz-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return true; }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    return std::make_unique<SzCpuSession>(arena, pool);
  }
};

zfp::Params zfp_params_for(const CompressorConfig& config) {
  zfp::Params params;
  if (config.mode == "rate") {
    params.mode = zfp::Mode::kFixedRate;
    params.rate = config.value;
  } else if (config.mode == "precision") {
    params.mode = zfp::Mode::kFixedPrecision;
    params.precision = static_cast<unsigned>(config.value);
  } else {
    params.mode = zfp::Mode::kFixedAccuracy;
    params.tolerance = config.value;
  }
  return params;
}

class ZfpCpuSession final : public CodecSession {
 public:
  ZfpCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    check_mode(config.mode, {"rate", "accuracy", "precision"}, "zfp-cpu");
    reset_cpu_flags(out);
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    Timer timer;
    zfp::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    out.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    reset_cpu_flags(out);
    Timer timer;
    zfp::decompress_into(compressed.bytes, out.values, nullptr, pool());
    drop_padding(compressed, out.values);
    out.seconds = timer.seconds();
  }
};

class ZfpCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy", "precision"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return true; }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    return std::make_unique<ZfpCpuSession>(arena, pool);
  }
};

/// ZFP with OpenMP-style chunk parallelism over the global thread pool —
/// the "ZFP OpenMP" row of Fig. 8, plus the parallel decompression the
/// released library lacked (every chunk is self-describing).
class ZfpOmpSession final : public CodecSession {
 public:
  explicit ZfpOmpSession(ScratchArena* arena) : CodecSession(arena) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    check_mode(config.mode, {"rate", "accuracy"}, "zfp-omp");
    reset_cpu_flags(out);
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    ThreadPool& pool = global_pool();
    Timer timer;
    out.bytes = zfp::compress_chunked(field.data, field.dims, params, &pool);
    out.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    reset_cpu_flags(out);
    ThreadPool& pool = global_pool();
    Timer timer;
    out.values = zfp::decompress_chunked(compressed.bytes, &pool);
    drop_padding(compressed, out.values);
    out.seconds = timer.seconds();
  }
};

class ZfpOmpCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-omp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy"};
  }
  /// Chunks already fan out over the global pool; a pool worker opening a
  /// nested chunked run could deadlock waiting for its own queue.
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// Ignores the session pool: chunks already fan out over the global pool.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    return std::make_unique<ZfpOmpSession>(arena);
  }
};

}  // namespace

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim) {
  if (name == "gpu-sz" || name == "cuzfp") {
    require(sim != nullptr, "make_compressor: '" + name + "' needs a GPU simulator");
    if (name == "gpu-sz") return std::make_unique<GpuSzCompressor>(*sim);
    return std::make_unique<CuZfpCompressor>(*sim);
  }
  if (name == "sz-cpu") return std::make_unique<SzCpuCompressor>();
  if (name == "zfp-cpu") return std::make_unique<ZfpCpuCompressor>();
  if (name == "zfp-omp") return std::make_unique<ZfpOmpCompressor>();
  throw InvalidArgument("make_compressor: unknown compressor '" + name + "'");
}

std::vector<std::string> available_compressors() {
  return {"gpu-sz", "cuzfp", "sz-cpu", "zfp-cpu", "zfp-omp"};
}

}  // namespace cosmo::foresight
