#include "foresight/compressor.hpp"

#include <algorithm>

#include "common/str.hpp"
#include "common/timer.hpp"
#include "common/thread_pool.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/chunked.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::foresight {

std::string CompressorConfig::label() const {
  return strprintf("%s=%g", mode.c_str(), value);
}

Dims reshape_1d_to_3d(std::size_t n) {
  const std::size_t nx = (n + 63) / 64;
  return Dims::d3(nx, 8, 8);
}

namespace {

void check_mode(const std::string& got, const std::vector<std::string>& allowed,
                const std::string& who) {
  if (std::find(allowed.begin(), allowed.end(), got) == allowed.end()) {
    throw InvalidArgument(who + ": unsupported mode '" + got + "'");
  }
}

/// Reshapes a 1-D field to 3-D (zero padded) and returns the padded copy;
/// callers truncate reconstructions back to the original length.
std::vector<float> pad_to(const Field& field, const Dims& dims3) {
  std::vector<float> padded(dims3.count(), 0.0f);
  std::copy(field.data.begin(), field.data.end(), padded.begin());
  return padded;
}

class GpuSzCompressor final : public Compressor {
 public:
  explicit GpuSzCompressor(gpu::GpuSimulator& sim) : device_(sim) {}

  [[nodiscard]] std::string name() const override { return "gpu-sz"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }

  RunOutput run(const Field& field, const CompressorConfig& config) override {
    check_mode(config.mode, supported_modes(), name());
    RunOutput out;
    out.has_gpu_timing = true;
    out.throughput_reportable = gpu::GpuSzDevice::throughput_supported();

    const bool needs_reshape = field.dims.rank() == 1;
    const Dims dims = needs_reshape ? reshape_1d_to_3d(field.data.size()) : field.dims;
    std::vector<float> padded;
    std::span<const float> input = field.data;
    if (needs_reshape) {
      padded = pad_to(field, dims);
      input = padded;
    }

    gpu::DeviceCompressResult c =
        config.mode == "abs" ? device_.compress_abs(input, dims, config.value)
                             : device_.compress_pwrel(input, dims, config.value);
    out.gpu_compress = c.timing;
    out.compress_seconds = c.timing.total();

    gpu::DeviceDecompressResult d = device_.decompress(c.bytes);
    out.gpu_decompress = d.timing;
    out.decompress_seconds = d.timing.total();

    out.bytes = std::move(c.bytes);
    out.reconstructed = std::move(d.values);
    out.reconstructed.resize(field.data.size());  // drop padding
    return out;
  }

 private:
  gpu::GpuSzDevice device_;
};

class CuZfpCompressor final : public Compressor {
 public:
  explicit CuZfpCompressor(gpu::GpuSimulator& sim) : device_(sim) {}

  [[nodiscard]] std::string name() const override { return "cuzfp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate"};
  }

  RunOutput run(const Field& field, const CompressorConfig& config) override {
    check_mode(config.mode, supported_modes(), name());
    RunOutput out;
    out.has_gpu_timing = true;

    // "the compression quality on the 1-D data is not as good as that on
    // the converted 3-D data" — convert like the paper does.
    const bool needs_reshape = field.dims.rank() == 1;
    const Dims dims = needs_reshape ? reshape_1d_to_3d(field.data.size()) : field.dims;
    std::vector<float> padded;
    std::span<const float> input = field.data;
    if (needs_reshape) {
      padded = pad_to(field, dims);
      input = padded;
    }

    gpu::DeviceCompressResult c = device_.compress(input, dims, config.value);
    out.gpu_compress = c.timing;
    out.compress_seconds = c.timing.total();

    gpu::DeviceDecompressResult d = device_.decompress(c.bytes);
    out.gpu_decompress = d.timing;
    out.decompress_seconds = d.timing.total();

    out.bytes = std::move(c.bytes);
    out.reconstructed = std::move(d.values);
    out.reconstructed.resize(field.data.size());
    return out;
  }

 private:
  gpu::CuZfpDevice device_;
};

class SzCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "sz-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }

  RunOutput run(const Field& field, const CompressorConfig& config) override {
    check_mode(config.mode, supported_modes(), name());
    RunOutput out;
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      out.bytes = sz::compress(field.data, field.dims, params);
      out.compress_seconds = timer.seconds();
      timer.reset();
      out.reconstructed = sz::decompress(out.bytes);
      out.decompress_seconds = timer.seconds();
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      out.bytes = sz::compress_pwrel(field.data, field.dims, params);
      out.compress_seconds = timer.seconds();
      timer.reset();
      out.reconstructed = sz::decompress_pwrel(out.bytes);
      out.decompress_seconds = timer.seconds();
    }
    return out;
  }
};

class ZfpCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy", "precision"};
  }

  RunOutput run(const Field& field, const CompressorConfig& config) override {
    check_mode(config.mode, supported_modes(), name());
    zfp::Params params;
    if (config.mode == "rate") {
      params.mode = zfp::Mode::kFixedRate;
      params.rate = config.value;
    } else if (config.mode == "precision") {
      params.mode = zfp::Mode::kFixedPrecision;
      params.precision = static_cast<unsigned>(config.value);
    } else {
      params.mode = zfp::Mode::kFixedAccuracy;
      params.tolerance = config.value;
    }
    RunOutput out;
    Timer timer;
    out.bytes = zfp::compress(field.data, field.dims, params);
    out.compress_seconds = timer.seconds();
    timer.reset();
    out.reconstructed = zfp::decompress(out.bytes);
    out.decompress_seconds = timer.seconds();
    return out;
  }
};

/// ZFP with OpenMP-style chunk parallelism over the global thread pool —
/// the "ZFP OpenMP" row of Fig. 8, plus the parallel decompression the
/// released library lacked (every chunk is self-describing).
class ZfpOmpCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-omp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy"};
  }

  RunOutput run(const Field& field, const CompressorConfig& config) override {
    check_mode(config.mode, supported_modes(), name());
    zfp::Params params;
    if (config.mode == "rate") {
      params.mode = zfp::Mode::kFixedRate;
      params.rate = config.value;
    } else {
      params.mode = zfp::Mode::kFixedAccuracy;
      params.tolerance = config.value;
    }
    ThreadPool& pool = global_pool();
    RunOutput out;
    Timer timer;
    out.bytes = zfp::compress_chunked(field.data, field.dims, params, &pool);
    out.compress_seconds = timer.seconds();
    timer.reset();
    out.reconstructed = zfp::decompress_chunked(out.bytes, &pool);
    out.decompress_seconds = timer.seconds();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim) {
  if (name == "gpu-sz" || name == "cuzfp") {
    require(sim != nullptr, "make_compressor: '" + name + "' needs a GPU simulator");
    if (name == "gpu-sz") return std::make_unique<GpuSzCompressor>(*sim);
    return std::make_unique<CuZfpCompressor>(*sim);
  }
  if (name == "sz-cpu") return std::make_unique<SzCpuCompressor>();
  if (name == "zfp-cpu") return std::make_unique<ZfpCpuCompressor>();
  if (name == "zfp-omp") return std::make_unique<ZfpOmpCompressor>();
  throw InvalidArgument("make_compressor: unknown compressor '" + name + "'");
}

std::vector<std::string> available_compressors() {
  return {"gpu-sz", "cuzfp", "sz-cpu", "zfp-cpu", "zfp-omp"};
}

}  // namespace cosmo::foresight
