#include "foresight/compressor.hpp"

#include <algorithm>

#include "common/str.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "common/thread_pool.hpp"
#include "sz/pwrel.hpp"
#include "sz/sz.hpp"
#include "zfp/chunked.hpp"
#include "zfp/zfp.hpp"

namespace cosmo::foresight {

std::string CompressorConfig::label() const {
  return strprintf("%s=%g", mode.c_str(), value);
}

CompressResult CodecSession::compress(const Field& field, const CompressorConfig& config) {
  CompressResult out;
  compress(field, config, out);
  return out;
}

DecompressResult CodecSession::decompress(const CompressResult& compressed) {
  DecompressResult out;
  decompress(compressed, out);
  return out;
}

RunOutput Compressor::run(const Field& field, const CompressorConfig& config) {
  TRACE_SPAN("session.run");
  const std::unique_ptr<CodecSession> session = open_session();
  CompressResult c;
  session->compress(field, config, c);
  DecompressResult d;
  session->decompress(c, d);

  RunOutput out;
  out.bytes = std::move(c.bytes);
  out.reconstructed = std::move(d.values);
  out.compress = c.telemetry;
  out.decompress = d.telemetry;
  out.throughput_reportable = c.throughput_reportable;
  return out;
}

namespace {

void check_mode(const std::string& got, const std::vector<std::string>& allowed,
                const std::string& who) {
  if (std::find(allowed.begin(), allowed.end(), got) == allowed.end()) {
    throw InvalidArgument(who + ": unsupported mode '" + got + "'");
  }
}

/// Truncates a reconstruction back to the pre-padding length recorded at
/// compression time (no-op when the length is unknown or already right).
void drop_padding(const CompressResult& compressed, std::vector<float>& values) {
  if (compressed.original_values != 0) values.resize(compressed.original_values);
}

/// Counts host fallbacks across all sessions; surfaced via --metrics-out.
void count_cpu_fallback() {
  telemetry::MetricsRegistry::instance().counter("codec.cpu_fallbacks").add();
}

class GpuSzSession final : public CodecSession {
 public:
  GpuSzSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("gpu-sz.compress");
    check_mode(config.mode, {"abs", "pw_rel"}, "gpu-sz");
    out.telemetry.reset_gpu();
    out.throughput_reportable = gpu::GpuSzDevice::throughput_supported();
    out.original_values = field.data.size();

    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);  // bring the caller's capacity in for reuse
    try {
      if (config.mode == "abs") {
        device_.compress_abs_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      } else {
        device_.compress_pwrel_into(shaped.values(), shaped.dims(), config.value, dev_c_);
      }
    } catch (const OutOfMemoryError&) {
      // The job does not fit on the device; run the matching host codec
      // (bit-identical stream) with measured wall time instead. Throughput
      // stays non-reportable — the time no longer describes the device.
      out.bytes.swap(dev_c_.bytes);
      compress_on_host(shaped, config, out);
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.telemetry.set_device(dev_c_.timing, dev_c_.attempts);
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("gpu-sz.decompress");
    out.telemetry.reset_gpu();
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      out.values.swap(dev_d_.values);
      decompress_on_host(compressed, out);
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.telemetry.set_device(dev_d_.timing, dev_d_.attempts);
  }

 private:
  void compress_on_host(const ShapeAdapter& shaped, const CompressorConfig& config,
                        CompressResult& out) {
    TRACE_SPAN("gpu-sz.compress.host_fallback");
    out.telemetry.mark_cpu_fallback();
    out.throughput_reportable = false;
    count_cpu_fallback();
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(shaped.values(), shaped.dims(), params, out.bytes);
    }
    out.telemetry.seconds = timer.seconds();
  }

  void decompress_on_host(const CompressResult& compressed, DecompressResult& out) {
    TRACE_SPAN("gpu-sz.decompress.host_fallback");
    out.telemetry.mark_cpu_fallback();
    count_cpu_fallback();
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values);
    } else {
      sz::decompress_into(compressed.bytes, out.values);
    }
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }

  gpu::GpuSzDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class GpuSzCompressor final : public Compressor {
 public:
  explicit GpuSzCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] std::string name() const override { return "gpu-sz"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<GpuSzSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class CuZfpSession final : public CodecSession {
 public:
  CuZfpSession(gpu::GpuSimulator& sim, ScratchArena* arena)
      : CodecSession(arena), device_(sim) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("cuzfp.compress");
    check_mode(config.mode, {"rate"}, "cuzfp");
    out.telemetry.reset_gpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();

    // "the compression quality on the 1-D data is not as good as that on
    // the converted 3-D data" — convert like the paper does.
    ShapeAdapter shaped(field, arena());
    dev_c_.bytes.swap(out.bytes);
    try {
      device_.compress_into(shaped.values(), shaped.dims(), config.value, dev_c_);
    } catch (const OutOfMemoryError&) {
      // Device-OOM: fixed-rate ZFP on the host emits the identical stream;
      // record the fallback and stop reporting device throughput.
      TRACE_SPAN("cuzfp.compress.host_fallback");
      out.bytes.swap(dev_c_.bytes);
      out.telemetry.mark_cpu_fallback();
      out.throughput_reportable = false;
      count_cpu_fallback();
      zfp::Params params;
      params.mode = zfp::Mode::kFixedRate;
      params.rate = config.value;
      Timer timer;
      zfp::compress_into(shaped.values(), shaped.dims(), params, out.bytes);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.bytes.swap(dev_c_.bytes);
    out.telemetry.set_device(dev_c_.timing, dev_c_.attempts);
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("cuzfp.decompress");
    out.telemetry.reset_gpu();
    dev_d_.values.swap(out.values);
    try {
      device_.decompress_into(compressed.bytes, dev_d_);
    } catch (const OutOfMemoryError&) {
      TRACE_SPAN("cuzfp.decompress.host_fallback");
      out.values.swap(dev_d_.values);
      out.telemetry.mark_cpu_fallback();
      count_cpu_fallback();
      Timer timer;
      zfp::decompress_into(compressed.bytes, out.values);
      drop_padding(compressed, out.values);
      out.telemetry.seconds = timer.seconds();
      return;
    }
    out.values.swap(dev_d_.values);
    drop_padding(compressed, out.values);
    out.telemetry.set_device(dev_d_.timing, dev_d_.attempts);
  }

 private:
  gpu::CuZfpDevice device_;
  gpu::DeviceCompressResult dev_c_;
  gpu::DeviceDecompressResult dev_d_;
};

class CuZfpCompressor final : public Compressor {
 public:
  explicit CuZfpCompressor(gpu::GpuSimulator& sim) : sim_(sim) {}

  [[nodiscard]] std::string name() const override { return "cuzfp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// The pool is ignored: modeled GPU timings draw from the simulator's
  /// jitter stream and must stay call-order deterministic.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<CuZfpSession>(sim_, arena);
  }

 private:
  gpu::GpuSimulator& sim_;
};

class SzCpuSession final : public CodecSession {
 public:
  SzCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("sz-cpu.compress");
    check_mode(config.mode, {"abs", "pw_rel"}, "sz-cpu");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    Timer timer;
    if (config.mode == "abs") {
      sz::Params params;
      params.abs_error_bound = config.value;
      sz::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    } else {
      sz::PwRelParams params;
      params.pw_rel_bound = config.value;
      sz::compress_pwrel_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    }
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("sz-cpu.decompress");
    out.telemetry.reset_cpu();
    Timer timer;
    if (sz::is_pwrel_stream(compressed.bytes)) {
      sz::decompress_pwrel_into(compressed.bytes, out.values, nullptr, pool());
    } else {
      sz::decompress_into(compressed.bytes, out.values, nullptr, pool());
    }
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class SzCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "sz-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"abs", "pw_rel"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return true; }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    TRACE_SPAN("session.open");
    return std::make_unique<SzCpuSession>(arena, pool);
  }
};

zfp::Params zfp_params_for(const CompressorConfig& config) {
  zfp::Params params;
  if (config.mode == "rate") {
    params.mode = zfp::Mode::kFixedRate;
    params.rate = config.value;
  } else if (config.mode == "precision") {
    params.mode = zfp::Mode::kFixedPrecision;
    params.precision = static_cast<unsigned>(config.value);
  } else {
    params.mode = zfp::Mode::kFixedAccuracy;
    params.tolerance = config.value;
  }
  return params;
}

class ZfpCpuSession final : public CodecSession {
 public:
  ZfpCpuSession(ScratchArena* arena, ThreadPool* pool) : CodecSession(arena, pool) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("zfp-cpu.compress");
    check_mode(config.mode, {"rate", "accuracy", "precision"}, "zfp-cpu");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    Timer timer;
    zfp::compress_into(field.data, field.dims, params, out.bytes, nullptr, pool());
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("zfp-cpu.decompress");
    out.telemetry.reset_cpu();
    Timer timer;
    zfp::decompress_into(compressed.bytes, out.values, nullptr, pool());
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class ZfpCpuCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-cpu"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy", "precision"};
  }
  [[nodiscard]] bool concurrent_sessions_safe() const override { return true; }
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* pool) override {
    TRACE_SPAN("session.open");
    return std::make_unique<ZfpCpuSession>(arena, pool);
  }
};

/// ZFP with OpenMP-style chunk parallelism over the global thread pool —
/// the "ZFP OpenMP" row of Fig. 8, plus the parallel decompression the
/// released library lacked (every chunk is self-describing).
class ZfpOmpSession final : public CodecSession {
 public:
  explicit ZfpOmpSession(ScratchArena* arena) : CodecSession(arena) {}

  void compress(const Field& field, const CompressorConfig& config,
                CompressResult& out) override {
    TRACE_SPAN("zfp-omp.compress");
    check_mode(config.mode, {"rate", "accuracy"}, "zfp-omp");
    out.telemetry.reset_cpu();
    out.throughput_reportable = true;
    out.original_values = field.data.size();
    const zfp::Params params = zfp_params_for(config);
    ThreadPool& pool = global_pool();
    Timer timer;
    out.bytes = zfp::compress_chunked(field.data, field.dims, params, &pool);
    out.telemetry.seconds = timer.seconds();
  }

  void decompress(const CompressResult& compressed, DecompressResult& out) override {
    TRACE_SPAN("zfp-omp.decompress");
    out.telemetry.reset_cpu();
    ThreadPool& pool = global_pool();
    Timer timer;
    out.values = zfp::decompress_chunked(compressed.bytes, &pool);
    drop_padding(compressed, out.values);
    out.telemetry.seconds = timer.seconds();
  }
};

class ZfpOmpCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp-omp"; }
  [[nodiscard]] std::vector<std::string> supported_modes() const override {
    return {"rate", "accuracy"};
  }
  /// Chunks already fan out over the global pool; a pool worker opening a
  /// nested chunked run could deadlock waiting for its own queue.
  [[nodiscard]] bool concurrent_sessions_safe() const override { return false; }
  /// Ignores the session pool: chunks already fan out over the global pool.
  [[nodiscard]] std::unique_ptr<CodecSession> open_session(ScratchArena* arena,
                                                          ThreadPool* /*pool*/) override {
    TRACE_SPAN("session.open");
    return std::make_unique<ZfpOmpSession>(arena);
  }
};

}  // namespace

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim) {
  if (name == "gpu-sz" || name == "cuzfp") {
    require(sim != nullptr, "make_compressor: '" + name + "' needs a GPU simulator");
    if (name == "gpu-sz") return std::make_unique<GpuSzCompressor>(*sim);
    return std::make_unique<CuZfpCompressor>(*sim);
  }
  if (name == "sz-cpu") return std::make_unique<SzCpuCompressor>();
  if (name == "zfp-cpu") return std::make_unique<ZfpCpuCompressor>();
  if (name == "zfp-omp") return std::make_unique<ZfpOmpCompressor>();
  throw InvalidArgument("make_compressor: unknown compressor '" + name + "'");
}

std::vector<std::string> available_compressors() {
  return {"gpu-sz", "cuzfp", "sz-cpu", "zfp-cpu", "zfp-omp"};
}

}  // namespace cosmo::foresight
