#include "foresight/cinema.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/str.hpp"

namespace cosmo::foresight {

namespace {

/// Categorical palette (solid, colorblind-aware).
const char* kPalette[] = {"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
                          "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5"};

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw IoError("cinema: cannot create directory " + dir + ": " + ec.message());
}

CinemaDatabase::CinemaDatabase(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  require(!columns_.empty(), "cinema: need at least one column");
}

void CinemaDatabase::add_row(std::vector<std::string> row) {
  require(row.size() == columns_.size(), "cinema: row/column count mismatch");
  rows_.push_back(std::move(row));
}

void CinemaDatabase::write(const std::string& dir) const {
  ensure_directory(dir);
  std::ofstream out(dir + "/data.csv", std::ios::trunc);
  if (!out) throw IoError("cinema: cannot write " + dir + "/data.csv");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out << ",";
    out << csv_escape(columns_[i]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << csv_escape(row[i]);
    }
    out << "\n";
  }
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SvgPlot::add_series(PlotSeries series) {
  require(series.x.size() == series.y.size(), "svg: series x/y size mismatch");
  series_.push_back(std::move(series));
}

void SvgPlot::add_hband(double y_lo, double y_hi, const std::string& color) {
  hbands_.push_back({y_lo, y_hi, color});
}

void SvgPlot::add_hline(double y, const std::string& label) { hlines_.push_back({y, label}); }

std::string SvgPlot::render(int width, int height) const {
  const double ml = 70, mr = 160, mt = 40, mb = 55;
  const double pw = width - ml - mr;
  const double ph = height - mt - mb;

  // Data ranges (including reference lines/bands).
  double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (log_x_ && s.x[i] <= 0.0) continue;
      if (log_y_ && s.y[i] <= 0.0) continue;
      x_lo = std::min(x_lo, s.x[i]);
      x_hi = std::max(x_hi, s.x[i]);
      y_lo = std::min(y_lo, s.y[i]);
      y_hi = std::max(y_hi, s.y[i]);
    }
  }
  for (const auto& b : hbands_) {
    y_lo = std::min(y_lo, b.lo);
    y_hi = std::max(y_hi, b.hi);
  }
  for (const auto& l : hlines_) {
    y_lo = std::min(y_lo, l.y);
    y_hi = std::max(y_hi, l.y);
  }
  if (x_lo > x_hi) {
    x_lo = 0;
    x_hi = 1;
  }
  if (y_lo > y_hi) {
    y_lo = 0;
    y_hi = 1;
  }
  if (x_lo == x_hi) x_hi = x_lo + 1;
  if (y_lo == y_hi) y_hi = y_lo + (y_lo == 0.0 ? 1.0 : std::fabs(y_lo) * 0.1);
  // 5% padding.
  auto tx = [&](double v) { return log_x_ ? std::log10(v) : v; };
  auto ty = [&](double v) { return log_y_ ? std::log10(v) : v; };
  double txl = tx(x_lo), txh = tx(x_hi), tyl = ty(y_lo), tyh = ty(y_hi);
  const double xpad = (txh - txl) * 0.04;
  const double ypad = (tyh - tyl) * 0.06;
  txl -= xpad;
  txh += xpad;
  tyl -= ypad;
  tyh += ypad;

  auto px = [&](double v) { return ml + (tx(v) - txl) / (txh - txl) * pw; };
  auto py = [&](double v) { return mt + ph - (ty(v) - tyl) / (tyh - tyl) * ph; };

  std::string svg = strprintf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"sans-serif\">\n<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n",
      width, height, width, height);

  for (const auto& b : hbands_) {
    svg += strprintf(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" "
        "opacity=\"0.35\"/>\n",
        ml, py(b.hi), pw, std::fabs(py(b.lo) - py(b.hi)), b.color.c_str());
  }

  // Axes frame.
  svg += strprintf(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" "
      "stroke=\"#333\"/>\n",
      ml, mt, pw, ph);

  // Ticks: 6 per axis (in transformed space).
  for (int t = 0; t <= 5; ++t) {
    const double fx = txl + (txh - txl) * t / 5.0;
    const double vx = log_x_ ? std::pow(10.0, fx) : fx;
    const double sx = ml + (fx - txl) / (txh - txl) * pw;
    svg += strprintf("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ccc\"/>\n",
                     sx, mt, sx, mt + ph);
    svg += strprintf(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n", sx,
        mt + ph + 16, strprintf("%.3g", vx).c_str());

    const double fy = tyl + (tyh - tyl) * t / 5.0;
    const double vy = log_y_ ? std::pow(10.0, fy) : fy;
    const double sy = mt + ph - (fy - tyl) / (tyh - tyl) * ph;
    svg += strprintf("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ccc\"/>\n",
                     ml, sy, ml + pw, sy);
    svg += strprintf(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
        ml - 6, sy + 4, strprintf("%.3g", vy).c_str());
  }

  for (const auto& l : hlines_) {
    svg += strprintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#d62728\" "
        "stroke-dasharray=\"6,4\"/>\n",
        ml, py(l.y), ml + pw, py(l.y));
    if (!l.label.empty()) {
      svg += strprintf(
          "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#d62728\">%s</text>\n", ml + 4,
          py(l.y) - 4, l.label.c_str());
    }
  }

  // Series.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    const std::string color =
        s.color.empty() ? kPalette[si % std::size(kPalette)] : s.color;
    std::string points;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (log_x_ && s.x[i] <= 0.0) continue;
      if (log_y_ && s.y[i] <= 0.0) continue;
      points += strprintf("%.1f,%.1f ", px(s.x[i]), py(s.y[i]));
    }
    svg += strprintf(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"%s/>\n",
        points.c_str(), color.c_str(), s.dashed ? " stroke-dasharray=\"7,4\"" : "");
    // Legend entry.
    const double ly = mt + 14 + 18.0 * static_cast<double>(si);
    svg += strprintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" "
        "stroke-width=\"2\"%s/>\n",
        ml + pw + 8, ly, ml + pw + 30, ly, color.c_str(),
        s.dashed ? " stroke-dasharray=\"7,4\"" : "");
    svg += strprintf("<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n", ml + pw + 34,
                     ly + 4, s.label.c_str());
  }

  // Labels.
  svg += strprintf(
      "<text x=\"%.1f\" y=\"22\" font-size=\"14\" font-weight=\"bold\" "
      "text-anchor=\"middle\">%s</text>\n",
      ml + pw / 2, title_.c_str());
  svg += strprintf(
      "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n",
      ml + pw / 2, mt + ph + 40, x_label_.c_str());
  svg += strprintf(
      "<text x=\"18\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" "
      "transform=\"rotate(-90 18 %.1f)\">%s</text>\n",
      mt + ph / 2, mt + ph / 2, y_label_.c_str());
  svg += "</svg>\n";
  return svg;
}

void SvgPlot::save(const std::string& path, int width, int height) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("svg: cannot write " + path);
  out << render(width, height);
}

SvgBarChart::SvgBarChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SvgBarChart::set_segments(std::vector<std::string> names) {
  require(!names.empty(), "svg-bar: need at least one segment");
  segments_ = std::move(names);
}

void SvgBarChart::add_bar(const std::string& label, std::vector<double> values) {
  require(values.size() == segments_.size(),
          "svg-bar: value count must match declared segments");
  for (const double v : values) require(v >= 0.0, "svg-bar: negative segment value");
  bars_.push_back({label, std::move(values)});
}

void SvgBarChart::add_hline(double y, const std::string& label) {
  hlines_.push_back({y, label});
}

std::string SvgBarChart::render(int width, int height) const {
  const double ml = 70, mr = 150, mt = 40, mb = 55;
  const double pw = width - ml - mr;
  const double ph = height - mt - mb;

  double y_max = 0.0;
  for (const auto& bar : bars_) {
    double total = 0.0;
    for (const double v : bar.values) total += v;
    y_max = std::max(y_max, total);
  }
  for (const auto& l : hlines_) y_max = std::max(y_max, l.y);
  if (y_max <= 0.0) y_max = 1.0;
  y_max *= 1.08;

  auto py = [&](double v) { return mt + ph - v / y_max * ph; };

  std::string svg = strprintf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"sans-serif\">\n<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n",
      width, height, width, height);
  svg += strprintf(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" "
      "stroke=\"#333\"/>\n",
      ml, mt, pw, ph);

  // y ticks.
  for (int t = 0; t <= 5; ++t) {
    const double v = y_max * t / 5.0;
    svg += strprintf("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ccc\"/>\n",
                     ml, py(v), ml + pw, py(v));
    svg += strprintf(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
        ml - 6, py(v) + 4, strprintf("%.3g", v).c_str());
  }

  // Bars.
  const std::size_t n = bars_.size();
  const double slot = n ? pw / static_cast<double>(n) : pw;
  const double bar_w = slot * 0.6;
  for (std::size_t b = 0; b < n; ++b) {
    const double x0 = ml + slot * (static_cast<double>(b) + 0.2);
    double y_cursor = 0.0;
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const double v = bars_[b].values[s];
      svg += strprintf(
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" "
          "stroke=\"#333\" stroke-width=\"0.5\"/>\n",
          x0, py(y_cursor + v), bar_w, py(y_cursor) - py(y_cursor + v),
          kPalette[s % std::size(kPalette)]);
      y_cursor += v;
    }
    svg += strprintf(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n",
        x0 + bar_w / 2, mt + ph + 16, bars_[b].label.c_str());
  }

  for (const auto& l : hlines_) {
    svg += strprintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#d62728\" "
        "stroke-dasharray=\"6,4\"/>\n",
        ml, py(l.y), ml + pw, py(l.y));
    if (!l.label.empty()) {
      svg += strprintf(
          "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#d62728\">%s</text>\n",
          ml + 4, py(l.y) - 4, l.label.c_str());
    }
  }

  // Legend.
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const double ly = mt + 14 + 18.0 * static_cast<double>(s);
    svg += strprintf(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"14\" height=\"10\" fill=\"%s\"/>\n",
        ml + pw + 8, ly - 8, kPalette[s % std::size(kPalette)]);
    svg += strprintf("<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n",
                     ml + pw + 26, ly, segments_[s].c_str());
  }

  svg += strprintf(
      "<text x=\"%.1f\" y=\"22\" font-size=\"14\" font-weight=\"bold\" "
      "text-anchor=\"middle\">%s</text>\n",
      ml + pw / 2, title_.c_str());
  svg += strprintf(
      "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n",
      ml + pw / 2, mt + ph + 40, x_label_.c_str());
  svg += strprintf(
      "<text x=\"18\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" "
      "transform=\"rotate(-90 18 %.1f)\">%s</text>\n",
      mt + ph / 2, mt + ph / 2, y_label_.c_str());
  svg += "</svg>\n";
  return svg;
}

void SvgBarChart::save(const std::string& path, int width, int height) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("svg-bar: cannot write " + path);
  out << render(width, height);
}

void write_cinema_index(const std::string& dir, const std::string& title,
                        const std::vector<std::string>& artifact_paths) {
  ensure_directory(dir);
  std::ofstream out(dir + "/index.html", std::ios::trunc);
  if (!out) throw IoError("cinema: cannot write " + dir + "/index.html");
  out << "<!DOCTYPE html>\n<html><head><title>" << title
      << "</title></head>\n<body>\n<h1>" << title << "</h1>\n<ul>\n";
  for (const auto& p : artifact_paths) {
    out << "<li><a href=\"" << p << "\">" << p << "</a></li>\n";
  }
  out << "</ul>\n</body></html>\n";
}

}  // namespace cosmo::foresight
