#include "foresight/optimizer_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmo::foresight {

bool mode_loosens_with_larger_value(const std::string& mode) {
  if (mode == "abs" || mode == "pw_rel" || mode == "accuracy") return true;
  if (mode == "rate" || mode == "precision") return false;
  throw InvalidArgument("optimizer_model: unknown config mode '" + mode + "'");
}

std::vector<std::size_t> aggressiveness_order(
    const std::vector<CompressorConfig>& configs) {
  std::vector<std::size_t> order(configs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (configs.empty()) return order;
  const std::string& mode = configs.front().mode;
  for (const auto& c : configs) {
    require(c.mode == mode, "aggressiveness_order: mixed modes ('" + mode + "' vs '" +
                                c.mode + "'); partition by mode first");
  }
  const bool loosens = mode_loosens_with_larger_value(mode);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return loosens ? configs[a].value < configs[b].value
                   : configs[a].value > configs[b].value;
  });
  return order;
}

std::vector<std::size_t> probe_positions(std::size_t n, std::size_t probes) {
  if (n == 0) return {};
  if (n == 1) return {0};
  probes = std::clamp<std::size_t>(probes, 2, n);
  std::vector<std::size_t> out;
  out.reserve(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    // Evenly spread including both endpoints; integer rounding dedups below.
    const double t = static_cast<double>(i) / static_cast<double>(probes - 1);
    out.push_back(static_cast<std::size_t>(std::lround(t * static_cast<double>(n - 1))));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void RateQualityModel::add_point(double value, double ratio, double deviation) {
  require(value > 0.0, "RateQualityModel: config value must be > 0");
  const double lv = std::log(value);
  const auto it = std::lower_bound(
      pts_.begin(), pts_.end(), lv,
      [](const Point& p, double key) { return p.log_value < key; });
  if (it != pts_.end() && it->log_value == lv) {
    it->ratio = ratio;
    it->deviation = deviation;
    return;
  }
  pts_.insert(it, Point{lv, ratio, deviation});
}

double RateQualityModel::interpolate(double lv, bool log_ratio) const {
  require(!pts_.empty(), "RateQualityModel: no points fitted");
  const auto pick = [&](const Point& p) { return log_ratio ? p.ratio : p.deviation; };
  if (pts_.size() == 1 || lv <= pts_.front().log_value) return pick(pts_.front());
  if (lv >= pts_.back().log_value) return pick(pts_.back());
  const auto hi = std::lower_bound(
      pts_.begin(), pts_.end(), lv,
      [](const Point& p, double key) { return p.log_value < key; });
  const auto lo = hi - 1;
  const double t = (lv - lo->log_value) / (hi->log_value - lo->log_value);
  if (log_ratio) {
    // Log-log: ratios are positive (floored at 1 by the caller's data), and
    // rate-distortion curves are close to straight lines in log-log space.
    const double a = std::log(std::max(pick(*lo), 1e-300));
    const double b = std::log(std::max(pick(*hi), 1e-300));
    return std::exp(a + t * (b - a));
  }
  return pick(*lo) + t * (pick(*hi) - pick(*lo));
}

double RateQualityModel::predict_ratio(double value) const {
  require(value > 0.0, "RateQualityModel: config value must be > 0");
  return std::max(1.0, interpolate(std::log(value), /*log_ratio=*/true));
}

double RateQualityModel::predict_deviation(double value) const {
  require(value > 0.0, "RateQualityModel: config value must be > 0");
  return std::max(0.0, interpolate(std::log(value), /*log_ratio=*/false));
}

std::size_t bisect_next(std::size_t lo, std::size_t hi) {
  require(lo < hi, "bisect_next: need lo < hi");
  if (hi - lo <= 1) return kBisectDone;
  return lo + (hi - lo) / 2;
}

}  // namespace cosmo::foresight
