#include "foresight/pipeline.hpp"

#include <fstream>
#include <optional>

#include "analysis/halo_stats.hpp"
#include "analysis/power_spectrum.hpp"
#include "analysis/ssim.hpp"
#include "common/fault.hpp"
#include "common/str.hpp"
#include "common/telemetry.hpp"
#include "cosmo/hacc_synth.hpp"
#include "cosmo/nyx_synth.hpp"
#include "foresight/cinema.hpp"
#include "foresight/pat.hpp"
#include "foresight/sweep.hpp"

namespace cosmo::foresight {

io::Container build_dataset(const json::Value& spec) {
  const std::string type = spec.get("type", std::string("nyx"));
  if (type == "nyx") {
    NyxConfig config;
    config.dim = static_cast<std::size_t>(spec.get("dim", 64.0));
    config.seed = static_cast<std::uint64_t>(spec.get("seed", 42.0));
    return generate_nyx(config);
  }
  if (type == "hacc") {
    HaccConfig config;
    config.particles = static_cast<std::size_t>(spec.get("particles", 100000.0));
    config.seed = static_cast<std::uint64_t>(spec.get("seed", 7.0));
    if (spec.contains("halo_count")) {
      config.halo_count = static_cast<std::size_t>(spec.at("halo_count").as_number());
    }
    return generate_hacc(config);
  }
  if (type == "file") {
    return io::load(spec.at("path").as_string());
  }
  throw InvalidArgument("pipeline: unknown dataset type '" + type + "'");
}

std::optional<fault::Config> parse_faults(const json::Value& config) {
  if (!config.contains("faults")) return std::nullopt;
  const json::Value& f = config.at("faults");
  fault::Config c;
  c.seed = static_cast<std::uint64_t>(f.get("seed", static_cast<double>(c.seed)));
  c.corrupt_probability = f.get("corrupt_probability", 0.0);
  c.corrupt_bit_flip = f.get("corrupt_bit_flip", true);
  c.corrupt_truncate = f.get("corrupt_truncate", true);
  c.corrupt_zero_run = f.get("corrupt_zero_run", true);
  c.gpu_transient_every = static_cast<std::uint32_t>(f.get("gpu_transient_every", 0.0));
  c.gpu_transient_probability = f.get("gpu_transient_probability", 0.0);
  c.gpu_oom_every = static_cast<std::uint32_t>(f.get("gpu_oom_every", 0.0));
  c.gpu_oom_probability = f.get("gpu_oom_probability", 0.0);
  c.io_failure_every = static_cast<std::uint32_t>(f.get("io_failure_every", 0.0));
  c.io_failure_probability = f.get("io_failure_probability", 0.0);
  return c;
}

namespace {

std::string result_key(const CBenchResult& r) {
  return r.field + "|" + r.compressor + "|" + r.config.label();
}

/// Resolves a telemetry output path against the run's output dir (absolute
/// paths pass through) and writes \p content there.
std::string write_telemetry_file(const std::string& output_dir, const std::string& path,
                                 const std::string& content) {
  const std::string resolved =
      path.empty() || path.front() == '/' ? path : output_dir + "/" + path;
  std::ofstream out(resolved, std::ios::trunc);
  require(out.good(), "pipeline: cannot write telemetry file " + resolved);
  out << content;
  return resolved;
}

}  // namespace

PipelineSummary run_pipeline(const json::Value& config) {
  PipelineSummary summary;
  summary.output_dir = config.get("output", std::string("foresight_out"));
  ensure_directory(summary.output_dir);

  // --- Observability (tracing stays disabled unless asked for) ---
  std::string trace_out;
  std::string metrics_out;
  if (config.contains("telemetry")) {
    const json::Value& t = config.at("telemetry");
    trace_out = t.get("trace_out", std::string());
    metrics_out = t.get("metrics_out", std::string());
    if (t.get("trace", !trace_out.empty())) {
      telemetry::Tracer::enable(static_cast<std::size_t>(t.get(
          "trace_capacity", static_cast<double>(telemetry::Tracer::kDefaultCapacity))));
    }
  }

  // --- Fault injection (disabled unless the config carries "faults") ---
  // The plan outlives the whole run; the Scope installs it process-wide so
  // the io layer, the GPU simulator, and the CBench corruption hook all see
  // it. Destroyed (reverse order) before return.
  std::unique_ptr<fault::FaultPlan> fault_plan;
  std::optional<fault::Scope> fault_scope;
  if (const auto fault_cfg = parse_faults(config)) {
    fault_plan = std::make_unique<fault::FaultPlan>(*fault_cfg);
    fault_scope.emplace(*fault_plan);
  }

  // --- Dataset ---
  const io::Container dataset = build_dataset(config.at("dataset"));
  const std::string dataset_type = config.at("dataset").get("type", std::string("nyx"));

  // --- GPU simulator (shared by device-backed compressors) ---
  gpu::GpuSimulator sim(gpu::find_device(config.get("gpu", std::string("Tesla V100"))));

  const json::Value& analysis_cfg =
      config.contains("analysis") ? config.at("analysis") : json::Value(json::Object{});
  const bool do_pk = analysis_cfg.get("power_spectrum", false);
  const bool do_halo = analysis_cfg.get("halo_finder", false);
  const bool do_ssim = analysis_cfg.get("ssim", false);

  // --- Build the PAT workflow: cbench jobs -> analysis jobs -> cinema. ---
  // "threads" is the intra-field knob (1 serial / 0 global / N dedicated);
  // it reaches codec sessions through CBench and the analysis kernels
  // directly. Output is byte-identical for any value, so it composes freely
  // with "jobs" (workflow-level parallelism) — though running both > 1
  // oversubscribes a small host.
  const auto intra_threads = static_cast<std::size_t>(config.get("threads", 1.0));
  const PoolHandle intra(intra_threads);
  ThreadPool* const intra_pool = intra.get();
  const OnError on_error = parse_on_error(config.get("on_error", std::string("continue")));
  Workflow workflow;
  CBench bench({.keep_reconstructed = true, .dataset_name = dataset_type,
                .session_threads = intra_threads, .on_error = on_error});

  std::vector<std::string> cbench_job_names;

  struct PlannedRun {
    std::string compressor;
    std::vector<std::string> fields;
    std::vector<CompressorConfig> configs;
  };
  std::vector<PlannedRun> planned;
  for (const auto& run : config.at("runs").as_array()) {
    PlannedRun p;
    p.compressor = run.at("compressor").as_string();
    if (run.contains("fields")) {
      for (const auto& f : run.at("fields").as_array()) p.fields.push_back(f.as_string());
    } else {
      for (const auto& v : dataset.variables) p.fields.push_back(v.field.name);
    }
    for (const auto& c : run.at("configs").as_array()) {
      p.configs.push_back({c.at("mode").as_string(), c.at("value").as_number()});
    }
    planned.push_back(std::move(p));
  }

  // One compressor instance per planned run (GPU-backed ones share `sim`).
  std::vector<std::unique_ptr<Compressor>> compressors;
  for (const auto& p : planned) compressors.push_back(make_compressor(p.compressor, &sim));

  // Every cbench job gets a pre-assigned result slot, so results come out
  // in plan order (and jobs need no lock) however the workflow schedules.
  std::size_t job_count = 0;
  for (const auto& p : planned) job_count += p.fields.size() * p.configs.size();
  summary.results.resize(job_count);
  std::vector<std::vector<float>> recons(job_count);  // held for the analysis stage

  std::size_t slot = 0;
  for (std::size_t pi = 0; pi < planned.size(); ++pi) {
    const auto& p = planned[pi];
    for (const auto& field_name : p.fields) {
      for (const auto& cfg : p.configs) {
        const std::string job_name =
            strprintf("cbench-%s-%s-%s", p.compressor.c_str(), field_name.c_str(),
                      cfg.label().c_str());
        cbench_job_names.push_back(job_name);
        // Pre-fill the identity columns so a job that throws before
        // assigning its row (on_error "abort") still reports which
        // field/codec/config failed.
        summary.results[slot].dataset = dataset_type;
        summary.results[slot].field = field_name;
        summary.results[slot].compressor = p.compressor;
        summary.results[slot].config = cfg;
        Compressor* codec = compressors[pi].get();
        workflow.add(job_name, {}, [&, codec, field_name, cfg, slot] {
          const Field& field = dataset.find(field_name).field;
          CBenchResult r = bench.run_one(field, *codec, cfg);
          recons[slot] = std::move(r.reconstructed);
          r.reconstructed.clear();
          summary.results[slot] = std::move(r);
        });
        ++slot;
      }
    }
  }

  if (do_pk) {
    workflow.add("analysis-power-spectrum", cbench_job_names, [&] {
      // The original-field spectrum is candidate-independent: compute it
      // once per field and serve every result row from the cache.
      std::map<std::string, std::vector<analysis::PkBin>> baselines;
      for (std::size_t i = 0; i < summary.results.size(); ++i) {
        const auto& r = summary.results[i];
        const Field& field = dataset.find(r.field).field;
        if (field.dims.rank() != 3) continue;
        if (recons[i].empty()) continue;
        auto base = baselines.find(r.field);
        if (base == baselines.end()) {
          base = baselines
                     .emplace(r.field,
                              analysis::power_spectrum(field.data, field.dims, 0, intra_pool))
                     .first;
        } else {
          telemetry::MetricsRegistry::instance()
              .counter("optimizer.baseline_cache_hits")
              .add();
        }
        const auto pk =
            analysis::pk_ratio(base->second, recons[i], field.dims, 0.5, intra_pool);
        summary.pk_deviation[result_key(r)] = pk.max_deviation;
      }
    });
  }

  if (do_ssim) {
    workflow.add("analysis-ssim", cbench_job_names, [&] {
      for (std::size_t i = 0; i < summary.results.size(); ++i) {
        const auto& r = summary.results[i];
        const Field& field = dataset.find(r.field).field;
        if (recons[i].empty()) continue;
        summary.ssim[result_key(r)] = analysis::ssim(field.data, recons[i], field.dims);
      }
    });
  }

  if (do_halo && dataset_type == "hacc") {
    workflow.add("analysis-halo-finder", cbench_job_names, [&] {
      analysis::FofParams fof_params;
      fof_params.linking_length = analysis_cfg.get("linking_length", 1.5);
      fof_params.min_members =
          static_cast<std::size_t>(analysis_cfg.get("min_members", 10.0));
      const auto& x = dataset.find("x").field.data;
      const auto& y = dataset.find("y").field.data;
      const auto& z = dataset.find("z").field.data;
      const auto original = analysis::fof(x, y, z, fof_params, intra_pool);
      // Binning and original mass function are shared by every comparison.
      std::optional<analysis::HaloBaseline> baseline;
      if (!original.halos.empty()) {
        baseline = analysis::make_halo_baseline(original.halos, 1.0);
      }

      std::map<std::string, std::size_t> slot_of;
      for (std::size_t i = 0; i < summary.results.size(); ++i) {
        if (!recons[i].empty()) slot_of[result_key(summary.results[i])] = i;
      }
      // Group position reconstructions by (compressor, config).
      for (const auto& r : summary.results) {
        if (r.field != "x") continue;
        const std::string suffix = "|" + r.compressor + "|" + r.config.label();
        const auto ix = slot_of.find("x" + suffix);
        const auto iy = slot_of.find("y" + suffix);
        const auto iz = slot_of.find("z" + suffix);
        if (ix == slot_of.end() || iy == slot_of.end() || iz == slot_of.end()) {
          continue;
        }
        const auto recon = analysis::fof(recons[ix->second], recons[iy->second],
                                         recons[iz->second], fof_params, intra_pool);
        double deviation = 1.0;
        if (!recon.halos.empty() && baseline) {
          deviation = analysis::compare_halo_catalogs(*baseline, recon.halos)
                          .max_ratio_deviation;
        }
        summary.halo_deviation["position" + suffix] = deviation;
      }
    });
  }

  // --- Optimizer stage: the Section V-D best-fit search as a PAT job. ---
  // Independent of the cbench sweep (it opens its own compressor and runs
  // its own evaluations), so it schedules alongside the other jobs.
  std::unique_ptr<Compressor> opt_codec;
  if (config.contains("optimizer")) {
    const json::Value& opt_cfg = config.at("optimizer");
    opt_codec = make_compressor(opt_cfg.at("compressor").as_string(), &sim);
    OptimizerOptions opt_options;
    opt_options.search = parse_search_mode(opt_cfg.get("search", std::string("exhaustive")));
    opt_options.probes = static_cast<std::size_t>(opt_cfg.get("probes", 3.0));
    opt_options.threads = static_cast<std::size_t>(opt_cfg.get("threads", 1.0));
    opt_options.on_error = on_error;
    const auto parse_configs = [&opt_cfg](const std::string& key) {
      std::vector<CompressorConfig> configs;
      if (!opt_cfg.contains(key)) return configs;
      for (const auto& c : opt_cfg.at(key).as_array()) {
        configs.push_back({c.at("mode").as_string(), c.at("value").as_number()});
      }
      return configs;
    };
    workflow.add("optimizer", {}, [&, opt_options, parse_configs] {
      Compressor& codec = *opt_codec;
      if (dataset_type == "hacc") {
        analysis::FofParams fof_params;
        fof_params.linking_length = opt_cfg.get("linking_length", 1.5);
        fof_params.min_members =
            static_cast<std::size_t>(opt_cfg.get("min_members", 10.0));
        auto pos = parse_configs("position_candidates");
        auto vel = parse_configs("velocity_candidates");
        if (pos.empty()) pos = default_position_candidates(codec.capabilities());
        if (vel.empty()) {
          vel = default_velocity_candidates(codec.capabilities(),
                                            dataset.find("vx").field);
        }
        summary.optimization = optimize_particle_dataset(
            dataset, codec, pos, vel, fof_params, opt_cfg.get("halo_tolerance", 0.05),
            opt_cfg.get("velocity_tolerance", 0.05), opt_options);
      } else {
        const auto shared = parse_configs("candidates");
        std::map<std::string, std::vector<CompressorConfig>> candidates;
        for (const auto& variable : dataset.variables) {
          if (variable.field.dims.rank() != 3) continue;
          candidates[variable.field.name] =
              shared.empty()
                  ? default_grid_candidates(codec.name(), variable.field)
                  : shared;
        }
        summary.optimization = optimize_grid_dataset(
            dataset, codec, candidates, opt_cfg.get("tolerance", 0.01),
            opt_cfg.get("k_fraction", 0.5), opt_options);
      }
    });
  }

  // Cinema stage depends on every analysis (or directly on cbench).
  std::vector<std::string> cinema_deps = cbench_job_names;
  if (do_pk) cinema_deps.push_back("analysis-power-spectrum");
  if (do_ssim) cinema_deps.push_back("analysis-ssim");
  if (do_halo && dataset_type == "hacc") cinema_deps.push_back("analysis-halo-finder");
  const bool do_cinema = config.get("cinema", false);
  if (do_cinema) {
    workflow.add("cinema", cinema_deps, [&] {
      CinemaDatabase db({"dataset", "field", "compressor", "config", "ratio", "bitrate",
                         "psnr_db", "mre", "pk_deviation", "FILE"});
      SvgPlot rd("Rate-distortion", "bitrate (bits/value)", "PSNR (dB)");
      std::map<std::string, PlotSeries> series;
      for (const auto& r : summary.results) {
        if (r.status != "ok") continue;  // failed rows carry no metrics to plot
        const std::string key = result_key(r);
        const auto pk_it = summary.pk_deviation.find(key);
        db.add_row({r.dataset, r.field, r.compressor, r.config.label(),
                    strprintf("%.3f", r.ratio), strprintf("%.3f", r.bit_rate),
                    strprintf("%.2f", r.distortion.psnr_db),
                    strprintf("%.3e", r.distortion.mre),
                    pk_it != summary.pk_deviation.end() ? strprintf("%.4f", pk_it->second)
                                                        : "",
                    "rate_distortion.svg"});
        auto& s = series[r.field + " (" + r.compressor + ")"];
        s.label = r.field + " (" + r.compressor + ")";
        s.dashed = CodecRegistry::instance().capabilities(r.compressor).plot_dashed;
        s.x.push_back(r.bit_rate);
        s.y.push_back(r.distortion.psnr_db);
      }
      db.write(summary.output_dir);
      for (auto& [label, s] : series) rd.add_series(std::move(s));
      rd.save(summary.output_dir + "/rate_distortion.svg");
      summary.artifacts.push_back("data.csv");
      summary.artifacts.push_back("rate_distortion.svg");
      write_cinema_index(summary.output_dir, "Foresight results", summary.artifacts);
      summary.artifacts.push_back("index.html");
    });
  }

  // Parallel execution is opt-in ("jobs": N). Compressors whose sessions
  // are order-sensitive (simulated-GPU timing, zfp-omp) force the inline
  // path so modeled timings stay reproducible.
  const std::size_t jobs_requested =
      static_cast<std::size_t>(config.get("jobs", 0.0));
  bool parallel_ok = jobs_requested > 1;
  for (const auto& c : compressors) {
    if (!c->concurrent_sessions_safe()) parallel_ok = false;
  }
  if (opt_codec && !opt_codec->concurrent_sessions_safe()) parallel_ok = false;
  if (parallel_ok) {
    ThreadPool pool(jobs_requested);
    summary.workflow_ok = workflow.run(&pool, jobs_requested);
  } else {
    summary.workflow_ok = workflow.run(nullptr);
  }

  // Under on_error "abort" a throwing cbench job is caught by the workflow
  // executor instead of CBench; fold its record into the result row so the
  // summary stays self-describing either way.
  for (std::size_t i = 0; i < cbench_job_names.size(); ++i) {
    const JobRecord& rec = workflow.records().at(cbench_job_names[i]);
    if (rec.status == JobStatus::kFailed && summary.results[i].status == "ok") {
      summary.results[i].status = "failed";
      summary.results[i].error = rec.error;
    }
  }
  for (const auto& r : summary.results) {
    if (r.status != "ok") ++summary.failed_jobs;
  }
  if (summary.optimization) {
    std::ofstream out(summary.output_dir + "/optimization.txt", std::ios::trunc);
    require(out.good(), "pipeline: cannot write optimization.txt");
    out << format_optimization(*summary.optimization);
    summary.artifacts.push_back("optimization.txt");
  }
  if (fault_plan) {
    const auto counts = fault_plan->counts();
    summary.injected_faults =
        counts.corruptions + counts.gpu_transients + counts.gpu_ooms + counts.io_failures;
  }
  if (telemetry::Tracer::enabled() && !trace_out.empty()) {
    telemetry::Tracer::disable();
    summary.trace_path = write_telemetry_file(summary.output_dir, trace_out,
                                              telemetry::Tracer::chrome_trace_json());
  }
  if (!metrics_out.empty()) {
    summary.metrics_path = write_telemetry_file(
        summary.output_dir, metrics_out,
        telemetry::MetricsRegistry::instance().to_json());
  }
  return summary;
}

PipelineSummary run_pipeline_file(const std::string& path) {
  return run_pipeline(json::parse_file(path));
}

}  // namespace cosmo::foresight
