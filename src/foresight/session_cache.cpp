#include "foresight/session_cache.hpp"

namespace cosmo::foresight {

Compressor& SessionCache::compressor(const std::string& codec) {
  auto it = compressors_.find(codec);
  if (it == compressors_.end()) {
    it = compressors_.emplace(codec, make_compressor(codec, sim_)).first;
  }
  return *it->second;
}

CodecSession& SessionCache::session(const std::string& codec) {
  auto it = sessions_.find(codec);
  if (it == sessions_.end()) {
    Compressor& c = compressor(codec);
    it = sessions_.emplace(codec, c.open_session(arena_.get(), pool_)).first;
    ++sessions_opened_;
  }
  return *it->second;
}

void SessionCache::invalidate() {
  // Sessions hold leases into the arena, so they go first.
  sessions_.clear();
  arena_ = std::make_unique<ScratchArena>();
  ++invalidations_;
}

}  // namespace cosmo::foresight
