#include "foresight/shape_adapter.hpp"

#include <algorithm>

namespace cosmo::foresight {

Dims reshape_1d_to_3d(std::size_t n) {
  const std::size_t nx = (n + 63) / 64;
  return Dims::d3(nx, 8, 8);
}

ShapeAdapter::ShapeAdapter(const Field& field, ScratchArena& arena)
    : dims_(field.dims), original_count_(field.data.size()), view_(field.data) {
  if (field.dims.rank() != 1) return;
  dims_ = reshape_1d_to_3d(field.data.size());
  padded_ = arena.floats();
  padded_->assign(dims_.count(), 0.0f);
  std::copy(field.data.begin(), field.data.end(), padded_->begin());
  view_ = *padded_;
}

}  // namespace cosmo::foresight
