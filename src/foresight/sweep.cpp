#include "foresight/sweep.hpp"

#include <cmath>

namespace cosmo::foresight {

namespace {

std::vector<double> log_spaced(double lo, double hi, std::size_t count) {
  require(lo > 0.0 && hi > lo, "sweep: need 0 < lo < hi");
  require(count >= 2, "sweep: need at least 2 points");
  std::vector<double> out(count);
  const double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo * std::exp(step * static_cast<double>(i));
  }
  return out;
}

}  // namespace

std::vector<CompressorConfig> abs_sweep_for_field(const Field& field, double frac_lo,
                                                  double frac_hi, std::size_t count) {
  const auto [lo, hi] = value_range(field.view());
  const double range = static_cast<double>(hi) - lo;
  require(range > 0.0, "sweep: field has zero value range");
  std::vector<CompressorConfig> configs;
  for (const double frac : log_spaced(frac_lo, frac_hi, count)) {
    configs.push_back({"abs", range * frac});
  }
  return configs;
}

std::vector<CompressorConfig> pwrel_sweep(double lo, double hi, std::size_t count) {
  std::vector<CompressorConfig> configs;
  for (const double bound : log_spaced(lo, hi, count)) {
    configs.push_back({"pw_rel", bound});
  }
  return configs;
}

std::vector<CompressorConfig> rate_sweep(std::vector<double> bitrates) {
  require(!bitrates.empty(), "sweep: no bitrates");
  std::vector<CompressorConfig> configs;
  for (const double rate : bitrates) configs.push_back({"rate", rate});
  return configs;
}

std::vector<CompressorConfig> configs_for_axis(const SweepAxis& axis, const Field& field) {
  switch (axis.kind) {
    case SweepAxis::Kind::kFixedValues: {
      require(!axis.values.empty(), "sweep: axis '" + axis.mode + "' has no values");
      std::vector<CompressorConfig> configs;
      for (const double v : axis.values) configs.push_back({axis.mode, v});
      return configs;
    }
    case SweepAxis::Kind::kRangeFractions: {
      const auto [lo, hi] = value_range(field.view());
      const double range = static_cast<double>(hi) - lo;
      require(range > 0.0, "sweep: field has zero value range");
      std::vector<CompressorConfig> configs;
      for (const double frac : log_spaced(axis.lo, axis.hi, axis.count)) {
        configs.push_back({axis.mode, range * frac});
      }
      return configs;
    }
    case SweepAxis::Kind::kLogValues: {
      std::vector<CompressorConfig> configs;
      for (const double v : log_spaced(axis.lo, axis.hi, axis.count)) {
        configs.push_back({axis.mode, v});
      }
      return configs;
    }
  }
  throw InvalidArgument("sweep: unknown axis kind");
}

std::vector<CompressorConfig> default_grid_candidates(const std::string& codec,
                                                      const Field& field) {
  // Registry lookup throws InvalidArgument (listing registered codecs) for
  // unknown names; a registered codec always carries a default lattice.
  const CodecCapabilities& caps = CodecRegistry::instance().capabilities(codec);
  require(!caps.default_sweep.empty(),
          "sweep: no default candidates for codec '" + codec + "'");
  return configs_for_axis(caps.default_sweep.front(), field);
}

std::vector<CompressorConfig> default_position_candidates(const CodecCapabilities& caps) {
  if (caps.supports_mode("abs")) {
    return {{"abs", 0.001}, {"abs", 0.005}, {"abs", 0.025}, {"abs", 0.25}};
  }
  return {{"rate", 16.0}, {"rate", 8.0}, {"rate", 4.0}};
}

std::vector<CompressorConfig> default_velocity_candidates(const CodecCapabilities& caps,
                                                          const Field& velocity_field) {
  if (caps.supports_mode("pw_rel")) {
    return {{"pw_rel", 0.005}, {"pw_rel", 0.025}, {"pw_rel", 0.1}};
  }
  if (caps.supports_mode("rate")) return {{"rate", 8.0}, {"rate", 4.0}};
  return abs_sweep_for_field(velocity_field, 2e-5, 2e-3, 3);
}

}  // namespace cosmo::foresight
