#include "foresight/pat.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>

#include "common/error.hpp"
#include "common/str.hpp"
#include "common/timer.hpp"

namespace cosmo::foresight {

void Workflow::add(Job job) {
  require(!job.name.empty(), "pat: job name must not be empty");
  require(index_.find(job.name) == index_.end(), "pat: duplicate job '" + job.name + "'");
  index_[job.name] = jobs_.size();
  jobs_.push_back(std::move(job));
}

void Workflow::add(const std::string& name, std::vector<std::string> dependencies,
                   std::function<void()> work) {
  Job job;
  job.name = name;
  job.dependencies = std::move(dependencies);
  job.work = std::move(work);
  add(std::move(job));
}

std::vector<std::string> Workflow::topological_order() const {
  // Kahn's algorithm over the dependency graph.
  std::map<std::string, std::size_t> in_degree;
  std::map<std::string, std::vector<std::string>> dependents;
  for (const auto& job : jobs_) {
    in_degree.try_emplace(job.name, 0);
    for (const auto& dep : job.dependencies) {
      require(index_.count(dep) > 0,
              "pat: job '" + job.name + "' depends on unknown job '" + dep + "'");
      ++in_degree[job.name];
      dependents[dep].push_back(job.name);
    }
  }
  // Deterministic order: ready jobs processed in insertion order.
  std::vector<std::string> order;
  std::vector<std::string> ready;
  for (const auto& job : jobs_) {
    if (in_degree[job.name] == 0) ready.push_back(job.name);
  }
  std::size_t head = 0;
  while (head < ready.size()) {
    const std::string name = ready[head++];
    order.push_back(name);
    for (const auto& next : dependents[name]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  require(order.size() == jobs_.size(), "pat: dependency cycle detected");
  return order;
}

bool Workflow::run(ThreadPool* pool, std::size_t max_concurrency) {
  const std::vector<std::string> order = topological_order();  // validates the DAG
  records_.clear();
  for (const auto& job : jobs_) records_[job.name] = JobRecord{};

  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, std::size_t> remaining_deps;
  std::map<std::string, std::vector<std::string>> dependents;
  for (const auto& job : jobs_) {
    remaining_deps[job.name] = job.dependencies.size();
    for (const auto& dep : job.dependencies) dependents[dep].push_back(job.name);
  }
  std::size_t finished = 0;
  std::queue<std::string> ready;
  for (const auto& name : order) {
    if (remaining_deps[name] == 0) ready.push(name);
  }

  std::size_t in_flight = 0;

  auto execute = [&](const std::string& name) {
    const Job& job = jobs_[index_.at(name)];
    JobRecord record;
    Timer timer;
    try {
      if (job.work) job.work();
      record.status = JobStatus::kSucceeded;
    } catch (const std::exception& e) {
      record.status = JobStatus::kFailed;
      record.error = e.what();
    }
    record.seconds = timer.seconds();

    std::lock_guard lock(mu);
    records_[name] = record;
    ++finished;
    if (in_flight > 0) --in_flight;  // no-op for the inline path
    for (const auto& next : dependents[name]) {
      auto& next_record = records_[next];
      if (record.status != JobStatus::kSucceeded &&
          next_record.status == JobStatus::kPending) {
        // Mark the whole downstream cone skipped.
        std::vector<std::string> stack{next};
        while (!stack.empty()) {
          const std::string cur = stack.back();
          stack.pop_back();
          auto& rec = records_[cur];
          if (rec.status != JobStatus::kPending) continue;
          rec.status = JobStatus::kSkipped;
          ++finished;
          for (const auto& d : dependents[cur]) stack.push_back(d);
        }
      } else if (--remaining_deps[next] == 0 &&
                 records_[next].status == JobStatus::kPending) {
        ready.push(next);
      }
    }
    cv.notify_all();
  };

  if (!pool) {
    // Inline execution in dependency order.
    while (true) {
      std::string name;
      {
        std::lock_guard lock(mu);
        if (finished == jobs_.size()) break;
        if (ready.empty()) break;  // everything left was skipped
        name = ready.front();
        ready.pop();
      }
      execute(name);
    }
  } else {
    std::unique_lock lock(mu);
    while (finished < jobs_.size()) {
      while (!ready.empty() &&
             (max_concurrency == 0 || in_flight < max_concurrency)) {
        const std::string name = ready.front();
        ready.pop();
        ++in_flight;
        pool->submit([&execute, name] { execute(name); });
      }
      if (finished == jobs_.size()) break;
      if (in_flight == 0 && ready.empty()) {
        break;  // nothing running, nothing ready: the rest was skipped
      }
      cv.wait(lock);
    }
    lock.unlock();
    pool->wait_idle();
  }

  return std::all_of(records_.begin(), records_.end(), [](const auto& kv) {
    return kv.second.status == JobStatus::kSucceeded;
  });
}

std::string Workflow::to_submission_script() const {
  std::string out = "#!/bin/bash\n# PAT-generated workflow submission script\n";
  for (const auto& name : topological_order()) {
    const Job& job = jobs_[index_.at(name)];
    std::string dep_clause;
    if (!job.dependencies.empty()) {
      std::vector<std::string> vars;
      vars.reserve(job.dependencies.size());
      for (const auto& d : job.dependencies) vars.push_back("$JOB_" + d);
      dep_clause = " --dependency=afterok:" + join(vars, ":");
    }
    out += strprintf("JOB_%s=$(sbatch --parsable -J %s -N %d --ntasks-per-node=%d -p %s%s %s.sh)\n",
                     name.c_str(), name.c_str(), job.nodes, job.tasks_per_node,
                     job.partition.c_str(), dep_clause.c_str(), name.c_str());
  }
  return out;
}

}  // namespace cosmo::foresight
