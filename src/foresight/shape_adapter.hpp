/// \file shape_adapter.hpp
/// \brief The paper's 1-D -> 3-D dimension conversion (Section IV-B4),
/// hoisted out of the individual device codecs into one shared adapter.
#pragma once

#include <span>

#include "common/field.hpp"
#include "common/scratch_arena.hpp"

namespace cosmo::foresight {

/// The paper's 1-D -> 3-D dimension conversion (Section IV-B4): reshapes a
/// 1-D extent into (ceil(n/64), 8, 8) with zero padding, the layout used
/// for cuZFP on HACC; GPU-SZ accepts the same reshaped layout.
Dims reshape_1d_to_3d(std::size_t n);

/// Presents a field to a 3-D-only codec: rank-1 fields are reshaped to
/// (ceil(n/64), 8, 8) with zero padding (the padded copy is leased from the
/// arena, so repeated sweeps reuse one buffer); rank-2/3 fields pass
/// through untouched. Callers truncate reconstructions back to
/// original_count() to drop the padding.
class ShapeAdapter {
 public:
  ShapeAdapter(const Field& field, ScratchArena& arena);

  /// The (possibly padded) values to hand to the codec.
  [[nodiscard]] std::span<const float> values() const { return view_; }
  /// The (possibly reshaped) extents to hand to the codec.
  [[nodiscard]] const Dims& dims() const { return dims_; }
  /// True when the field was reshaped (and therefore padded).
  [[nodiscard]] bool reshaped() const { return static_cast<bool>(padded_); }
  /// The field's original value count, before padding.
  [[nodiscard]] std::size_t original_count() const { return original_count_; }

 private:
  Dims dims_;
  std::size_t original_count_;
  ArenaLease<float> padded_;
  std::span<const float> view_;
};

}  // namespace cosmo::foresight
