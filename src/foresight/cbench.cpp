#include "foresight/cbench.hpp"

#include "common/str.hpp"
#include "common/timer.hpp"

namespace cosmo::foresight {

CBenchResult CBench::run_one(const Field& field, Compressor& compressor,
                             const CompressorConfig& config) const {
  RunOutput run = compressor.run(field, config);
  require(run.reconstructed.size() == field.data.size(),
          "cbench: reconstruction size mismatch from " + compressor.name());

  CBenchResult r;
  r.dataset = options_.dataset_name;
  r.field = field.name;
  r.compressor = compressor.name();
  r.config = config;
  r.original_bytes = field.bytes();
  r.compressed_bytes = run.bytes.size();
  r.ratio = analysis::compression_ratio(r.original_bytes, r.compressed_bytes);
  r.bit_rate = static_cast<double>(r.compressed_bytes) * 8.0 /
               static_cast<double>(field.data.size());
  r.distortion = analysis::compare(field.data, run.reconstructed);
  r.compress_seconds = run.compress_seconds;
  r.decompress_seconds = run.decompress_seconds;
  r.compress_gbps = throughput_gbps(r.original_bytes, run.compress_seconds);
  r.decompress_gbps = throughput_gbps(r.original_bytes, run.decompress_seconds);
  r.throughput_reportable = run.throughput_reportable;
  r.has_gpu_timing = run.has_gpu_timing;
  r.gpu_compress = run.gpu_compress;
  r.gpu_decompress = run.gpu_decompress;
  if (options_.keep_reconstructed) {
    r.reconstructed = std::move(run.reconstructed);
  }
  return r;
}

std::vector<CBenchResult> CBench::sweep(
    const io::Container& container, Compressor& compressor,
    const std::vector<CompressorConfig>& configs,
    const std::function<bool(const std::string&)>& field_filter) const {
  std::vector<CBenchResult> results;
  for (const auto& variable : container.variables) {
    if (field_filter && !field_filter(variable.field.name)) continue;
    for (const auto& config : configs) {
      results.push_back(run_one(variable.field, compressor, config));
    }
  }
  return results;
}

double CBench::overall_ratio(const std::vector<CBenchResult>& results) {
  require(!results.empty(), "overall_ratio: no results");
  std::size_t original = 0;
  std::size_t compressed = 0;
  for (const auto& r : results) {
    original += r.original_bytes;
    compressed += r.compressed_bytes;
  }
  return analysis::compression_ratio(original, compressed);
}

std::string format_results(const std::vector<CBenchResult>& results) {
  std::string out;
  out += strprintf("%-22s %-10s %-16s %8s %8s %9s %10s %10s\n", "field", "codec",
                   "config", "ratio", "bitrate", "PSNR(dB)", "comp GB/s", "dec GB/s");
  out += std::string(100, '-') + "\n";
  for (const auto& r : results) {
    const std::string comp_thr = r.throughput_reportable
                                     ? strprintf("%10.2f", r.compress_gbps)
                                     : strprintf("%10s", "N/A");
    const std::string dec_thr = r.throughput_reportable
                                    ? strprintf("%10.2f", r.decompress_gbps)
                                    : strprintf("%10s", "N/A");
    out += strprintf("%-22s %-10s %-16s %8.2f %8.3f %9.2f %s %s\n", r.field.c_str(),
                     r.compressor.c_str(), r.config.label().c_str(), r.ratio, r.bit_rate,
                     r.distortion.psnr_db, comp_thr.c_str(), dec_thr.c_str());
  }
  return out;
}

}  // namespace cosmo::foresight
