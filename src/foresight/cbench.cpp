#include "foresight/cbench.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/fault.hpp"
#include "common/str.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace cosmo::foresight {

OnError parse_on_error(const std::string& text) {
  if (text == "abort") return OnError::kAbort;
  if (text == "continue") return OnError::kContinue;
  throw InvalidArgument("on_error must be \"continue\" or \"abort\", got \"" + text +
                        "\"");
}

namespace {

/// Identity-only row for a job that threw while the sweep was configured to
/// continue: metrics stay zeroed and the error travels with the row.
CBenchResult failed_result(const std::string& dataset, const Field& field,
                           const std::string& compressor, const CompressorConfig& config,
                           const std::string& what) {
  CBenchResult r;
  r.dataset = dataset;
  r.field = field.name;
  r.compressor = compressor;
  r.config = config;
  r.original_bytes = field.bytes();
  r.status = "failed";
  r.error = what;
  r.throughput_reportable = false;
  telemetry::MetricsRegistry::instance().counter("cbench.failed_jobs").add();
  return r;
}

}  // namespace

CBenchResult CBench::run_one(const Field& field, Compressor& compressor,
                             const CompressorConfig& config) const {
  const PoolHandle intra(options_.session_threads);
  const std::unique_ptr<CodecSession> session =
      compressor.open_session(nullptr, intra.get());
  try {
    return run_session(field, compressor.name(), *session, config);
  } catch (const Error& e) {
    if (options_.on_error == Options::OnError::kAbort) throw;
    return failed_result(options_.dataset_name, field, compressor.name(), config,
                         e.what());
  }
}

CBenchResult CBench::run_session(const Field& field, const std::string& compressor_name,
                                 CodecSession& session,
                                 const CompressorConfig& config) const {
  CompressResult c;
  DecompressResult d;
  return run_session(field, compressor_name, session, config, c, d);
}

CBenchResult CBench::run_session(const Field& field, const std::string& compressor_name,
                                 CodecSession& session, const CompressorConfig& config,
                                 CompressResult& c, DecompressResult& d) const {
  TRACE_SPAN("cbench.job");
  session.compress(field, config, c);
  // Fault-injection hook: an active plan may corrupt the stream between the
  // stages, exactly where a storage or transport error would hit it. The
  // decode below must then either reconstruct bit-exactly or throw a
  // cosmo::Error — never crash (see docs/architecture.md, failure
  // containment). Off by default: one relaxed atomic load when no plan is
  // installed.
  if (auto* plan = fault::active()) plan->corrupt(c.bytes);
  session.decompress(c, d);
  require(d.values.size() == field.data.size(),
          "cbench: reconstruction size mismatch from " + compressor_name);

  CBenchResult r;
  r.dataset = options_.dataset_name;
  r.field = field.name;
  r.compressor = compressor_name;
  r.config = config;
  r.original_bytes = field.bytes();
  r.compressed_bytes = c.bytes.size();
  r.ratio = analysis::compression_ratio(r.original_bytes, r.compressed_bytes);
  r.bit_rate = static_cast<double>(r.compressed_bytes) * 8.0 /
               static_cast<double>(field.data.size());
  r.distortion = analysis::compare(field.data, d.values);
  r.compress = c.telemetry;
  r.decompress = d.telemetry;
  r.compress_gbps = throughput_gbps(r.original_bytes, c.telemetry.seconds);
  r.decompress_gbps = throughput_gbps(r.original_bytes, d.telemetry.seconds);
  r.throughput_reportable = c.throughput_reportable && !d.telemetry.cpu_fallback;
  if (options_.keep_reconstructed) {
    r.reconstructed = std::move(d.values);  // regrown by the next decompress
  }
  auto& metrics = telemetry::MetricsRegistry::instance();
  metrics.counter("cbench.jobs").add();
  metrics.counter("cbench.bytes_in").add(r.original_bytes);
  metrics.counter("cbench.bytes_out").add(r.compressed_bytes);
  metrics.histogram("cbench.compress_seconds").observe_seconds(r.compress.seconds);
  metrics.histogram("cbench.decompress_seconds").observe_seconds(r.decompress.seconds);
  return r;
}

std::vector<CBenchResult> CBench::sweep(
    const io::Container& container, Compressor& compressor,
    const std::vector<CompressorConfig>& configs,
    const std::function<bool(const std::string&)>& field_filter) const {
  // Scheduler-level spans carry the "sweep." prefix: their count depends on
  // the worker count, unlike the per-job codec spans, and the telemetry
  // tests exclude them when comparing traces across thread counts.
  TRACE_SPAN("sweep.run");
  // Jobs are enumerated (and slotted) up front in field-major, config-minor
  // order; workers claim indices from an atomic cursor, so the output order
  // never depends on the schedule.
  struct Job {
    const Field* field;
    const CompressorConfig* config;
  };
  std::vector<Job> jobs;
  for (const auto& variable : container.variables) {
    if (field_filter && !field_filter(variable.field.name)) continue;
    for (const auto& config : configs) {
      jobs.push_back({&variable.field, &config});
    }
  }
  std::vector<CBenchResult> results(jobs.size());

  const std::string name = compressor.name();
  const bool serial =
      options_.threads == 1 || !compressor.concurrent_sessions_safe() || jobs.size() <= 1;
  if (serial) {
    // One session runs at a time, so intra-field threading is free to use
    // the whole knob. (The simulated-GPU codecs ignore the pool.)
    const PoolHandle intra(options_.session_threads);
    const std::unique_ptr<CodecSession> session =
        compressor.open_session(nullptr, intra.get());
    CompressResult c;
    DecompressResult d;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        results[i] = run_session(*jobs[i].field, name, *session, *jobs[i].config, c, d);
      } catch (const Error& e) {
        if (options_.on_error == Options::OnError::kAbort) throw;
        results[i] = failed_result(options_.dataset_name, *jobs[i].field, name,
                                   *jobs[i].config, e.what());
      }
    }
    return results;
  }

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool;
  if (options_.threads == 0) {
    pool = &global_pool();
  } else {
    // A dedicated pool never needs more threads than there are jobs (this
    // also bounds absurd requests, e.g. a negative count cast to size_t).
    owned = std::make_unique<ThreadPool>(std::min(options_.threads, jobs.size()));
    pool = owned.get();
  }

  std::atomic<std::size_t> cursor{0};
  const std::size_t workers = std::min(pool->size(), jobs.size());
  std::vector<std::future<void>> done;
  done.reserve(workers);
  Timer queue_timer;
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(pool->submit([&] {
      // Time from submit until the pool actually starts the worker — the
      // sweep's scheduling latency.
      telemetry::MetricsRegistry::instance()
          .histogram("sweep.queue_wait_seconds")
          .observe_seconds(queue_timer.seconds());
      TRACE_SPAN("sweep.worker");
      // Each worker gets its own session (arena, scratch) — sessions are
      // not thread-safe, and per-worker arenas keep reuse contention-free.
      // Sessions stay serial here: the jobs themselves occupy the pool, and
      // stacking intra-field fan-out on top would only oversubscribe.
      const std::unique_ptr<CodecSession> session = compressor.open_session();
      CompressResult c;
      DecompressResult d;
      for (std::size_t i = cursor.fetch_add(1); i < jobs.size();
           i = cursor.fetch_add(1)) {
        try {
          results[i] = run_session(*jobs[i].field, name, *session, *jobs[i].config, c, d);
        } catch (const Error& e) {
          if (options_.on_error == Options::OnError::kAbort) throw;
          results[i] = failed_result(options_.dataset_name, *jobs[i].field, name,
                                     *jobs[i].config, e.what());
        }
      }
    }));
  }
  for (auto& f : done) f.get();  // rethrows the first worker exception
  return results;
}

double CBench::overall_ratio(const std::vector<CBenchResult>& results) {
  require(!results.empty(), "overall_ratio: no results");
  std::size_t original = 0;
  std::size_t compressed = 0;
  for (const auto& r : results) {
    if (r.status != "ok") continue;  // failed rows carry no stream
    original += r.original_bytes;
    compressed += r.compressed_bytes;
  }
  require(compressed > 0, "overall_ratio: no successful results");
  return analysis::compression_ratio(original, compressed);
}

/// The flags column: host-fallback and device-retry facts at a glance.
/// "cpu-fb" = a stage degraded to the host codec, "xN" = N device attempts
/// (transient-fault retries), "-" = a clean run.
std::string result_flags(const CBenchResult& r) {
  std::string flags;
  if (r.cpu_fallback()) flags = "cpu-fb";
  if (r.device_attempts() > 1) {
    if (!flags.empty()) flags += ",";
    flags += strprintf("x%d", r.device_attempts());
  }
  return flags.empty() ? "-" : flags;
}

std::string format_results(const std::vector<CBenchResult>& results) {
  std::string out;
  out += strprintf("%-22s %-10s %-16s %8s %8s %9s %10s %10s %-9s\n", "field", "codec",
                   "config", "ratio", "bitrate", "PSNR(dB)", "comp GB/s", "dec GB/s",
                   "flags");
  out += std::string(110, '-') + "\n";
  for (const auto& r : results) {
    if (r.status != "ok") {
      out += strprintf("%-22s %-10s %-16s FAILED: %s\n", r.field.c_str(),
                       r.compressor.c_str(), r.config.label().c_str(), r.error.c_str());
      continue;
    }
    const std::string comp_thr = r.throughput_reportable
                                     ? strprintf("%10.2f", r.compress_gbps)
                                     : strprintf("%10s", "N/A");
    const std::string dec_thr = r.throughput_reportable
                                    ? strprintf("%10.2f", r.decompress_gbps)
                                    : strprintf("%10s", "N/A");
    out += strprintf("%-22s %-10s %-16s %8.2f %8.3f %9.2f %s %s %-9s\n", r.field.c_str(),
                     r.compressor.c_str(), r.config.label().c_str(), r.ratio, r.bit_rate,
                     r.distortion.psnr_db, comp_thr.c_str(), dec_thr.c_str(),
                     result_flags(r).c_str());
  }
  return out;
}

}  // namespace cosmo::foresight
