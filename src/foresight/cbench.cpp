#include "foresight/cbench.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/fault.hpp"
#include "common/str.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace cosmo::foresight {

namespace {

/// Identity-only row for a job that threw while the sweep was configured to
/// continue: metrics stay zeroed and the error travels with the row.
CBenchResult failed_result(const std::string& dataset, const Field& field,
                           const std::string& compressor, const CompressorConfig& config,
                           const std::string& what) {
  CBenchResult r;
  r.dataset = dataset;
  r.field = field.name;
  r.compressor = compressor;
  r.config = config;
  r.original_bytes = field.bytes();
  r.status = "failed";
  r.error = what;
  r.throughput_reportable = false;
  return r;
}

}  // namespace

CBenchResult CBench::run_one(const Field& field, Compressor& compressor,
                             const CompressorConfig& config) const {
  const PoolHandle intra(options_.session_threads);
  const std::unique_ptr<CodecSession> session =
      compressor.open_session(nullptr, intra.get());
  try {
    return run_session(field, compressor.name(), *session, config);
  } catch (const Error& e) {
    if (options_.on_error == Options::OnError::kAbort) throw;
    return failed_result(options_.dataset_name, field, compressor.name(), config,
                         e.what());
  }
}

CBenchResult CBench::run_session(const Field& field, const std::string& compressor_name,
                                 CodecSession& session,
                                 const CompressorConfig& config) const {
  CompressResult c;
  DecompressResult d;
  return run_session(field, compressor_name, session, config, c, d);
}

CBenchResult CBench::run_session(const Field& field, const std::string& compressor_name,
                                 CodecSession& session, const CompressorConfig& config,
                                 CompressResult& c, DecompressResult& d) const {
  session.compress(field, config, c);
  // Fault-injection hook: an active plan may corrupt the stream between the
  // stages, exactly where a storage or transport error would hit it. The
  // decode below must then either reconstruct bit-exactly or throw a
  // cosmo::Error — never crash (see docs/architecture.md, failure
  // containment). Off by default: one relaxed atomic load when no plan is
  // installed.
  if (auto* plan = fault::active()) plan->corrupt(c.bytes);
  session.decompress(c, d);
  require(d.values.size() == field.data.size(),
          "cbench: reconstruction size mismatch from " + compressor_name);

  CBenchResult r;
  r.dataset = options_.dataset_name;
  r.field = field.name;
  r.compressor = compressor_name;
  r.config = config;
  r.original_bytes = field.bytes();
  r.compressed_bytes = c.bytes.size();
  r.ratio = analysis::compression_ratio(r.original_bytes, r.compressed_bytes);
  r.bit_rate = static_cast<double>(r.compressed_bytes) * 8.0 /
               static_cast<double>(field.data.size());
  r.distortion = analysis::compare(field.data, d.values);
  r.compress_seconds = c.seconds;
  r.decompress_seconds = d.seconds;
  r.compress_gbps = throughput_gbps(r.original_bytes, c.seconds);
  r.decompress_gbps = throughput_gbps(r.original_bytes, d.seconds);
  r.throughput_reportable = c.throughput_reportable && !d.cpu_fallback;
  r.cpu_fallback = c.cpu_fallback || d.cpu_fallback;
  r.device_attempts = std::max(c.device_attempts, d.device_attempts);
  r.has_gpu_timing = c.has_gpu_timing;
  r.gpu_compress = c.gpu_timing;
  r.gpu_decompress = d.gpu_timing;
  if (options_.keep_reconstructed) {
    r.reconstructed = std::move(d.values);  // regrown by the next decompress
  }
  return r;
}

std::vector<CBenchResult> CBench::sweep(
    const io::Container& container, Compressor& compressor,
    const std::vector<CompressorConfig>& configs,
    const std::function<bool(const std::string&)>& field_filter) const {
  // Jobs are enumerated (and slotted) up front in field-major, config-minor
  // order; workers claim indices from an atomic cursor, so the output order
  // never depends on the schedule.
  struct Job {
    const Field* field;
    const CompressorConfig* config;
  };
  std::vector<Job> jobs;
  for (const auto& variable : container.variables) {
    if (field_filter && !field_filter(variable.field.name)) continue;
    for (const auto& config : configs) {
      jobs.push_back({&variable.field, &config});
    }
  }
  std::vector<CBenchResult> results(jobs.size());

  const std::string name = compressor.name();
  const bool serial =
      options_.threads == 1 || !compressor.concurrent_sessions_safe() || jobs.size() <= 1;
  if (serial) {
    // One session runs at a time, so intra-field threading is free to use
    // the whole knob. (The simulated-GPU codecs ignore the pool.)
    const PoolHandle intra(options_.session_threads);
    const std::unique_ptr<CodecSession> session =
        compressor.open_session(nullptr, intra.get());
    CompressResult c;
    DecompressResult d;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        results[i] = run_session(*jobs[i].field, name, *session, *jobs[i].config, c, d);
      } catch (const Error& e) {
        if (options_.on_error == Options::OnError::kAbort) throw;
        results[i] = failed_result(options_.dataset_name, *jobs[i].field, name,
                                   *jobs[i].config, e.what());
      }
    }
    return results;
  }

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool;
  if (options_.threads == 0) {
    pool = &global_pool();
  } else {
    // A dedicated pool never needs more threads than there are jobs (this
    // also bounds absurd requests, e.g. a negative count cast to size_t).
    owned = std::make_unique<ThreadPool>(std::min(options_.threads, jobs.size()));
    pool = owned.get();
  }

  std::atomic<std::size_t> cursor{0};
  const std::size_t workers = std::min(pool->size(), jobs.size());
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(pool->submit([&] {
      // Each worker gets its own session (arena, scratch) — sessions are
      // not thread-safe, and per-worker arenas keep reuse contention-free.
      // Sessions stay serial here: the jobs themselves occupy the pool, and
      // stacking intra-field fan-out on top would only oversubscribe.
      const std::unique_ptr<CodecSession> session = compressor.open_session();
      CompressResult c;
      DecompressResult d;
      for (std::size_t i = cursor.fetch_add(1); i < jobs.size();
           i = cursor.fetch_add(1)) {
        try {
          results[i] = run_session(*jobs[i].field, name, *session, *jobs[i].config, c, d);
        } catch (const Error& e) {
          if (options_.on_error == Options::OnError::kAbort) throw;
          results[i] = failed_result(options_.dataset_name, *jobs[i].field, name,
                                     *jobs[i].config, e.what());
        }
      }
    }));
  }
  for (auto& f : done) f.get();  // rethrows the first worker exception
  return results;
}

double CBench::overall_ratio(const std::vector<CBenchResult>& results) {
  require(!results.empty(), "overall_ratio: no results");
  std::size_t original = 0;
  std::size_t compressed = 0;
  for (const auto& r : results) {
    if (r.status != "ok") continue;  // failed rows carry no stream
    original += r.original_bytes;
    compressed += r.compressed_bytes;
  }
  require(compressed > 0, "overall_ratio: no successful results");
  return analysis::compression_ratio(original, compressed);
}

std::string format_results(const std::vector<CBenchResult>& results) {
  std::string out;
  out += strprintf("%-22s %-10s %-16s %8s %8s %9s %10s %10s\n", "field", "codec",
                   "config", "ratio", "bitrate", "PSNR(dB)", "comp GB/s", "dec GB/s");
  out += std::string(100, '-') + "\n";
  for (const auto& r : results) {
    if (r.status != "ok") {
      out += strprintf("%-22s %-10s %-16s FAILED: %s\n", r.field.c_str(),
                       r.compressor.c_str(), r.config.label().c_str(), r.error.c_str());
      continue;
    }
    const std::string comp_thr = r.throughput_reportable
                                     ? strprintf("%10.2f", r.compress_gbps)
                                     : strprintf("%10s", "N/A");
    const std::string dec_thr = r.throughput_reportable
                                    ? strprintf("%10.2f", r.decompress_gbps)
                                    : strprintf("%10s", "N/A");
    out += strprintf("%-22s %-10s %-16s %8.2f %8.3f %9.2f %s %s\n", r.field.c_str(),
                     r.compressor.c_str(), r.config.label().c_str(), r.ratio, r.bit_rate,
                     r.distortion.psnr_db, comp_thr.c_str(), dec_thr.c_str());
  }
  return out;
}

}  // namespace cosmo::foresight
