/// \file codec_registry.hpp
/// \brief Self-registering codec catalog: capabilities + factories.
///
/// The paper's workflow compares *sets* of compressors, so the codec
/// roster must be open: a new backend registers a factory plus a
/// CodecCapabilities descriptor here and every layer that used to
/// string-match codec names — make_compressor, the sweep-lattice builder,
/// the optimizer's config pruning, the pipeline's plot styling, the CLI,
/// and the bench figure binaries — picks it up by querying capabilities
/// instead. Adding a codec requires zero edits to those dispatch layers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cosmo::gpu {
class GpuSimulator;
}

namespace cosmo::foresight {

class Compressor;

/// One axis of a codec's default sweep lattice: the mode plus how to turn
/// a field into concrete config values.
struct SweepAxis {
  enum class Kind {
    kFixedValues,     ///< use \c values verbatim (e.g. ZFP rates)
    kRangeFractions,  ///< log-spaced fractions of the field's value range
    kLogValues,       ///< log-spaced absolute values, field-independent
  };
  std::string mode;
  Kind kind = Kind::kFixedValues;
  std::vector<double> values;  ///< kFixedValues only
  double lo = 0.0;             ///< kRangeFractions / kLogValues span
  double hi = 0.0;
  std::size_t count = 0;
};

/// Everything the dispatch layers need to know about a codec without
/// naming it.
struct CodecCapabilities {
  std::string name;
  std::string summary;                  ///< one line for `foresight_cli codecs`
  std::vector<std::string> modes;       ///< supported CompressorConfig modes
  bool needs_device = false;            ///< requires a GpuSimulator to construct
  bool concurrent_sessions_safe = true; ///< sessions may run on parallel workers
  bool throughput_reportable = true;    ///< kernel GB/s is meaningful for this codec
  bool plot_dashed = false;             ///< drawn dashed in rate-distortion figures
  /// sz::estimate_rate predicts this codec's abs-mode bitrate (the codec's
  /// abs path is the SZ prediction+quantization pipeline). The guided
  /// optimizer uses the estimator for pruned-candidate CR predictions.
  bool abs_rate_estimable = false;
  std::string kernel_profile;           ///< GpuSimulator::kernel_rates() key; empty = host-only
  std::vector<SweepAxis> default_sweep; ///< per-mode lattices; front() is the primary

  [[nodiscard]] bool supports_mode(const std::string& mode) const;
  /// "abs, pw_rel" — for error messages and the CLI table.
  [[nodiscard]] std::string modes_label() const;
  /// Throws InvalidArgument listing the supported modes when \p mode is
  /// not one of them.
  void require_mode(const std::string& mode) const;
};

/// The process-wide codec catalog. Registration order is presentation
/// order (available_compressors(), the CLI table, bench iteration).
class CodecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Compressor>(gpu::GpuSimulator*)>;

  /// The singleton, with all built-in codecs registered on first use.
  static CodecRegistry& instance();

  /// Registers a codec. Throws InvalidArgument on empty/duplicate names or
  /// an empty mode list.
  void add(CodecCapabilities caps, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Throws InvalidArgument (listing registered names) for unknown codecs.
  [[nodiscard]] const CodecCapabilities& capabilities(const std::string& name) const;
  /// Constructs a codec; enforces needs_device (a device codec without a
  /// simulator is InvalidArgument). Unknown names list the registry.
  [[nodiscard]] std::unique_ptr<Compressor> make(const std::string& name,
                                                 gpu::GpuSimulator* sim) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  CodecRegistry() = default;
  struct Entry {
    CodecCapabilities caps;
    Factory factory;
  };
  [[nodiscard]] const Entry* find(const std::string& name) const;
  [[nodiscard]] std::string names_label() const;

  std::vector<Entry> entries_;
};

namespace detail {
/// Registration hooks, called once from CodecRegistry::instance(). Static
/// libraries drop unreferenced global initializers, so self-registration
/// is routed through these explicit calls instead of static objects.
void register_paper_codecs(CodecRegistry& registry);  // compressor.cpp
void register_fz_codecs(CodecRegistry& registry);     // fz_compressor.cpp
}  // namespace detail

}  // namespace cosmo::foresight
