/// \file cinema.hpp
/// \brief Cinema: Foresight's visualization component.
///
/// The paper groups result plots "in a Cinema Explorer database to provide
/// an easily downloadable package" (Section IV-A3). This module writes a
/// Cinema-spec-compatible CSV database (data.csv + artifact files in one
/// directory) and replaces the web viewer with self-contained SVG line
/// plots plus an HTML index (documented substitution).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cosmo::foresight {

/// A Cinema database: a table whose rows reference artifact files.
class CinemaDatabase {
 public:
  /// \p columns are the CSV headers; the Cinema convention puts FILE
  /// columns last.
  explicit CinemaDatabase(std::vector<std::string> columns);

  /// Appends a row (must match the column count).
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }

  /// Writes <dir>/data.csv (creates the directory if needed).
  void write(const std::string& dir) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// One plotted series.
struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  std::string color;    ///< CSS color; empty = auto palette
  bool dashed = false;  ///< the paper uses dashes for cuZFP
};

/// Minimal SVG line-plot writer (axes, ticks, legend, log-scale options).
class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label);

  void add_series(PlotSeries series);
  /// Horizontal reference band (e.g. the Fig. 5 1 +/- 1% constraint).
  void add_hband(double y_lo, double y_hi, const std::string& color = "#ffcc80");
  /// Horizontal reference line (e.g. the Fig. 7 no-compression baseline).
  void add_hline(double y, const std::string& label = "");
  void set_log_x(bool on) { log_x_ = on; }
  void set_log_y(bool on) { log_y_ = on; }

  /// Renders the SVG document.
  [[nodiscard]] std::string render(int width = 760, int height = 480) const;

  /// Renders and writes to \p path.
  void save(const std::string& path, int width = 760, int height = 480) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<PlotSeries> series_;
  struct HBand {
    double lo, hi;
    std::string color;
  };
  std::vector<HBand> hbands_;
  struct HLine {
    double y;
    std::string label;
  };
  std::vector<HLine> hlines_;
  bool log_x_ = false;
  bool log_y_ = false;
};

/// Stacked bar chart (the paper's Fig. 7 presentation): one bar per group,
/// each bar a stack of named segments.
class SvgBarChart {
 public:
  SvgBarChart(std::string title, std::string x_label, std::string y_label);

  /// Declares the stack segments, bottom-up (e.g. init/kernel/memcpy/free).
  void set_segments(std::vector<std::string> names);

  /// Adds one bar: a group label plus one value per declared segment.
  void add_bar(const std::string& label, std::vector<double> values);

  /// Horizontal reference line (e.g. the no-compression baseline).
  void add_hline(double y, const std::string& label = "");

  [[nodiscard]] std::string render(int width = 760, int height = 480) const;
  void save(const std::string& path, int width = 760, int height = 480) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<std::string> segments_;
  struct Bar {
    std::string label;
    std::vector<double> values;
  };
  std::vector<Bar> bars_;
  struct HLine {
    double y;
    std::string label;
  };
  std::vector<HLine> hlines_;
};

/// Writes an index.html linking every artifact in \p artifact_paths
/// (relative paths inside \p dir).
void write_cinema_index(const std::string& dir, const std::string& title,
                        const std::vector<std::string>& artifact_paths);

/// Creates a directory (and parents); throws IoError on failure.
void ensure_directory(const std::string& dir);

}  // namespace cosmo::foresight
