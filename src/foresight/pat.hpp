/// \file pat.hpp
/// \brief PAT: Foresight's workflow component.
///
/// The paper's PAT is "a lightweight workflow submission Python package"
/// whose "two main components are a Job class and a Workflow class. The
/// Job class enables a user to specify the requirements for a SLURM batch
/// script and the dependencies for that job. The Workflow class tracks the
/// dependencies between jobs and writes the submission script" (Section
/// IV-A2). This C++ port keeps both classes and their semantics; the
/// SLURM cluster is replaced by a thread-pool executor (documented
/// substitution), and to_submission_script() still emits the PAT-style
/// sbatch script for inspection.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace cosmo::foresight {

/// One schedulable unit with SLURM-like requirements.
struct Job {
  std::string name;
  std::vector<std::string> dependencies;
  std::function<void()> work;
  // SLURM-style requirements (carried into the emitted script).
  int nodes = 1;
  int tasks_per_node = 1;
  std::string partition = "standard";
};

/// Execution status of a job after Workflow::run().
enum class JobStatus { kPending, kSucceeded, kFailed, kSkipped };

/// Post-run record per job.
struct JobRecord {
  JobStatus status = JobStatus::kPending;
  double seconds = 0.0;
  std::string error;  ///< exception message when status == kFailed
};

/// Dependency-tracking workflow executor.
class Workflow {
 public:
  /// Adds a job; names must be unique.
  void add(Job job);

  /// Convenience overload.
  void add(const std::string& name, std::vector<std::string> dependencies,
           std::function<void()> work);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// A valid topological order (throws Error on cycles or missing deps).
  [[nodiscard]] std::vector<std::string> topological_order() const;

  /// Runs every job respecting dependencies; independent jobs run
  /// concurrently on \p pool (null = run inline, still dependency-ordered).
  /// \p max_concurrency caps how many jobs are in flight at once (0 = no
  /// cap beyond the pool size) — the PAT analogue of a SLURM partition's
  /// job limit. A failed job marks its transitive dependents kSkipped.
  /// Returns true when every job succeeded.
  bool run(ThreadPool* pool = nullptr, std::size_t max_concurrency = 0);

  [[nodiscard]] const std::map<std::string, JobRecord>& records() const { return records_; }

  /// Emits the PAT-flavored SLURM submission script for the whole workflow
  /// (sbatch lines with --dependency=afterok chains).
  [[nodiscard]] std::string to_submission_script() const;

 private:
  std::vector<Job> jobs_;
  std::map<std::string, std::size_t> index_;
  std::map<std::string, JobRecord> records_;
};

}  // namespace cosmo::foresight
