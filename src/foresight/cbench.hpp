/// \file cbench.hpp
/// \brief CBench: Foresight's compression benchmark component.
///
/// "CBench provides researchers with an interface to test different lossy
/// compressors and determine the best-fit compression configuration based
/// on their demands. The benchmarking results include compression ratio,
/// data distortion (e.g., MRE, MSE, PSNR), compression and decompression
/// throughput, and the reconstructed dataset for the following analysis"
/// (paper Section IV-A1).
///
/// Sweeps run through staged CodecSessions: jobs are pre-indexed into
/// result slots, so the parallel scheduler produces output identical to the
/// serial path — only wall-clock changes. Codecs that cannot run sessions
/// concurrently (simulated-GPU timing, zfp-omp) always take the serial
/// path, keeping their modeled timings byte-for-byte stable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "foresight/compressor.hpp"
#include "io/container.hpp"

namespace cosmo::foresight {

/// One row of CBench output.
struct CBenchResult {
  std::string dataset;
  std::string field;
  std::string compressor;
  CompressorConfig config;

  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;     ///< original / compressed
  double bit_rate = 0.0;  ///< bits per value

  analysis::Distortion distortion;

  /// Per-stage timing/fallback/retry facts, verbatim from the codec session.
  StageTelemetry compress;
  StageTelemetry decompress;
  double compress_gbps = 0.0;   ///< uncompressed bytes / compress time
  double decompress_gbps = 0.0;
  bool throughput_reportable = true;

  /// "ok", or "failed" when the job threw and the sweep was configured to
  /// continue; failed rows keep their identity columns but carry no metrics.
  std::string status = "ok";
  std::string error;  ///< diagnostic for failed rows, empty otherwise

  /// Reconstructed data for downstream analysis (kept when requested).
  std::vector<float> reconstructed;

  [[nodiscard]] double compress_seconds() const { return compress.seconds; }
  [[nodiscard]] double decompress_seconds() const { return decompress.seconds; }
  [[nodiscard]] bool has_gpu_timing() const { return compress.has_gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_compress() const { return compress.gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_decompress() const {
    return decompress.gpu_timing;
  }
  /// Device-OOM degraded a stage to the host codec.
  [[nodiscard]] bool cpu_fallback() const { return any_cpu_fallback(compress, decompress); }
  /// Max device attempts across stages (transient-fault retries).
  [[nodiscard]] int device_attempts() const {
    return max_device_attempts(compress, decompress);
  }
};

/// What a sweep does when one job throws a cosmo::Error: kAbort rethrows
/// (the historical behavior), kContinue records a "failed" row for that job
/// and keeps sweeping. Non-cosmo exceptions always propagate. (Historically
/// nested as CBench::Options::OnError; now shared with the pipeline's
/// "on_error" config knob.)
enum class OnError { kAbort, kContinue };

/// Parses "abort" / "continue"; anything else throws InvalidArgument.
OnError parse_on_error(const std::string& text);

/// Benchmark driver.
class CBench {
 public:
  struct Options {
    /// Keep reconstructed data in each result (needed by PAT analyses).
    bool keep_reconstructed = true;
    std::string dataset_name = "dataset";
    /// Worker threads for sweep(): 1 runs serially in the calling thread
    /// (the timing-faithful path the throughput benches use), 0 uses the
    /// global pool, N > 1 spins up a dedicated pool of N workers. Codecs
    /// whose sessions cannot run concurrently (see
    /// Compressor::concurrent_sessions_safe) always run serially.
    std::size_t threads = 1;
    /// Intra-field threads inside each codec session (same 1/0/N convention
    /// as \p threads; see PoolHandle). Applied by run_one() and by sweeps
    /// that run sessions serially — including codecs whose sessions cannot
    /// run concurrently, which is how a gpu-safe sweep still threads its CPU
    /// kernels. Sweeps already running one session per worker keep their
    /// sessions serial (the jobs themselves saturate the pool). Streams are
    /// byte-identical for any value (the codecs use fixed chunk geometry).
    std::size_t session_threads = 1;
    /// Error policy for sweep()/run_one(); see foresight::OnError. The alias
    /// keeps the historical Options::OnError spelling compiling.
    using OnError = foresight::OnError;
    OnError on_error = OnError::kAbort;
  };

  CBench() = default;
  explicit CBench(Options options) : options_(std::move(options)) {}

  /// Runs one (field, compressor, config) combination over a fresh session.
  /// Honors Options::on_error: under kContinue a throwing job comes back as
  /// a "failed" row instead of propagating.
  CBenchResult run_one(const Field& field, Compressor& compressor,
                       const CompressorConfig& config) const;

  /// Runs one combination over a caller-held session (buffers in the
  /// session's arena are reused across calls).
  CBenchResult run_session(const Field& field, const std::string& compressor_name,
                           CodecSession& session, const CompressorConfig& config) const;

  /// run_session() variant that also reuses the caller's result scratch
  /// (\p c and \p d are clobbered) — the tight-loop form the sweep workers
  /// and the optimizer use.
  CBenchResult run_session(const Field& field, const std::string& compressor_name,
                           CodecSession& session, const CompressorConfig& config,
                           CompressResult& c, DecompressResult& d) const;

  /// Full sweep: every field in \p container x every config. A null
  /// \p field_filter accepts all fields. Results are ordered field-major,
  /// config-minor regardless of Options::threads.
  std::vector<CBenchResult> sweep(
      const io::Container& container, Compressor& compressor,
      const std::vector<CompressorConfig>& configs,
      const std::function<bool(const std::string&)>& field_filter = nullptr) const;

  /// Aggregate ratio across a set of results (total original bytes over
  /// total compressed bytes — how the paper reports "overall compression
  /// ratio" for a six-field configuration).
  static double overall_ratio(const std::vector<CBenchResult>& results);

 private:
  Options options_{};
};

/// Renders results as an aligned text table (one line per result), including
/// a flags column with host-fallback / device-retry marks.
std::string format_results(const std::vector<CBenchResult>& results);

/// The flags cell for one result: "cpu-fb" when a stage degraded to the host
/// codec, "xN" for N device attempts, "-" for a clean run (comma-joined when
/// both apply). Shared by format_results and the markdown report.
std::string result_flags(const CBenchResult& r);

}  // namespace cosmo::foresight
