/// \file pipeline.hpp
/// \brief The JSON-configured Foresight pipeline: "By only configuring a
/// simple JSON file, Foresight can automatically evaluate diverse
/// compression configurations and provide user-desired analysis and
/// visualization on the lossy compressed data" (paper Section IV-A).
///
/// Stages: dataset generation/loading -> CBench sweeps -> PAT-scheduled
/// analysis jobs (power spectrum / halo finder) -> Cinema database + plots.
///
/// Config schema (all sizes container-friendly by default):
/// {
///   "output": "out/foresight_run",
///   "dataset": {"type": "nyx"|"hacc", "dim": 64, "particles": 100000,
///               "seed": 42},
///   "gpu": "Tesla V100",
///   "runs": [
///     {"compressor": "cuzfp", "fields": ["baryon_density"],
///      "configs": [{"mode": "rate", "value": 4}, ...]}
///   ],
///   "analysis": {"power_spectrum": true, "halo_finder": false,
///                "linking_length": 1.5, "min_members": 10},
///   "cinema": true,
///   "jobs": 4,     // workflow-level parallelism (jobs run concurrently)
///   "threads": 1,  // intra-field threads inside each codec/analysis kernel
///                  // (1 serial, 0 global pool, N dedicated); output is
///                  // byte-identical for any value
///   "on_error": "continue",  // per-job failure policy: "continue" records
///                            // a failed row and keeps going (default),
///                            // "abort" stops at the first failure
///   "telemetry": {  // observability (absent = tracing stays disabled)
///     "trace": true,             // enable span tracing for this run
///     "trace_capacity": 65536,   // ring size in spans (oldest overwritten)
///     "trace_out": "trace.json",    // Chrome trace_event JSON, written
///                                   // under "output" unless absolute
///     "metrics_out": "metrics.json" // MetricsRegistry JSON dump
///   },
///   "faults": {    // deterministic fault injection (absent = disabled)
///     "seed": 1234,
///     "corrupt_probability": 0.5,    // stream corruption between stages
///     "gpu_transient_every": 7,      // every Nth device op throws transient
///     "gpu_transient_probability": 0.0,
///     "gpu_oom_every": 0,            // every Nth device op throws OOM
///     "gpu_oom_probability": 0.0,
///     "io_failure_every": 0,         // every Nth io::load/save fails
///     "io_failure_probability": 0.0
///   },
///   "optimizer": {  // Section V-D best-fit search (absent = stage off)
///     "compressor": "sz-cpu",
///     "search": "exhaustive"|"guided",
///     "probes": 3,        // guided: full evals per probe batch
///     "threads": 1,       // candidate-eval workers (1/0/N convention)
///     "tolerance": 0.01,  // grid P(k) band
///     "k_fraction": 0.5,
///     "halo_tolerance": 0.05,      // hacc only
///     "velocity_tolerance": 0.05,
///     "linking_length": 1.5,
///     "min_members": 10,
///     "candidates": [{"mode": "abs", "value": 0.1}, ...],  // grid; default:
///                                                  // the codec's registry sweep
///     "position_candidates": [...],  // hacc; default: paper's HACC lattices
///     "velocity_candidates": [...]
///   }
/// }
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "foresight/cbench.hpp"
#include "foresight/optimizer.hpp"
#include "json/json.hpp"

namespace cosmo::foresight {

/// Builds (or loads) the dataset a JSON spec describes: {"type": "nyx",
/// "dim", "seed"}, {"type": "hacc", "particles", "seed", "halo_count"} or
/// {"type": "file", "path"}. Shared by the pipeline and foresightd.
io::Container build_dataset(const json::Value& spec);

/// Builds a FaultPlan config from a config's optional "faults" object.
/// nullopt (absent key) means fault injection stays fully disabled.
std::optional<fault::Config> parse_faults(const json::Value& config);

/// Everything a pipeline run produces (reconstructions are dropped after
/// analysis to bound memory).
struct PipelineSummary {
  std::vector<CBenchResult> results;
  /// "field|compressor|config" -> max |pk ratio - 1| (when power_spectrum on).
  std::map<std::string, double> pk_deviation;
  /// "position|compressor|config" -> max halo count-ratio deviation.
  std::map<std::string, double> halo_deviation;
  /// "field|compressor|config" -> mean SSIM (when analysis.ssim is on).
  std::map<std::string, double> ssim;
  /// Section V-D best-fit search result (set when the config carries an
  /// "optimizer" object).
  std::optional<OptimizationResult> optimization;
  std::string output_dir;
  std::vector<std::string> artifacts;  ///< files written under output_dir
  bool workflow_ok = false;
  std::size_t failed_jobs = 0;      ///< cbench rows with status != "ok"
  std::size_t injected_faults = 0;  ///< total faults the plan fired (0 = none)
  std::string trace_path;    ///< trace JSON written this run ("" = tracing off)
  std::string metrics_path;  ///< metrics JSON written this run ("" = none)
};

/// Runs the pipeline described by a parsed JSON config.
PipelineSummary run_pipeline(const json::Value& config);

/// Convenience: parse a JSON file then run.
PipelineSummary run_pipeline_file(const std::string& path);

}  // namespace cosmo::foresight
