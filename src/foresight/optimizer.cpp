#include "foresight/optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

#include "analysis/halo_stats.hpp"
#include "analysis/power_spectrum.hpp"
#include "common/str.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "foresight/optimizer_model.hpp"
#include "sz/rate_estimate.hpp"

namespace cosmo::foresight {

SearchMode parse_search_mode(const std::string& text) {
  if (text == "exhaustive") return SearchMode::kExhaustive;
  if (text == "guided") return SearchMode::kGuided;
  throw InvalidArgument("optimizer: unknown search mode '" + text +
                        "' (expected \"exhaustive\" or \"guided\")");
}

std::string search_mode_label(SearchMode mode) {
  return mode == SearchMode::kGuided ? "guided" : "exhaustive";
}

namespace {

/// Guided search evaluates this many positions past the acceptability
/// frontier (extending past every acceptable pocket it finds) before
/// trusting the monotone model for the rest.
constexpr std::size_t kPocketWindow = 2;

CandidateOutcome failed_outcome(const CompressorConfig& config, const std::string& what) {
  CandidateOutcome out;
  out.config = config;
  out.status = "failed";
  out.error = what;
  return out;
}

/// Evaluates batches of candidate indices against per-index configs,
/// writing each outcome into its pre-indexed slot. Serial batches reuse one
/// lazily opened session (compressed-stream and reconstruction buffers are
/// reused across every evaluation, the historical optimizer behavior);
/// parallel batches follow the CBench::sweep idiom — an atomic cursor over
/// the index list with one session per worker — and are gated on
/// concurrent_sessions_safe(), so modeled GPU timings stay call-order
/// deterministic. Either way the output slot for candidate i is outcomes[i]
/// and never depends on the schedule.
class EvalScheduler {
 public:
  using EvalFn = std::function<CandidateOutcome(const CompressorConfig&, CodecSession&,
                                                CompressResult&, DecompressResult&)>;

  EvalScheduler(Compressor& compressor, const OptimizerOptions& options)
      : compressor_(compressor), options_(options) {}

  void run(const std::vector<std::size_t>& indices,
           const std::vector<CompressorConfig>& configs, const EvalFn& eval,
           std::vector<CandidateOutcome>& outcomes) {
    const bool serial = options_.threads == 1 ||
                        !compressor_.concurrent_sessions_safe() || indices.size() <= 1;
    if (serial) {
      for (const std::size_t i : indices) {
        try {
          outcomes[i] = eval(configs[i], serial_session(), cbuf_, dbuf_);
        } catch (const Error& e) {
          if (options_.on_error == OnError::kAbort) throw;
          outcomes[i] = failed_outcome(configs[i], e.what());
        }
      }
      return;
    }

    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool;
    if (options_.threads == 0) {
      pool = &global_pool();
    } else {
      owned = std::make_unique<ThreadPool>(std::min(options_.threads, indices.size()));
      pool = owned.get();
    }
    std::atomic<std::size_t> cursor{0};
    const std::size_t workers = std::min(pool->size(), indices.size());
    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      done.push_back(pool->submit([&] {
        TRACE_SPAN("optimizer.worker");
        const std::unique_ptr<CodecSession> session = compressor_.open_session();
        CompressResult c;
        DecompressResult d;
        for (std::size_t j = cursor.fetch_add(1); j < indices.size();
             j = cursor.fetch_add(1)) {
          const std::size_t i = indices[j];
          try {
            outcomes[i] = eval(configs[i], *session, c, d);
          } catch (const Error& e) {
            if (options_.on_error == OnError::kAbort) throw;
            outcomes[i] = failed_outcome(configs[i], e.what());
          }
        }
      }));
    }
    for (auto& f : done) f.get();  // rethrows the first worker exception
  }

 private:
  CodecSession& serial_session() {
    if (!session_) session_ = compressor_.open_session();
    return *session_;
  }

  Compressor& compressor_;
  OptimizerOptions options_;
  std::unique_ptr<CodecSession> session_;
  CompressResult cbuf_;
  DecompressResult dbuf_;
};

/// Optional cheap CR predictor for pruned rows (sz::estimate_rate where the
/// codec's abs path is the SZ pipeline). Returns 0 when not predictable.
using RatioPredictor = std::function<double(const CompressorConfig&)>;

/// Runs one field's candidate search (exhaustive or guided) and returns the
/// completed FieldChoice. \p eval is the full evaluation; \p predict_ratio
/// may be null.
FieldChoice run_field_search(const std::string& field_name,
                             const std::vector<CompressorConfig>& candidates,
                             Compressor& compressor, const OptimizerOptions& options,
                             EvalScheduler& scheduler,
                             const EvalScheduler::EvalFn& eval,
                             const RatioPredictor& predict_ratio, OptimizerStats& stats) {
  FieldChoice choice;
  choice.field = field_name;
  const std::size_t n = candidates.size();
  std::vector<CandidateOutcome> outcomes(n);
  stats.candidates += n;

  // Capability pruning: a mixed candidate list (e.g. one grid shared by an
  // abs- and a rate-mode codec) records the modes this codec does not
  // support as "skipped" rows instead of silently dropping them.
  std::vector<std::size_t> supported;
  for (std::size_t i = 0; i < n; ++i) {
    outcomes[i].config = candidates[i];
    if (compressor.capabilities().supports_mode(candidates[i].mode)) {
      supported.push_back(i);
    } else {
      outcomes[i].status = "skipped";
      ++stats.skipped;
    }
  }

  // Which rows actually went through the scheduler (status alone cannot
  // tell: an untouched outcome carries the default "evaluated").
  std::vector<char> ran(n, 0);

  if (options.search == SearchMode::kExhaustive) {
    scheduler.run(supported, candidates, eval, outcomes);
    for (const std::size_t i : supported) ran[i] = 1;
    stats.full_evals += supported.size();
  } else {
    // Guided search, per mode group: probe a few positions along the
    // aggressiveness axis, bisect onto the acceptability frontier, and fill
    // the remaining rows from the surrogate fitted through the evaluated
    // points.
    std::vector<std::string> group_modes;
    std::map<std::string, std::vector<std::size_t>> groups;
    for (const std::size_t i : supported) {
      auto& group = groups[candidates[i].mode];
      if (group.empty()) group_modes.push_back(candidates[i].mode);
      group.push_back(i);
    }
    for (const auto& mode : group_modes) {
      const std::vector<std::size_t>& group = groups[mode];
      std::vector<CompressorConfig> group_configs;
      group_configs.reserve(group.size());
      for (const std::size_t i : group) group_configs.push_back(candidates[i]);
      const std::vector<std::size_t> order = aggressiveness_order(group_configs);

      // Probe batch: endpoints plus evenly spread interior positions, all
      // full evaluations, scheduled in one (possibly parallel) batch.
      const std::vector<std::size_t> probe_pos =
          probe_positions(order.size(), options.probes);
      std::vector<std::size_t> probe_idx;
      probe_idx.reserve(probe_pos.size());
      for (const std::size_t p : probe_pos) probe_idx.push_back(group[order[p]]);
      {
        TRACE_SPAN("optimizer.probe_batch");
        scheduler.run(probe_idx, candidates, eval, outcomes);
      }
      for (const std::size_t i : probe_idx) ran[i] = 1;
      stats.probes += probe_idx.size();
      stats.full_evals += probe_idx.size();

      const auto evaluated = [&](std::size_t pos) { return ran[group[order[pos]]] != 0; };
      // A failed evaluation cannot be verified acceptable, so it bounds the
      // frontier from the unacceptable side.
      const auto pos_acceptable = [&](std::size_t pos) {
        const CandidateOutcome& o = outcomes[group[order[pos]]];
        return o.status == "evaluated" && o.acceptable;
      };

      // Bracket the frontier: hi = least aggressive probed-unacceptable
      // position, lo = most aggressive probed-acceptable position below it.
      std::size_t hi = order.size();  // past-the-end = no unacceptable probe
      std::size_t lo = order.size();  // past-the-end = no acceptable probe
      for (const std::size_t p : probe_pos) {
        if (!pos_acceptable(p)) {
          hi = p;
          break;
        }
        lo = p;
      }

      // Bisection refinement: deviation grows with aggressiveness, so the
      // frontier between the bracket endpoints is found in O(log gap) full
      // evaluations instead of evaluating the whole gap.
      if (lo < hi && hi < order.size()) {
        TRACE_SPAN("optimizer.bisect");
        for (std::size_t mid = bisect_next(lo, hi); mid != kBisectDone;
             mid = bisect_next(lo, hi)) {
          scheduler.run({group[order[mid]]}, candidates, eval, outcomes);
          ran[group[order[mid]]] = 1;
          ++stats.full_evals;
          if (pos_acceptable(mid)) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
      }

      // Pocket scan: near the tolerance the deviation-vs-aggressiveness
      // curve is only noisily monotone, and the exhaustive winner
      // occasionally sits in an acceptable pocket just past the first
      // crossing. Evaluate a small window above the frontier, extending it
      // past every acceptable position it uncovers, so those pockets are
      // harvested at bounded extra cost.
      if (hi < order.size()) {
        std::size_t limit = std::min(order.size() - 1, hi + kPocketWindow);
        for (std::size_t pos = hi + 1; pos <= limit; ++pos) {
          if (!evaluated(pos)) {
            scheduler.run({group[order[pos]]}, candidates, eval, outcomes);
            ran[group[order[pos]]] = 1;
            ++stats.full_evals;
          }
          if (pos_acceptable(pos)) {
            limit = std::min(order.size() - 1, pos + kPocketWindow);
          }
        }
      }

      // Surrogate through every real evaluation in this group.
      RateQualityModel model;
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const CandidateOutcome& o = outcomes[group[order[pos]]];
        if (evaluated(pos) && o.status == "evaluated" && o.config.value > 0.0) {
          model.add_point(o.config.value, o.ratio, o.metric_deviation);
        }
      }

      // Fill the pruned rows: monotone acceptability (positions below the
      // bracket are acceptable, above it are not) plus predicted metrics.
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (evaluated(pos)) continue;
        CandidateOutcome& o = outcomes[group[order[pos]]];
        o.status = "pruned";
        o.predicted = true;
        o.acceptable = pos < hi;
        if (model.points() > 0 && o.config.value > 0.0) {
          o.ratio = model.predict_ratio(o.config.value);
          o.metric_deviation = model.predict_deviation(o.config.value);
        }
        if (predict_ratio) {
          const double est = predict_ratio(o.config);
          if (est > 0.0) {
            o.ratio = est;
            ++stats.rate_estimates;
          }
        }
        ++stats.pruned;
      }
    }
  }

  // Guideline step 3: among acceptable configs, keep the highest ratio.
  // Only real evaluations are eligible — the chosen config's metrics are
  // always measured, never predicted.
  for (const auto& o : outcomes) {
    if (o.status == "failed") ++stats.failed;
    if (o.status != "evaluated" || !o.acceptable) continue;
    if (!choice.found || o.ratio > choice.chosen.ratio) {
      choice.found = true;
      choice.chosen = o;
    }
  }
  choice.candidates = std::move(outcomes);
  return choice;
}

void publish_stats(const OptimizerStats& stats) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  metrics.counter("optimizer.runs").add();
  metrics.counter("optimizer.candidates").add(stats.candidates);
  metrics.counter("optimizer.full_evals").add(stats.full_evals);
  metrics.counter("optimizer.probes").add(stats.probes);
  metrics.counter("optimizer.pruned_candidates").add(stats.pruned);
  metrics.counter("optimizer.skipped_candidates").add(stats.skipped);
  metrics.counter("optimizer.failed_candidates").add(stats.failed);
  metrics.counter("optimizer.rate_estimates").add(stats.rate_estimates);
  metrics.counter("optimizer.baseline_cache_hits").add(stats.baseline_cache_hits);
}

/// sz::estimate_rate-backed CR predictor for codecs whose abs path is the
/// SZ pipeline, restricted to native 3-D fields (1-D fields go through
/// ShapeAdapter padding, which the estimator does not model). Samples every
/// 4th block — prediction + quantization on a quarter of the field, plenty
/// for a pruned-row estimate.
RatioPredictor make_rate_predictor(const Field& field, Compressor& compressor) {
  if (!compressor.capabilities().abs_rate_estimable) return nullptr;
  if (field.dims.rank() != 3) return nullptr;
  return [&field](const CompressorConfig& config) -> double {
    if (config.mode != "abs" || config.value <= 0.0) return 0.0;
    sz::Params params;
    params.abs_error_bound = config.value;
    const sz::RateEstimate est =
        sz::estimate_rate(field.data, field.dims, params, /*block_stride=*/4);
    return est.estimated_bits_per_value > 0.0 ? 32.0 / est.estimated_bits_per_value : 0.0;
  };
}

}  // namespace

OptimizationResult optimize_grid_dataset(
    const io::Container& data, Compressor& compressor,
    const std::map<std::string, std::vector<CompressorConfig>>& candidates,
    double tolerance, double k_fraction, const OptimizerOptions& options) {
  TRACE_SPAN("optimizer.grid");
  Timer wall;
  CBench bench({.keep_reconstructed = true, .dataset_name = "grid"});
  OptimizationResult result;
  std::size_t total_original = 0;
  std::size_t total_compressed = 0;
  bool all_ok = true;
  EvalScheduler scheduler(compressor, options);
  const std::string name = compressor.name();

  for (const auto& variable : data.variables) {
    const auto it = candidates.find(variable.field.name);
    if (it == candidates.end()) continue;
    const Field& field = variable.field;

    // The original-field spectrum is identical across candidates: compute
    // it once and serve every ratio from the cache.
    std::vector<analysis::PkBin> baseline;
    {
      TRACE_SPAN("optimizer.baseline");
      baseline = analysis::power_spectrum(field.data, field.dims);
    }
    std::atomic<std::size_t> cache_hits{0};

    const EvalScheduler::EvalFn eval = [&](const CompressorConfig& config,
                                           CodecSession& session, CompressResult& c,
                                           DecompressResult& d) {
      CBenchResult r = bench.run_session(field, name, session, config, c, d);
      const auto pk =
          analysis::pk_ratio(baseline, r.reconstructed, field.dims, k_fraction);
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      CandidateOutcome outcome;
      outcome.config = config;
      outcome.ratio = r.ratio;
      outcome.psnr_db = r.distortion.psnr_db;
      outcome.metric_deviation = pk.max_deviation;
      outcome.acceptable = analysis::pk_acceptable(pk, tolerance);
      return outcome;
    };

    FieldChoice choice =
        run_field_search(field.name, it->second, compressor, options, scheduler, eval,
                         make_rate_predictor(field, compressor), result.stats);
    result.stats.baseline_cache_hits += cache_hits.load();

    if (choice.found) {
      total_original += field.bytes();
      total_compressed += static_cast<std::size_t>(
          static_cast<double>(field.bytes()) / choice.chosen.ratio);
    } else {
      all_ok = false;
    }
    result.per_field.push_back(std::move(choice));
  }

  result.all_fields_ok = all_ok && !result.per_field.empty();
  result.overall_ratio = total_compressed > 0
                             ? static_cast<double>(total_original) /
                                   static_cast<double>(total_compressed)
                             : 0.0;
  result.stats.wall_seconds = wall.seconds();
  publish_stats(result.stats);
  return result;
}

namespace {

/// Mean relative deviation of per-halo bulk velocities, using the original
/// halo membership (velocity distortion metric for the particle guideline).
double halo_velocity_deviation(const analysis::FofResult& halos,
                               std::span<const float> v_orig,
                               std::span<const float> v_recon) {
  if (halos.halos.empty()) return 0.0;
  std::vector<double> sum_o(halos.halos.size(), 0.0);
  std::vector<double> sum_r(halos.halos.size(), 0.0);
  std::vector<std::size_t> count(halos.halos.size(), 0);
  for (std::size_t p = 0; p < v_orig.size(); ++p) {
    const auto h = halos.halo_of_particle[p];
    if (h < 0) continue;
    sum_o[static_cast<std::size_t>(h)] += v_orig[p];
    sum_r[static_cast<std::size_t>(h)] += v_recon[p];
    ++count[static_cast<std::size_t>(h)];
  }
  double dev = 0.0;
  std::size_t used = 0;
  for (std::size_t h = 0; h < halos.halos.size(); ++h) {
    if (count[h] == 0) continue;
    const double mo = sum_o[h] / static_cast<double>(count[h]);
    const double mr = sum_r[h] / static_cast<double>(count[h]);
    const double scale = std::max(std::fabs(mo), 10.0);  // floor avoids 0/0
    dev += std::fabs(mr - mo) / scale;
    ++used;
  }
  return used ? dev / static_cast<double>(used) : 0.0;
}

}  // namespace

OptimizationResult optimize_particle_dataset(
    const io::Container& data, Compressor& compressor,
    const std::vector<CompressorConfig>& position_candidates,
    const std::vector<CompressorConfig>& velocity_candidates,
    const analysis::FofParams& fof_params, double halo_tolerance,
    double velocity_tolerance, const OptimizerOptions& options) {
  TRACE_SPAN("optimizer.particles");
  Timer wall;
  CBench bench({.keep_reconstructed = true, .dataset_name = "particles"});
  const auto& x = data.find("x").field;
  const auto& y = data.find("y").field;
  const auto& z = data.find("z").field;

  // The original FoF catalog (and its halo mass binning) is the baseline
  // for every candidate: run it once, compare each reconstruction to it.
  analysis::FofResult original_halos;
  {
    TRACE_SPAN("optimizer.baseline");
    original_halos = analysis::fof(x.data, y.data, z.data, fof_params);
  }
  require(!original_halos.halos.empty(),
          "optimize_particle_dataset: no halos in original data");
  const analysis::HaloBaseline halo_baseline =
      analysis::make_halo_baseline(original_halos.halos, 1.0);

  OptimizationResult result;
  EvalScheduler scheduler(compressor, options);
  const std::string name = compressor.name();
  std::atomic<std::size_t> cache_hits{0};

  // --- Positions: same bound on x, y, z; acceptance via halo counts. ---
  const EvalScheduler::EvalFn eval_position = [&](const CompressorConfig& config,
                                                  CodecSession& session, CompressResult& c,
                                                  DecompressResult& d) {
    CBenchResult rx = bench.run_session(x, name, session, config, c, d);
    CBenchResult ry = bench.run_session(y, name, session, config, c, d);
    CBenchResult rz = bench.run_session(z, name, session, config, c, d);
    const analysis::FofResult recon_halos =
        analysis::fof(rx.reconstructed, ry.reconstructed, rz.reconstructed, fof_params);
    CandidateOutcome outcome;
    outcome.config = config;
    outcome.ratio = 3.0 * static_cast<double>(x.bytes()) /
                    static_cast<double>(rx.compressed_bytes + ry.compressed_bytes +
                                        rz.compressed_bytes);
    outcome.psnr_db = rx.distortion.psnr_db;
    if (recon_halos.halos.empty()) {
      outcome.metric_deviation = 1.0;
      outcome.acceptable = false;
    } else {
      const auto cmp = analysis::compare_halo_catalogs(halo_baseline, recon_halos.halos);
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      outcome.metric_deviation = cmp.max_ratio_deviation;
      outcome.acceptable = cmp.max_ratio_deviation <= halo_tolerance;
    }
    return outcome;
  };
  FieldChoice pos_choice =
      run_field_search("position", position_candidates, compressor, options, scheduler,
                       eval_position, nullptr, result.stats);

  // --- Velocities: acceptance via halo bulk-velocity preservation. ---
  const auto& vx = data.find("vx").field;
  const auto& vy = data.find("vy").field;
  const auto& vz = data.find("vz").field;
  const EvalScheduler::EvalFn eval_velocity = [&](const CompressorConfig& config,
                                                  CodecSession& session, CompressResult& c,
                                                  DecompressResult& d) {
    CBenchResult rvx = bench.run_session(vx, name, session, config, c, d);
    CBenchResult rvy = bench.run_session(vy, name, session, config, c, d);
    CBenchResult rvz = bench.run_session(vz, name, session, config, c, d);
    CandidateOutcome outcome;
    outcome.config = config;
    outcome.ratio = 3.0 * static_cast<double>(vx.bytes()) /
                    static_cast<double>(rvx.compressed_bytes + rvy.compressed_bytes +
                                        rvz.compressed_bytes);
    outcome.psnr_db = rvx.distortion.psnr_db;
    const double dev = std::max(
        {halo_velocity_deviation(original_halos, vx.data, rvx.reconstructed),
         halo_velocity_deviation(original_halos, vy.data, rvy.reconstructed),
         halo_velocity_deviation(original_halos, vz.data, rvz.reconstructed)});
    cache_hits.fetch_add(1, std::memory_order_relaxed);
    outcome.metric_deviation = dev;
    outcome.acceptable = dev <= velocity_tolerance;
    return outcome;
  };
  FieldChoice vel_choice =
      run_field_search("velocity", velocity_candidates, compressor, options, scheduler,
                       eval_velocity, nullptr, result.stats);

  result.stats.baseline_cache_hits += cache_hits.load();
  result.all_fields_ok = pos_choice.found && vel_choice.found;
  if (result.all_fields_ok) {
    // Overall: positions and velocities are equal-sized thirds of the data.
    const double inv =
        0.5 / pos_choice.chosen.ratio + 0.5 / vel_choice.chosen.ratio;
    result.overall_ratio = 1.0 / inv;
  }
  result.per_field.push_back(std::move(pos_choice));
  result.per_field.push_back(std::move(vel_choice));
  result.stats.wall_seconds = wall.seconds();
  publish_stats(result.stats);
  return result;
}

std::string format_optimization(const OptimizationResult& result) {
  std::string out;
  for (const auto& field : result.per_field) {
    out += strprintf("field %-22s", field.field.c_str());
    if (field.found) {
      out += strprintf(" best-fit %-14s ratio %6.2fx (metric dev %.4f)\n",
                       field.chosen.config.label().c_str(), field.chosen.ratio,
                       field.chosen.metric_deviation);
    } else {
      out += " no acceptable configuration among candidates\n";
    }
    for (const auto& c : field.candidates) {
      if (c.status == "skipped") {
        out += strprintf("    %-14s skipped (mode unsupported)\n", c.config.label().c_str());
        continue;
      }
      if (c.status == "failed") {
        out += strprintf("    %-14s FAILED: %s\n", c.config.label().c_str(), c.error.c_str());
        continue;
      }
      out += strprintf("    %-14s ratio %6.2fx PSNR %7.2f dB dev %.4f  %s%s\n",
                       c.config.label().c_str(), c.ratio, c.psnr_db, c.metric_deviation,
                       c.acceptable ? "OK" : "reject",
                       c.status == "pruned" ? " (pruned, predicted)" : "");
    }
  }
  out += strprintf("overall ratio: %.2fx (%s)\n", result.overall_ratio,
                   result.all_fields_ok ? "all fields acceptable"
                                        : "some fields lack an acceptable config");
  const OptimizerStats& s = result.stats;
  out += strprintf(
      "search: %zu candidates, %zu full evals (%zu probes), %zu pruned, "
      "%zu skipped, %zu failed, %zu rate estimates, %zu baseline cache hits, "
      "%.3f s\n",
      s.candidates, s.full_evals, s.probes, s.pruned, s.skipped, s.failed,
      s.rate_estimates, s.baseline_cache_hits, s.wall_seconds);
  return out;
}

}  // namespace cosmo::foresight
