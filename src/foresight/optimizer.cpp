#include "foresight/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/halo_stats.hpp"
#include "analysis/power_spectrum.hpp"
#include "common/str.hpp"

namespace cosmo::foresight {

OptimizationResult optimize_grid_dataset(
    const io::Container& data, Compressor& compressor,
    const std::map<std::string, std::vector<CompressorConfig>>& candidates,
    double tolerance, double k_fraction) {
  CBench bench({.keep_reconstructed = true, .dataset_name = "grid"});
  OptimizationResult result;
  std::size_t total_original = 0;
  std::size_t total_compressed = 0;
  bool all_ok = true;

  // One session for the whole grid search: compressed-stream and
  // reconstruction buffers are reused across every candidate evaluation.
  const std::unique_ptr<CodecSession> session = compressor.open_session();
  CompressResult cbuf;
  DecompressResult dbuf;

  for (const auto& variable : data.variables) {
    const auto it = candidates.find(variable.field.name);
    if (it == candidates.end()) continue;
    FieldChoice choice;
    choice.field = variable.field.name;

    for (const auto& config : it->second) {
      // Capability pruning: a mixed candidate list (e.g. one grid shared by
      // an abs- and a rate-mode codec) simply skips the modes this codec
      // does not register instead of erroring out.
      if (!compressor.capabilities().supports_mode(config.mode)) continue;
      CBenchResult r =
          bench.run_session(variable.field, compressor.name(), *session, config, cbuf, dbuf);
      const auto pk = analysis::pk_ratio(variable.field.data, r.reconstructed,
                                         variable.field.dims, k_fraction);
      CandidateOutcome outcome;
      outcome.config = config;
      outcome.ratio = r.ratio;
      outcome.psnr_db = r.distortion.psnr_db;
      outcome.metric_deviation = pk.max_deviation;
      outcome.acceptable = analysis::pk_acceptable(pk, tolerance);
      // Guideline step 3: among acceptable configs, keep the highest ratio.
      if (outcome.acceptable && (!choice.found || outcome.ratio > choice.chosen.ratio)) {
        choice.found = true;
        choice.chosen = outcome;
      }
      choice.candidates.push_back(outcome);
    }

    if (choice.found) {
      total_original += variable.field.bytes();
      total_compressed += static_cast<std::size_t>(
          static_cast<double>(variable.field.bytes()) / choice.chosen.ratio);
    } else {
      all_ok = false;
    }
    result.per_field.push_back(std::move(choice));
  }

  result.all_fields_ok = all_ok && !result.per_field.empty();
  result.overall_ratio = total_compressed > 0
                             ? static_cast<double>(total_original) /
                                   static_cast<double>(total_compressed)
                             : 0.0;
  return result;
}

namespace {

/// Mean relative deviation of per-halo bulk velocities, using the original
/// halo membership (velocity distortion metric for the particle guideline).
double halo_velocity_deviation(const analysis::FofResult& halos,
                               std::span<const float> v_orig,
                               std::span<const float> v_recon) {
  if (halos.halos.empty()) return 0.0;
  std::vector<double> sum_o(halos.halos.size(), 0.0);
  std::vector<double> sum_r(halos.halos.size(), 0.0);
  std::vector<std::size_t> count(halos.halos.size(), 0);
  for (std::size_t p = 0; p < v_orig.size(); ++p) {
    const auto h = halos.halo_of_particle[p];
    if (h < 0) continue;
    sum_o[static_cast<std::size_t>(h)] += v_orig[p];
    sum_r[static_cast<std::size_t>(h)] += v_recon[p];
    ++count[static_cast<std::size_t>(h)];
  }
  double dev = 0.0;
  std::size_t used = 0;
  for (std::size_t h = 0; h < halos.halos.size(); ++h) {
    if (count[h] == 0) continue;
    const double mo = sum_o[h] / static_cast<double>(count[h]);
    const double mr = sum_r[h] / static_cast<double>(count[h]);
    const double scale = std::max(std::fabs(mo), 10.0);  // floor avoids 0/0
    dev += std::fabs(mr - mo) / scale;
    ++used;
  }
  return used ? dev / static_cast<double>(used) : 0.0;
}

}  // namespace

OptimizationResult optimize_particle_dataset(
    const io::Container& data, Compressor& compressor,
    const std::vector<CompressorConfig>& position_candidates,
    const std::vector<CompressorConfig>& velocity_candidates,
    const analysis::FofParams& fof_params, double halo_tolerance,
    double velocity_tolerance) {
  CBench bench({.keep_reconstructed = true, .dataset_name = "particles"});
  const auto& x = data.find("x").field;
  const auto& y = data.find("y").field;
  const auto& z = data.find("z").field;

  const analysis::FofResult original_halos =
      analysis::fof(x.data, y.data, z.data, fof_params);
  require(!original_halos.halos.empty(),
          "optimize_particle_dataset: no halos in original data");

  OptimizationResult result;

  // One session across every candidate triple (see optimize_grid_dataset).
  const std::unique_ptr<CodecSession> session = compressor.open_session();
  const std::string name = compressor.name();
  CompressResult cbuf;
  DecompressResult dbuf;

  // --- Positions: same bound on x, y, z; acceptance via halo counts. ---
  FieldChoice pos_choice;
  pos_choice.field = "position";
  for (const auto& config : position_candidates) {
    if (!compressor.capabilities().supports_mode(config.mode)) continue;
    CBenchResult rx = bench.run_session(x, name, *session, config, cbuf, dbuf);
    CBenchResult ry = bench.run_session(y, name, *session, config, cbuf, dbuf);
    CBenchResult rz = bench.run_session(z, name, *session, config, cbuf, dbuf);
    const analysis::FofResult recon_halos =
        analysis::fof(rx.reconstructed, ry.reconstructed, rz.reconstructed, fof_params);
    CandidateOutcome outcome;
    outcome.config = config;
    outcome.ratio = 3.0 * static_cast<double>(x.bytes()) /
                    static_cast<double>(rx.compressed_bytes + ry.compressed_bytes +
                                        rz.compressed_bytes);
    outcome.psnr_db = rx.distortion.psnr_db;
    if (recon_halos.halos.empty()) {
      outcome.metric_deviation = 1.0;
      outcome.acceptable = false;
    } else {
      const auto cmp = analysis::compare_halo_catalogs(original_halos.halos,
                                                       recon_halos.halos, 1.0);
      outcome.metric_deviation = cmp.max_ratio_deviation;
      outcome.acceptable = cmp.max_ratio_deviation <= halo_tolerance;
    }
    if (outcome.acceptable && (!pos_choice.found || outcome.ratio > pos_choice.chosen.ratio)) {
      pos_choice.found = true;
      pos_choice.chosen = outcome;
    }
    pos_choice.candidates.push_back(outcome);
  }

  // --- Velocities: acceptance via halo bulk-velocity preservation. ---
  FieldChoice vel_choice;
  vel_choice.field = "velocity";
  const auto& vx = data.find("vx").field;
  const auto& vy = data.find("vy").field;
  const auto& vz = data.find("vz").field;
  for (const auto& config : velocity_candidates) {
    if (!compressor.capabilities().supports_mode(config.mode)) continue;
    CBenchResult rvx = bench.run_session(vx, name, *session, config, cbuf, dbuf);
    CBenchResult rvy = bench.run_session(vy, name, *session, config, cbuf, dbuf);
    CBenchResult rvz = bench.run_session(vz, name, *session, config, cbuf, dbuf);
    CandidateOutcome outcome;
    outcome.config = config;
    outcome.ratio = 3.0 * static_cast<double>(vx.bytes()) /
                    static_cast<double>(rvx.compressed_bytes + rvy.compressed_bytes +
                                        rvz.compressed_bytes);
    outcome.psnr_db = rvx.distortion.psnr_db;
    const double dev = std::max(
        {halo_velocity_deviation(original_halos, vx.data, rvx.reconstructed),
         halo_velocity_deviation(original_halos, vy.data, rvy.reconstructed),
         halo_velocity_deviation(original_halos, vz.data, rvz.reconstructed)});
    outcome.metric_deviation = dev;
    outcome.acceptable = dev <= velocity_tolerance;
    if (outcome.acceptable && (!vel_choice.found || outcome.ratio > vel_choice.chosen.ratio)) {
      vel_choice.found = true;
      vel_choice.chosen = outcome;
    }
    vel_choice.candidates.push_back(outcome);
  }

  result.all_fields_ok = pos_choice.found && vel_choice.found;
  if (result.all_fields_ok) {
    // Overall: positions and velocities are equal-sized thirds of the data.
    const double inv =
        0.5 / pos_choice.chosen.ratio + 0.5 / vel_choice.chosen.ratio;
    result.overall_ratio = 1.0 / inv;
  }
  result.per_field.push_back(std::move(pos_choice));
  result.per_field.push_back(std::move(vel_choice));
  return result;
}

std::string format_optimization(const OptimizationResult& result) {
  std::string out;
  for (const auto& field : result.per_field) {
    out += strprintf("field %-22s", field.field.c_str());
    if (field.found) {
      out += strprintf(" best-fit %-14s ratio %6.2fx (metric dev %.4f)\n",
                       field.chosen.config.label().c_str(), field.chosen.ratio,
                       field.chosen.metric_deviation);
    } else {
      out += " no acceptable configuration among candidates\n";
    }
    for (const auto& c : field.candidates) {
      out += strprintf("    %-14s ratio %6.2fx PSNR %7.2f dB dev %.4f  %s\n",
                       c.config.label().c_str(), c.ratio, c.psnr_db, c.metric_deviation,
                       c.acceptable ? "OK" : "reject");
    }
  }
  out += strprintf("overall ratio: %.2fx (%s)\n", result.overall_ratio,
                   result.all_fields_ok ? "all fields acceptable"
                                        : "some fields lack an acceptable config");
  return out;
}

}  // namespace cosmo::foresight
