/// \file sweep.hpp
/// \brief Candidate-configuration sweep generators for the Section V-D
/// guideline: the paper sweeps absolute error bounds as fractions of each
/// field's value range (GPU-SZ) and fixed bitrates (cuZFP). These helpers
/// build those grids so benches, examples and user code share one
/// definition.
#pragma once

#include <vector>

#include "common/field.hpp"
#include "foresight/compressor.hpp"

namespace cosmo::foresight {

/// Absolute-bound sweep: bounds = range(field) * fraction, for log-spaced
/// fractions in [frac_lo, frac_hi] (inclusive, `count` points).
std::vector<CompressorConfig> abs_sweep_for_field(const Field& field, double frac_lo,
                                                  double frac_hi, std::size_t count);

/// Point-wise-relative sweep over log-spaced bounds in [lo, hi].
std::vector<CompressorConfig> pwrel_sweep(double lo, double hi, std::size_t count);

/// Fixed-rate sweep over the given bitrates.
std::vector<CompressorConfig> rate_sweep(std::vector<double> bitrates);

/// The default candidate grid per Nyx-like field for a codec name:
/// "cuzfp"/"zfp-cpu"/"zfp-omp" get rates {1,2,4,8}; "gpu-sz"/"sz-cpu" get
/// range-scaled absolute bounds (2e-6 .. 2e-3 of the range).
std::vector<CompressorConfig> default_grid_candidates(const std::string& codec,
                                                      const Field& field);

}  // namespace cosmo::foresight
