/// \file sweep.hpp
/// \brief Candidate-configuration sweep generators for the Section V-D
/// guideline: the paper sweeps absolute error bounds as fractions of each
/// field's value range (GPU-SZ) and fixed bitrates (cuZFP). These helpers
/// build those grids so benches, examples and user code share one
/// definition.
#pragma once

#include <vector>

#include "common/field.hpp"
#include "foresight/compressor.hpp"

namespace cosmo::foresight {

/// Absolute-bound sweep: bounds = range(field) * fraction, for log-spaced
/// fractions in [frac_lo, frac_hi] (inclusive, `count` points).
std::vector<CompressorConfig> abs_sweep_for_field(const Field& field, double frac_lo,
                                                  double frac_hi, std::size_t count);

/// Point-wise-relative sweep over log-spaced bounds in [lo, hi].
std::vector<CompressorConfig> pwrel_sweep(double lo, double hi, std::size_t count);

/// Fixed-rate sweep over the given bitrates.
std::vector<CompressorConfig> rate_sweep(std::vector<double> bitrates);

/// Materializes one registered sweep axis against a concrete field:
/// kFixedValues uses the values verbatim, kRangeFractions scales log-spaced
/// fractions by the field's value range, kLogValues log-spaces absolute
/// values. All configs carry the axis's mode.
std::vector<CompressorConfig> configs_for_axis(const SweepAxis& axis, const Field& field);

/// The default candidate grid per Nyx-like field for a registered codec:
/// the codec's primary CodecCapabilities::default_sweep axis, materialized
/// for \p field (e.g. the ZFP family registers rates {1,2,4,8}, the SZ/FZ
/// family range-scaled absolute bounds 2e-6..2e-3 of the range). Unknown
/// codecs throw InvalidArgument.
std::vector<CompressorConfig> default_grid_candidates(const std::string& codec,
                                                      const Field& field);

/// The paper's HACC position candidates, keyed off the codec's modes:
/// absolute bounds when supported, fixed bitrates otherwise. Shared by the
/// guideline bench, the optimizer CLI and the pipeline's optimizer stage.
std::vector<CompressorConfig> default_position_candidates(const CodecCapabilities& caps);

/// HACC velocity candidates: point-wise-relative bounds when supported
/// (Sec. IV-B4), bitrates for rate-mode codecs, range-scaled absolute
/// bounds otherwise.
std::vector<CompressorConfig> default_velocity_candidates(const CodecCapabilities& caps,
                                                          const Field& velocity_field);

}  // namespace cosmo::foresight
