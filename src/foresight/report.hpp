/// \file report.hpp
/// \brief Markdown report generation from CBench results and analyses —
/// the shareable artifact a Foresight run hands to domain scientists
/// (complementing the Cinema database with a human-readable summary).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "foresight/cbench.hpp"
#include "foresight/pipeline.hpp"

namespace cosmo::foresight {

struct ReportOptions {
  std::string title = "Foresight compression report";
  /// Acceptance threshold annotated in the pk column (paper: 1%).
  double pk_tolerance = 0.01;
};

/// Renders results (+ per-key pk / halo / ssim analyses, any of which may be
/// empty) as a markdown document: summary header, per-codec result tables,
/// best-fit picks, and the caveats section.
std::string render_markdown_report(const std::vector<CBenchResult>& results,
                                   const std::map<std::string, double>& pk_deviation,
                                   const std::map<std::string, double>& halo_deviation,
                                   const std::map<std::string, double>& ssim,
                                   const ReportOptions& options = {});

/// Convenience: renders a PipelineSummary.
std::string render_markdown_report(const PipelineSummary& summary,
                                   const ReportOptions& options = {});

/// Renders and writes to \p path.
void write_markdown_report(const PipelineSummary& summary, const std::string& path,
                           const ReportOptions& options = {});

}  // namespace cosmo::foresight
