/// \file optimizer_model.hpp
/// \brief Surrogate machinery for the guided configuration search.
///
/// The guided optimizer (optimizer.hpp, SearchMode::kGuided) replaces the
/// exhaustive candidate sweep with probe + bisection: it fully evaluates a
/// few probe configs, exploits the monotone relationship between bound
/// aggressiveness and domain-metric deviation to bisect onto the
/// acceptability frontier, and fills the remaining rows from a rate-quality
/// surrogate fitted through the evaluated points (Jin et al. 2021,
/// arXiv:2104.00178, builds error-bound pickers from exactly such
/// fine-grained rate-quality models). This header holds the pure,
/// independently testable pieces: aggressiveness ordering, probe placement,
/// the interpolating surrogate, and the bisection step.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "foresight/compressor.hpp"

namespace cosmo::foresight {

/// True when a *larger* config value loosens the error bound (abs, pw_rel,
/// accuracy: bigger bound -> more aggressive -> higher CR and higher
/// deviation). False for budget-style modes (rate, precision: bigger budget
/// -> less aggressive). Unknown modes throw InvalidArgument.
bool mode_loosens_with_larger_value(const std::string& mode);

/// Indices of \p configs sorted least-aggressive -> most-aggressive.
/// All configs must share one mode (the guided search partitions mixed
/// candidate lists by mode before ordering); mixed modes throw.
std::vector<std::size_t> aggressiveness_order(const std::vector<CompressorConfig>& configs);

/// Positions (into an aggressiveness-ordered list of \p n candidates) to
/// probe with full evaluations: both endpoints always, plus evenly spread
/// interior points, `probes` total where possible. Sorted and deduplicated;
/// n == 0 yields empty, probes is clamped to [2, n] (n == 1 -> {0}).
std::vector<std::size_t> probe_positions(std::size_t n, std::size_t probes);

/// Piecewise-interpolating surrogate through fully evaluated (value, ratio,
/// deviation) points. Compression ratio is interpolated log-log (rate-
/// distortion curves are near power laws in the bound); deviation is
/// interpolated linearly in log(value) and clamped to be usable even when
/// probe deviations are zero. Queries outside the fitted range clamp to the
/// nearest endpoint.
class RateQualityModel {
 public:
  /// Adds one evaluated point. \p value must be > 0 (config values are
  /// bounds/rates, always positive).
  void add_point(double value, double ratio, double deviation);

  [[nodiscard]] std::size_t points() const { return pts_.size(); }

  /// Predicted compression ratio at \p value (>= smallest observed > 0
  /// ratio floor of 1).
  [[nodiscard]] double predict_ratio(double value) const;

  /// Predicted domain-metric deviation at \p value (>= 0).
  [[nodiscard]] double predict_deviation(double value) const;

 private:
  struct Point {
    double log_value;
    double ratio;
    double deviation;
  };
  /// Sorted by log_value; duplicate values keep the latest observation.
  std::vector<Point> pts_;
  [[nodiscard]] double interpolate(double log_value, bool log_ratio) const;
};

/// One bisection step over aggressiveness positions: returns the midpoint
/// of (lo, hi), or npos when the bracket is closed (hi - lo <= 1). \p lo is
/// the most aggressive known-acceptable position, \p hi the least
/// aggressive known-unacceptable one; lo < hi is required.
std::size_t bisect_next(std::size_t lo, std::size_t hi);

/// npos sentinel for bisect_next.
inline constexpr std::size_t kBisectDone = static_cast<std::size_t>(-1);

}  // namespace cosmo::foresight
