/// \file compressor.hpp
/// \brief Foresight's uniform compressor interface.
///
/// CBench evaluates every codec through this interface. The codec roster is
/// open: compressors self-register in the CodecRegistry (codec_registry.hpp)
/// with a factory plus a CodecCapabilities descriptor, and make_compressor /
/// available_compressors are thin views over that registry. The built-in
/// set covers the paper's evaluation codecs (gpu-sz, cuzfp, sz-cpu, zfp-cpu,
/// zfp-omp) plus the FZ-GPU-style bitshuffle pipeline (fz-cpu, fz-gpu);
/// `foresight_cli codecs` prints the live roster.
///
/// The execution path is staged: a Compressor opens a CodecSession, and the
/// session exposes compress() and decompress() separately so sweeps can
/// reuse buffers across iterations, keep compressed streams around for
/// several decompressions, or skip decompression entirely. The historical
/// fused run() remains as a thin convenience shim over one session.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/field.hpp"
#include "common/scratch_arena.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "foresight/codec_registry.hpp"
#include "foresight/shape_adapter.hpp"
#include "gpu/device_compressor.hpp"

namespace cosmo::foresight {

/// One compression configuration, e.g. {mode: "abs", value: 0.2}.
struct CompressorConfig {
  std::string mode;    ///< "abs" | "pw_rel" | "rate" | "accuracy" | "precision"
  double value = 0.0;  ///< error bound (abs/pw_rel/accuracy), bits/value (rate),
                       ///< or bit count (precision)

  [[nodiscard]] std::string label() const;
};

/// Output of the compression stage. Self-contained: everything decompress()
/// needs travels with the stream. The per-stage timing/fallback/retry facts
/// live in one StageTelemetry (shared with DecompressResult / RunOutput /
/// CBenchResult); the old field names survive as read accessors.
struct CompressResult {
  std::vector<std::uint8_t> bytes;
  /// Value count of the original field, before any 1-D -> 3-D zero padding;
  /// decompress() truncates reconstructions back to this. 0 means unknown
  /// (no truncation).
  std::size_t original_values = 0;
  StageTelemetry telemetry;
  bool throughput_reportable = true;  ///< false for the GPU-SZ prototype

  [[nodiscard]] double seconds() const { return telemetry.seconds; }
  [[nodiscard]] bool has_gpu_timing() const { return telemetry.has_gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_timing() const { return telemetry.gpu_timing; }
  [[nodiscard]] bool cpu_fallback() const { return telemetry.cpu_fallback; }
  [[nodiscard]] int device_attempts() const { return telemetry.device_attempts; }
};

/// Output of the decompression stage.
struct DecompressResult {
  std::vector<float> values;
  StageTelemetry telemetry;

  [[nodiscard]] double seconds() const { return telemetry.seconds; }
  [[nodiscard]] bool has_gpu_timing() const { return telemetry.has_gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_timing() const { return telemetry.gpu_timing; }
  [[nodiscard]] bool cpu_fallback() const { return telemetry.cpu_fallback; }
  [[nodiscard]] int device_attempts() const { return telemetry.device_attempts; }
};

/// Everything a single fused compress+decompress run produces (the legacy
/// shape; produced by Compressor::run()). Carries the full per-stage
/// telemetry, so run() reports fallback/retry facts identically to the
/// staged path.
struct RunOutput {
  std::vector<std::uint8_t> bytes;
  std::vector<float> reconstructed;
  StageTelemetry compress;
  StageTelemetry decompress;
  bool throughput_reportable = true;  ///< false for the GPU-SZ prototype

  [[nodiscard]] double compress_seconds() const { return compress.seconds; }
  [[nodiscard]] double decompress_seconds() const { return decompress.seconds; }
  [[nodiscard]] bool has_gpu_timing() const { return compress.has_gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_compress() const { return compress.gpu_timing; }
  [[nodiscard]] const TimingBreakdown& gpu_decompress() const {
    return decompress.gpu_timing;
  }
  [[nodiscard]] bool cpu_fallback() const { return any_cpu_fallback(compress, decompress); }
  [[nodiscard]] int device_attempts() const {
    return max_device_attempts(compress, decompress);
  }
};

/// One codec execution context. Sessions own (or borrow) a ScratchArena so
/// repeated compress/decompress calls reuse buffer capacity; passing the
/// in/out overloads the same result objects across iterations reuses their
/// capacity too. A session is NOT thread-safe — the sweep scheduler opens
/// one per worker.
class CodecSession {
 public:
  virtual ~CodecSession() = default;

  /// Compresses \p field under \p config into \p out, reusing \p out's
  /// buffer capacity.
  virtual void compress(const Field& field, const CompressorConfig& config,
                        CompressResult& out) = 0;

  /// Decompresses \p compressed into \p out, reusing \p out's buffer
  /// capacity. Reconstructions are truncated to compressed.original_values
  /// (dropping reshape padding) when that is non-zero.
  virtual void decompress(const CompressResult& compressed, DecompressResult& out) = 0;

  /// By-value conveniences over the in/out virtuals.
  [[nodiscard]] CompressResult compress(const Field& field, const CompressorConfig& config);
  [[nodiscard]] DecompressResult decompress(const CompressResult& compressed);

  /// The arena backing this session's scratch allocations.
  [[nodiscard]] ScratchArena& arena() { return *arena_; }

  /// The pool this session's intra-field kernels fan out on (null = serial).
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

 protected:
  /// Borrows \p arena, or owns a private one when \p arena is null.
  /// \p pool is the intra-field parallelism knob; sessions that parallelize
  /// pass it down to the codec hot paths, which guarantee byte-identical
  /// streams for any thread count.
  explicit CodecSession(ScratchArena* arena, ThreadPool* pool = nullptr)
      : owned_(arena ? nullptr : std::make_unique<ScratchArena>()),
        arena_(arena ? arena : owned_.get()),
        pool_(pool) {}

 private:
  std::unique_ptr<ScratchArena> owned_;
  ScratchArena* arena_;
  ThreadPool* pool_ = nullptr;
};

/// Abstract compressor as seen by CBench: a registry entry that describes a
/// codec (through its CodecCapabilities) and opens execution sessions for
/// it. Name, modes and concurrency facts are all views over capabilities(),
/// so a codec's single source of truth is its registry descriptor.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// The registry descriptor for this codec.
  [[nodiscard]] virtual const CodecCapabilities& capabilities() const = 0;

  [[nodiscard]] std::string name() const { return capabilities().name; }
  [[nodiscard]] std::vector<std::string> supported_modes() const {
    return capabilities().modes;
  }

  /// True when sessions of this compressor may run concurrently with
  /// identical results. False for the simulated-GPU codecs (they share the
  /// simulator's jitter stream, so modeled timings are call-order
  /// dependent) and for zfp-omp (its chunks already occupy the global
  /// pool); the sweep scheduler runs those serially.
  [[nodiscard]] bool concurrent_sessions_safe() const {
    return capabilities().concurrent_sessions_safe;
  }

  /// Opens a session; pass an arena to share scratch buffers, or null to
  /// let the session own one. \p pool threads the session's intra-field
  /// hot paths (null = serial); the CPU codecs guarantee byte-identical
  /// output for any thread count, and the simulated-GPU codecs ignore the
  /// pool (their modeled timings must stay call-order deterministic).
  [[nodiscard]] virtual std::unique_ptr<CodecSession> open_session(
      ScratchArena* arena = nullptr, ThreadPool* pool = nullptr) = 0;

  /// Fused compress+decompress convenience over a fresh session.
  [[nodiscard]] RunOutput run(const Field& field, const CompressorConfig& config);
};

/// Creates a compressor by registered name (CodecRegistry::make). Device
/// codecs need a simulator; passing null for them throws InvalidArgument,
/// as does an unknown name (the message lists the registered codecs).
std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim = nullptr);

/// Registered codec names in registration (= evaluation) order.
std::vector<std::string> available_compressors();

}  // namespace cosmo::foresight
