/// \file compressor.hpp
/// \brief Foresight's uniform compressor interface and registry.
///
/// CBench evaluates every codec through this interface. Four compressors
/// are registered, matching the paper's evaluation set:
///   "gpu-sz"  — GPU-SZ (simulated device; ABS and PW_REL-via-log; 3-D only,
///               1-D fields are reshaped per the paper's procedure),
///   "cuzfp"   — cuZFP (simulated device; fixed-rate only),
///   "sz-cpu"  — CPU SZ (ABS / PW_REL; measured wall time),
///   "zfp-cpu" — CPU ZFP (fixed-rate / fixed-accuracy; measured wall time).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/field.hpp"
#include "gpu/device_compressor.hpp"

namespace cosmo::foresight {

/// One compression configuration, e.g. {mode: "abs", value: 0.2}.
struct CompressorConfig {
  std::string mode;    ///< "abs" | "pw_rel" | "rate" | "accuracy"
  double value = 0.0;  ///< error bound (abs/pw_rel/accuracy) or bits/value (rate)

  [[nodiscard]] std::string label() const;
};

/// Everything a single compress+decompress run produces.
struct RunOutput {
  std::vector<std::uint8_t> bytes;
  std::vector<float> reconstructed;
  double compress_seconds = 0.0;    ///< measured (CPU) or modeled total (GPU)
  double decompress_seconds = 0.0;
  bool has_gpu_timing = false;
  gpu::TimingBreakdown gpu_compress;
  gpu::TimingBreakdown gpu_decompress;
  bool throughput_reportable = true;  ///< false for the GPU-SZ prototype
};

/// Abstract compressor as seen by CBench.
class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<std::string> supported_modes() const = 0;

  /// Compresses and decompresses \p field under \p config.
  virtual RunOutput run(const Field& field, const CompressorConfig& config) = 0;
};

/// Creates a compressor by registry name. GPU-backed compressors need a
/// simulator; passing null for them throws.
std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            gpu::GpuSimulator* sim = nullptr);

/// Registry names in evaluation order.
std::vector<std::string> available_compressors();

/// The paper's 1-D -> 3-D dimension conversion (Section IV-B4): reshapes a
/// 1-D extent into (ceil(n/64), 8, 8) with zero padding, the layout used
/// for cuZFP on HACC; GPU-SZ accepts the same reshaped layout.
Dims reshape_1d_to_3d(std::size_t n);

}  // namespace cosmo::foresight
